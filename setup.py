"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on offline machines whose setuptools lacks the
``wheel`` package required by the PEP 660 editable path
(``pip install -e . --no-use-pep517`` falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
