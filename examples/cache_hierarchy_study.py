"""Cache-hierarchy study: what the two-level prefetch scheme buys (II-E).

Drives a sequence of microkernel invocations through the cache simulator
under four regimes -- no prefetch, hardware next-line, hardware stride, and
the paper's software scheme (L2 prefetch of the *next* invocation's
sub-tensors, offsets chained as in Fig. 1) -- and reports per-level miss
rates.

Run:  python examples/cache_hierarchy_study.py
"""

import numpy as np

from repro.arch.machine import MachineConfig
from repro.cachesim.hierarchy import CacheHierarchy
from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.jit.interpreter import execute_kernel

#: a small machine so the working set genuinely spills L1
MACHINE = MachineConfig(
    name="STUDY", cores=1, freq_hz=1e9, l1_bytes=8 * 1024,
    l2_bytes=256 * 1024, l1_assoc=2,
)

VLEN = 4
DESC = dict(
    vlen=VLEN, rb_p=1, rb_q=6, R=3, S=3, stride=1,
    i_strides=(4096, 64, VLEN), w_strides=(4096, 256, 64, VLEN),
    o_strides=(64, VLEN), zero_init=True,
)


def run_sequence(prefetch_mode: str, hw: str, calls: int = 24):
    """Execute `calls` consecutive microkernels over a fresh hierarchy."""
    prog = generate_conv_kernel(
        ConvKernelDesc(**DESC, prefetch=prefetch_mode)
    )
    h = CacheHierarchy(MACHINE, hw_prefetch=hw)
    rng = np.random.default_rng(0)
    bufs = {
        "I": rng.standard_normal(1 << 18).astype(np.float32),
        "W": rng.standard_normal(1 << 18).astype(np.float32),
        "O": np.zeros(1 << 18, dtype=np.float32),
    }
    step_i, step_o = 6 * VLEN, 6 * VLEN
    for t in range(calls):
        bases = {
            "I": t * step_i, "W": 0, "O": t * step_o,
            # Fig. 1: prefetch args = the *next* call's compute offsets
            "I_pf": (t + 1) * step_i, "W_pf": 0, "O_pf": (t + 1) * step_o,
        }
        execute_kernel(prog, bufs, bases, touch=h.touch)
    return h


def main() -> None:
    print(f"{'regime':>28} {'L1 miss%':>9} {'L2 miss%':>9} "
          f"{'L2 pf-hits':>11}")
    for label, (sw, hw) in {
        "no prefetch": ("none", "none"),
        "hw next-line": ("none", "nextline"),
        "hw stride": ("none", "stride"),
        "sw two-level (paper)": ("both", "none"),
        "sw + hw stride": ("both", "stride"),
    }.items():
        h = run_sequence(sw, hw)
        l1 = 100 * h.l1.stats.miss_rate
        l2 = 100 * h.l2.stats.miss_rate
        print(f"{label:>28} {l1:>8.2f}% {l2:>8.2f}% "
              f"{h.l2.stats.prefetched_hits:>11}")
    print(
        "\nThe software scheme converts next-invocation L2 misses into "
        "prefetched hits\n(the 'virtually diminishes cache miss latency "
        "overheads' of section II-E)."
    )


if __name__ == "__main__":
    main()
