"""Reduced precision (section II-K): int16 kernels vs fp32.

Quantizes a layer's activations and weights to int16 (dynamic fixed point),
runs the chain-limited int16 convolution, compares numerics to fp32, and
prints the KNM timing model's speedups for all three passes (Fig. 8's
averages: 1.63x / 1.58x / 1.3x).

Run:  python examples/quantized_inference.py
"""

import numpy as np

from repro.arch.machine import KNM
from repro.conv.params import ConvParams
from repro.conv.reference import conv2d_forward
from repro.models.resnet50 import resnet50_layers
from repro.perf.model import ConvPerfModel
from repro.quant import qconv2d_forward, quantize
from repro.types import DType


def numerics() -> None:
    p = ConvParams(N=2, C=64, K=32, H=14, W=14, R=3, S=3, stride=1)
    rng = np.random.default_rng(2)
    x = rng.standard_normal((p.N, p.C, p.H, p.W)).astype(np.float32)
    w = (rng.standard_normal((p.K, p.C, p.R, p.S)) * 0.1).astype(np.float32)
    ref = conv2d_forward(x, w, p)
    qx, qw = quantize(x), quantize(w)
    out = qconv2d_forward(qx, qw, p)
    rel = np.abs(out - ref).max() / np.abs(ref).max()
    print(f"int16 vs fp32 layer {p.describe()}:")
    print(f"  quant scales: x {qx.scale:.3e}, w {qw.scale:.3e}")
    print(f"  max relative error: {rel:.2e}  (15-bit mantissa expected ~1e-3)")


def speedups() -> None:
    model = ConvPerfModel(KNM)
    print("\nKNM fp32 -> int16 speedups per ResNet-50 layer "
          "(paper averages: fwd 1.63x, bwd 1.58x, upd 1.3x):")
    sums = [0.0, 0.0, 0.0]
    rows = list(resnet50_layers(70))
    for lid, p in rows:
        f = model.estimate_forward(p).time_s / model.estimate_forward(
            p, dtype=DType.QI16F32
        ).time_s
        b = model.estimate_backward(p).time_s / model.estimate_backward(
            p, dtype=DType.QI16F32
        ).time_s
        u = model.estimate_update(p).time_s / model.estimate_update(
            p, dtype=DType.QI16F32
        ).time_s
        sums[0] += f
        sums[1] += b
        sums[2] += u
        print(f"  layer {lid:>2}: fwd x{f:.2f}  bwd x{b:.2f}  upd x{u:.2f}")
    n = len(rows)
    print(f"  averages: fwd x{sums[0]/n:.2f}  bwd x{sums[1]/n:.2f}  "
          f"upd x{sums[2]/n:.2f}")


def main() -> None:
    numerics()
    speedups()


if __name__ == "__main__":
    main()
