"""Kernel streams in action (section II-H) plus layer fusion (II-G).

Shows what the dryrun records for a small layer with conv+bias+ReLU fusion:
the kernel variant stream, offset streams, the prefetch-offset chaining of
Fig. 1, and the RLE segments of Fig. 2 -- then replays and validates.

Run:  python examples/kernel_streams_demo.py
"""

import numpy as np

from repro import SKX, Bias, ConvParams, DirectConvForward, ReLU
from repro.conv.reference import conv2d_forward
from repro.jit.kernel_cache import get_default_cache
from repro.streams.rle import SegmentKind


def main() -> None:
    p = ConvParams(N=1, C=32, K=32, H=12, W=12, R=3, S=3, stride=1)
    rng = np.random.default_rng(1)
    bias = rng.standard_normal(p.K).astype(np.float32)
    eng = DirectConvForward(
        p, machine=SKX, threads=2, fused_ops=[Bias(bias), ReLU()]
    )

    print(f"layer {p.describe()}, {eng.threads} threads")
    print(f"JIT variants: {eng.variant_names}")
    cache = get_default_cache()
    print(f"kernel cache: {len(cache)} programs, {cache.hits} hits, "
          f"{cache.misses} misses")

    for tid, (stream, segments) in enumerate(zip(eng.streams, eng.segments)):
        kinds = [
            f"{seg.kind.value}x{seg.info}"
            if seg.kind is SegmentKind.CONV_STREAK
            else f"APPLY(op{seg.info})"
            for seg in segments[:8]
        ]
        print(
            f"thread {tid}: {stream.conv_calls} conv calls, "
            f"{stream.apply_calls} APPLY calls, "
            f"{len(segments)} segments; first: {kinds} ..."
        )

    # Fig. 1's identity: call i prefetches call i+1's sub-tensors.  The
    # replay loop passes i_off[i+1] as the prefetch base of call i -- show
    # the first few compute offsets a thread will chain through.
    s = eng.streams[0]
    conv_rows = [
        (int(s.kinds[i]), int(s.i_off[i]), int(s.w_off[i]), int(s.o_off[i]))
        for i in range(len(s))
        if s.kinds[i] >= 0
    ][:4]
    print("first conv records (variant, i_off, w_off, o_off):")
    for row in conv_rows:
        print("   ", row)

    x = rng.standard_normal((p.N, p.C, p.H, p.W)).astype(np.float32)
    w = rng.standard_normal((p.K, p.C, p.R, p.S)).astype(np.float32)
    y = eng.run_nchw(x, w)
    ref = np.maximum(conv2d_forward(x, w, p) + bias[None, :, None, None], 0)
    print(f"replay+fusion max abs error vs reference: "
          f"{np.abs(y - ref).max():.2e}")


if __name__ == "__main__":
    main()
