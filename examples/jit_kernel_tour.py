"""A tour of the JIT: descriptors -> µop streams -> validation -> timing.

Walks the paper's kernel family for one Table-I layer on both machines:
shows each variant's disassembly head, validates the generated code against
the reference loops using the artifact's four error norms, and prints the
timing model's verdict with its bottleneck.

Run:  python examples/jit_kernel_tour.py
"""

import numpy as np

from repro.arch.disasm import disassemble, summarize_program
from repro.arch.machine import KNM, SKX
from repro.conv.forward import DirectConvForward
from repro.conv.params import ConvParams
from repro.conv.reference import conv2d_forward
from repro.jit.timing import time_kernel
from repro.tensor.blocked import block_activations, block_weights
from repro.validation import check


def main() -> None:
    # a scaled-down layer with a spatial remainder, so two variants appear
    p = ConvParams(N=1, C=16, K=16, H=9, W=9, R=3, S=3, stride=1)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((p.N, p.C, p.H, p.W)).astype(np.float32)
    w = rng.standard_normal((p.K, p.C, p.R, p.S)).astype(np.float32)
    ref = conv2d_forward(x, w, p)

    for machine in (SKX, KNM):
        print(f"\n================ {machine.name} ================")
        eng = DirectConvForward(p, machine=machine, threads=2)
        for prog in eng.programs:
            print("\n" + summarize_program(prog))
            print(disassemble(prog, max_lines=10))
            t = time_kernel(prog, machine)
            print(
                f"timing: {t.cycles:.0f} cycles/invocation, bottleneck "
                f"{t.bottleneck}, {100 * t.efficiency(machine):.1f}% of a "
                f"core's peak"
            )
        # replay the µop streams through the interpreter and validate with
        # the artifact's norms (vlen-16 machines: exercise the numpy path)
        out = eng.run_nchw(x, w)
        norms = check(out, ref)
        print(f"\nvalidation vs reference loops: {norms}")


if __name__ == "__main__":
    main()
