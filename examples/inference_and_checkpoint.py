"""Train -> dump weights -> restore -> inference (the artifact's workflow).

The paper's artifact lists "dumped weights ... which can be used for
inference tasks afterwards" among GxM's outputs.  This example trains the
miniature ResNet on synthetic data, saves a checkpoint, restores it into a
freshly-initialized graph, folds the BatchNorms, and evaluates top-1/top-5
in inference mode (FWD tasks only, section II-L).

Run:  python examples/inference_and_checkpoint.py
"""

import io

from repro.gxm.checkpoint import load_checkpoint, save_checkpoint
from repro.gxm.data import SyntheticImageDataset
from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.fusion_pass import fuse_topology, fusion_report
from repro.gxm.inference import InferenceSession, fold_batchnorms
from repro.gxm.trainer import Trainer
from repro.models.resnet50 import resnet_mini_topology


def main() -> None:
    topo = resnet_mini_topology(num_classes=8, width=16)
    ds = SyntheticImageDataset(n=512, num_classes=8, shape=(16, 16, 16),
                               seed=3)
    etg = ExecutionTaskGraph(topo, (32, 16, 16, 16), seed=7)
    trainer = Trainer(etg, lr=0.05, momentum=0.9)
    trainer.fit(ds, batch_size=32, epochs=4)
    print(f"trained: final loss {trainer.metrics.losses[-1]:.4f}, "
          f"top-1 {100 * trainer.metrics.accuracies[-1]:.1f}%")

    # dump weights (in memory here; pass a path in real use)
    blob = io.BytesIO()
    save_checkpoint(etg, blob)
    print(f"checkpoint size: {len(blob.getvalue()) / 1024:.1f} KiB")

    # restore into a fresh graph with different initialization
    blob.seek(0)
    fresh = ExecutionTaskGraph(topo, (32, 16, 16, 16), seed=999)
    restored = load_checkpoint(fresh, blob)
    print(f"restored {len(restored)} parameter tensors")

    folded = fold_batchnorms(fresh)
    print(f"folded {len(folded)} BatchNorms into scale/shift pairs "
          "(the fused-conv inference form, section II-G)")

    with InferenceSession(fresh) as sess:
        result = sess.evaluate(ds, batch_size=32)
    print(f"inference over {result.n} images: loss {result.loss:.4f}, "
          f"top-1 {100 * result.top1:.1f}%, top-5 {100 * result.top5:.1f}%")
    assert result.top1 > 0.5, "restored model must beat chance"

    print("\n" + fusion_report(topo, fuse_topology(topo)))


if __name__ == "__main__":
    main()
