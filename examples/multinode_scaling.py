"""Multi-node training: Fig. 9 end-to-end numbers + functional data parallel.

Two parts:

1. the Fig. 9 timing model -- single-node img/s and the 1..16-node strong
   scaling for KNM and dual-socket SKX, next to the published TensorFlow /
   P100 reference points;
2. a *functional* demonstration that the simulated MLSL all-reduce is
   numerically faithful: training with 4 simulated nodes (sharded batches +
   gradient averaging) matches single-node training on the same global
   minibatch.

Run:  python examples/multinode_scaling.py
"""

import numpy as np

from repro.gxm.data import SyntheticImageDataset
from repro.gxm.e2e import estimate_training, fig9_scaling, dual_socket
from repro.arch.machine import KNM, SKX
from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.trainer import Trainer
from repro.models.resnet50 import resnet_mini_topology
from repro.perf.references import PAPER_MEASURED, REFERENCE_IMG_PER_S


def timing_part() -> None:
    print("=== Fig. 9: end-to-end ResNet-50 training ===")
    for name in ("KNM", "SKX"):
        pts = fig9_scaling(name)
        print(f"\n{name} (dual-socket for SKX):")
        for pt in pts:
            paper = PAPER_MEASURED.get(("resnet50", name, pt.nodes))
            extra = f"  (paper: {paper:.0f})" if paper else ""
            print(
                f"  {pt.nodes:>2} nodes: {pt.imgs_per_s:7.0f} img/s, "
                f"parallel efficiency {100*pt.parallel_efficiency:5.1f}%"
                f"{extra}"
            )
    print("\nreference points:")
    for (topo, label), v in REFERENCE_IMG_PER_S.items():
        if topo == "resnet50":
            print(f"  {label}: {v:.0f} img/s")
    inc = estimate_training(KNM, "inception_v3")
    print(f"\nInception-v3 single node KNM: {inc.imgs_per_s:.0f} img/s "
          f"(paper: {PAPER_MEASURED[('inception_v3', 'KNM', 1)]:.0f})")


def functional_part() -> None:
    print("\n=== functional data parallelism (gradient all-reduce) ===")
    topo = resnet_mini_topology(num_classes=4, width=16)
    ds = SyntheticImageDataset(n=128, num_classes=4, shape=(16, 12, 12), seed=5)
    losses = {}
    for nodes in (1, 4):
        etg = ExecutionTaskGraph(topo, input_shape=(8, 16, 12, 12), seed=11)
        tr = Trainer(etg, lr=0.05, nodes=nodes)
        # identical global minibatches: per-node batch x nodes = 32
        tr.fit(ds, batch_size=32 // nodes, epochs=2)
        losses[nodes] = tr.metrics.losses
        print(f"  {nodes} node(s): first loss {losses[nodes][0]:.4f}, "
              f"last loss {losses[nodes][-1]:.4f}")
    drift = max(
        abs(a - b) for a, b in zip(losses[1], losses[4])
    )
    print(f"  max per-iteration loss drift 1-node vs 4-node: {drift:.2e} "
          "(BatchNorm shards statistics; otherwise bit-equal)")


def main() -> None:
    timing_part()
    functional_part()


if __name__ == "__main__":
    main()
