"""ResNet-50 per-layer kernel study: the Fig. 4/5/6/7 tables as text.

Prints, for SKX and KNM, the per-layer GFLOPS of this work, MKL-DNN and the
alternative implementations for forward propagation, and this work's
backward/update numbers -- the same series the paper plots.

Run:  python examples/resnet50_layer_benchmark.py [SKX|KNM]
"""

import sys

from repro.arch.machine import machine_by_name
from repro.baselines import estimate_autovec, estimate_im2col, estimate_smallgemm
from repro.models.resnet50 import resnet50_layers
from repro.perf.model import ConvPerfModel


def run(machine_name: str) -> None:
    machine = machine_by_name(machine_name)
    minibatch = 70 if machine.name == "KNM" else 28
    model = ConvPerfModel(machine)
    print(
        f"\nResNet-50 on {machine.name} (minibatch {minibatch}, "
        f"{machine.cores} threads, peak {machine.peak_flops/1e12:.2f} TFLOPS)"
    )
    hdr = (
        f"{'id':>3} {'thiswork':>9} {'%peak':>6} {'MKL':>7} {'im2col':>7} "
        f"{'libxsmm':>8} {'blas':>7} {'autovec':>8} | {'bwd':>7} {'upd':>7}"
    )
    print(hdr)
    print("-" * len(hdr))
    for lid, p in resnet50_layers(minibatch):
        tw = model.estimate_forward(p)
        mk = model.estimate_forward(p, impl="mkl")
        bw = model.estimate_backward(p)
        up = model.estimate_update(p)
        i2c = estimate_im2col(p, machine)
        xs = estimate_smallgemm(p, machine, "libxsmm")
        bl = estimate_smallgemm(p, machine, "blas")
        av = estimate_autovec(p, machine)
        print(
            f"{lid:>3} {tw.gflops:>9.0f} {100*tw.efficiency:>6.1f} "
            f"{mk.gflops:>7.0f} {i2c.gflops:>7.0f} {xs.gflops:>8.0f} "
            f"{bl.gflops:>7.0f} {av.gflops:>8.0f} | {bw.gflops:>7.0f} "
            f"{up.gflops:>7.0f}"
        )


def main() -> None:
    targets = sys.argv[1:] or ["SKX", "KNM"]
    for name in targets:
        run(name)


if __name__ == "__main__":
    main()
