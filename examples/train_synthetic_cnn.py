"""GxM training demo: a ResNet-style miniature on the synthetic dataset.

Exercises the full section II-L pipeline -- topology text round-trip, NL
extension with Split nodes, ETG compilation, and the FWD/BWD/UPD task
execution -- then trains with SGD until the synthetic classes are separable,
reporting loss/accuracy like GxM's per-iteration console output.

Run:  python examples/train_synthetic_cnn.py
"""

from repro.gxm.data import SyntheticImageDataset
from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.parser import parse_topology
from repro.gxm.trainer import Trainer
from repro.models.resnet50 import resnet_mini_topology


def main() -> None:
    topo = resnet_mini_topology(num_classes=8, width=16)
    # round-trip through the protobuf-style text format (the GxM input)
    topo = parse_topology(topo.to_text())
    print(f"topology {topo.name!r}: {len(topo.layers)} layers")

    batch = 32
    etg = ExecutionTaskGraph(
        topo, input_shape=(batch, 16, 16, 16), engine="fast", seed=7
    )
    print(
        f"ETG: {len(etg.enl.layers)} nodes after NL extension, "
        f"{len(etg.tasks)} tasks "
        f"({sum(1 for t in etg.tasks if t.pass_.name == 'UPD')} weight-update)"
    )

    ds = SyntheticImageDataset(n=512, num_classes=8, shape=(16, 16, 16), seed=3)
    trainer = Trainer(etg, lr=0.05, momentum=0.9, weight_decay=1e-4)
    for epoch in range(4):
        trainer.fit(ds, batch_size=batch, epochs=1)
        m = trainer.metrics
        k = len(m.losses)
        print(
            f"epoch {epoch}: loss {m.losses[-1]:.4f}  "
            f"top-1 {100 * m.accuracies[-1]:.1f}%  ({k} iterations)"
        )
    assert m.losses[-1] < m.losses[0], "training must reduce the loss"
    print("done: loss went from "
          f"{m.losses[0]:.3f} to {m.losses[-1]:.3f}")


if __name__ == "__main__":
    main()
