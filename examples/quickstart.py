"""Quickstart: one convolution layer through the paper's machinery.

Builds a ResNet-50-shaped layer, runs forward / backward / weight-update
through the blocked direct-convolution engines (JIT'ed kernel variants +
kernel-streams replay inside), validates every pass against the naive
reference loops, and prints the performance model's verdict for the same
layer at full scale on both evaluation machines.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    SKX,
    KNM,
    ConvParams,
    ConvPerfModel,
    DirectConvBackward,
    DirectConvForward,
    DirectConvUpd,
)
from repro.conv.reference import (
    conv2d_backward_data,
    conv2d_forward,
    conv2d_update_weights,
)


def main() -> None:
    # a scaled-down Table-I layer 8 (128x128 3x3 on 28x28) at minibatch 2
    p = ConvParams(N=2, C=32, K=32, H=28, W=28, R=3, S=3, stride=1)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((p.N, p.C, p.H, p.W)).astype(np.float32)
    w = rng.standard_normal((p.K, p.C, p.R, p.S)).astype(np.float32)
    dy = rng.standard_normal((p.N, p.K, p.P, p.Q)).astype(np.float32)

    print(f"layer: {p.describe()}  ({p.flops/1e6:.1f} MFLOP)")

    fwd = DirectConvForward(p, machine=SKX, threads=4)
    print(
        f"forward engine: {len(fwd.variant_names)} JIT variants "
        f"{fwd.variant_names}, {fwd.total_conv_calls} microkernel calls "
        f"across {fwd.threads} thread streams"
    )
    y = fwd.run_nchw(x, w)
    err = np.abs(y - conv2d_forward(x, w, p)).max()
    print(f"forward  max abs error vs reference: {err:.2e}")

    bwd = DirectConvBackward(p, machine=SKX, threads=4)
    dx = bwd.run_nchw(dy, w)
    err = np.abs(dx - conv2d_backward_data(dy, w, p)).max()
    print(f"backward ({bwd.mode}) max abs error: {err:.2e}")

    upd = DirectConvUpd(p, machine=SKX, threads=4)
    dw = upd.run_nchw(x, dy)
    err = np.abs(dw - conv2d_update_weights(x, dy, p)).max()
    print(f"update ({upd.strategy.name}) max abs error: {err:.2e}")

    # what the same layer does at paper scale
    for machine, nb in ((SKX, 28), (KNM, 70)):
        model = ConvPerfModel(machine)
        full = ConvParams(N=nb, C=128, K=128, H=28, W=28, R=3, S=3, stride=1)
        perf = model.estimate_forward(full)
        print(
            f"{machine.name}: Table-I layer 8 fwd -> {perf.gflops:.0f} GFLOPS "
            f"({100 * perf.efficiency:.0f}% of peak, bound: {perf.bound})"
        )


if __name__ == "__main__":
    main()
