"""repro: a reproduction of "Anatomy of High-Performance Deep Learning
Convolutions on SIMD Architectures" (Georganas et al., SC'18).

The public API groups into four levels:

* **Kernels** -- JIT microkernel generation, functional interpretation and
  timing (:mod:`repro.jit`, :mod:`repro.arch`).
* **Layers** -- blocked direct-convolution engines with kernel streams and
  fusion (:mod:`repro.conv`, :mod:`repro.streams`, :mod:`repro.quant`),
  plus the non-conv operators (:mod:`repro.layers`).
* **Framework** -- GxM graph compilation, training, and simulated
  multi-node data parallelism (:mod:`repro.gxm`).
* **Evaluation** -- the performance models and baselines that regenerate
  every table and figure of the paper (:mod:`repro.perf`,
  :mod:`repro.baselines`, :mod:`repro.models`, :mod:`repro.cachesim`).
* **Observability** -- tracing spans and metrics threaded through all of
  the above (:mod:`repro.obs`; ``python -m repro profile``), plus the
  flight recorder and incident bundles of :mod:`repro.forensics`
  (``python -m repro incident``).

Quick start::

    import numpy as np
    from repro import ConvParams, Pass, SKX, make_engine

    p = ConvParams(N=2, C=64, K=64, H=28, W=28, R=3, S=3, stride=1)
    conv = make_engine(Pass.FWD, p, machine=SKX, threads=4)
    x = np.random.randn(p.N, p.C, p.H, p.W).astype(np.float32)
    w = np.random.randn(p.K, p.C, p.R, p.S).astype(np.float32)
    y = conv.run_nchw(x, w)   # blocked layout + JIT'ed streams inside
"""

from repro import collective, forensics, obs
from repro.arch.machine import KNM, SKX, MachineConfig, machine_by_name
from repro.conv.backward import DirectConvBackward
from repro.conv.engine import ConvEngine, make_engine
from repro.conv.forward import DirectConvForward
from repro.conv.fusion import BatchNormApply, Bias, EltwiseAdd, ReLU
from repro.conv.params import ConvParams
from repro.conv.upd import DirectConvUpd
from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.profiler import TaskProfiler
from repro.gxm.topology import TopologySpec
from repro.gxm.trainer import SGD, Trainer
from repro.jit.kernel_cache import KernelCache, get_default_cache
from repro.jit.tiers import (
    EXECUTION_TIERS,
    ExecutionTier,
    ReplayOptions,
    UnknownTierError,
)
from repro.obs import MetricsRegistry, Tracer, get_metrics, get_tracer
from repro.perf.model import ConvPerfModel
from repro.quant.qconv_engine import QuantConvForward
from repro.tune import TuningDatabase, search_mapspace, tune_layer
from repro.types import DType, Pass, ReproError

__version__ = "1.1.0"

__all__ = [
    # layer shapes + engines (the preferred construction path is
    # `make_engine`; the engine classes stay exported for direct use)
    "ConvParams",
    "make_engine",
    "ConvEngine",
    "DirectConvForward",
    "DirectConvBackward",
    "DirectConvUpd",
    "QuantConvForward",
    # fusable post-ops (§II-G)
    "Bias",
    "ReLU",
    "BatchNormApply",
    "EltwiseAdd",
    # machines
    "MachineConfig",
    "SKX",
    "KNM",
    "machine_by_name",
    # fault-tolerant overlapped all-reduce (repro.collective)
    "collective",
    # observability + forensics
    "obs",
    "forensics",
    "Tracer",
    "MetricsRegistry",
    "get_tracer",
    "get_metrics",
    "TaskProfiler",
    # JIT cache + execution tiers
    "KernelCache",
    "get_default_cache",
    "ExecutionTier",
    "EXECUTION_TIERS",
    "ReplayOptions",
    "UnknownTierError",
    # autotuning (the full API lives in repro.tune)
    "TuningDatabase",
    "search_mapspace",
    "tune_layer",
    # perf + framework
    "ConvPerfModel",
    "TopologySpec",
    "ExecutionTaskGraph",
    "Trainer",
    "SGD",
    # core types
    "DType",
    "Pass",
    "ReproError",
    "__version__",
]
