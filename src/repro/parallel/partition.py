"""Work partitioning for the forward/backward passes (section II-F).

The iteration space of Algorithm 3 exposes ``N x K_b x P_b x Q_b``
independent microkernel invocations.  The paper's policy: divide the
minibatch dimension first (threads then share the weight tensor in shared
caches), spill into the output-feature dimension when ``T > N``, and into
the spatial dimensions when ``T > N x K_b``.

``partition_forward`` realizes this as a balanced split of the
lexicographically ordered ``(n, k_b, oj_b)`` space -- contiguous ranges of
that order produce exactly the paper's hierarchy, with no thread straddling
an ``n`` boundary unless it must.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WorkItem", "partition_forward", "split_range"]


@dataclass(frozen=True, slots=True)
class WorkItem:
    """A contiguous run of oj-blocks for one ``(n, k_b)`` slice."""

    n: int
    kb: int
    ojb_lo: int
    ojb_hi: int  # exclusive

    @property
    def blocks(self) -> int:
        return self.ojb_hi - self.ojb_lo


def split_range(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` balanced contiguous pieces
    (earlier pieces take the remainder; empty pieces allowed)."""
    base, rem = divmod(total, parts)
    out = []
    lo = 0
    for i in range(parts):
        size = base + (1 if i < rem else 0)
        out.append((lo, lo + size))
        lo += size
    return out


def partition_forward(
    n: int, kb: int, pb: int, threads: int
) -> list[list[WorkItem]]:
    """Per-thread work lists over the ``(n, k_b, oj_b)`` space.

    Splits the flattened space into ``threads`` contiguous balanced ranges;
    because ``n`` is the outermost coordinate, minibatch parallelism is
    exhausted before feature-map parallelism, which is exhausted before
    spatial parallelism -- the section II-F policy.
    """
    total = n * kb * pb
    assignments: list[list[WorkItem]] = []
    for lo, hi in split_range(total, threads):
        items: list[WorkItem] = []
        pos = lo
        while pos < hi:
            nn, rest = divmod(pos, kb * pb)
            kk, oj = divmod(rest, pb)
            run = min(hi - pos, pb - oj)
            items.append(WorkItem(n=nn, kb=kk, ojb_lo=oj, ojb_hi=oj + run))
            pos += run
        assignments.append(items)
    return assignments
