"""Per-thread timing aggregation.

Simulated threads execute their streams independently; wall-clock time for a
layer is the *maximum* per-thread time (a barrier separates layers in GxM).
``ThreadTimes`` also reports load imbalance, which matters for layers whose
work-item count does not divide the thread count.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ThreadTimes"]


@dataclass
class ThreadTimes:
    """Collection of per-thread execution times (seconds)."""

    times: list[float]

    @property
    def wall(self) -> float:
        return max(self.times) if self.times else 0.0

    @property
    def total(self) -> float:
        return sum(self.times)

    @property
    def mean(self) -> float:
        return self.total / len(self.times) if self.times else 0.0

    @property
    def imbalance(self) -> float:
        """max/mean - 1; zero for perfectly balanced threads."""
        m = self.mean
        return self.wall / m - 1.0 if m > 0 else 0.0
