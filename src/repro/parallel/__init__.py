"""Parallelization: work partitioning, thread timing, dW strategies.

Functional execution in this reproduction is single-process (numpy already
uses the machine's vector units; Python threads would add nothing but GIL
contention), but the *partitioning decisions* are fully implemented: each
simulated thread gets its own kernel stream from the dryrun, and the timing
model aggregates per-thread costs including imbalance -- the quantities that
actually decide the paper's Figs. 4-9.
"""

from repro.parallel.partition import WorkItem, partition_forward, split_range
from repro.parallel.threadsim import ThreadTimes
from repro.parallel.wu_strategies import (
    UpdStrategy,
    choose_upd_strategy,
    upd_strategy_traffic,
)

__all__ = [
    "WorkItem",
    "partition_forward",
    "split_range",
    "ThreadTimes",
    "UpdStrategy",
    "choose_upd_strategy",
    "upd_strategy_traffic",
]
