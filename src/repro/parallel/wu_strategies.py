"""Weight-gradient parallelization strategies (section II-J).

The paper describes a spectrum parameterized by the number of weight-gradient
copies ``G``:

* ``G = 1`` ("shared"): threads partition the ``R x S x K_b x C_b`` task
  space; no reduction, but each input value is read by every thread column
  sharing its feature maps (``T/T_c`` x input reads, ``T/T_k`` x dO reads).
* ``G = T`` ("copies"): threads partition the minibatch, each accumulating a
  private ``R*S*C*K`` gradient copy; reads of I/dO are minimal (1/T each)
  but a final tree reduction moves ``~2T`` x the weight-gradient tensor.
* ``1 < G < T`` ("hybrid"): ``G`` copies, each shared by ``T/G`` threads that
  split the feature-map task space -- trading input/dO bandwidth against
  reduction bandwidth.

``choose_upd_strategy`` evaluates the bandwidth model for every divisor ``G``
of ``T`` at dryrun time, exactly when the paper says the decision is made.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.machine import MachineConfig
from repro.conv.params import ConvParams

__all__ = ["UpdStrategy", "upd_strategy_traffic", "choose_upd_strategy"]


@dataclass(frozen=True, slots=True)
class UpdStrategy:
    """One point on the section II-J spectrum for a given layer/machine."""

    ncopies: int  # G: number of dW copies (1 = shared, T = per-thread)
    tk: int  # threads splitting the K feature maps within a copy group
    tc: int  # threads splitting the C feature maps within a copy group
    # per-thread traffic, bytes
    input_read: float
    dout_read: float
    dw_rw: float
    est_time: float  # bandwidth-model estimate used for the choice

    @property
    def name(self) -> str:
        if self.ncopies == 1:
            return "shared"
        return f"copies-{self.ncopies}" if self.tk * self.tc == 1 else f"hybrid-{self.ncopies}"

    @property
    def total_bytes(self) -> float:
        return self.input_read + self.dout_read + self.dw_rw


def _factor_tasks(group_threads: int, kb: int, cb: int, rs: int) -> tuple[int, int]:
    """Split a copy group's threads over the K/C feature-map task dims.

    Prefers the K dimension (outputs of distinct ``k_b`` are independent),
    then C, mirroring the paper's task enumeration ``R x S x K_b x C_b``.
    The R*S dimension multiplies available tasks but does not change which
    tensor slices a thread reads, so it only relaxes feasibility.
    """
    tk = min(group_threads, kb)
    tc = min(max(1, group_threads // tk), cb)
    return tk, tc


def upd_strategy_traffic(
    p: ConvParams, machine: MachineConfig, threads: int, ncopies: int
) -> UpdStrategy:
    """Bandwidth model for one choice of ``G = ncopies`` (section II-J)."""
    itemsize = 4
    in_bytes = p.N * p.C * p.H * p.W * itemsize
    do_bytes = p.N * p.K * p.P * p.Q * itemsize
    dw_bytes = p.R * p.S * p.C * p.K * itemsize

    group_threads = max(1, threads // ncopies)
    tk, tc = _factor_tasks(group_threads, p.K // 16 or 1, p.C // 16 or 1, p.R * p.S)

    # Each copy group sees N/G minibatch samples; within the group each
    # thread reads 1/tc of the input maps and 1/tk of the gradient outputs.
    input_read = in_bytes / ncopies / tc
    dout_read = do_bytes / ncopies / tk
    # Gradient-copy traffic: each thread streams its private/shared copy once
    # per accumulation wave (amortized: read+write of its task slice), plus
    # the final reduction reads all G copies of a 1/T slice and writes it.
    slice_rw = 2.0 * dw_bytes / (tk * tc)
    reduction = (ncopies + 1.0) * dw_bytes / threads if ncopies > 1 else 0.0
    dw_rw = slice_rw / max(1, group_threads // (tk * tc)) + reduction

    bw_share = machine.mem_bw / threads
    est_time = (input_read + dout_read + dw_rw) / bw_share
    return UpdStrategy(
        ncopies=ncopies,
        tk=tk,
        tc=tc,
        input_read=input_read,
        dout_read=dout_read,
        dw_rw=dw_rw,
        est_time=est_time,
    )


def choose_upd_strategy(
    p: ConvParams, machine: MachineConfig, threads: int
) -> UpdStrategy:
    """Evaluate every divisor ``G`` of ``threads`` and pick the cheapest --
    the dryrun-time decision of section II-J."""
    best: UpdStrategy | None = None
    for g in range(1, threads + 1):
        if threads % g:
            continue
        cand = upd_strategy_traffic(p, machine, threads, g)
        if best is None or cand.est_time < best.est_time:
            best = cand
    assert best is not None
    return best
