"""Command-line interface -- the artifact's run scripts, as one binary.

The paper's artifact drives everything through shell scripts
(``run_resnet50.sh <threads> <iters> <mb> <dtype> <pass> ...``); here the
equivalents are subcommands of ``python -m repro``:

========================  ====================================================
command                   what it does
========================  ====================================================
``layers``                per-layer kernel study (Figs. 4-8) on one machine
``fig``                   regenerate one numbered figure's data
``train``                 GxM training of the miniature ResNet on synthetic
                          data, with optional checkpointing
``scaling``               Fig. 9 multi-node strong-scaling table
``disasm``                JIT one kernel variant and print its µop listing
``profile``               trace N training steps through :mod:`repro.obs`;
                          dump a ``chrome://tracing`` JSON + flat metrics
``serve``                 dynamic-batching inference server over HTTP, with
                          optional kernel-stream warm-start artifact
``loadgen``               drive an in-process server with synthetic closed-
                          or open-loop load; print the SLO report
``tune``                  mapspace-autotune Table I layers; persist the
                          validated winners into a tuning database that
                          ``make_engine(tuned=...)`` / ``serve --tune-db``
                          consult
``incident``              list / inspect / diff / deterministically replay
                          :mod:`repro.forensics` incident bundles captured
                          by trainers and servers
========================  ====================================================

Examples::

    python -m repro layers --machine SKX --pass F
    python -m repro fig 6
    python -m repro train --epochs 4 --checkpoint /tmp/ck.npz
    python -m repro scaling --machine KNM
    python -m repro disasm --layer 8 --machine KNM
    python -m repro profile resnet_mini --steps 2 --trace-out trace.json
    python -m repro serve --engine blocked --save-streams /tmp/streams.npz
    python -m repro loadgen --mode open --rate 200 --duration 2
    python -m repro tune --layers 2,4,8 --db tune.json
    python -m repro incident list --dir incidents
    python -m repro incident replay incidents/incident_train_1234_0000
"""

from __future__ import annotations

import argparse
import sys

from repro.types import Pass

__all__ = ["main", "build_parser"]

_PASS = {"F": Pass.FWD, "B": Pass.BWD, "U": Pass.UPD,
         "forward": Pass.FWD, "backward": Pass.BWD, "update": Pass.UPD}


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro",
        description="SC'18 direct-convolution reproduction toolkit",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("layers", help="per-layer kernel study (Figs. 4-8)")
    p.add_argument("--machine", default="SKX", choices=["SKX", "KNM"])
    p.add_argument("--pass", dest="pass_", default="F",
                   choices=sorted(_PASS))
    p.add_argument("--dtype", default="f32", choices=["f32", "qi16f32"])
    p.add_argument("--no-baselines", action="store_true")

    p = sub.add_parser("fig", help="regenerate one figure's data")
    p.add_argument("number", type=int, choices=[4, 5, 6, 7, 8, 9])

    p = sub.add_parser("train", help="train the mini ResNet on synthetic data")
    p.add_argument("--epochs", type=int, default=4)
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--lr", type=float, default=0.05)
    p.add_argument("--nodes", type=int, default=1,
                   help="simulated data-parallel replicas")
    p.add_argument("--checkpoint", default=None,
                   help="path to dump trained weights (.npz)")
    p.add_argument("--engine", default="fast", choices=["fast", "blocked"])
    p.add_argument("--process-parallel", action="store_true",
                   help="real OS processes per replica (self-healing "
                        "all-reduce) instead of in-process sharding")
    p.add_argument("--allreduce", default="ring",
                   choices=["ring", "tree", "root"],
                   help="gradient exchange under --process-parallel: "
                        "overlapped peer-to-peer ring (default), "
                        "binomial tree, or the blocking root fold")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="autosave a full training checkpoint (weights + "
                        "SGD velocity + step) every N steps; requires "
                        "--checkpoint")
    p.add_argument("--resume", default=None,
                   help="training checkpoint to resume from, exact to "
                        "the step")
    p.add_argument("--nan-policy", default="raise",
                   choices=["raise", "skip", "off"],
                   help="numerics watchdog on gradients before each "
                        "optimizer step")

    p = sub.add_parser("scaling", help="Fig. 9 multi-node scaling")
    p.add_argument("--machine", default="KNM", choices=["SKX", "KNM"])
    p.add_argument("--topology", default="resnet50",
                   choices=["resnet50", "inception_v3"])

    p = sub.add_parser(
        "profile",
        help="trace training steps; dump chrome-trace + metrics JSON",
    )
    p.add_argument("topology", nargs="?", default="resnet_mini",
                   choices=["resnet_mini", "inception_mini"])
    p.add_argument("--steps", type=int, default=2)
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("--engine", default="blocked",
                   choices=["fast", "blocked"])
    p.add_argument("--threads", type=int, default=1)
    from repro.jit.tiers import EXECUTION_TIERS

    p.add_argument("--execution-tier", default="compiled",
                   choices=sorted(EXECUTION_TIERS),
                   help="kernel-stream execution tier; 'verify' runs the "
                        "compiled and interpreter tiers and asserts "
                        "bitwise-identical outputs")
    p.add_argument("--trace-out", default="repro_trace.json",
                   help="chrome://tracing JSON output path")
    p.add_argument("--metrics-out", default="repro_metrics.json",
                   help="flat spans/counters/gauges JSON output path")

    def _add_serve_config_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--model", default="resnet_mini",
                       choices=["resnet_mini", "inception_mini"])
        p.add_argument("--width", type=int, default=32)
        p.add_argument("--engine", default="fast",
                       choices=["fast", "blocked"])
        # serving excludes "verify" (a debugging tier that doubles every
        # replay); any other registered tier is fair game
        p.add_argument("--execution-tier", default=None,
                       choices=sorted(t for t in EXECUTION_TIERS
                                      if t != "verify"))
        p.add_argument("--buckets", default="1,2,4,8,16",
                       help="comma-separated ascending micro-batch sizes")
        p.add_argument("--workers", type=int, default=1)
        p.add_argument("--queue-capacity", type=int, default=256)
        p.add_argument("--batch-window-ms", type=float, default=2.0)
        p.add_argument("--max-queue-wait-ms", type=float, default=None,
                       help="adaptive backpressure: shed once the "
                            "estimated queue wait (service-time EWMA x "
                            "depth) exceeds this budget")
        p.add_argument("--checkpoint", default=None,
                       help="trained weights (.npz) to load into replicas")
        p.add_argument("--load-streams", default=None,
                       help="warm-start artifact from a previous "
                            "--save-streams run (blocked engine)")
        p.add_argument("--replicas", type=int, default=1,
                       help="server processes; > 1 boots an "
                            "InferenceFleet behind the router tier")
        p.add_argument("--tune-db", default=None,
                       help="tuning database (python -m repro tune) "
                            "consulted for every blocked conv layer's "
                            "blocking plan; missing/corrupt falls back "
                            "to the paper heuristics")

    p = sub.add_parser(
        "serve", help="dynamic-batching inference server over HTTP"
    )
    _add_serve_config_args(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8757)
    p.add_argument("--save-streams", default=None,
                   help="dump the warm cache after boot, then keep serving")
    p.add_argument("--boot-only", action="store_true",
                   help="boot, report, save streams if asked, and exit "
                        "(for scripting / CI)")

    p = sub.add_parser(
        "loadgen", help="synthetic load against an in-process server"
    )
    _add_serve_config_args(p)
    p.add_argument("--mode", default="closed", choices=["closed", "open"])
    p.add_argument("--clients", type=int, default=8,
                   help="closed-loop concurrency")
    p.add_argument("--requests", type=int, default=256,
                   help="closed-loop total submissions")
    p.add_argument("--rate", type=float, default=200.0,
                   help="open-loop arrival rate (req/s)")
    p.add_argument("--duration", type=float, default=2.0,
                   help="open-loop run length (s)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--client-timeout", type=float, default=30.0,
                   help="per-request client timeout (s)")
    p.add_argument("--retries", type=int, default=2,
                   help="max client retries on shed/503 (0 disables)")
    p.add_argument("--hedge", action="store_true",
                   help="arm the p95 hedged second attempt "
                        "(closed loop only)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="per-request deadline (relative ms)")
    p.add_argument("--fleet", action="store_true",
                   help="drive an InferenceFleet (implies --replicas 2 "
                        "unless --replicas says otherwise)")
    p.add_argument("--out", default=None,
                   help="write the LoadReport JSON here")

    p = sub.add_parser(
        "tune",
        help="autotune layer blocking; persist winners to a tuning DB",
    )
    p.add_argument("--layers", default="2,4,8,13,18",
                   help="comma-separated Table I layer ids (1-20), or "
                        "'all'")
    p.add_argument("--machine", default="SKX", choices=["SKX", "KNM"])
    p.add_argument("--dtype", default="f32", choices=["f32", "qi16f32"])
    p.add_argument("--minibatch", type=int, default=None,
                   help="Table I minibatch (default: 28 SKX / 70 KNM)")
    p.add_argument("--threads", type=int, default=1)
    p.add_argument("--top-k", type=int, default=8,
                   help="finalists refined empirically and validated")
    p.add_argument("--db", default="tune.json",
                   help="tuning-database artifact to create or extend")
    p.add_argument("--max-candidates", type=int, default=None,
                   help="truncate the mapspace enumeration (CI smoke)")
    p.add_argument("--no-refine", action="store_true",
                   help="skip the cachesim refinement of the finalists")
    p.add_argument("--no-validate", action="store_true",
                   help="skip bit-exact validation (winners are then NOT "
                        "recorded into the database)")

    p = sub.add_parser(
        "incident",
        help="list / inspect / diff / replay forensics incident bundles",
    )
    p.add_argument("action", choices=["list", "show", "replay", "diff"],
                   help="list a directory of bundles; show one bundle's "
                        "manifest; replay one bundle asserting bitwise "
                        "identity; diff two bundles field by field")
    p.add_argument("bundle", nargs="*",
                   help="bundle path(s): none for list (uses --dir), one "
                        "for show/replay, two for diff")
    p.add_argument("--dir", default="incidents",
                   help="incident directory scanned by 'list' "
                        "(default: ./incidents)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip digest verification in 'show' (inspect a "
                        "corrupt bundle; replay always verifies)")

    p = sub.add_parser("disasm", help="print one JIT'ed kernel's µops")
    p.add_argument("--layer", type=int, default=8, choices=range(1, 21),
                   metavar="TABLE1_ID")
    p.add_argument("--machine", default="SKX", choices=["SKX", "KNM"])
    p.add_argument("--dtype", default="f32", choices=["f32", "qi16f32"])
    p.add_argument("--max-lines", type=int, default=48)
    return ap


def _cmd_layers(args) -> int:
    from repro.perf.sweep import resnet50_forward_sweep, resnet50_pass_sweep
    from repro.types import DType

    dtype = DType(args.dtype)
    pass_ = _PASS[args.pass_]
    if pass_ is Pass.FWD:
        fig = resnet50_forward_sweep(
            args.machine, baselines=not args.no_baselines, dtype=dtype
        )
    else:
        fig = resnet50_pass_sweep(args.machine, pass_, dtype=dtype)
    print(fig.table())
    effs = fig.efficiency.get("thiswork")
    if effs:
        print("   % peak " + " ".join(f"{100 * e:7.1f}" for e in effs))
    return 0


def _cmd_fig(args) -> int:
    from repro.perf.sweep import (
        resnet50_forward_sweep,
        resnet50_lowprecision_sweep,
        resnet50_pass_sweep,
    )

    n = args.number
    if n == 4:
        print(resnet50_forward_sweep("SKX").table())
    elif n == 5:
        print(resnet50_pass_sweep("SKX", Pass.BWD).table())
        print(resnet50_pass_sweep("SKX", Pass.UPD).table())
    elif n == 6:
        print(resnet50_forward_sweep("KNM").table())
    elif n == 7:
        print(resnet50_pass_sweep("KNM", Pass.BWD).table())
        print(resnet50_pass_sweep("KNM", Pass.UPD).table())
    elif n == 8:
        for p in (Pass.FWD, Pass.BWD, Pass.UPD):
            print(resnet50_lowprecision_sweep(p).table())
    elif n == 9:
        return _cmd_scaling(argparse.Namespace(machine="KNM",
                                               topology="resnet50")) or \
            _cmd_scaling(argparse.Namespace(machine="SKX",
                                            topology="resnet50"))
    return 0


def _cmd_train(args) -> int:
    from repro.gxm.data import SyntheticImageDataset
    from repro.models.resnet50 import resnet_mini_topology
    from repro.types import ReproError

    if args.checkpoint_every and not args.checkpoint:
        raise ReproError("--checkpoint-every requires --checkpoint")
    topo = resnet_mini_topology(num_classes=8, width=16)
    per_node = args.batch // args.nodes
    ds = SyntheticImageDataset(n=512, num_classes=8, shape=(16, 16, 16),
                               seed=3)
    # periodic autosaves go to a sibling of the final weight dump so a
    # crashed run can be picked up with --resume
    autosave = (
        f"{args.checkpoint}.train" if args.checkpoint_every else None
    )
    if args.process_parallel:
        from repro.gxm.multiproc import ProcessParallelTrainer

        tr = ProcessParallelTrainer(
            topo,
            input_shape=(per_node, 16, 16, 16),
            nodes=args.nodes,
            lr=args.lr,
            allreduce=args.allreduce,
            nan_policy=args.nan_policy,
            checkpoint_path=autosave,
            checkpoint_every=args.checkpoint_every,
        )
        etg = tr.root
    else:
        from repro.gxm.etg import ExecutionTaskGraph
        from repro.gxm.trainer import Trainer

        etg = ExecutionTaskGraph(
            topo,
            input_shape=(per_node, 16, 16, 16)
            if args.engine == "blocked"
            else (args.batch, 16, 16, 16),
            engine=args.engine,
            seed=7,
        )
        tr = Trainer(
            etg,
            lr=args.lr,
            nodes=args.nodes,
            nan_policy=args.nan_policy,
            checkpoint_path=autosave,
            checkpoint_every=args.checkpoint_every,
        )
    try:
        done = tr.resume(args.resume) if args.resume else 0
        if done:
            print(f"resumed from {args.resume} at step {done}")
        steps_per_epoch = len(ds) // args.batch
        for epoch in range(args.epochs):
            if done >= steps_per_epoch * (epoch + 1):
                continue  # this epoch is fully inside the checkpoint
            # each fit call replays the same deterministic shuffle
            # stream, so skipping the first `done - epoch_start`
            # batches resumes mid-epoch exactly
            tr._resume_skip = max(0, done - steps_per_epoch * epoch)
            tr.fit(ds, batch_size=per_node, epochs=1)
            done = tr.iteration
            m = tr.metrics
            print(
                f"epoch {epoch}: loss {m.losses[-1]:.4f} "
                f"top-1 {100 * m.accuracies[-1]:.1f}%"
            )
    finally:
        if args.process_parallel:
            tr.close()
    if args.checkpoint:
        from repro.gxm.checkpoint import save_checkpoint

        save_checkpoint(etg, args.checkpoint)
        print(f"checkpoint written to {args.checkpoint}")
    return 0


def _cmd_scaling(args) -> int:
    from repro.gxm.e2e import fig9_scaling
    from repro.perf.references import PAPER_MEASURED

    pts = fig9_scaling(args.machine, args.topology)
    print(f"{args.topology} on {args.machine}:")
    for pt in pts:
        paper = PAPER_MEASURED.get((args.topology, args.machine, pt.nodes))
        ref = f"  (paper {paper:.0f})" if paper else ""
        print(
            f"  {pt.nodes:>2} nodes: {pt.imgs_per_s:7.0f} img/s, "
            f"eff {100 * pt.parallel_efficiency:5.1f}%{ref}"
        )
    return 0


def _cmd_profile(args) -> int:
    """Train a few steps with tracing on; dump chrome-trace + metrics."""
    import numpy as np

    from repro import obs
    from repro.gxm.etg import ExecutionTaskGraph
    from repro.gxm.profiler import TaskProfiler

    from repro.jit.compile import set_default_execution_tier

    tracer = obs.enable()
    set_default_execution_tier(args.execution_tier)
    if args.topology == "resnet_mini":
        from repro.models.resnet50 import resnet_mini_topology

        num_classes = 8
        # width=32 keeps every conv's C/K a multiple of VLEN=16 so the
        # blocked engines (JIT + dryrun + replay) can run the whole net
        topo = resnet_mini_topology(num_classes=num_classes, width=32)
        shape = (args.batch, 16, 16, 16)
    else:
        from repro.models.inception_v3 import inception_mini_topology

        num_classes = 8
        topo = inception_mini_topology(num_classes=num_classes, width=32)
        shape = (args.batch, 16, 12, 12)

    # engine setup (JIT codegen + dryrun spans) happens inside the trace
    etg = ExecutionTaskGraph(
        topo, shape, engine=args.engine, threads=args.threads, seed=7
    )
    prof = TaskProfiler(etg)
    rng = np.random.default_rng(0)
    for _ in range(max(1, args.steps)):
        x = rng.standard_normal(shape).astype(np.float32)
        y = rng.integers(0, num_classes, args.batch)
        prof.step(x, y)
    print(prof.last.report())
    n_events = obs.dump_chrome_trace(args.trace_out)
    report = obs.dump_flat_json(args.metrics_out)
    spans = ", ".join(sorted(report["spans"]))
    print(f"chrome trace: {args.trace_out} ({n_events} events)")
    print(f"metrics:      {args.metrics_out}")
    print(f"span kinds:   {spans}")
    return 0


def _serve_config_from_args(args):
    from repro.serve import ServeConfig

    return ServeConfig(
        model=args.model,
        width=args.width,
        engine=args.engine,
        execution_tier=args.execution_tier,
        buckets=tuple(int(b) for b in args.buckets.split(",")),
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        batch_window_ms=args.batch_window_ms,
        max_queue_wait_ms=args.max_queue_wait_ms,
        checkpoint=args.checkpoint,
        tune_db=args.tune_db,
    )


def _boot_serve_target(args, replicas: int):
    """Boot either one ``InferenceServer`` or an ``InferenceFleet``
    (``replicas > 1``), print the boot banner, return the target."""
    config = _serve_config_from_args(args)
    if replicas > 1:
        from repro.serve import InferenceFleet

        fleet = InferenceFleet(config, replicas=replicas)
        boot = fleet.start(streams_artifact=args.load_streams)
        warm = boot["warm_ms"]
        print(
            f"booted {boot['engine']} fleet: {boot['replicas']} replicas "
            f"in {boot['boot_s']:.3f}s (per-replica warm_ms "
            + ", ".join(f"r{i}={warm[i]:.0f}" for i in sorted(warm))
            + (", shared warm bundle "
               f"{boot['bundle_shared_bytes']} bytes"
               if boot["bundle_verified_once"] else "")
            + ")"
        )
        return fleet
    from repro.serve import InferenceServer

    server = InferenceServer(config)
    boot = server.start(streams_artifact=args.load_streams)
    print(
        f"booted {boot['engine']} engine in {boot['boot_s']:.3f}s "
        f"(warm buckets {boot['warm_buckets']}, "
        f"cold {boot['cold_buckets']})"
    )
    return server


def _cmd_serve(args) -> int:
    import time

    from repro.serve import serve_http

    server = _boot_serve_target(args, args.replicas)
    if args.save_streams:
        if args.replicas > 1:
            print("--save-streams needs a single server "
                  "(record once, then boot the fleet from the artifact)")
            server.stop()
            return 2
        n = server.save_streams_artifact(args.save_streams)
        print(f"warm-cache artifact: {args.save_streams} ({n} entries)")
    if args.boot_only:
        server.stop()
        return 0
    httpd = serve_http(server, host=args.host, port=args.port)
    host, port = httpd.server_address[:2]
    print(f"serving on http://{host}:{port} "
          f"(POST /predict, GET /metrics, GET /healthz, "
          f"POST /admin/drain|resume|reload)")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        httpd.shutdown()
        server.stop()
    return 0


def _cmd_loadgen(args) -> int:
    import json

    from repro.serve import ClientConfig, run_closed_loop, run_open_loop

    client_config = ClientConfig(
        timeout_s=args.client_timeout,
        max_retries=args.retries,
        hedge=args.hedge,
        seed=args.seed,
    )
    replicas = args.replicas
    if args.fleet and replicas < 2:
        replicas = 2
    server = _boot_serve_target(args, replicas)
    try:
        if args.mode == "closed":
            report = run_closed_loop(
                server, clients=args.clients, requests=args.requests,
                seed=args.seed, client_config=client_config,
                deadline_ms=args.deadline_ms,
            )
        else:
            report = run_open_loop(
                server, rate_rps=args.rate, duration_s=args.duration,
                seed=args.seed, client_config=client_config,
                deadline_ms=args.deadline_ms,
            )
    finally:
        server.stop()
    lat = report.latency_ms
    print(
        f"{report.mode}: {report.completed}/{report.requests} completed, "
        f"{report.shed} shed, {report.errors} errors, "
        f"{report.timeouts} timeouts, {report.deadline_exceeded} expired, "
        f"{report.retries} retries, {report.hedges} hedges, "
        f"{report.throughput_rps:.0f} req/s"
        + (f" across {report.replicas} replicas" if report.replicas > 1
           else "")
    )
    if report.router_stats:
        print("router: " + ", ".join(
            f"{k.removeprefix('serve.router.')}={int(v)}"
            for k, v in sorted(report.router_stats.items())
        ))
    if lat:
        print(
            f"latency ms: p50 {lat['p50']:.2f}  p95 {lat['p95']:.2f}  "
            f"p99 {lat['p99']:.2f}  mean {lat['mean']:.2f}"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"report written to {args.out}")
    return 0


def _cmd_tune(args) -> int:
    import os
    import time

    from repro.arch.machine import machine_by_name
    from repro.models.resnet50 import resnet50_layers
    from repro.tune import TuningDatabase, search_mapspace
    from repro.types import DType

    machine = machine_by_name(args.machine)
    dtype = DType(args.dtype)
    mb = args.minibatch or (70 if machine.name == "KNM" else 28)
    table = dict(resnet50_layers(mb))
    if args.layers.strip().lower() == "all":
        ids = sorted(table)
    else:
        ids = [int(t) for t in args.layers.split(",") if t.strip()]
    validate = not args.no_validate
    db: TuningDatabase
    if os.path.exists(args.db):
        db = TuningDatabase.load(args.db)
        print(f"extending {args.db} ({len(db)} entries)")
    else:
        db = TuningDatabase(args.db)
    print(
        f"machine {machine.name} (fingerprint {machine.fingerprint()}), "
        f"dtype {dtype.value}, minibatch {mb}"
    )
    print(f"{'layer':>5} {'shape':<26} {'points':>6} {'heur':>9} "
          f"{'tuned':>9} {'speedup':>8} {'rej':>4}  winner")
    for lid in ids:
        p = table[lid]
        t0 = time.perf_counter()
        out = search_mapspace(
            p, machine, dtype=dtype, threads=args.threads,
            top_k=args.top_k, refine=not args.no_refine,
            validate=validate, max_candidates=args.max_candidates,
        )
        dt = time.perf_counter() - t0
        if validate:
            db.record(p, machine, dtype, out.entry())
        shape = f"C{p.C} K{p.K} {p.H}x{p.W} {p.R}x{p.S}/{p.stride}"
        print(
            f"{lid:>5} {shape:<26} {out.candidates:>6} "
            f"{out.heuristic.cycles:>9.0f} {out.best.cycles:>9.0f} "
            f"{out.speedup:>7.3f}x {out.rejected:>4}  "
            f"{out.best.candidate.describe()}  [{dt:.1f}s]"
        )
    if validate:
        db.save()
        print(f"database: {args.db} ({len(db)} entries, "
              f"digest {db.digest()[:16]})")
    else:
        print("validation skipped: nothing recorded")
    return 0


def _cmd_incident(args) -> int:
    import json

    from repro.forensics import (
        ReplayMismatch,
        diff_incidents,
        list_incidents,
        load_incident,
        replay_incident,
    )
    from repro.types import ReproError

    def _paths(n: int) -> list[str]:
        if len(args.bundle) != n:
            raise ReproError(
                f"incident {args.action} takes exactly {n} bundle "
                f"path(s), got {len(args.bundle)}"
            )
        return args.bundle

    if args.action == "list":
        rows = list_incidents(args.dir)
        if not rows:
            print(f"no incident bundles under {args.dir}")
            return 0
        for r in rows:
            if not r["valid"]:
                print(f"BAD {r['name']}  {r['error']}")
                continue
            err = (f"{r['error']}: {r['message']}" if r["error"]
                   else "(manual dump)")
            print(f"ok  {r['name']}  kind={r['kind']}  {err}  "
                  f"tensors={','.join(r['tensors']) or '-'}")
        return 0

    if args.action == "show":
        (path,) = _paths(1)
        doc = load_incident(path, verify=not args.no_verify)
        m = dict(doc["manifest"])
        m["events"] = {k: len(v) for k, v in doc["events"].items()}
        m["tensor_shapes"] = {
            k: list(v.shape) for k, v in sorted(doc["tensors"].items())
        }
        print(json.dumps(m, indent=2, sort_keys=True))
        return 0

    if args.action == "diff":
        a, b = _paths(2)
        rep = diff_incidents(a, b)
        print(json.dumps(rep, indent=2, sort_keys=True))
        return 0 if rep["same"] else 1

    (path,) = _paths(1)
    try:
        rep = replay_incident(path)
    except ReplayMismatch as err:
        print(f"REPLAY MISMATCH: {err}")
        return 1
    print(json.dumps(rep, indent=2, sort_keys=True))
    return 0


def _cmd_disasm(args) -> int:
    from repro.arch.disasm import disassemble, summarize_program
    from repro.arch.machine import machine_by_name
    from repro.models.resnet50 import resnet50_layer
    from repro.perf.model import ConvPerfModel
    from repro.types import DType

    m = machine_by_name(args.machine)
    model = ConvPerfModel(m)
    dtype = DType(args.dtype)
    p = resnet50_layer(args.layer, 70 if m.name == "KNM" else 28)
    plan = model._plan(p, dtype, "thiswork")
    desc = model._fwd_desc(p, plan, dtype, "thiswork")
    from repro.jit.codegen import generate_conv_kernel

    prog = generate_conv_kernel(desc)
    print(summarize_program(prog))
    print(disassemble(prog, max_lines=args.max_lines))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return {
        "layers": _cmd_layers,
        "fig": _cmd_fig,
        "train": _cmd_train,
        "scaling": _cmd_scaling,
        "disasm": _cmd_disasm,
        "profile": _cmd_profile,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
        "tune": _cmd_tune,
        "incident": _cmd_incident,
    }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
