"""BlockedTensor: a flat buffer plus a blocked layout.

The convolution engines and the µop interpreter both address tensors as flat
1-D arrays with layout-derived offsets (exactly how the JIT'ed kernels see
memory).  ``view()`` exposes the natural multi-dimensional numpy view for the
blocked engines' inner contractions, and ``to_nchw``/``to_kcrs`` convert back
to the logical order for validation against reference code.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor.layout import ActivationLayout, WeightLayout
from repro.types import ShapeError

__all__ = ["BlockedTensor", "block_activations", "block_weights"]


@dataclass(slots=True)
class BlockedTensor:
    """Flat storage + layout.  ``data`` always has ``layout.size`` elements."""

    data: np.ndarray
    layout: ActivationLayout | WeightLayout
    pad_h: int = 0  # physical padding baked into layout.h/w (activations)
    pad_w: int = 0

    def __post_init__(self) -> None:
        self.data = np.ascontiguousarray(self.data).reshape(-1)
        if self.data.size != self.layout.size:
            raise ShapeError(
                f"buffer has {self.data.size} elements, layout needs "
                f"{self.layout.size}"
            )

    # ---- views ---------------------------------------------------------
    def view(self) -> np.ndarray:
        """The blocked multi-dimensional view (no copy)."""
        return self.data.reshape(self.layout.shape)

    @property
    def is_activation(self) -> bool:
        return isinstance(self.layout, ActivationLayout)

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def copy(self) -> "BlockedTensor":
        return BlockedTensor(self.data.copy(), self.layout, self.pad_h, self.pad_w)

    def zero_(self) -> None:
        self.data[:] = 0

    # ---- conversions -----------------------------------------------------
    def to_nchw(self) -> np.ndarray:
        """Logical ``(N, C, H, W)`` array *without* the physical padding."""
        if not self.is_activation:
            raise ShapeError("to_nchw on a weight tensor; use to_kcrs")
        lay = self.layout
        v = self.view()  # (n, cb, h, w, c)
        full = v.transpose(0, 1, 4, 2, 3).reshape(lay.n, lay.c, lay.h, lay.w)
        ph, pw = self.pad_h, self.pad_w
        if ph or pw:
            full = full[:, :, ph : lay.h - ph, pw : lay.w - pw]
        return np.ascontiguousarray(full)

    def to_kcrs(self) -> np.ndarray:
        """Logical ``(K, C, R, S)`` weight array."""
        if self.is_activation:
            raise ShapeError("to_kcrs on an activation tensor; use to_nchw")
        lay = self.layout
        v = self.view()  # (kb, cb, r, s, c, k)
        # -> (kb, k, cb, c, r, s)
        out = v.transpose(0, 5, 1, 4, 2, 3).reshape(lay.k, lay.c, lay.r, lay.s)
        return np.ascontiguousarray(out)


def block_activations(
    x: np.ndarray, vlen: int, pad_h: int = 0, pad_w: int = 0, dtype=None
) -> BlockedTensor:
    """Block a logical ``(N, C, H, W)`` array into NCHWc layout.

    ``pad_h``/``pad_w`` add *physical* zero padding around the spatial dims,
    the form the direct kernels consume (padding is materialized once at
    layer setup, like LIBXSMM's padded-copy code path).
    """
    if x.ndim != 4:
        raise ShapeError(f"expected (N, C, H, W), got shape {x.shape}")
    n, c, h, w = x.shape
    if c % vlen:
        raise ShapeError(f"C={c} not divisible by VLEN={vlen}")
    dtype = dtype or x.dtype
    lay = ActivationLayout(n=n, c=c, h=h + 2 * pad_h, w=w + 2 * pad_w, vlen=vlen)
    buf = np.zeros(lay.shape, dtype=dtype)
    # (n, c, h, w) -> (n, cb, vlen, h, w) -> (n, cb, h, w, vlen)
    src = x.reshape(n, c // vlen, vlen, h, w).transpose(0, 1, 3, 4, 2)
    buf[:, :, pad_h : pad_h + h, pad_w : pad_w + w, :] = src
    return BlockedTensor(buf, lay, pad_h=pad_h, pad_w=pad_w)


def block_weights(w: np.ndarray, vlen: int, dtype=None) -> BlockedTensor:
    """Block a logical ``(K, C, R, S)`` array into KCRSck layout."""
    if w.ndim != 4:
        raise ShapeError(f"expected (K, C, R, S), got shape {w.shape}")
    k, c, r, s = w.shape
    if k % vlen or c % vlen:
        raise ShapeError(f"K={k} or C={c} not divisible by VLEN={vlen}")
    dtype = dtype or w.dtype
    lay = WeightLayout(k=k, c=c, r=r, s=s, vlen=vlen)
    # (k, c, r, s) -> (kb, vk, cb, vc, r, s) -> (kb, cb, r, s, vc, vk)
    src = (
        w.reshape(k // vlen, vlen, c // vlen, vlen, r, s)
        .transpose(0, 2, 4, 5, 3, 1)
    )
    buf = np.ascontiguousarray(src, dtype=dtype)
    return BlockedTensor(buf, lay)
