"""Layout descriptors: dimension order and element strides.

A layout maps logical coordinates to element offsets in a flat buffer.  The
JIT bakes these strides into generated µop offsets, and the kernel-streams
dryrun (section II-H) records offsets computed through these descriptors --
so they are the single source of truth for addressing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import ShapeError

__all__ = ["ActivationLayout", "WeightLayout"]


def _check_divisible(value: int, block: int, what: str) -> None:
    if value % block != 0:
        raise ShapeError(
            f"{what}={value} is not divisible by the vector block {block}; "
            "pad the feature maps to a multiple of VLEN first"
        )


@dataclass(frozen=True, slots=True)
class ActivationLayout:
    """``[N][C/VLEN][H][W][VLEN]`` activation layout (section II-B).

    ``h``/``w`` are the *stored* spatial extents (they include any physical
    padding the convolution requires).
    """

    n: int
    c: int
    h: int
    w: int
    vlen: int

    def __post_init__(self) -> None:
        _check_divisible(self.c, self.vlen, "C")
        if min(self.n, self.c, self.h, self.w, self.vlen) <= 0:
            raise ShapeError(f"non-positive activation dims: {self}")

    @property
    def cb(self) -> int:
        return self.c // self.vlen

    @property
    def shape(self) -> tuple[int, int, int, int, int]:
        return (self.n, self.cb, self.h, self.w, self.vlen)

    @property
    def size(self) -> int:
        return self.n * self.c * self.h * self.w

    @property
    def strides(self) -> tuple[int, int, int, int, int]:
        """Element strides for (n, cb, h, w, c)."""
        s_c = 1
        s_w = self.vlen
        s_h = self.w * s_w
        s_cb = self.h * s_h
        s_n = self.cb * s_cb
        return (s_n, s_cb, s_h, s_w, s_c)

    def offset(self, n: int, cb: int, h: int, w: int, c: int = 0) -> int:
        sn, scb, sh, sw, sc = self.strides
        return n * sn + cb * scb + h * sh + w * sw + c * sc


@dataclass(frozen=True, slots=True)
class WeightLayout:
    """``[K/VLEN][C/VLEN][R][S][VLEN_c][VLEN_k]`` weight layout (II-B).

    The innermost ``k`` index is the output-channel vector the FMA writes;
    the ``c`` index above it is the GEMM reduction dimension.
    """

    k: int
    c: int
    r: int
    s: int
    vlen: int

    def __post_init__(self) -> None:
        _check_divisible(self.k, self.vlen, "K")
        _check_divisible(self.c, self.vlen, "C")
        if min(self.k, self.c, self.r, self.s, self.vlen) <= 0:
            raise ShapeError(f"non-positive weight dims: {self}")

    @property
    def kb(self) -> int:
        return self.k // self.vlen

    @property
    def cb(self) -> int:
        return self.c // self.vlen

    @property
    def shape(self) -> tuple[int, int, int, int, int, int]:
        return (self.kb, self.cb, self.r, self.s, self.vlen, self.vlen)

    @property
    def size(self) -> int:
        return self.k * self.c * self.r * self.s

    @property
    def strides(self) -> tuple[int, int, int, int, int, int]:
        """Element strides for (kb, cb, r, s, c, k)."""
        s_k = 1
        s_c = self.vlen
        s_s = self.vlen * self.vlen
        s_r = self.s * s_s
        s_cb = self.r * s_r
        s_kb = self.cb * s_cb
        return (s_kb, s_cb, s_r, s_s, s_c, s_k)

    def offset(self, kb: int, cb: int, r: int, s: int, c: int = 0, k: int = 0) -> int:
        skb, scb, sr, ss, sc, sk = self.strides
        return kb * skb + cb * scb + r * sr + s * ss + c * sc + k * sk
