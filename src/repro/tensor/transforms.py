"""Weight-tensor transforms.

Two transforms from the paper:

* :func:`bwd_weight_transform` -- the section II-I duality transform
  ``W'[c][k][-r][-s] = W[k][c][r][s]``: swap the feature-map dimensions and
  flip the spatial ones, so the *forward* kernel computes the input gradient.
* :func:`vnni_pack_weights` -- the KNM 4VNNIW pairing (section II-K): the
  reduction dimension ``c`` is split into pairs so one VVNNI op consumes two
  int16 channels per lane, accumulating into int32.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.blocked import BlockedTensor
from repro.tensor.layout import WeightLayout
from repro.types import ShapeError

__all__ = ["bwd_weight_transform", "vnni_pack_weights", "vnni_unpack_weights"]


def bwd_weight_transform(w: BlockedTensor) -> BlockedTensor:
    """Duality transform of a blocked weight tensor (section II-I).

    Input layout ``(kb, cb, r, s, c, k)``; output layout ``(cb, kb, R-1-r,
    S-1-s, k, c)`` -- i.e. a weight tensor whose "output" feature maps are the
    original *input* maps, ready to be convolved with ``dO`` by the forward
    kernel.
    """
    lay = w.layout
    if not isinstance(lay, WeightLayout):
        raise ShapeError("bwd_weight_transform expects a weight tensor")
    v = w.view()  # (kb, cb, r, s, c, k)
    t = v[:, :, ::-1, ::-1, :, :].transpose(1, 0, 2, 3, 5, 4)
    new_lay = WeightLayout(k=lay.c, c=lay.k, r=lay.r, s=lay.s, vlen=lay.vlen)
    return BlockedTensor(np.ascontiguousarray(t), new_lay)


def vnni_pack_weights(w: BlockedTensor) -> np.ndarray:
    """Pack blocked int16 weights into VNNI pair layout.

    ``(kb, cb, r, s, c, k)`` -> ``(kb, cb, r, s, c/2, k, 2)``: adjacent
    reduction channels are interleaved per output lane so a single VVNNI
    instruction multiplies int16 pairs and accumulates int32.
    """
    lay = w.layout
    if not isinstance(lay, WeightLayout):
        raise ShapeError("vnni_pack_weights expects a weight tensor")
    if lay.vlen % 2:
        raise ShapeError("VNNI pairing needs an even VLEN")
    v = w.view()
    kb, cb, r, s, c, k = v.shape
    packed = v.reshape(kb, cb, r, s, c // 2, 2, k).transpose(0, 1, 2, 3, 4, 6, 5)
    return np.ascontiguousarray(packed)


def vnni_unpack_weights(packed: np.ndarray, layout: WeightLayout) -> BlockedTensor:
    """Inverse of :func:`vnni_pack_weights`."""
    kb, cb, r, s, c2, k, two = packed.shape
    if two != 2 or c2 * 2 != layout.vlen:
        raise ShapeError(f"not a VNNI-packed tensor: shape {packed.shape}")
    v = packed.transpose(0, 1, 2, 3, 4, 6, 5).reshape(layout.shape)
    return BlockedTensor(np.ascontiguousarray(v), layout)
