"""Blocked tensor layouts (section II-B).

The paper lays activations out as ``[N][C/VLEN][H][W][VLEN]`` and weights as
``[K/VLEN][C/VLEN][R][S][VLEN_c][VLEN_k]`` so that the innermost, fast-running
dimension is the vectorized feature-map block.  :class:`BlockedTensor` wraps a
flat numpy buffer with one of these layouts and converts to/from the logical
NCHW / KCRS views used by reference code and by GxM's non-conv layers.
"""

from repro.tensor.layout import ActivationLayout, WeightLayout
from repro.tensor.blocked import BlockedTensor, block_activations, block_weights
from repro.tensor.transforms import (
    bwd_weight_transform,
    vnni_pack_weights,
    vnni_unpack_weights,
)

__all__ = [
    "ActivationLayout",
    "WeightLayout",
    "BlockedTensor",
    "block_activations",
    "block_weights",
    "bwd_weight_transform",
    "vnni_pack_weights",
    "vnni_unpack_weights",
]
