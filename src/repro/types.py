"""Common value types shared across the library.

The paper operates on fp32 tensors throughout, with an int16->int32
reduced-precision path on Knights Mill (section II-K).  ``DType`` names the
numeric formats a kernel can be generated for; everything downstream (layouts,
codegen, the timing model) keys off these values.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = [
    "DType",
    "Pass",
    "ReproError",
    "ShapeError",
    "CodegenError",
    "UnsupportedError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class ShapeError(ReproError):
    """A tensor/convolution shape is invalid or incompatible."""


class CodegenError(ReproError):
    """The JIT code generator was asked for an impossible kernel."""


class UnsupportedError(ReproError):
    """A valid request that this implementation does not cover."""


class DType(enum.Enum):
    """Numeric formats supported by the kernel generators.

    ``F32``    -- IEEE single precision (the paper's default).
    ``QI16F32``-- quantized int16 inputs/weights with int32 accumulation and
                  fp32 output, modelling KNM's 4VNNIW path (section II-K).
    """

    F32 = "f32"
    QI16F32 = "qi16f32"

    @property
    def input_itemsize(self) -> int:
        """Bytes per input/weight element."""
        return 4 if self is DType.F32 else 2

    @property
    def output_itemsize(self) -> int:
        """Bytes per output element (always 32-bit, per section II-K)."""
        return 4

    @property
    def np_input(self) -> np.dtype:
        return np.dtype(np.float32) if self is DType.F32 else np.dtype(np.int16)

    @property
    def np_accum(self) -> np.dtype:
        return np.dtype(np.float32) if self is DType.F32 else np.dtype(np.int32)


class Pass(enum.Enum):
    """The three propagation passes of CNN training (sections II-A/I/J)."""

    FWD = "forward"
    BWD = "backward"
    UPD = "update"
