"""Deterministic, seeded fault injection.

Long-running modes of the system (process-parallel training, serving)
must treat faults as a first-class, *tested* scenario.  The pieces:

* :class:`FaultSpec` -- one fault: *what* (``kind``), *where* (a named
  ``site``), *when* (``step``/``rank`` filters, an optional seeded
  ``probability``) and *how often* (``count``).
* :class:`FaultPlan` -- a picklable set of specs plus the RNG seed, so
  worker **processes** rebuild bit-identical injectors from the plan.
* :class:`FaultInjector` -- the runtime hook.  Call sites ask
  ``injector.fire(site, step=..., rank=...)``; a returned spec means
  "this fault fires here, now".  The injector is cheap when no plan is
  armed (a single ``None`` check at each site) and thread-safe on the
  root side.

Named sites wired into the library (callers may add their own):

======================  ====================================================
site                    kinds honoured there
======================  ====================================================
``mp.worker.step``      ``crash`` (``os._exit``), ``hang`` (sleep until the
                        root's timeout kills the process), ``nan_grad``
                        (poisons one gradient tensor), ``corrupt_message``
                        (malformed reply tuple)
``trainer.grads``       ``nan_grad`` on the in-process :class:`Trainer`
``serve.worker.crash``  ``crash`` -- the serving worker thread dies after
                        completing its current batch (the supervisor
                        restarts it)
``serve.replica.run``   ``tier_fail`` -- the compiled execution tier fails
                        once, forcing degrade-to-``interpret``
``serve.worker.slow``   ``slow`` -- the serving worker stalls ``delay_s``
                        seconds before running its batch (drives request
                        deadlines past expiry deterministically)
``serve.reload.canary_fail``  ``canary_fail`` -- the shadow replica's canary
                        batch is rejected during
                        :meth:`~repro.serve.server.InferenceServer
                        .reload_checkpoint`, forcing a rollback
``mp.worker.step``      additionally ``slow`` -- the training worker sleeps
                        ``delay_s`` before computing its shard (latency,
                        not death: the root's timeout must NOT reap it)
``fleet.replica.predict``  ``crash`` (``os._exit`` of one fleet replica
                        process mid-request: the router reroutes, the
                        supervisor respawns) and ``hang`` (the replica's
                        control loop sleeps ``delay_s``; health polls go
                        unanswered until the fleet SIGKILLs it)
``fleet.replica.reply``  ``corrupt_message`` -- the replica scribbles the
                        shared-memory slot's generation header before
                        replying, so the parent must refuse the payload
                        (``SlotCorruption``) without touching any other
                        request's answer
``tune.candidate``      ``corrupt_message`` -- the autotuner's compiled
                        probe output is scribbled before the bit-exact
                        comparison; the validator must reject the
                        candidate (it never enters the tuning database)
                        and the search continues with the next finalist
``collective.hop``      ``crash`` / ``hang`` / ``corrupt_message`` /
                        ``slow`` inside the peer-to-peer all-reduce
                        (:mod:`repro.collective`), filtered by ``rank``
                        **and** ``bucket`` -- the fault fires just
                        before the chosen rank forwards the chosen
                        gradient bucket, so any ring/tree position x
                        early/late-bucket combination is reachable
``mp.worker.reply``     ``crash`` -- the training worker exits
                        immediately *after* its reply is queued on the
                        pipe (the replied-then-died race the root's
                        drain loop must tolerate)
``checkpoint.save``     ``crash`` -- the checkpoint writer dies between
                        the tmp-sibling write and the ``os.replace``
                        (the torn-write window); the last good
                        checkpoint under the final name must survive
                        untouched
======================  ====================================================

Injected faults count into ``resilience.faults_injected`` and every
firing is recorded into the process's
:class:`~repro.forensics.FlightRecorder` ring (``fault.fire`` events),
so an incident bundle shows exactly which injected faults preceded the
failure.
:func:`corrupt_file` deterministically flips bytes of an on-disk
artifact -- the "artifact corruption" fault for checkpoint/stream tests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.forensics.recorder import get_recorder
from repro.obs.metrics import get_metrics
from repro.types import ReproError

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "WorkerFailure",
    "corrupt_file",
]

_KINDS = (
    "crash",
    "hang",
    "nan_grad",
    "corrupt_message",
    "tier_fail",
    "slow",
    "canary_fail",
)


class InjectedFault(ReproError):
    """Raised by a call site to *act out* an injected fault (e.g. a
    serving worker thread terminating itself)."""


class WorkerFailure(ReproError):
    """A training worker process failed (died, hung past the timeout,
    or returned a corrupt message).  Typed so the root can catch it per
    rank and degrade instead of deadlocking."""

    def __init__(self, rank: int, reason: str):
        super().__init__(f"worker {rank}: {reason}")
        self.rank = rank
        self.reason = reason


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``site`` names the hook; ``kind`` what happens there.  ``step`` and
    ``rank`` (``None`` = any) narrow when/where it fires; ``count``
    bounds how many times; ``probability`` < 1 draws from the plan's
    seeded RNG, so stochastic campaigns stay reproducible.  ``param``
    selects which tensor a ``nan_grad`` poisons; ``delay_s`` how long a
    ``slow`` fault stalls its call site; ``bucket`` (``None`` = any)
    narrows collective-site faults to one gradient bucket.
    """

    site: str
    kind: str
    step: int | None = None
    rank: int | None = None
    count: int = 1
    probability: float = 1.0
    param: int = 0
    delay_s: float = 0.05
    bucket: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.count < 1:
            raise ReproError("fault count must be >= 1")
        if not 0.0 < self.probability <= 1.0:
            raise ReproError("fault probability must be in (0, 1]")
        if self.delay_s < 0:
            raise ReproError("fault delay_s must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A picklable fault campaign: specs + the seed every injector built
    from this plan uses, so root and workers draw identical sequences."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))


class FaultInjector:
    """Runtime fault hook built from a :class:`FaultPlan`.

    ``fire`` returns the matching :class:`FaultSpec` (decrementing its
    remaining count) or ``None``.  With no plan armed the injector is a
    no-op costing one attribute check per site.
    """

    def __init__(self, plan: FaultPlan | None = None, metrics=None):
        self.plan = plan
        self._metrics = metrics if metrics is not None else get_metrics()
        self._lock = threading.Lock()
        self._remaining = (
            [spec.count for spec in plan.specs] if plan else []
        )
        self._rng = np.random.default_rng(plan.seed if plan else 0)

    @property
    def enabled(self) -> bool:
        return self.plan is not None and any(
            n > 0 for n in self._remaining
        )

    def fire(
        self,
        site: str,
        *,
        step: int | None = None,
        rank: int | None = None,
        bucket: int | None = None,
    ) -> FaultSpec | None:
        """The matching armed fault for this (site, step, rank, bucket)."""
        if self.plan is None:
            return None
        with self._lock:
            for i, spec in enumerate(self.plan.specs):
                if self._remaining[i] <= 0 or spec.site != site:
                    continue
                if spec.step is not None and step != spec.step:
                    continue
                if spec.rank is not None and rank != spec.rank:
                    continue
                if spec.bucket is not None and bucket != spec.bucket:
                    continue
                if spec.probability < 1.0 and (
                    self._rng.random() >= spec.probability
                ):
                    continue
                self._remaining[i] -= 1
                self._metrics.inc("resilience.faults_injected")
                rec = get_recorder()
                if rec.enabled:
                    rec.record(
                        "fault.fire", site=site, kind=spec.kind,
                        step=step, rank=rank, bucket=bucket,
                    )
                return spec
        return None

    # -- picklability: the lock stays root-side; a worker process
    # rebuilds its own injector from the (picklable) plan ------------
    def __reduce__(self):
        return (FaultInjector, (self.plan,))


def corrupt_file(path: str, n_bytes: int = 64, seed: int = 0) -> int:
    """Deterministically flip up to ``n_bytes`` bytes in the middle of
    ``path`` (the artifact-corruption fault).  Returns how many bytes
    were flipped."""
    rng = np.random.default_rng(seed)
    with open(path, "r+b") as fh:
        fh.seek(0, 2)
        size = fh.tell()
        if size == 0:
            return 0
        n = min(n_bytes, size)
        # flip a contiguous run in the middle: headers often survive,
        # which is exactly the nasty case (parseable but wrong)
        start = max(0, size // 2 - n // 2)
        fh.seek(start)
        blob = bytearray(fh.read(n))
        for i in range(len(blob)):
            blob[i] ^= int(rng.integers(1, 256))
        fh.seek(start)
        fh.write(bytes(blob))
    return n
