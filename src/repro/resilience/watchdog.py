"""NaN/Inf numerics watchdog for training loops.

Built on :mod:`repro.validation`'s non-finite accounting: the watchdog
scans gradient sets before the SGD step, attributes any divergence to
the node (worker rank or ``"local"``) and tensor that produced it, and
applies a policy:

* ``"raise"`` -- abort with :class:`DivergenceError` naming the node
  (training numerics are corrupt; continuing would poison the weights).
* ``"skip"``  -- drop the whole step (weights untouched), count it in
  ``resilience.skipped_steps``, and keep training.
* ``"off"``   -- no checking (the pre-watchdog behaviour).
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import get_metrics
from repro.types import ReproError
from repro.validation import ValidationError, nonfinite_report

__all__ = ["DivergenceError", "NumericsWatchdog", "POLICIES"]

POLICIES = ("raise", "skip", "off")


class DivergenceError(ValidationError):
    """Training numerics diverged (NaN/Inf gradients), attributed to a
    node."""

    def __init__(self, node: str, detail: str):
        super().__init__(f"non-finite gradients from node {node}: {detail}")
        self.node = node
        self.detail = detail


class NumericsWatchdog:
    """Pre-step gradient screen with per-node attribution."""

    def __init__(self, policy: str = "raise", metrics=None):
        if policy not in POLICIES:
            raise ReproError(
                f"unknown watchdog policy {policy!r}; expected {POLICIES}"
            )
        self.policy = policy
        self._metrics = metrics if metrics is not None else get_metrics()
        #: ``(step, node, detail)`` for every divergence observed
        self.incidents: list[tuple[int | None, str, str]] = []

    @property
    def enabled(self) -> bool:
        return self.policy != "off"

    def check(
        self,
        grads: list[np.ndarray],
        node: str = "local",
        step: int | None = None,
    ) -> bool:
        """``True`` iff every gradient is finite.

        On divergence: records the incident, bumps
        ``resilience.nan_grads_detected``, then raises
        (policy ``"raise"``) or returns ``False`` (policy ``"skip"`` --
        the caller must drop the step and count it via
        :meth:`skipped`)."""
        if self.policy == "off":
            return True
        bad = nonfinite_report(grads)
        if not bad:
            return True
        detail = ", ".join(
            f"param[{i}]: {n_nan} NaN / {n_inf} Inf" for i, n_nan, n_inf in bad
        )
        self.incidents.append((step, node, detail))
        self._metrics.inc("resilience.nan_grads_detected")
        if self.policy == "raise":
            raise DivergenceError(node, detail)
        return False

    def skipped(self) -> None:
        """Record that the caller dropped one step on this watchdog's
        verdict."""
        self._metrics.inc("resilience.skipped_steps")
