"""repro.resilience -- deterministic fault injection + fault survival.

The paper's value proposition is *sustained* throughput on long-running
workloads: multi-node data-parallel training (section II-L) and dumped
weights "used for inference tasks afterwards".  This package makes the
faults such runs meet first-class and testable:

* :class:`FaultPlan` / :class:`FaultInjector` (:mod:`.faults`) --
  seeded, deterministic injection of worker crashes, hangs, corrupt
  messages, NaN gradients and corrupt artifacts at named sites.
* :class:`NumericsWatchdog` (:mod:`.watchdog`) -- pre-step NaN/Inf
  gradient screen with per-node attribution and a skip-step-or-raise
  policy.
* Typed failures -- :class:`WorkerFailure` (a training worker died,
  hung, or replied garbage), :class:`DivergenceError` (numerics),
  :class:`InjectedFault` (a fault acting itself out),
  and :class:`~repro.streams.serialize.StaleArtifactError` for
  corrupt/stale on-disk artifacts.

The systems wired to survive these faults:

* :class:`~repro.gxm.multiproc.ProcessParallelTrainer` -- timeout-guarded
  pipes, dead-worker detection, per-step degradation (recompute lost
  shards at the root for bit-identical numerics, or rescale over the
  survivors), bounded respawn with implicit weight re-broadcast.
* :mod:`repro.collective` -- the overlapped ring/tree all-reduce those
  workers run: CRC'd epoch-stamped hops rejected with typed
  :class:`~repro.collective.CollectiveError`\\ s, hop-level fault
  injection (site ``collective.hop``, targetable per rank *and*
  bucket), and ring repair that completes a step degraded -- still
  bit-identical under ``recompute`` -- when a worker is lost
  mid-collective.
* :class:`~repro.gxm.trainer.Trainer` / ``ProcessParallelTrainer`` --
  atomic :func:`~repro.gxm.checkpoint.save_training_checkpoint`
  autosave (weights + SGD velocity + step + metrics) and exact-to-the-
  step ``resume()``.
* :class:`~repro.serve.server.InferenceServer` -- worker supervisor
  (crashed replica threads restarted with backoff), degrade-to-
  ``interpret`` on compiled-tier failure, cold-dryrun fallback on a
  stale/corrupt warm-cache artifact, and a ``/healthz`` readiness
  payload reporting live workers and degraded state.

Observability (:mod:`repro.obs` counters): ``resilience.faults_injected``,
``resilience.respawns``, ``resilience.degraded_steps``,
``resilience.skipped_steps``, ``resilience.nan_grads_detected``,
``serve.worker_restarts``, ``serve.tier_degraded``,
``serve.artifact_rejected``.
"""

from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    WorkerFailure,
    corrupt_file,
)
from repro.resilience.watchdog import DivergenceError, NumericsWatchdog

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "WorkerFailure",
    "DivergenceError",
    "NumericsWatchdog",
    "corrupt_file",
]
