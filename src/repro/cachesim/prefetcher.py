"""Hardware prefetchers for the cache simulator.

Real Xeons ship L2 stream prefetchers that hide much of what software
prefetch also targets; modeling one lets the prefetch ablation distinguish
"no prefetch at all" from "hardware-only" from "hardware + the paper's
two-level software scheme" (section II-E).

:class:`NextLinePrefetcher` is the classic adjacent-line scheme;
:class:`StridePrefetcher` tracks per-region strides (activations are
accessed with the layout's row stride) and issues ``degree`` fills ahead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cachesim.cache import Cache

__all__ = ["NextLinePrefetcher", "StridePrefetcher"]


class NextLinePrefetcher:
    """On each demand miss, fill line+1 (into the given cache)."""

    def __init__(self, cache: Cache):
        self.cache = cache
        self.issued = 0

    def on_access(self, line_addr: int, was_hit: bool) -> None:
        if not was_hit:
            self.cache.access(line_addr + 1, prefetch=True)
            self.issued += 1


@dataclass
class _StreamState:
    last_line: int = -1
    stride: int = 0
    confidence: int = 0


class StridePrefetcher:
    """Per-region stride detector with configurable depth.

    ``region_bits`` buckets addresses into streams (one per tensor region
    in :class:`~repro.cachesim.hierarchy.CacheHierarchy`'s address map);
    after two consistent deltas it prefetches ``degree`` lines ahead on
    every access of the stream.
    """

    def __init__(self, cache: Cache, degree: int = 2, region_bits: int = 24):
        self.cache = cache
        self.degree = degree
        self.region_bits = region_bits
        self.streams: dict[int, _StreamState] = {}
        self.issued = 0

    def on_access(self, line_addr: int, was_hit: bool) -> None:
        region = line_addr >> self.region_bits
        st = self.streams.setdefault(region, _StreamState())
        if st.last_line >= 0:
            delta = line_addr - st.last_line
            if delta != 0:
                if delta == st.stride:
                    st.confidence = min(st.confidence + 1, 4)
                else:
                    st.stride = delta
                    st.confidence = 0
        st.last_line = line_addr
        if st.confidence >= 2 and st.stride != 0:
            for k in range(1, self.degree + 1):
                self.cache.access(line_addr + k * st.stride, prefetch=True)
                self.issued += 1
