"""Cache hierarchy simulator.

A set-associative, write-back/write-allocate cache model used to *validate*
the analytic traffic estimates in :mod:`repro.perf.traffic` on microkernel
access traces (full ResNet-50 layers would take days to simulate per element
in Python; see DESIGN.md).  Software prefetches from the generated kernels
are honored: a prefetched line arrives before the demand access, so its miss
latency is hidden -- exactly the effect section II-E claims.
"""

from repro.cachesim.cache import Cache, CacheStats
from repro.cachesim.hierarchy import CacheHierarchy, LevelTraffic

__all__ = ["Cache", "CacheStats", "CacheHierarchy", "LevelTraffic"]
