"""One set-associative cache level."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Cache", "CacheStats"]


@dataclass
class CacheStats:
    """Hit/miss/traffic counters for one cache level."""

    hits: int = 0
    misses: int = 0
    prefetch_fills: int = 0
    prefetched_hits: int = 0  # demand hits on lines brought in by prefetch
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        a = self.accesses
        return self.misses / a if a else 0.0

    @property
    def fill_bytes(self) -> int:
        """Bytes fetched from the next level (demand misses only)."""
        return self.misses

    def reset(self) -> None:
        self.hits = self.misses = 0
        self.prefetch_fills = self.prefetched_hits = self.writebacks = 0


class Cache:
    """Set-associative, LRU, write-back/write-allocate cache.

    Tracks, per line, whether it was filled by a prefetch so that demand
    hits on prefetched lines can be reported separately (the quantity the
    two-level prefetch strategy of section II-E optimizes).
    """

    def __init__(
        self, size_bytes: int, assoc: int, line_bytes: int = 64, name: str = ""
    ) -> None:
        if size_bytes % (assoc * line_bytes):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by assoc*line"
            )
        self.name = name or f"cache{size_bytes}"
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.n_sets = size_bytes // (assoc * line_bytes)
        # per set: {tag: (lru_counter, dirty, prefetched)}
        self._sets: list[dict[int, list]] = [dict() for _ in range(self.n_sets)]
        self._clock = 0
        self.stats = CacheStats()

    def _locate(self, line_addr: int) -> tuple[dict, int]:
        return self._sets[line_addr % self.n_sets], line_addr // self.n_sets

    def lookup(self, line_addr: int) -> bool:
        """Probe without filling; updates LRU on hit."""
        s, tag = self._locate(line_addr)
        entry = s.get(tag)
        if entry is None:
            return False
        self._clock += 1
        entry[0] = self._clock
        return True

    def access(
        self, line_addr: int, write: bool = False, prefetch: bool = False
    ) -> bool:
        """Access one line; returns True on hit.  Misses fill the line
        (write-allocate), evicting LRU.  Prefetch accesses fill but do not
        count as demand hits/misses."""
        s, tag = self._locate(line_addr)
        self._clock += 1
        entry = s.get(tag)
        if entry is not None:
            if not prefetch:
                self.stats.hits += 1
                if entry[2]:
                    self.stats.prefetched_hits += 1
                    entry[2] = False
            entry[0] = self._clock
            entry[1] = entry[1] or write
            return True
        # miss: fill
        if prefetch:
            self.stats.prefetch_fills += 1
        else:
            self.stats.misses += 1
        if len(s) >= self.assoc:
            victim = min(s, key=lambda t: s[t][0])
            if s[victim][1]:
                self.stats.writebacks += 1
            del s[victim]
        s[tag] = [self._clock, write, prefetch]
        return False

    def flush(self) -> None:
        for s in self._sets:
            for entry in s.values():
                if entry[1]:
                    self.stats.writebacks += 1
            s.clear()

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)
