"""L1 -> L2 -> (LLC) -> DRAM hierarchy driven by interpreter memory traces.

``CacheHierarchy.touch`` plugs directly into
:func:`repro.jit.interpreter.execute_kernel`'s ``touch`` callback: tensor
names are mapped to disjoint address regions, element offsets become line
addresses, and each demand access walks the inclusive hierarchy.  PREFETCH1
fills L1+L2; PREFETCH2 fills L2 only (the paper's two prefetch levels).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.machine import MachineConfig
from repro.cachesim.cache import Cache

__all__ = ["CacheHierarchy", "LevelTraffic"]


@dataclass(frozen=True, slots=True)
class LevelTraffic:
    """Bytes moved between adjacent levels during a simulation."""

    l1_fill: int  # L2 -> L1
    l2_fill: int  # LLC/DRAM -> L2
    llc_fill: int  # DRAM -> LLC (0 when the machine has no LLC)
    l1_writeback: int
    l2_writeback: int


class CacheHierarchy:
    """Inclusive L1/L2(/LLC) simulator for one core.

    ``hw_prefetch`` optionally attaches a hardware prefetcher to L2
    ("nextline" or "stride"); software PREFETCH1/PREFETCH2 µops are always
    honored regardless.
    """

    def __init__(
        self,
        machine: MachineConfig,
        itemsize: int = 4,
        hw_prefetch: str = "none",
    ) -> None:
        self.machine = machine
        self.itemsize = itemsize
        line = machine.line_bytes
        self.line = line
        self.l1 = Cache(machine.l1_bytes, machine.l1_assoc, line, "L1")
        self.l2 = Cache(machine.l2_bytes, machine.l2_assoc, line, "L2")
        self.llc = (
            Cache(machine.llc_bytes, 16, line, "LLC")
            if machine.llc_bytes
            else None
        )
        if hw_prefetch == "nextline":
            from repro.cachesim.prefetcher import NextLinePrefetcher

            self.hw_prefetcher = NextLinePrefetcher(self.l2)
        elif hw_prefetch == "stride":
            from repro.cachesim.prefetcher import StridePrefetcher

            self.hw_prefetcher = StridePrefetcher(self.l2)
        elif hw_prefetch == "none":
            self.hw_prefetcher = None
        else:
            raise ValueError(f"unknown hw_prefetch mode {hw_prefetch!r}")
        self._regions: dict[str, int] = {}
        self._next_region = 0

    def region_base(self, tensor: str) -> int:
        """Disjoint 1-GiB address region per tensor name."""
        name = tensor[:-3] if tensor.endswith("_pf") else tensor
        if name not in self._regions:
            self._regions[name] = self._next_region
            self._next_region += 1 << 30
        return self._regions[name]

    def touch(self, tensor: str, offset: int, count: int, kind: str) -> None:
        """Interpreter callback: one memory µop's element range."""
        base = self.region_base(tensor) + offset * self.itemsize
        first = base // self.line
        last = (base + max(1, count) * self.itemsize - 1) // self.line
        for line_addr in range(first, last + 1):
            if kind == "prefetch1":
                if not self.l1.access(line_addr, prefetch=True):
                    self.l2.access(line_addr, prefetch=True)
            elif kind == "prefetch2":
                self.l2.access(line_addr, prefetch=True)
            else:
                write = kind == "store"
                if self.l1.access(line_addr, write=write):
                    if self.hw_prefetcher is not None:
                        self.hw_prefetcher.on_access(line_addr, True)
                    continue
                l2_hit = self.l2.access(line_addr, write=False)
                if self.hw_prefetcher is not None:
                    self.hw_prefetcher.on_access(line_addr, l2_hit)
                if l2_hit:
                    continue
                if self.llc is not None:
                    self.llc.access(line_addr, write=False)

    def traffic(self) -> LevelTraffic:
        line = self.line
        return LevelTraffic(
            l1_fill=self.l1.stats.misses * line,
            l2_fill=self.l2.stats.misses * line,
            llc_fill=(self.llc.stats.misses * line) if self.llc else 0,
            l1_writeback=self.l1.stats.writebacks * line,
            l2_writeback=self.l2.stats.writebacks * line,
        )

    def reset(self) -> None:
        self.l1.stats.reset()
        self.l2.stats.reset()
        if self.llc:
            self.llc.stats.reset()
