"""Machine models: the virtual SIMD ISA, register file, and target CPUs.

The paper JIT-emits AVX512 machine code; pure Python cannot (see DESIGN.md,
"Substitutions").  We instead emit streams of explicit micro-ops over a
virtual vector ISA (:mod:`repro.arch.isa`), allocate virtual zmm registers
(:mod:`repro.arch.registers`), and time the streams against machine
descriptions (:mod:`repro.arch.machine`) built from the parameters the paper
publishes for Skylake-SP and Knights Mill.
"""

from repro.arch.isa import Op, Uop, KernelProgram
from repro.arch.registers import RegisterFile, RegisterAllocator
from repro.arch.machine import MachineConfig, SKX, KNM, machine_by_name
from repro.arch.roofline import Roofline

__all__ = [
    "Op",
    "Uop",
    "KernelProgram",
    "RegisterFile",
    "RegisterAllocator",
    "MachineConfig",
    "SKX",
    "KNM",
    "machine_by_name",
    "Roofline",
]
