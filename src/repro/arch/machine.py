"""Target machine descriptions.

The two evaluation platforms of section III, parameterized from the numbers
the paper itself publishes:

* **SKX** -- Intel Xeon Platinum 8180 (Skylake-SP), 28 cores/socket,
  2.3 GHz AVX512: per-core peak 147 GFLOPS fp32 (2 FMA ports x 16 lanes x
  2 flops x 2.3 GHz), per-core L2 bandwidth 147 GB/s read / 74 GB/s write,
  105 GB/s socket STREAM triad, 38.5 MB shared LLC, 3.8 TFLOPS SGEMM/socket.
* **KNM** -- Intel Xeon Phi 7295 (Knights Mill), 72 cores, 1.6 GHz:
  per-core peak 192 GFLOPS fp32 (dual VPU with 4FMA chaining), per-core L2
  bandwidth 54.4 GB/s read / 27 GB/s write, ~470 GB/s MCDRAM STREAM,
  **no shared LLC**, 11.5 TFLOPS SGEMM/chip, 2x int16 throughput via 4VNNIW.

The instruction-timing parameters (issue width, FMA latency, load ports)
are the standard microarchitectural values for these parts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace

from repro.types import DType

__all__ = ["MachineConfig", "SKX", "KNM", "machine_by_name"]


@dataclass(frozen=True, slots=True)
class MachineConfig:
    """One CPU target for code generation and the timing model.

    Bandwidths are bytes/second; capacities are bytes.  Per-core cache
    bandwidths follow the paper's section III-B roofline discussion.
    """

    name: str
    cores: int
    freq_hz: float
    vlen_bits: int = 512
    fma_ports: int = 2
    fma_latency: int = 4  # cycles until an FMA result can be accumulated again
    issue_width: int = 4  # µops/cycle front-end
    load_ports: int = 2
    store_ports: int = 1
    # caches
    l1_bytes: int = 32 * 1024
    l2_bytes: int = 1024 * 1024
    llc_bytes: int = 0  # shared last-level cache (0 = none, like KNM)
    l1_assoc: int = 8
    l2_assoc: int = 16
    line_bytes: int = 64
    #: cores sharing one physical L2 (KNM tiles pair 2 cores on 1 MB);
    #: read-shared data (weight slices) effectively sees this much more L2
    l2_shared_cores: int = 1
    # measured bandwidths (paper section III)
    l1_read_bw: float = 0.0  # bytes/s per core (derived if 0)
    l1_write_bw: float = 0.0
    l2_read_bw: float = 0.0  # bytes/s per core
    l2_write_bw: float = 0.0
    llc_bw: float = 0.0  # bytes/s per core to/from the shared LLC
    mem_bw: float = 0.0  # bytes/s per socket/chip (STREAM triad)
    #: overlap penalty: fraction of non-binding resource time that is NOT
    #: hidden under the binding resource (out-of-order depth, MSHRs);
    #: calibrated against the paper's per-layer efficiency bands.
    overlap_alpha: float = 0.2
    # instruction-set quirks
    fused_memop_penalty: float = 0.15  # SKX micro-op split penalty (III-B)
    has_4fma: bool = False
    vnni16_speedup: float = 1.0  # int16 MAC throughput multiplier (II-K)
    # network (for multi-node runs, section III-C)
    link_bw: float = 12.5e9  # Omnipath 100 Gb/s
    link_latency_s: float = 1.5e-6
    comm_cores: int = 0  # cores set aside for MLSL communication

    def __post_init__(self) -> None:
        if self.l1_read_bw == 0.0:
            # 2 x 64B loads/cycle, 1 x 64B store/cycle -- AVX512 L1 ports
            object.__setattr__(self, "l1_read_bw", 2 * 64 * self.freq_hz)
        if self.l1_write_bw == 0.0:
            object.__setattr__(self, "l1_write_bw", 64 * self.freq_hz)

    # ---- derived peaks -------------------------------------------------
    def vlen(self, dtype: DType = DType.F32) -> int:
        """SIMD lanes for the *output/accumulator* type (always 32-bit)."""
        return self.vlen_bits // 32

    def input_vlen(self, dtype: DType = DType.F32) -> int:
        """SIMD lanes for the input element type (32 for int16 on 512-bit)."""
        return self.vlen_bits // (8 * dtype.input_itemsize)

    @property
    def flops_per_cycle_core(self) -> float:
        """Peak fp32 flops/cycle/core (FMA counts as 2)."""
        lanes = self.vlen_bits // 32
        mult = 2.0 if self.has_4fma else 1.0  # 4FMA doubles effective MACs/cyc
        return self.fma_ports * lanes * 2 * mult

    @property
    def peak_flops_core(self) -> float:
        return self.flops_per_cycle_core * self.freq_hz

    @property
    def peak_flops(self) -> float:
        return self.peak_flops_core * self.cores

    def peak_macs_core(self, dtype: DType) -> float:
        """Peak multiply-accumulates/second/core for ``dtype`` (II-K)."""
        base = self.peak_flops_core / 2.0
        if dtype is DType.QI16F32:
            return base * self.vnni16_speedup
        return base

    @property
    def mem_read_bw(self) -> float:
        """Sustained DRAM read bandwidth (pure read streams sustain a bit
        less than the nominal peak; 80 % of STREAM triad)."""
        return self.mem_bw * 0.8

    @property
    def mem_write_bw(self) -> float:
        """Sustained DRAM write bandwidth (non-temporal stores; about half
        the triad figure once write-allocate/RFO effects are counted)."""
        return self.mem_bw * 0.5

    @property
    def compute_cores(self) -> int:
        """Cores available for compute in multi-node runs (III-C)."""
        return self.cores - self.comm_cores

    def scaled(self, **changes) -> "MachineConfig":
        """A copy with some fields replaced (for what-if studies)."""
        return replace(self, **changes)

    def fingerprint(self) -> str:
        """Stable 16-hex-digit hash over everything that affects codegen
        and the cost model: vector length, register-file/FMA parameters,
        the full cache hierarchy and its bandwidths.

        Tuning-database entries and benchmark reports are keyed by this
        value so a plan tuned for one machine model is never silently
        replayed on another (``SKX.scaled(l2_bytes=...)`` fingerprints
        differently from ``SKX``).
        """
        doc = asdict(self)
        canon = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()[:16]


#: Dual-socket node uses 2 x SKX; kernel benchmarks are single-socket.
SKX = MachineConfig(
    name="SKX",
    cores=28,
    freq_hz=2.3e9,
    fma_ports=2,
    fma_latency=4,
    l2_bytes=1024 * 1024,
    llc_bytes=38 * 1024 * 1024 + 512 * 1024,
    l2_read_bw=147e9,
    l2_write_bw=74e9,
    llc_bw=30e9,  # sustained per-core share of the mesh/LLC
    mem_bw=105e9,
    overlap_alpha=0.2,
    fused_memop_penalty=0.15,
    has_4fma=False,
    vnni16_speedup=1.0,
    comm_cores=4,  # per node (2 sockets) when running multi-node, III-C
)

# 1.5 GHz is the sustained AVX frequency: 2 ports x 16 lanes x 2 flops x
# 2 (4FMA chaining) x 1.5 GHz = 192 GFLOPS/core, the figure section III states.
KNM = MachineConfig(
    name="KNM",
    cores=72,
    freq_hz=1.5e9,
    fma_ports=2,
    fma_latency=6,
    l1_bytes=32 * 1024,
    l2_bytes=512 * 1024,  # per-core share of the 1MB two-core tile L2
    l2_shared_cores=2,
    llc_bytes=0,
    l2_read_bw=54.4e9,
    l2_write_bw=27e9,
    llc_bw=0.0,
    mem_bw=470e9,  # MCDRAM
    overlap_alpha=0.45,  # in-order-ish Silvermont cores hide less latency
    fused_memop_penalty=0.0,  # same sequence as MKL-DNN on KNM (III-B)
    has_4fma=True,
    vnni16_speedup=2.0,  # 4VNNIW: 2x int16 MAC throughput (II-K)
    comm_cores=10,  # III-C: 62 of 72 cores compute; the rest drive MLSL
)

_MACHINES = {"SKX": SKX, "KNM": KNM, "skx": SKX, "knm": KNM}


def machine_by_name(name: str) -> MachineConfig:
    """Look up a machine config by name (case-insensitive)."""
    try:
        return _MACHINES[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; available: SKX, KNM"
        ) from None
