"""Roofline helpers (section III-B).

The paper explains the SKX/KNM efficiency gap on 1x1 layers with a per-core
roofline: KNM's L2 read bandwidth (54.4 GB/s) against 192 GFLOPS peak puts
1x1 convolutions in the L2-bound regime, while SKX's 147 GB/s against
147 GFLOPS keeps them near the compute-bound corner.  :class:`Roofline`
evaluates attainable performance for a set of per-level traffic volumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.machine import MachineConfig

__all__ = ["Roofline", "RooflinePoint"]


@dataclass(frozen=True, slots=True)
class RooflinePoint:
    """Attainable performance for one kernel on one core.

    ``bound`` names the binding resource ("compute", "l1", "l2_read", ...).
    """

    flops: float
    time_s: float
    bound: str

    @property
    def gflops(self) -> float:
        return self.flops / self.time_s / 1e9 if self.time_s > 0 else 0.0


class Roofline:
    """Per-core roofline for a machine.

    ``attainable`` takes the flops of a kernel plus its traffic (bytes) at
    each memory level and returns the binding time and resource.  Memory
    bandwidth is the socket bandwidth divided by the number of active cores
    (``active_cores``), as cores share the memory system.
    """

    def __init__(self, machine: MachineConfig, active_cores: int | None = None):
        self.machine = machine
        self.active_cores = active_cores or machine.cores

    def attainable(
        self,
        flops: float,
        l1_read: float = 0.0,
        l1_write: float = 0.0,
        l2_read: float = 0.0,
        l2_write: float = 0.0,
        mem_read: float = 0.0,
        mem_write: float = 0.0,
        compute_efficiency: float = 1.0,
    ) -> RooflinePoint:
        """Binding time for one core executing ``flops`` with given traffic.

        ``compute_efficiency`` scales the compute roof (e.g. FMA-latency
        exposure or fused-memory-operand penalties computed upstream).
        """
        m = self.machine
        mem_share = m.mem_bw / self.active_cores
        times = {
            "compute": flops / (m.peak_flops_core * compute_efficiency),
            "l1_read": l1_read / m.l1_read_bw,
            "l1_write": l1_write / m.l1_write_bw,
            "l2_read": l2_read / m.l2_read_bw,
            "l2_write": l2_write / m.l2_write_bw,
            "mem_read": mem_read / mem_share,
            "mem_write": mem_write / mem_share,
        }
        bound = max(times, key=times.get)
        return RooflinePoint(flops=flops, time_s=times[bound], bound=bound)

    def operational_intensity_knee(self) -> float:
        """Memory-roofline knee (flops/byte) for one core's DRAM share."""
        m = self.machine
        return m.peak_flops_core / (m.mem_bw / self.active_cores)
