"""µop-stream disassembler.

The paper's artifact appendix notes the JITer ships "debugger support";
this is our equivalent: render a generated :class:`KernelProgram` as a
readable assembly-like listing, with registers named, memory operands shown
as ``tensor[+offset]``, and an optional per-op annotation of the port each
op occupies.  Used by the examples and invaluable when writing new
generators.
"""

from __future__ import annotations

from repro.arch.isa import KernelProgram, Op, Uop

__all__ = ["disassemble", "format_uop", "summarize_program"]

_MNEMONICS = {
    Op.VZERO: "vxorps",
    Op.VLOAD: "vmovups",
    Op.VBCAST: "vbroadcastss",
    Op.VSTORE: "vmovups",
    Op.VSTORE_NT: "vmovntps",
    Op.VFMA: "vfmadd231ps",
    Op.VFMA_MEM: "vfmadd231ps",
    Op.V4FMA: "v4fmaddps",
    Op.VVNNI: "vp4dpwssd",
    Op.VADD: "vaddps",
    Op.VMUL: "vmulps",
    Op.VMAX: "vmaxps",
    Op.VCVT_I32F32: "vcvtdq2ps",
    Op.PREFETCH1: "prefetcht0",
    Op.PREFETCH2: "prefetcht1",
}


def _reg(idx: int | None) -> str:
    return f"zmm{idx}" if idx is not None else "?"


def _mem(u: Uop) -> str:
    return f"{u.tensor}[{u.offset:+d}]" if u.tensor else "?"


def format_uop(u: Uop) -> str:
    """One µop as an AVX512-flavoured assembly line."""
    m = _MNEMONICS[u.op]
    if u.op is Op.VZERO:
        r = _reg(u.dst)
        return f"{m:<14} {r}, {r}, {r}"
    if u.op in (Op.VLOAD, Op.VBCAST):
        suffix = " {pair}" if u.imm == 2.0 else ""
        return f"{m:<14} {_reg(u.dst)}, {_mem(u)}{suffix}"
    if u.op in (Op.VSTORE, Op.VSTORE_NT):
        return f"{m:<14} {_mem(u)}, {_reg(u.src1)}"
    if u.op is Op.VFMA:
        return f"{m:<14} {_reg(u.dst)}, {_reg(u.src1)}, {_reg(u.src2)}"
    if u.op is Op.VFMA_MEM:
        return f"{m:<14} {_reg(u.dst)}, {_reg(u.src1)}, {_mem(u)}{{1to16}}"
    if u.op is Op.V4FMA:
        depth = int(u.imm) or 4
        regs = f"{_reg(u.src1)}-{_reg((u.src1 or 0) + depth - 1)}"
        return f"{m:<14} {_reg(u.dst)}, {regs}, {_mem(u)}"
    if u.op is Op.VVNNI:
        if u.tensor is not None:
            depth = int(u.imm) or 4
            regs = f"{_reg(u.src1)}-{_reg((u.src1 or 0) + depth - 1)}"
            return f"{m:<14} {_reg(u.dst)}, {regs}, {_mem(u)}"
        return f"vpdpwssd       {_reg(u.dst)}, {_reg(u.src1)}, {_reg(u.src2)}"
    if u.op in (Op.VADD, Op.VMUL, Op.VMAX):
        return f"{m:<14} {_reg(u.dst)}, {_reg(u.src1)}, {_reg(u.src2)}"
    if u.op is Op.VCVT_I32F32:
        return f"{m:<14} {_reg(u.dst)}, {_reg(u.src1)}  # scale={u.imm:g}"
    if u.op in (Op.PREFETCH1, Op.PREFETCH2):
        return f"{m:<14} {_mem(u)}"
    raise AssertionError(u.op)  # pragma: no cover


def disassemble(
    prog: KernelProgram, max_lines: int | None = None, addresses: bool = True
) -> str:
    """Full listing of a kernel program."""
    lines = [f"; {prog.name}: {len(prog)} uops, {prog.flops} flops"]
    body = prog.uops if max_lines is None else prog.uops[:max_lines]
    for i, u in enumerate(body):
        prefix = f"{i:5d}:  " if addresses else "  "
        lines.append(prefix + format_uop(u))
    if max_lines is not None and len(prog) > max_lines:
        lines.append(f"        ... ({len(prog) - max_lines} more)")
    return "\n".join(lines)


def summarize_program(prog: KernelProgram) -> str:
    """One-paragraph structural summary (op histogram + register usage)."""
    hist = prog.summary()
    ops = ", ".join(f"{k}={v}" for k, v in sorted(hist.items()))
    return (
        f"{prog.name}: {len(prog)} uops ({ops}); "
        f"{prog.fma_count} FMA-family ops, {prog.flops} flops, "
        f"registers used: {prog.max_register() + 1}"
    )
