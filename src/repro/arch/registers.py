"""Virtual vector register file and allocator.

AVX512 exposes 32 zmm registers.  The register blocking factors RB_P, RB_Q of
section II-B are bounded by this file: the microkernel needs
``RB_P * RB_Q`` accumulators plus registers for the loaded weight vector(s)
and (when not using fused memory operands) the input broadcast.  The code
generators allocate through :class:`RegisterAllocator` so that an infeasible
blocking raises :class:`~repro.types.CodegenError` instead of silently
"spilling" -- real JITs never spill in these kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import CodegenError

__all__ = ["RegisterFile", "RegisterAllocator", "NUM_VREGS"]

#: zmm register count on AVX512 targets.
NUM_VREGS = 32


@dataclass(frozen=True, slots=True)
class RegisterFile:
    """Width/count description of the target's vector register file."""

    num_regs: int = NUM_VREGS
    width_bits: int = 512

    def vlen(self, itemsize: int) -> int:
        """Elements per register for a given element size in bytes."""
        return self.width_bits // (8 * itemsize)


class RegisterAllocator:
    """Linear allocator over a fixed register file.

    Supports named allocation (so the generators read declaratively) and
    scoped release for registers reused across loop iterations.
    """

    def __init__(self, regfile: RegisterFile | None = None) -> None:
        self.regfile = regfile or RegisterFile()
        self._free: list[int] = list(range(self.regfile.num_regs - 1, -1, -1))
        self._named: dict[str, int] = {}

    @property
    def live_count(self) -> int:
        return self.regfile.num_regs - len(self._free)

    def alloc(self, name: str | None = None) -> int:
        """Allocate one register; raise CodegenError when the file is full."""
        if not self._free:
            raise CodegenError(
                "out of vector registers ({} live); reduce the register "
                "blocking (RB_P*RB_Q)".format(self.live_count)
            )
        reg = self._free.pop()
        if name is not None:
            if name in self._named:
                raise CodegenError(f"register name {name!r} already allocated")
            self._named[name] = reg
        return reg

    def alloc_block(self, count: int, prefix: str) -> list[int]:
        """Allocate ``count`` registers named ``prefix0..prefixN-1``."""
        return [self.alloc(f"{prefix}{i}") for i in range(count)]

    def get(self, name: str) -> int:
        return self._named[name]

    def free(self, reg: int) -> None:
        if reg in self._free:
            raise CodegenError(f"double free of register {reg}")
        self._free.append(reg)
        for name, r in list(self._named.items()):
            if r == reg:
                del self._named[name]

    def free_named(self, name: str) -> None:
        self.free(self._named[name])
