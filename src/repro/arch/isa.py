"""The virtual SIMD micro-op ISA the JIT emits.

Each generated microkernel is a :class:`KernelProgram`: a flat sequence of
:class:`Uop` over VLEN-wide virtual vector registers.  The op set mirrors the
AVX512 subset the paper's kernels use:

=============  ==============================================================
op             semantics
=============  ==============================================================
VZERO          ``reg[dst] = 0``
VLOAD          ``reg[dst] = mem[tensor][off : off+VLEN]`` (unit stride)
VBCAST         ``reg[dst] = broadcast(mem[tensor][off])``
VSTORE         ``mem[tensor][off : off+VLEN] = reg[src1]``
VSTORE_NT      streaming (non-temporal) store, bypasses caches
VFMA           ``reg[dst] += reg[src1] * reg[src2]``
VFMA_MEM       ``reg[dst] += reg[src1] * broadcast(mem[tensor][off])``
               (AVX512 fused memory-operand form; 15% slower on SKX, III-B)
V4FMA          KNM 4-chained FMA: 4 FMAs issued as one op (section III)
VVNNI          int16 pair dot-product accumulating into int32 (4VNNIW-like,
               section II-K): ``reg[dst](i32) += a(i16 pairs) . b(i16 pairs)``
VADD           ``reg[dst] = reg[src1] + reg[src2]``
VMUL           ``reg[dst] = reg[src1] * reg[src2]``
VMAX           ``reg[dst] = max(reg[src1], reg[src2])`` (ReLU fusion)
VCVT_I32F32    ``reg[dst] = float(reg[src1]) * scale`` (dequantization)
PREFETCH1      software prefetch into L1 (first level, section II-E)
PREFETCH2      software prefetch into L2 (second level, section II-E)
=============  ==============================================================

Offsets are *element* offsets into a named flat tensor buffer; the layout
strides were baked in by the code generator, exactly as a real JIT bakes
displacements into instruction encodings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["Op", "Uop", "KernelProgram", "MEMORY_OPS", "COMPUTE_OPS"]


class Op(enum.Enum):
    VZERO = enum.auto()
    VLOAD = enum.auto()
    VBCAST = enum.auto()
    VSTORE = enum.auto()
    VSTORE_NT = enum.auto()
    VFMA = enum.auto()
    VFMA_MEM = enum.auto()
    V4FMA = enum.auto()
    VVNNI = enum.auto()
    VADD = enum.auto()
    VMUL = enum.auto()
    VMAX = enum.auto()
    VCVT_I32F32 = enum.auto()
    PREFETCH1 = enum.auto()
    PREFETCH2 = enum.auto()


#: ops that reference memory (drive the load/store ports and cache traffic)
MEMORY_OPS = frozenset(
    {
        Op.VLOAD,
        Op.VBCAST,
        Op.VSTORE,
        Op.VSTORE_NT,
        Op.VFMA_MEM,
        Op.PREFETCH1,
        Op.PREFETCH2,
    }
)

#: ops that occupy an FMA/ALU port
COMPUTE_OPS = frozenset(
    {
        Op.VFMA,
        Op.VFMA_MEM,
        Op.V4FMA,
        Op.VVNNI,
        Op.VADD,
        Op.VMUL,
        Op.VMAX,
        Op.VCVT_I32F32,
    }
)


@dataclass(frozen=True, slots=True)
class Uop:
    """One micro-op.

    ``dst``/``src1``/``src2`` are virtual register ids (or ``None``).
    ``tensor`` names the memory operand's buffer ("I", "W", "O", ...);
    ``offset`` is the element offset into that flat buffer.  ``imm`` carries
    op-specific immediates (e.g. the dequantization scale for VCVT_I32F32).
    """

    op: Op
    dst: Optional[int] = None
    src1: Optional[int] = None
    src2: Optional[int] = None
    tensor: Optional[str] = None
    offset: int = 0
    imm: float = 0.0

    def touches_memory(self) -> bool:
        return self.op in MEMORY_OPS

    def is_compute(self) -> bool:
        return self.op in COMPUTE_OPS

    def is_fma(self) -> bool:
        return self.op in (Op.VFMA, Op.VFMA_MEM, Op.V4FMA, Op.VVNNI)


@dataclass(slots=True)
class KernelProgram:
    """A generated microkernel: metadata plus the µop stream.

    ``vlen`` is the SIMD width in elements.  ``flops`` is the number of
    floating-point operations one invocation performs (2 per scalar MAC).
    ``reads``/``writes`` summarize, per tensor name, the distinct element
    footprint one invocation touches -- used by the traffic model and checked
    against the µop stream in tests.
    """

    name: str
    vlen: int
    uops: list[Uop] = field(default_factory=list)
    flops: int = 0
    reads: dict[str, int] = field(default_factory=dict)
    writes: dict[str, int] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def __iter__(self) -> Iterator[Uop]:
        return iter(self.uops)

    def __len__(self) -> int:
        return len(self.uops)

    def count(self, *ops: Op) -> int:
        """Number of µops whose op is one of ``ops``."""
        wanted = set(ops)
        return sum(1 for u in self.uops if u.op in wanted)

    @property
    def fma_count(self) -> int:
        return sum(1 for u in self.uops if u.is_fma())

    def max_register(self) -> int:
        """Highest register id referenced (for register-pressure checks)."""
        regs = [-1]
        for u in self.uops:
            for r in (u.dst, u.src1, u.src2):
                if r is not None:
                    regs.append(r)
        return max(regs)

    def summary(self) -> dict[str, int]:
        """Per-op µop histogram, for reports and tests."""
        hist: dict[str, int] = {}
        for u in self.uops:
            hist[u.op.name] = hist.get(u.op.name, 0) + 1
        return hist
