"""Weight-gradient update pass (Algorithm 9, section II-J).

:class:`DirectConvUpd` blocks the spatial domain by ``B_P x B_Q`` (chosen so
the microkernel footprint stays cache-resident) and accumulates each
``VLEN_c x VLEN_k`` weight-gradient block with an outer-product microkernel
exposing VLEN independent FMA chains.

The parallelization strategy -- how many weight-gradient copies ``G`` to
keep, and how the feature-map task space is split within a copy group -- is
chosen at *dryrun* time from the section II-J bandwidth model
(:func:`repro.parallel.wu_strategies.choose_upd_strategy`) and actually
executed: the dryrun records, per simulated thread, a kernel stream of
``(variant, I-offset, dO-offset, dW-offset)`` calls into that thread's
gradient copy; execution replays the streams and performs the final copy
reduction -- the same dryrun/replay architecture the forward pass uses
(section II-H), so tests can verify every strategy agrees numerically.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.arch.machine import SKX, MachineConfig
from repro.conv._compat import legacy_positionals
from repro.conv.blocking import UpdBlockingPlan, choose_upd_blocking
from repro.conv.params import ConvParams
from repro.jit.compile import TierMismatchError, resolve_execution_tier
from repro.jit.interpreter import execute_kernel
from repro.jit.kernel_cache import KernelCache, get_default_cache
from repro.jit.upd_codegen import UpdKernelDesc, generate_upd_kernel
from repro.obs.metrics import get_metrics
from repro.obs.tracer import Tracer, get_tracer
from repro.parallel.partition import split_range
from repro.parallel.wu_strategies import UpdStrategy, choose_upd_strategy
from repro.tensor.blocked import BlockedTensor, block_activations
from repro.tensor.layout import ActivationLayout, WeightLayout
from repro.types import DType, UnsupportedError

__all__ = ["DirectConvUpd"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class DirectConvUpd:
    """Weight-gradient pass for one layer."""

    def __init__(
        self,
        params: ConvParams,
        machine: MachineConfig = SKX,
        *legacy,
        dtype: DType = DType.F32,
        fused_ops: Sequence = (),
        threads: int = 1,
        strategy: UpdStrategy | None = None,
        plan: UpdBlockingPlan | None = None,
        prefetch: str = "both",
        kernel_cache: KernelCache | None = None,
        tracer: Tracer | None = None,
        execution_tier: str | None = None,
    ) -> None:
        if legacy:
            lv = legacy_positionals(
                "DirectConvUpd",
                ("dtype", "threads", "strategy", "plan", "kernel_cache"),
                legacy,
            )
            dtype = lv.get("dtype", dtype)
            threads = lv.get("threads", threads)
            strategy = lv.get("strategy", strategy)
            plan = lv.get("plan", plan)
            kernel_cache = lv.get("kernel_cache", kernel_cache)
        if fused_ops:
            raise UnsupportedError(
                "the weight-gradient pass has no fusable post-ops"
            )
        self.params = params
        self.machine = machine
        self.dtype = dtype
        self.threads = max(1, threads)
        self.plan = plan or choose_upd_blocking(params, machine, dtype)
        self.strategy = strategy or choose_upd_strategy(
            params, machine, self.threads
        )
        #: accepted for keyword parity with the other engines; the Algorithm-9
        #: outer-product kernel issues no software prefetches.
        self.prefetch = prefetch
        self.cache = (kernel_cache if kernel_cache is not None
                      else get_default_cache())
        self.tracer = tracer if tracer is not None else get_tracer()
        self.execution_tier = resolve_execution_tier(execution_tier)
        p = params
        vlen = self.plan.vlen
        self.vlen = vlen
        self.in_layout = ActivationLayout(n=p.N, c=p.C, h=p.Hp, w=p.Wp, vlen=vlen)
        self.do_layout = ActivationLayout(n=p.N, c=p.K, h=p.P, w=p.Q, vlen=vlen)
        self.dw_layout = WeightLayout(k=p.K, c=p.C, r=p.R, s=p.S, vlen=vlen)
        self._build_kernels()
        with self.tracer.span(
            "conv.dryrun", pass_="upd", layer=params.describe(),
            threads=self.threads,
        ):
            self._dryrun()
        metrics = get_metrics()
        metrics.inc("conv.engines_built")
        metrics.inc("conv.streams_recorded", len(self.streams))

    def _build_kernels(self) -> None:
        ist = self.in_layout.strides
        ost = self.do_layout.strides
        self.descs: list[UpdKernelDesc] = []
        bps = [self.plan.b_p] + (
            [self.plan.b_p_rem] if self.plan.b_p_rem else []
        )
        for bp in bps:
            self.descs.append(
                UpdKernelDesc(
                    vlen=self.vlen,
                    b_p=bp,
                    b_q=self.plan.b_q,
                    stride=self.params.stride,
                    i_strides=(ist[2], ist[3]),
                    o_strides=(ost[2], ost[3]),
                    dtype=self.dtype,
                )
            )
        self.programs = [
            self.cache.get(d, generate_upd_kernel) for d in self.descs
        ]
        self.compiled = [
            self.cache.get_compiled(d, generate_upd_kernel) for d in self.descs
        ]
        # stream_compiled programs + cells per buffer-dtype signature
        # (engine-private mutable state; see DirectConvForward)
        self._stream_progs: dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    # dryrun (section II-H applied to Algorithm 9)
    # ------------------------------------------------------------------
    def _variant_id(self, cur_bp: int) -> int:
        for i, d in enumerate(self.descs):
            if d.b_p == cur_bp:
                return i
        raise RuntimeError(f"no upd variant for B_P={cur_bp}")

    def _dryrun(self) -> None:
        """Record per-thread kernel streams into per-group gradient copies.

        Group ``g`` owns minibatch slice ``split_range(N, G)[g]``; within a
        group, threads split the ``(k_b, c_b)`` task space.  Stream record
        fields: ``i_off`` into I, ``o_off`` into dO, ``w_off`` into the
        group's dW *copy* (the replay binds each thread to its copy buffer).
        """
        from repro.streams.stream import KernelStream

        p = self.params
        vlen = self.vlen
        bp, bq = self.plan.b_p, self.plan.b_q
        pb = _ceil_div(p.P, bp)
        kb_n, cb_n = p.K // vlen, p.C // vlen
        g = max(1, min(self.strategy.ncopies, p.N, self.threads))
        group_threads = max(1, self.threads // g)
        self.ncopies = g
        self.streams = []
        self.stream_group = []
        n_slices = split_range(p.N, g)
        tasks = [(kb, cb) for kb in range(kb_n) for cb in range(cb_n)]
        for gi, (n_lo, n_hi) in enumerate(n_slices):
            for t_lo, t_hi in split_range(len(tasks), group_threads):
                st = KernelStream()
                for kb, cb in tasks[t_lo:t_hi]:
                    for n in range(n_lo, n_hi):
                        for ojb in range(pb):
                            oj = ojb * bp
                            cur_bp = min(bp, p.P - oj)
                            ij = p.stride * oj
                            variant = self._variant_id(cur_bp)
                            o_off = self.do_layout.offset(n, kb, oj, 0)
                            for r in range(p.R):
                                for s in range(p.S):
                                    i_off = self.in_layout.offset(
                                        n, cb, ij + r, s
                                    )
                                    w_off = self.dw_layout.offset(
                                        kb, cb, r, s
                                    )
                                    st.record_conv(variant, i_off, w_off, o_off)
                self.streams.append(st.freeze())
                self.stream_group.append(gi)

    # ------------------------------------------------------------------
    def _make_kernel_closures(self, xb, dyb, copies):
        """Numpy microkernel closures per (variant, copy buffer)."""
        closures = []
        for desc in self.descs:
            i_sh, i_sw = desc.i_strides
            o_sh, o_sw = desc.o_strides
            stn = desc.stride
            vlen = desc.vlen
            ishape = (desc.b_p, desc.b_q, vlen)
            istr = tuple(s * 4 for s in (stn * i_sh, stn * i_sw, 1))
            oshape = (desc.b_p, desc.b_q, vlen)
            ostr = tuple(s * 4 for s in (o_sh, o_sw, 1))

            def make(gi, _is=ishape, _ist=istr, _os=oshape, _ost=ostr, _v=vlen):
                dwbuf = copies[gi]

                def call(i_off, w_off, o_off, pi, pw, po):
                    iv = as_strided(xb[i_off:], _is, _ist)
                    ov = as_strided(dyb[o_off:], _os, _ost)
                    dwv = dwbuf[w_off : w_off + _v * _v].reshape(_v, _v)
                    dwv += np.einsum("pqc,pqk->ck", iv, ov, optimize=True)

                return call

            closures.append(make)
        return closures

    def __call__(self, x: BlockedTensor, dy: BlockedTensor) -> BlockedTensor:
        """Replay the recorded streams into the gradient copies, then reduce
        (each simulated thread reduces 1/T of the copies -- section II-J)."""
        tracer = self.tracer
        get_metrics().inc("conv.upd_calls")
        if tracer.enabled:
            with tracer.span(
                "conv.replay", pass_="upd", layer=self.params.describe(),
                copies=self.ncopies,
            ):
                return self._execute(x, dy)
        return self._execute(x, dy)

    def _interp_kernel(self, prog, buffers):
        def call(i_off, w_off, o_off, pi, pw, po):
            execute_kernel(
                prog, buffers, {"I": i_off, "dW": w_off, "dO": o_off}
            )

        return call

    def _tier_kernels(self, tier, xb, dyb, copies, gi):
        """Per-variant kernel table for one gradient-copy group."""
        if tier == "einsum":
            return [make(gi) for make in self._make_kernel_closures(
                xb, dyb, copies
            )]
        buffers = {"I": xb, "dO": dyb, "dW": copies[gi]}
        if tier == "interpret":
            return [self._interp_kernel(p, buffers) for p in self.programs]
        kernels = []
        for vid, ck in enumerate(self.compiled):
            if ck is not None:
                kernels.append(ck.bind(buffers, args=("I", "dW", "dO")))
            else:
                get_metrics().inc("exec.compile_fallbacks")
                kernels.append(
                    self._interp_kernel(self.programs[vid], buffers)
                )
        return kernels

    def _replay_into(self, xb, dyb, segs, tier):
        copies = [
            np.zeros(self.dw_layout.size, dtype=np.float32)
            for _ in range(self.ncopies)
        ]
        from repro.streams.replay import replay

        for stream, gi, seg in zip(self.streams, self.stream_group, segs):
            kernels = self._tier_kernels(tier, xb, dyb, copies, gi)
            replay(stream, seg, kernels, [])
        return copies

    def _stream_programs(self, xb, dyb):
        """stream_compiled lowering of every thread stream (cached per
        input-dtype signature; the dW copies are always fp32)."""
        key = (xb.dtype.str, dyb.dtype.str)
        got = self._stream_progs.get(key)
        if got is None:
            from repro.jit.streamcompile import BufferCell, compile_stream

            proto = {
                "I": np.empty(0, dtype=xb.dtype),
                "dO": np.empty(0, dtype=dyb.dtype),
                "dW": np.empty(0, dtype=np.float32),
            }
            with self.tracer.span(
                "jit.stream_compile", pass_="upd",
                layer=self.params.describe(),
            ):
                progs = [
                    compile_stream(
                        stream, stream.segments(), self.compiled,
                        self.programs, proto, args=("I", "dW", "dO"),
                    )
                    for stream in self.streams
                ]
            cells = [BufferCell() for _ in progs]
            got = self._stream_progs[key] = (progs, cells)
            self.cache.note_stream_program({
                "streams": len(progs),
                "chunks": sum(p.meta["chunks"] for p in progs),
            })
        return got

    def _stream_replay_into(self, xb, dyb):
        """Replay through the pre-lowered closure chains.  Each stream's
        cell binds that thread's gradient copy, so the per-copy sequential
        accumulation order matches the compiled tier exactly."""
        copies = [
            np.zeros(self.dw_layout.size, dtype=np.float32)
            for _ in range(self.ncopies)
        ]
        progs, cells = self._stream_programs(xb, dyb)
        for prog, gi, cell in zip(progs, self.stream_group, cells):
            cell.buffers = {"I": xb, "dO": dyb, "dW": copies[gi]}
            cell.scale = 1.0
            prog.run(cell)
        return copies

    def _execute(self, x: BlockedTensor, dy: BlockedTensor) -> BlockedTensor:
        xb, dyb = x.data, dy.data
        segs = [s.segments() for s in self.streams]
        tier = self.execution_tier
        metrics = get_metrics()
        total_calls = sum(len(s) for s in self.streams)
        if tier == "verify":
            copies = self._replay_into(xb, dyb, segs, "compiled")
            ref = self._replay_into(xb, dyb, segs, "interpret")
            for gi, (a, b) in enumerate(zip(copies, ref)):
                if not np.array_equal(a.view(np.uint32), b.view(np.uint32)):
                    nbad = int(
                        (a.view(np.uint32) != b.view(np.uint32)).sum()
                    )
                    raise TierMismatchError(
                        f"compiled/interpret dW copies differ bitwise in "
                        f"{nbad} lanes (copy {gi}) for "
                        f"{self.params.describe()}"
                    )
            metrics.inc("exec.verify.checks")
            metrics.inc("exec.calls.compiled", total_calls)
            metrics.inc("exec.calls.interpret", total_calls)
        elif tier == "stream_compiled":
            copies = self._stream_replay_into(xb, dyb)
            metrics.inc("exec.calls.stream_compiled", total_calls)
        else:
            copies = self._replay_into(xb, dyb, segs, tier)
            metrics.inc(f"exec.calls.{tier}", total_calls)
        dw = copies[0]
        for c in copies[1:]:
            dw = dw + c
        return BlockedTensor(
            dw.reshape(self.dw_layout.shape), self.dw_layout
        )

    def run_nchw(self, x: np.ndarray, dy: np.ndarray) -> np.ndarray:
        """Compute dW from logical tensors; returns (K, C, R, S)."""
        p = self.params
        bx = block_activations(
            x, self.vlen, pad_h=p.pad_h, pad_w=p.pad_w,
            dtype=self.dtype.np_input,
        )
        bdy = block_activations(dy, self.vlen, dtype=self.dtype.np_input)
        return self(bx, bdy).to_kcrs()
