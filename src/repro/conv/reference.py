"""Reference semantics: Algorithms 1, 6 and 8 of the paper.

These functions define *what* a convolution layer computes; every optimized
engine in this library (blocked numpy, JIT'ed µop streams, baselines,
quantized kernels) is validated against them.  They are written as the
paper's naive loop nests, with the two innermost feature-map/spatial loops
delegated to numpy contractions for tractable test times -- the iteration
*order* of floating-point accumulation over (r, s) is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.conv.params import ConvParams
from repro.types import ShapeError

__all__ = ["conv2d_forward", "conv2d_backward_data", "conv2d_update_weights", "pad_input"]


def pad_input(x: np.ndarray, p: ConvParams) -> np.ndarray:
    """Zero-pad logical NCHW input to the physical padded extent."""
    if x.shape != (p.N, p.C, p.H, p.W):
        raise ShapeError(f"input shape {x.shape} != {(p.N, p.C, p.H, p.W)}")
    if p.pad_h == 0 and p.pad_w == 0:
        return x
    return np.pad(
        x, ((0, 0), (0, 0), (p.pad_h, p.pad_h), (p.pad_w, p.pad_w)), mode="constant"
    )


def conv2d_forward(x: np.ndarray, w: np.ndarray, p: ConvParams) -> np.ndarray:
    """Algorithm 1: ``O[n,k,oj,oi] += I[n,c,oj*str+r,oi*str+s] * W[k,c,r,s]``.

    ``x`` is logical (N, C, H, W), ``w`` is (K, C, R, S); returns (N, K, P, Q).
    """
    if w.shape != (p.K, p.C, p.R, p.S):
        raise ShapeError(f"weight shape {w.shape} != {(p.K, p.C, p.R, p.S)}")
    xp = pad_input(x, p)
    out = np.zeros((p.N, p.K, p.P, p.Q), dtype=np.result_type(x, w))
    for r in range(p.R):
        for s in range(p.S):
            patch = xp[
                :,
                :,
                r : r + p.stride * p.P : p.stride,
                s : s + p.stride * p.Q : p.stride,
            ]
            out += np.einsum("ncpq,kc->nkpq", patch, w[:, :, r, s], optimize=True)
    return out


def conv2d_backward_data(dy: np.ndarray, w: np.ndarray, p: ConvParams) -> np.ndarray:
    """Algorithm 6: ``dI[n,c,oj*str+r,oi*str+s] += dO[n,k,oj,oi] * W[k,c,r,s]``.

    ``dy`` is (N, K, P, Q); returns the input gradient (N, C, H, W).
    """
    if dy.shape != (p.N, p.K, p.P, p.Q):
        raise ShapeError(f"dO shape {dy.shape} != {(p.N, p.K, p.P, p.Q)}")
    dxp = np.zeros((p.N, p.C, p.Hp, p.Wp), dtype=np.result_type(dy, w))
    for r in range(p.R):
        for s in range(p.S):
            contrib = np.einsum("nkpq,kc->ncpq", dy, w[:, :, r, s], optimize=True)
            dxp[
                :,
                :,
                r : r + p.stride * p.P : p.stride,
                s : s + p.stride * p.Q : p.stride,
            ] += contrib
    if p.pad_h or p.pad_w:
        return np.ascontiguousarray(
            dxp[:, :, p.pad_h : p.pad_h + p.H, p.pad_w : p.pad_w + p.W]
        )
    return dxp


def conv2d_update_weights(x: np.ndarray, dy: np.ndarray, p: ConvParams) -> np.ndarray:
    """Algorithm 8: ``dW[k,c,r,s] += I[n,c,oj*str+r,oi*str+s] * dO[n,k,oj,oi]``.

    Returns the weight gradient (K, C, R, S).
    """
    xp = pad_input(x, p)
    dw = np.zeros((p.K, p.C, p.R, p.S), dtype=np.result_type(x, dy))
    for r in range(p.R):
        for s in range(p.S):
            patch = xp[
                :,
                :,
                r : r + p.stride * p.P : p.stride,
                s : s + p.stride * p.Q : p.stride,
            ]
            dw[:, :, r, s] = np.einsum("ncpq,nkpq->kc", patch, dy, optimize=True)
    return dw
