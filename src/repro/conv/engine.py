"""The unified engine construction API.

The four convolution engines (:class:`DirectConvForward`,
:class:`DirectConvBackward`, :class:`DirectConvUpd`,
:class:`QuantConvForward`) historically grew slightly different
constructor signatures.  This module gives them one face:

* :class:`ConvEngine` -- the structural protocol every engine satisfies
  (``params``/``machine``/``dtype``/``threads`` attributes and a
  ``run_nchw`` entry point);
* :func:`make_engine` -- a single factory keyed by pass, with one keyword
  set covering all four engine kinds.

Example::

    from repro import ConvParams, Pass, make_engine

    p = ConvParams(N=2, C=64, K=64, H=28, W=28, R=3, S=3, stride=1)
    fwd = make_engine(Pass.FWD, p, threads=4)
    bwd = make_engine("bwd", p, threads=4)
    upd = make_engine("upd", p, threads=4)
    q16 = make_engine("quant", p, machine=KNM)

Engines returned by the factory are bitwise-identical to direct
construction with the same keywords -- the factory only routes arguments.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.arch.machine import SKX, MachineConfig
from repro.conv.backward import DirectConvBackward
from repro.conv.forward import DirectConvForward
from repro.conv.params import ConvParams
from repro.conv.upd import DirectConvUpd
from repro.jit.kernel_cache import KernelCache, get_default_cache
from repro.jit.tiers import ReplayOptions
from repro.obs.tracer import Tracer
from repro.types import DType, Pass, ReproError

__all__ = ["ConvEngine", "make_engine"]


@runtime_checkable
class ConvEngine(Protocol):
    """What every convolution engine exposes, whichever pass it computes.

    ``run_nchw`` takes the pass's two logical operands in NCHW/KCRS form
    -- ``(x, w)`` for forward, ``(dy, w)`` for backward, ``(x, dy)`` for
    the weight update -- and returns the logical result.
    """

    params: ConvParams
    machine: MachineConfig
    dtype: DType
    threads: int

    def run_nchw(self, a: np.ndarray, b: np.ndarray) -> np.ndarray: ...


#: accepted spellings per engine kind (the CLI letters, the Pass values,
#: and the obvious words)
_PASS_NAMES = {
    Pass.FWD: ("f", "fwd", "forward"),
    Pass.BWD: ("b", "bwd", "backward", "data"),
    Pass.UPD: ("u", "upd", "update", "wu", "weights"),
}
_QUANT_NAMES = ("q", "quant", "lp", "int16")


def _normalize_pass(pass_) -> tuple[Pass, bool]:
    """Returns ``(pass, quantized)``."""
    if isinstance(pass_, Pass):
        return pass_, False
    if isinstance(pass_, str):
        low = pass_.lower()
        if low in _QUANT_NAMES:
            return Pass.FWD, True
        for p, names in _PASS_NAMES.items():
            if low in names or low == p.value:
                return p, False
    raise ReproError(
        f"unknown pass {pass_!r}; expected a repro.Pass, one of "
        f"F/B/U, forward/backward/update, or 'quant'"
    )


def _tuned_plan(tuned, params, machine, dtype, kernel_cache):
    """Resolve ``tuned`` to a ``(plan, prefetch)`` pair, or ``(None,
    None)`` when no usable entry exists.

    Every failure mode short of a programming error degrades to the
    heuristics: a missing artifact (``tune.db_missing``), a corrupt or
    stale one (``tune.db_rejected``), or simply no entry for this
    (machine, dtype, shape) key (``tune.db_misses``).
    """
    from repro.obs.metrics import get_metrics
    from repro.tune.db import TuningDBError, resolve_db

    metrics = get_metrics()
    try:
        db = resolve_db(tuned)
    except FileNotFoundError:
        metrics.inc("tune.db_missing")
        return None, None
    except TuningDBError:
        metrics.inc("tune.db_rejected")
        return None, None
    if db is None:
        metrics.inc("tune.db_misses")
        return None, None
    try:
        entry = db.lookup(params, machine, dtype)
    except TuningDBError:
        metrics.inc("tune.db_rejected")
        return None, None
    if entry is None:
        metrics.inc("tune.db_misses")
        return None, None
    metrics.inc("tune.db_hits")
    cache = kernel_cache if kernel_cache is not None else get_default_cache()
    cache.note_tuned_plan()
    return entry.plan(), entry.prefetch


def make_engine(
    pass_,
    params: ConvParams,
    *,
    machine: MachineConfig = SKX,
    dtype: DType = DType.F32,
    threads: int = 1,
    fused_ops: Sequence = (),
    plan=None,
    prefetch: str | None = None,
    kernel_cache: KernelCache | None = None,
    tracer: Tracer | None = None,
    strategy=None,
    chain_limit: int | None = None,
    execution_tier: str | None = None,
    streams=None,
    replay: ReplayOptions | None = None,
    tuned=False,
) -> ConvEngine:
    """Construct the engine for ``pass_`` with one uniform keyword set.

    Parameters
    ----------
    pass_:
        A :class:`repro.types.Pass` or a string -- ``"fwd"``/``"bwd"``/
        ``"upd"`` (also ``F``/``B``/``U`` and the long spellings), or
        ``"quant"`` for the int16 forward engine.  ``Pass.FWD`` with
        ``dtype=DType.QI16F32`` also selects the int16 engine.
    params, machine, dtype, threads:
        As on every engine constructor.
    fused_ops:
        Section II-G post-operators.  Forward and the duality backward
        scenarios support them; the update pass and the Algorithm-7
        backward fallback raise :class:`UnsupportedError`.
    plan:
        A :class:`BlockingPlan` (fwd/bwd/quant) or
        :class:`UpdBlockingPlan` (upd) overriding the heuristic choice.
    prefetch:
        Software-prefetch levels for the JIT'ed kernels
        (``"none" | "l1" | "l2" | "both"``; ``None`` defers to
        ``replay.prefetch``, itself defaulting to ``"both"``).
    kernel_cache:
        A :class:`KernelCache` to share between engines (defaults to the
        process-wide cache).
    tracer:
        A :class:`repro.obs.Tracer` to record spans into (defaults to the
        process-wide tracer).
    strategy:
        Update-pass only: a §II-J :class:`UpdStrategy` override.
    chain_limit:
        Quant only: int16 accumulation-chain length (§II-K).
    execution_tier:
        How recorded kernel streams are executed -- an
        :class:`~repro.jit.ExecutionTier` or its string spelling:
        ``"compiled"`` (default; vectorized numpy closures from
        :mod:`repro.jit.compile` with batched stream replay),
        ``"stream_compiled"`` (whole-stream closure chains from
        :mod:`repro.jit.streamcompile`),
        ``"interpret"`` (the µop interpreter, one call per record),
        ``"einsum"`` (the legacy per-call einsum closures) or
        ``"verify"`` (run compiled *and* interpret, assert bitwise
        equality).  ``None`` resolves through ``replay`` and then to the
        process-wide default
        (:func:`repro.jit.set_default_execution_tier`).  Unknown names
        raise :class:`~repro.jit.UnknownTierError` listing the valid
        tiers.
    streams:
        Forward f32 engine only: pre-recorded per-thread
        :class:`~repro.streams.stream.FrozenStream` list (e.g. from a
        serve warm cache) adopted instead of running the dryrun phase.
    replay:
        A :class:`~repro.jit.ReplayOptions` bundle.  The explicit
        ``execution_tier``/``prefetch`` keywords above win over it when
        both are given (back-compat shims); ``replay.trace=True``
        resolves non-trace-safe tiers to the interpreter.
    tuned:
        Consult the :mod:`repro.tune` database for a validated blocking
        plan before falling back to the paper heuristics.  ``True`` uses
        the process default (:func:`repro.tune.set_default_db`), a path
        loads that artifact, or pass a
        :class:`~repro.tune.TuningDatabase` directly.  Only the forward
        pass (f32 and int16) is tuned; an explicit ``plan`` wins.  A
        missing, corrupt or entry-less database degrades silently to the
        heuristics (``tune.db_rejected`` / ``tune.db_misses`` metrics) --
        tuning can never make engine construction fail.
    """
    if replay is not None:
        if execution_tier is None:
            execution_tier = replay.resolve_tier()
        if prefetch is None:
            prefetch = replay.prefetch
    p, quant = _normalize_pass(pass_)
    if dtype is DType.QI16F32:
        quant = True
    if tuned and plan is None and p is Pass.FWD:
        plan, tuned_prefetch = _tuned_plan(
            tuned, params, machine,
            DType.QI16F32 if quant else dtype, kernel_cache,
        )
        if prefetch is None and tuned_prefetch is not None:
            prefetch = tuned_prefetch
    if prefetch is None:
        prefetch = "both"
    if strategy is not None and p is not Pass.UPD:
        raise ReproError("'strategy' applies only to the update pass")
    if chain_limit is not None and not quant:
        raise ReproError("'chain_limit' applies only to the int16 engine")
    if streams is not None and (quant or p is not Pass.FWD):
        raise ReproError(
            "'streams' warm-start applies only to the f32 forward engine"
        )

    if quant:
        if p is not Pass.FWD:
            raise ReproError(
                "the int16 engine covers the forward pass only (§II-K)"
            )
        from repro.quant.qconv_engine import QuantConvForward

        extra = {} if chain_limit is None else {"chain_limit": chain_limit}
        return QuantConvForward(
            params, machine, fused_ops=fused_ops, threads=threads,
            plan=plan, prefetch=prefetch, kernel_cache=kernel_cache,
            tracer=tracer, execution_tier=execution_tier, **extra,
        )
    if p is Pass.FWD:
        return DirectConvForward(
            params, machine, dtype=dtype, fused_ops=fused_ops,
            threads=threads, plan=plan, prefetch=prefetch,
            kernel_cache=kernel_cache, tracer=tracer,
            execution_tier=execution_tier, streams=streams,
        )
    if p is Pass.BWD:
        return DirectConvBackward(
            params, machine, dtype=dtype, fused_ops=fused_ops,
            threads=threads, plan=plan, prefetch=prefetch,
            kernel_cache=kernel_cache, tracer=tracer,
            execution_tier=execution_tier,
        )
    return DirectConvUpd(
        params, machine, dtype=dtype, fused_ops=fused_ops,
        threads=threads, strategy=strategy, plan=plan, prefetch=prefetch,
        kernel_cache=kernel_cache, tracer=tracer,
        execution_tier=execution_tier,
    )
