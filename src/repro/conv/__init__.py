"""Direct convolution: parameters, reference semantics, and blocked engines.

This package is the paper's core contribution (sections II-A..II-J):

* :mod:`repro.conv.params`    -- layer descriptors (Table I rows live here)
* :mod:`repro.conv.reference` -- Algorithms 1/6/8, the numerical gold standard
* :mod:`repro.conv.blocking`  -- RB_P/RB_Q + cache-blocking heuristics
* :mod:`repro.conv.forward`   -- Algorithms 2/3/4 (blocked fwd + fusion)
* :mod:`repro.conv.backward`  -- section II-I duality + Algorithm 7 fallback
* :mod:`repro.conv.upd`       -- Algorithm 9 weight-gradient kernels
* :mod:`repro.conv.fusion`    -- fusable post-ops (Bias/ReLU/BN/eltwise)
"""

from repro.conv.params import ConvParams
from repro.conv.blocking import BlockingPlan, choose_blocking
from repro.conv.fusion import FusedOp, Bias, ReLU, BatchNormApply, EltwiseAdd

__all__ = [
    "ConvParams",
    "BlockingPlan",
    "choose_blocking",
    "FusedOp",
    "Bias",
    "ReLU",
    "BatchNormApply",
    "EltwiseAdd",
]
