"""Backward propagation (section II-I).

The paper's key trick: for the two scenarios covering most contemporary CNN
layers, transform the weight tensor once and reuse the *forward* kernels:

1. ``stride == 1``: ``W'[c][k][-r][-s] = W[k][c][r][s]`` (swap feature maps,
   flip taps) turns the input-gradient update into a forward convolution of
   ``dO`` with "full" padding ``R-1-pad``.
2. ``R == S == 1``: the same swap (no flip needed) turns it into a 1x1
   forward convolution of ``dO`` whose outputs land on the stride grid of
   ``dI`` (the remaining rows/columns are zero).

Everything else falls back to Algorithm 7: a loop nest of small GEMMs
``dI[c,:] += W''[c,k] @ dO[k,:]`` over flipped taps, which cannot hoist the
output loads/stores out of the ``r, s`` loops -- the "small downside" the
paper notes (and the reason stride-2 3x3 layers would dip; ResNet-50 and
Inception-v3 have none).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.arch.machine import SKX, MachineConfig
from repro.conv._compat import legacy_positionals
from repro.conv.blocking import BlockingPlan
from repro.conv.forward import DirectConvForward
from repro.conv.fusion import FusedOp
from repro.conv.params import ConvParams
from repro.jit.compile import resolve_execution_tier
from repro.jit.gemm import GemmDesc, generate_gemm_kernel
from repro.jit.kernel_cache import KernelCache, get_default_cache
from repro.obs.metrics import get_metrics
from repro.obs.tracer import Tracer, get_tracer
from repro.tensor.blocked import BlockedTensor, block_activations, block_weights
from repro.tensor.layout import ActivationLayout
from repro.tensor.transforms import bwd_weight_transform
from repro.types import DType, UnsupportedError

__all__ = ["DirectConvBackward"]


class DirectConvBackward:
    """Input-gradient pass for one layer, built at setup time.

    ``mode`` is one of ``"duality"`` (stride-1 scenario), ``"duality_1x1"``
    (R=S=1 scenario) or ``"gemm"`` (Algorithm 7 fallback).

    ``fused_ops``, ``plan`` and ``prefetch`` configure the *dual* forward
    engine of the two duality scenarios (the plan applies to the
    transformed-weight forward convolution); the Algorithm-7 GEMM fallback
    supports neither fusion nor a forward blocking plan and raises
    :class:`UnsupportedError` if they are requested.
    """

    def __init__(
        self,
        params: ConvParams,
        machine: MachineConfig = SKX,
        *legacy,
        dtype: DType = DType.F32,
        fused_ops: Sequence[FusedOp] = (),
        threads: int = 1,
        plan: BlockingPlan | None = None,
        prefetch: str = "both",
        kernel_cache: KernelCache | None = None,
        tracer: Tracer | None = None,
        execution_tier: str | None = None,
    ) -> None:
        if legacy:
            lv = legacy_positionals(
                "DirectConvBackward",
                ("dtype", "threads", "kernel_cache"),
                legacy,
            )
            dtype = lv.get("dtype", dtype)
            threads = lv.get("threads", threads)
            kernel_cache = lv.get("kernel_cache", kernel_cache)
        self.params = params
        self.machine = machine
        self.dtype = dtype
        self.threads = threads
        self.fused_ops = list(fused_ops)
        self.prefetch = prefetch
        self.cache = (kernel_cache if kernel_cache is not None
                      else get_default_cache())
        self.tracer = tracer if tracer is not None else get_tracer()
        # the duality modes execute through the dual forward engine, which
        # honours the tier; the Algorithm-7 GEMM fallback is a pure-numpy
        # loop nest, so the tier is accepted but has no kernels to select.
        self.execution_tier = resolve_execution_tier(execution_tier)
        p = params
        self.vlen = machine.vlen(dtype)

        if p.stride == 1:
            self.mode = "duality"
            # forward conv of dO (N, K, P, Q) with W' (C, K, R, S),
            # full padding R-1-pad -> output (N, C, H, W)
            self.fwd_params = ConvParams(
                N=p.N,
                C=p.K,
                K=p.C,
                H=p.P,
                W=p.Q,
                R=p.R,
                S=p.S,
                stride=1,
                pad_h=p.R - 1 - p.pad_h,
                pad_w=p.S - 1 - p.pad_w,
            )
            self.engine = DirectConvForward(
                self.fwd_params, machine, dtype=dtype, threads=threads,
                fused_ops=self.fused_ops, plan=plan, prefetch=prefetch,
                kernel_cache=self.cache, tracer=tracer,
                execution_tier=self.execution_tier,
            )
        elif p.is_1x1():
            if p.pad_h or p.pad_w:
                raise UnsupportedError("padded 1x1 convolutions are not used")
            self.mode = "duality_1x1"
            self.fwd_params = ConvParams(
                N=p.N, C=p.K, K=p.C, H=p.P, W=p.Q, R=1, S=1, stride=1,
                pad_h=0, pad_w=0,
            )
            self.engine = DirectConvForward(
                self.fwd_params, machine, dtype=dtype, threads=threads,
                fused_ops=self.fused_ops, plan=plan, prefetch=prefetch,
                kernel_cache=self.cache, tracer=tracer,
                execution_tier=self.execution_tier,
            )
        else:
            if self.fused_ops:
                raise UnsupportedError(
                    "the Algorithm-7 GEMM fallback cannot fuse post-ops"
                )
            if plan is not None:
                raise UnsupportedError(
                    "the Algorithm-7 GEMM fallback takes no forward "
                    "blocking plan"
                )
            self.mode = "gemm"
            self.engine = None
            self._build_gemm_kernel()

        self.di_layout = ActivationLayout(
            n=p.N, c=p.C, h=p.Hp, w=p.Wp, vlen=self.vlen
        )

    # ------------------------------------------------------------------
    def _build_gemm_kernel(self) -> None:
        """µop GEMM variant for the Algorithm-7 fallback (used by the timing
        model and validated against the numpy path in tests)."""
        p = self.params
        vlen = self.vlen
        do_lay = ActivationLayout(n=p.N, c=p.K, h=p.P, w=p.Q, vlen=vlen)
        di_lay = ActivationLayout(n=p.N, c=p.C, h=p.Hp, w=p.Wp, vlen=vlen)
        self.gemm_desc = GemmDesc(
            vlen=vlen,
            k=vlen,
            n=p.Q,
            a_sk=vlen,  # W'' block: (k, c) with c unit stride
            b_sk=1,  # dO k-lane stride
            b_sn=do_lay.strides[3],  # next pixel
            c_sn=p.stride * di_lay.strides[3],  # dI columns on stride grid
        )
        self.gemm_program = self.cache.get(self.gemm_desc, generate_gemm_kernel)

    # ------------------------------------------------------------------
    def transform_weights(self, w: BlockedTensor) -> BlockedTensor:
        """Section II-I weight transform (done once per weight update)."""
        return bwd_weight_transform(w)

    def run_nchw(self, dy: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Compute dI from logical (N,K,P,Q) gradients and (K,C,R,S) weights."""
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span(
                "conv.replay", pass_="bwd", mode=self.mode,
                layer=self.params.describe(),
            ):
                return self._run_nchw(dy, w)
        return self._run_nchw(dy, w)

    def _run_nchw(self, dy: np.ndarray, w: np.ndarray) -> np.ndarray:
        p = self.params
        get_metrics().inc("conv.bwd_calls")
        bw = block_weights(w, self.vlen, dtype=self.dtype.np_input)
        wt = self.transform_weights(bw)
        if self.mode == "duality":
            fp = self.fwd_params
            bdy = block_activations(
                dy, self.vlen, pad_h=fp.pad_h, pad_w=fp.pad_w,
                dtype=self.dtype.np_input,
            )
            return self.engine(bdy, wt).to_nchw()
        if self.mode == "duality_1x1":
            bdy = block_activations(dy, self.vlen, dtype=self.dtype.np_input)
            core = self.engine(bdy, wt).to_nchw()  # (N, C, P, Q)
            di = np.zeros((p.N, p.C, p.H, p.W), dtype=core.dtype)
            di[:, :, :: p.stride, :: p.stride][:, :, : p.P, : p.Q] = core
            return di
        return self._run_gemm(dy, wt)

    def _run_gemm(self, dy: np.ndarray, wt: BlockedTensor) -> np.ndarray:
        """Algorithm 7: small GEMMs over flipped taps, accumulating into the
        padded dI buffer.  ``wt`` is the transformed weight tensor with
        layout ``(cb, kb, r, s, k, c)`` (spatial flip already applied)."""
        p = self.params
        vlen = self.vlen
        bdy = block_activations(dy, vlen, dtype=self.dtype.np_input)
        dov = bdy.view()  # (n, kb, P, Q, vlen_k)
        wv = wt.view()  # (cb, kb, r', s', k, c); r' = R-1-r already flipped
        kb_n = p.K // vlen
        cb_n = p.C // vlen
        dip = np.zeros((p.N, cb_n, p.Hp, p.Wp, vlen), dtype=np.float32)
        for n in range(p.N):
            for kb in range(kb_n):
                for cb in range(cb_n):
                    for oj in range(p.P):
                        ij = p.stride * oj
                        do_row = dov[n, kb, oj]  # (Q, vlen_k)
                        for r in range(p.R):
                            for s in range(p.S):
                                # A = W''[cb,kb,R-1-r,S-1-s]: (k, c)
                                a = wv[cb, kb, p.R - 1 - r, p.S - 1 - s]
                                # dI[n, cb, ij+r, s::stride (Q cols), :]
                                cview = dip[
                                    n, cb, ij + r, s : s + p.stride * p.Q : p.stride
                                ]
                                cview += do_row @ a  # (Q, c)
        if p.pad_h or p.pad_w:
            dip = dip[
                :, :, p.pad_h : p.pad_h + p.H, p.pad_w : p.pad_w + p.W, :
            ]
        n_, cbn, h, w_, v = dip.shape
        return np.ascontiguousarray(
            dip.transpose(0, 1, 4, 2, 3).reshape(n_, cbn * v, h, w_)
        )
