"""Blocking heuristics (sections II-B, II-C, II-D, II-J).

The register blocking factors ``RB_P x RB_Q`` must (a) fit the accumulator
budget of the 32-entry vector register file (a few registers are reserved for
the loaded weight vector, the input broadcast and addressing), and (b) expose
at least ``fma_latency * fma_ports`` independent accumulation chains so the
FMA pipeline never stalls (section II-B).  When ``Q`` is not divisible by
``RB_Q`` a *remainder variant* with different factors is generated instead of
shrinking the main kernel (section II-H), and when ``Q`` itself is smaller
than the latency-hiding threshold the kernel blocks over multiple output rows
(optimization (b) of section II-D).

For 1x1 convolutions the input feature-map loop is pulled inside the spatial
loops so the output block stays in registers across the whole ``C_b``
reduction (section II-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.machine import MachineConfig
from repro.conv.params import ConvParams
from repro.types import CodegenError, DType

__all__ = [
    "BlockingPlan",
    "UpdBlockingPlan",
    "accumulator_budget",
    "choose_blocking",
    "choose_upd_blocking",
]

#: registers reserved for weight vector(s), broadcast source and spill-free
#: addressing -- the rest of the 32-entry file holds accumulators.
RESERVED_REGS = 4

#: int16 kernels keep fp32+int32 accumulator pairs, roughly halving the
#: usable budget (section II-K).
Q16_ACC_BUDGET = 13


def accumulator_budget(
    machine: MachineConfig,
    dtype: DType = DType.F32,
    cap: int | None = None,
) -> int:
    """Live accumulators ``RB_P * RB_Q`` may occupy on ``machine``.

    The register-file constraint shared by the heuristics, the autotuner
    and the :mod:`repro.tune` mapspace: 32 vector registers minus the
    :data:`RESERVED_REGS` reserved for weights/broadcast/addressing,
    halved-ish for int16's accumulator pairs, optionally capped further
    by the caller (output-channel unrolling etc.).
    """
    budget = 32 - RESERVED_REGS
    if dtype is DType.QI16F32:
        budget = min(budget, Q16_ACC_BUDGET)
    if cap is not None:
        budget = min(budget, cap)
    return budget


@dataclass(frozen=True, slots=True)
class BlockingPlan:
    """Forward/backward blocking decisions for one layer on one machine."""

    vlen: int
    rb_p: int
    rb_q: int
    rb_p_rem: int  # remainder-variant factors (0 = no remainder kernel)
    rb_q_rem: int
    loop_order: str  # "cb_outer" (Alg. 2/3) or "cb_inner" (1x1, section II-C)
    hoist_output: bool  # optimization (a) of section II-D
    oj_block: int  # cache blocking: output rows per L2-resident block
    acc_regs: int  # accumulators the main variant keeps live

    @property
    def has_remainder_q(self) -> bool:
        return self.rb_q_rem > 0

    @property
    def has_remainder_p(self) -> bool:
        return self.rb_p_rem > 0

    def variants(self) -> list[tuple[int, int]]:
        """All (rb_p, rb_q) kernel variants this plan requires (II-H)."""
        out = [(self.rb_p, self.rb_q)]
        if self.has_remainder_q:
            out.append((self.rb_p, self.rb_q_rem))
        if self.has_remainder_p:
            out.append((self.rb_p_rem, self.rb_q))
            if self.has_remainder_q:
                out.append((self.rb_p_rem, self.rb_q_rem))
        return out


@dataclass(frozen=True, slots=True)
class UpdBlockingPlan:
    """Weight-gradient blocking (Algorithm 9): spatial block ``B_P x B_Q``."""

    vlen: int
    b_p: int
    b_q: int
    b_p_rem: int
    b_q_rem: int


def _largest_divisor_at_most(n: int, bound: int) -> int:
    """Largest divisor of ``n`` that is <= ``bound`` (at least 1)."""
    best = 1
    for d in range(1, min(n, bound) + 1):
        if n % d == 0:
            best = d
    return best


def choose_blocking(
    p: ConvParams,
    machine: MachineConfig,
    dtype: DType = DType.F32,
    acc_budget_cap: int | None = None,
) -> BlockingPlan:
    """Pick register/cache blocking for forward propagation (and, by the
    duality of section II-I, for backward propagation).

    ``acc_budget_cap`` limits the accumulator budget -- used when something
    else consumes registers: output-channel unrolling (the MKL-DNN SKX
    strategy) or int16 kernels' int32/fp32 accumulator pairs (section II-K).
    """
    vlen = machine.vlen(dtype)
    if p.C % vlen or p.K % vlen:
        raise CodegenError(
            f"feature maps must be multiples of VLEN={vlen}: C={p.C}, K={p.K}"
        )
    acc_budget = machine.fma_ports * machine.fma_latency * 2  # don't exceed;
    acc_budget = min(
        32 - RESERVED_REGS, max(acc_budget, machine.fma_ports * machine.fma_latency)
    )
    if acc_budget_cap is not None:
        acc_budget = min(acc_budget, acc_budget_cap)
    chain_target = machine.fma_ports * machine.fma_latency

    q = p.Q
    # Prefer an exact divisor of Q that satisfies the chain target; a
    # remainder variant is the fallback, not the default.
    rb_q = _largest_divisor_at_most(q, acc_budget)
    rb_q_rem = 0
    if rb_q < chain_target and q > acc_budget:
        # No good divisor (e.g. Q prime-ish): take the largest block and
        # generate a remainder kernel for the tail (section II-H).
        rb_q = min(q, acc_budget)
        rb_q_rem = q % rb_q
    elif q <= acc_budget:
        rb_q = q

    # Optimization (b) of II-D: when the whole row is shorter than the
    # latency-hiding threshold, block over multiple output rows.
    rb_p = 1
    while (
        rb_p * rb_q < chain_target
        and (rb_p + 1) * rb_q <= acc_budget
        and rb_p < p.P
    ):
        rb_p += 1
    rb_p_rem = p.P % rb_p if rb_p > 1 else 0

    loop_order = "cb_inner" if p.is_1x1() else "cb_outer"
    hoist_output = not p.is_1x1()

    oj_block = _choose_oj_block(p, machine, vlen, rb_p)
    return BlockingPlan(
        vlen=vlen,
        rb_p=rb_p,
        rb_q=rb_q,
        rb_p_rem=rb_p_rem,
        rb_q_rem=rb_q_rem,
        loop_order=loop_order,
        hoist_output=hoist_output,
        oj_block=oj_block,
        acc_regs=rb_p * rb_q,
    )


def _choose_oj_block(
    p: ConvParams, machine: MachineConfig, vlen: int, rb_p: int
) -> int:
    """Cache blocking over output rows (section II-C).

    Pick the largest multiple of ``rb_p`` output rows whose working set
    (input rows needed + output rows produced + one weight block) fits in
    roughly half the L2, so streams stay L2-resident across the ``c_b`` loop.
    """
    budget = machine.l2_bytes // 2
    w_block = p.R * p.S * vlen * vlen * 4
    pb = p.P // rb_p if p.P >= rb_p else 1
    best = rb_p
    for blk in range(1, pb + 1):
        rows_out = blk * rb_p
        in_rows = rows_out * p.stride + p.R - 1
        footprint = (
            in_rows * p.Wp * p.C * 4  # input rows across all c_b
            + rows_out * p.Q * vlen * 4  # output rows for one k_b
            + w_block * (p.C // vlen)
        )
        if footprint <= budget:
            best = rows_out
    return max(best, rb_p)


def choose_upd_blocking(
    p: ConvParams,
    machine: MachineConfig,
    dtype: DType = DType.F32,
) -> UpdBlockingPlan:
    """Spatial blocking for the weight-gradient pass (section II-J).

    ``B_P = P`` / ``B_Q = Q`` maximizes register reuse of the VLEN x VLEN
    gradient block but reads ``H*W*VLEN`` input entries per kernel call; for
    large spatial extents we shrink the block so the footprint stays in L2.
    """
    vlen = machine.vlen(dtype)
    budget = machine.l2_bytes // 2
    b_q = p.Q
    b_p = p.P
    while b_p > 1:
        in_rows = b_p * p.stride + p.R - 1
        in_cols = b_q * p.stride + p.S - 1
        footprint = (
            in_rows * in_cols * vlen * 4
            + b_p * b_q * vlen * 4
            + p.R * p.S * vlen * vlen * 4
        )
        if footprint <= budget:
            break
        b_p = b_p // 2
    b_p = max(b_p, 1)
    return UpdBlockingPlan(
        vlen=vlen,
        b_p=b_p,
        b_q=b_q,
        b_p_rem=p.P % b_p,
        b_q_rem=0,
    )
