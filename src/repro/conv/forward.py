"""Blocked forward propagation engine (Algorithms 2-5).

:class:`DirectConvForward` is the paper's forward-convolution layer object:

1. at construction it picks a blocking plan (section II-B/C), JITs the needed
   microkernel variants through the kernel cache (section II-D/H), and
   *dryruns* the Algorithm-4 loop nest once per thread, recording kernel
   streams and RLE segments (section II-H);
2. each call replays the streams (Algorithm 5) -- branch-free dispatch
   through the variant table, fused operators applied via APPLY records while
   the output block is hot (section II-G).

Every microkernel invocation is realized from the *same* descriptor through
one of the execution tiers (:mod:`repro.jit.compile`):

* ``compiled`` (default) -- the µop program vectorized once into a batched
  numpy closure, bit-identical to the interpreter;
* ``interpret`` -- the instruction-level µop interpreter (exact memory
  traces; orders of magnitude slower);
* ``einsum`` -- the legacy per-call numpy contraction closures built
  straight from the descriptor;
* ``verify`` -- run ``compiled`` and ``interpret`` back to back and assert
  bitwise equality of the outputs;
* ``stream_compiled`` -- the whole replay (CONV chunks *and* fused APPLY
  records) pre-lowered once into a flat closure chain with preallocated
  scratch (:mod:`repro.jit.streamcompile`); bit-identical to ``compiled``
  and therefore to the interpreter.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.arch.machine import SKX, MachineConfig
from repro.conv._compat import legacy_positionals
from repro.conv.blocking import BlockingPlan, choose_blocking
from repro.conv.fusion import EltwiseAdd, FusedOp
from repro.conv.params import ConvParams
from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.jit.compile import TierMismatchError, resolve_execution_tier
from repro.jit.interpreter import execute_kernel
from repro.jit.kernel_cache import KernelCache, get_default_cache
from repro.jit.streamcompile import StreamExecutor, compile_stream
from repro.obs.metrics import get_metrics
from repro.obs.tracer import Tracer, get_tracer
from repro.parallel.partition import partition_forward
from repro.streams.rle import encode_segments
from repro.streams.stream import KernelStream
from repro.tensor.blocked import BlockedTensor, block_activations, block_weights
from repro.tensor.layout import ActivationLayout, WeightLayout
from repro.types import DType, ShapeError

__all__ = ["DirectConvForward"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class DirectConvForward:
    """One forward-convolution layer, set up once and replayed per minibatch.

    Parameters
    ----------
    params:
        Layer shape (Table I row).
    machine:
        Target machine; decides VLEN, instruction selection (fused memory
        operands vs 4FMA) and the blocking heuristics.
    fused_ops:
        Post-operators applied via APPLY stream records after the final
        ``c_b`` accumulation of each output sub-tensor (section II-G).
    threads:
        Simulated thread count; each thread gets its own kernel stream.
    """

    def __init__(
        self,
        params: ConvParams,
        machine: MachineConfig = SKX,
        *legacy,
        dtype: DType = DType.F32,
        fused_ops: Sequence[FusedOp] = (),
        threads: int = 1,
        plan: BlockingPlan | None = None,
        prefetch: str = "both",
        kernel_cache: KernelCache | None = None,
        tracer: Tracer | None = None,
        execution_tier: str | None = None,
        streams: Sequence | None = None,
    ) -> None:
        if legacy:
            lv = legacy_positionals(
                "DirectConvForward",
                ("dtype", "fused_ops", "threads", "plan", "prefetch",
                 "kernel_cache"),
                legacy,
            )
            dtype = lv.get("dtype", dtype)
            fused_ops = lv.get("fused_ops", fused_ops)
            threads = lv.get("threads", threads)
            plan = lv.get("plan", plan)
            prefetch = lv.get("prefetch", prefetch)
            kernel_cache = lv.get("kernel_cache", kernel_cache)
        self.params = params
        self.machine = machine
        self.dtype = dtype
        self.fused_ops = list(fused_ops)
        self.threads = max(1, threads)
        self.plan = plan or choose_blocking(params, machine, dtype)
        self.prefetch = prefetch
        self.cache = (kernel_cache if kernel_cache is not None
                      else get_default_cache())
        self.tracer = tracer if tracer is not None else get_tracer()
        self.execution_tier = resolve_execution_tier(execution_tier)

        p = params
        vlen = self.plan.vlen
        self.in_layout = ActivationLayout(n=p.N, c=p.C, h=p.Hp, w=p.Wp, vlen=vlen)
        self.w_layout = WeightLayout(k=p.K, c=p.C, r=p.R, s=p.S, vlen=vlen)
        self.out_layout = ActivationLayout(n=p.N, c=p.K, h=p.P, w=p.Q, vlen=vlen)
        self.cb = p.C // vlen
        self.kb = p.K // vlen
        self.pb = _ceil_div(p.P, self.plan.rb_p)
        self.qb = _ceil_div(p.Q, self.plan.rb_q)

        self._descs: list[ConvKernelDesc] = []
        self._desc_index: dict[tuple, int] = {}
        self.programs = []  # µop programs, parallel to self._descs
        self.compiled = []  # CompiledKernel | None, parallel to self._descs
        # stream_compiled executors, one per buffer-dtype signature; an
        # executor owns mutable per-stream state (cells + scratch) so it is
        # engine-private, never shared through the kernel cache
        self._stream_execs: dict[tuple, StreamExecutor] = {}
        self._build_variants()
        metrics = get_metrics()
        if streams is not None:
            with self.tracer.span(
                "conv.stream_restore", pass_="fwd",
                layer=params.describe(), threads=self.threads,
            ):
                self._restore_streams(streams)
            metrics.inc("conv.streams_restored", len(self.streams))
        else:
            with self.tracer.span(
                "conv.dryrun", pass_="fwd", layer=params.describe(),
                threads=self.threads,
            ):
                self._dryrun()
            metrics.inc("conv.streams_recorded", len(self.streams))
        metrics.inc("conv.engines_built")
        metrics.inc(
            "conv.segments_recorded", sum(len(s) for s in self.segments)
        )

    # ------------------------------------------------------------------
    # variant construction (section II-D/H)
    # ------------------------------------------------------------------
    def _variant_id(self, rb_p: int, rb_q: int, zero_init: bool) -> int:
        key = (rb_p, rb_q, zero_init)
        return self._desc_index[key]

    def _build_variants(self) -> None:
        plan, p = self.plan, self.params
        ist = self.in_layout.strides
        wst = self.w_layout.strides
        ost = self.out_layout.strides
        cb_unroll = self.cb if plan.loop_order == "cb_inner" else 1
        shapes = set()
        rps = [plan.rb_p] + ([plan.rb_p_rem] if plan.has_remainder_p else [])
        rqs = [plan.rb_q] + ([plan.rb_q_rem] if plan.has_remainder_q else [])
        for rp in rps:
            for rq in rqs:
                shapes.add((rp, rq))
        inits = [True] if cb_unroll == self.cb else [True, False]
        for rp, rq in sorted(shapes):
            for zi in inits:
                desc = ConvKernelDesc(
                    vlen=plan.vlen,
                    rb_p=rp,
                    rb_q=rq,
                    R=p.R,
                    S=p.S,
                    stride=p.stride,
                    i_strides=(ist[1], ist[2], ist[3]),
                    w_strides=(wst[1], wst[2], wst[3], wst[4]),
                    o_strides=(ost[2], ost[3]),
                    cb_unroll=cb_unroll,
                    zero_init=zi,
                    hoist_output=plan.hoist_output or cb_unroll > 1,
                    fused_memop=(
                        not self.machine.has_4fma and self.dtype is DType.F32
                    ),
                    use_4fma=self.machine.has_4fma and self.dtype is DType.F32,
                    use_4vnni=(
                        self.machine.has_4fma and self.dtype is DType.QI16F32
                    ),
                    prefetch=self.prefetch,
                    dtype=self.dtype,
                )
                self._desc_index[(rp, rq, zi)] = len(self._descs)
                self._descs.append(desc)
                self.programs.append(self.cache.get(desc, generate_conv_kernel))
                self.compiled.append(
                    self.cache.get_compiled(desc, generate_conv_kernel)
                )

    # ------------------------------------------------------------------
    # dryrun (section II-H)
    # ------------------------------------------------------------------
    def _block_coords(self, ojb: int, oib: int) -> tuple[int, int, int, int]:
        """(oj, oi, rb_p, rb_q) for block indices, honoring remainders."""
        plan, p = self.plan, self.params
        oj = ojb * plan.rb_p
        oi = oib * plan.rb_q
        rp = min(plan.rb_p, p.P - oj)
        rq = min(plan.rb_q, p.Q - oi)
        return oj, oi, rp, rq

    def _dryrun(self) -> None:
        plan, p = self.plan, self.params
        work = partition_forward(p.N, self.kb, self.pb, self.threads)
        cb_inner = plan.loop_order == "cb_inner"
        oj_chunk = max(1, plan.oj_block // plan.rb_p)
        streams = []
        for items in work:
            st = KernelStream()
            for item in items:
                n, kb = item.n, item.kb
                ojb_range = range(item.ojb_lo, item.ojb_hi)
                if cb_inner:
                    self._dryrun_cb_inner(st, n, kb, ojb_range)
                else:
                    self._dryrun_cb_outer(st, n, kb, ojb_range, oj_chunk)
            streams.append(st.freeze())
        self.streams = streams
        self.segments = [encode_segments(s) for s in streams]

    def _restore_streams(self, streams) -> None:
        """Adopt pre-recorded frozen streams (section II-H: the dryrun
        "has to be performed only once"; a restored engine does not even
        pay it once per process).  Streams are validated structurally --
        variant ids must index this engine's variant table and every
        offset must fall inside the corresponding buffer -- so a stream
        recorded for a different layer setup is rejected instead of
        replaying out of bounds."""
        streams = list(streams)
        if len(streams) != self.threads:
            raise ShapeError(
                f"restored stream count {len(streams)} != threads "
                f"{self.threads} for {self.params.describe()}"
            )
        n_variants = len(self._descs)
        n_ops = len(self.fused_ops)
        for st in streams:
            if len(st) == 0:
                continue
            kinds = np.asarray(st.kinds)
            conv = kinds >= 0
            if kinds.max(initial=-1) >= n_variants:
                raise ShapeError(
                    f"restored stream uses variant {int(kinds.max())} but "
                    f"engine has {n_variants} for {self.params.describe()}"
                )
            ops = np.asarray(st.apply_op)[~conv]
            if ops.size and (
                int(ops.min()) < 0 or int(ops.max()) >= n_ops
            ):
                bad = int(ops.min()) if int(ops.min()) < 0 else int(ops.max())
                raise ShapeError(
                    f"restored stream applies fused op {bad} but engine "
                    f"has {n_ops} for {self.params.describe()}"
                )
            for offs, size, what in (
                (st.i_off, self.in_layout.size, "input"),
                (st.w_off, self.w_layout.size, "weight"),
                (st.o_off, self.out_layout.size, "output"),
            ):
                offs = np.asarray(offs)[conv]
                if offs.size and (
                    int(offs.min()) < 0 or int(offs.max()) >= size
                ):
                    raise ShapeError(
                        f"restored stream {what} offsets fall outside the "
                        f"{what} buffer for {self.params.describe()}"
                    )
        self.streams = streams
        self.segments = [encode_segments(s) for s in streams]

    def _record_applies(self, st: KernelStream, variant: int, kb: int, o_off: int) -> None:
        for op_idx in range(len(self.fused_ops)):
            st.record_apply(op_idx, o_off, kb, variant)

    def _dryrun_cb_inner(self, st: KernelStream, n: int, kb: int, ojb_range) -> None:
        p = self.params
        for ojb in ojb_range:
            for oib in range(self.qb):
                oj, oi, rp, rq = self._block_coords(ojb, oib)
                variant = self._variant_id(rp, rq, True)
                i_off = self.in_layout.offset(n, 0, oj * p.stride, oi * p.stride)
                w_off = self.w_layout.offset(kb, 0, 0, 0)
                o_off = self.out_layout.offset(n, kb, oj, oi)
                st.record_conv(variant, i_off, w_off, o_off)
                if self.fused_ops:
                    self._record_applies(st, variant, kb, o_off)

    def _dryrun_cb_outer(
        self, st: KernelStream, n: int, kb: int, ojb_range, oj_chunk: int
    ) -> None:
        """Algorithm 4 loop nest with spatial cache blocking (section II-C):
        output-row chunks are kept L2-resident across the whole c_b loop."""
        p = self.params
        ojbs = list(ojb_range)
        for c0 in range(0, len(ojbs), oj_chunk):
            chunk = ojbs[c0 : c0 + oj_chunk]
            for cb in range(self.cb):
                zero = cb == 0
                last = cb == self.cb - 1
                for ojb in chunk:
                    for oib in range(self.qb):
                        oj, oi, rp, rq = self._block_coords(ojb, oib)
                        variant = self._variant_id(rp, rq, zero)
                        i_off = self.in_layout.offset(
                            n, cb, oj * p.stride, oi * p.stride
                        )
                        w_off = self.w_layout.offset(kb, cb, 0, 0)
                        o_off = self.out_layout.offset(n, kb, oj, oi)
                        st.record_conv(variant, i_off, w_off, o_off)
                        if last and self.fused_ops:
                            self._record_applies(st, variant, kb, o_off)

    # ------------------------------------------------------------------
    # replay: numpy-contraction kernels (the real execution path)
    # ------------------------------------------------------------------
    def _make_conv_closures(
        self, x: np.ndarray, w: np.ndarray, o: np.ndarray
    ) -> list[Callable]:
        closures = []
        itemsize = o.itemsize
        in_itemsize = x.itemsize
        for desc in self._descs:
            iscb, ish, isw = desc.i_strides
            wscb, wsr, wss, wsc = desc.w_strides
            osh, osw = desc.o_strides
            stn = desc.stride
            ishape = (
                desc.cb_unroll,
                desc.rb_p,
                desc.R,
                desc.rb_q,
                desc.S,
                desc.vlen,
            )
            istr = tuple(
                s * in_itemsize
                for s in (iscb, stn * ish, ish, stn * isw, isw, 1)
            )
            wshape = (desc.cb_unroll, desc.R, desc.S, desc.vlen, desc.vlen)
            wstr = tuple(s * in_itemsize for s in (wscb, wsr, wss, wsc, 1))
            oshape = (desc.rb_p, desc.rb_q, desc.vlen)
            ostr = tuple(s * itemsize for s in (osh, osw, 1))
            zero_init = desc.zero_init

            def call(
                i_off: int,
                w_off: int,
                o_off: int,
                pi: int,
                pw: int,
                po: int,
                *,
                _is=ishape,
                _ist=istr,
                _ws=wshape,
                _wst=wstr,
                _os=oshape,
                _ost=ostr,
                _zi=zero_init,
            ) -> None:
                iv = as_strided(x[i_off:], _is, _ist)
                wv = as_strided(w[w_off:], _ws, _wst)
                ov = as_strided(o[o_off:], _os, _ost)
                acc = np.einsum("bprqsc,brsck->pqk", iv, wv, optimize=True)
                if _zi:
                    ov[...] = acc
                else:
                    ov += acc

            closures.append(call)
        return closures

    def __call__(
        self,
        x: BlockedTensor,
        w: BlockedTensor,
        out: BlockedTensor | None = None,
        parallel: bool = False,
    ) -> BlockedTensor:
        """Replay all thread streams on blocked buffers (Algorithm 5).

        With ``parallel=True`` the per-thread streams replay concurrently on
        a real thread pool -- safe because the section II-F partition gives
        every stream a disjoint set of output blocks (and numpy contractions
        release the GIL), so this demonstrates genuine shared-memory
        parallelism of the recorded streams.
        """
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span(
                "conv.replay", pass_="fwd", layer=self.params.describe(),
            ):
                out = self._execute(x, w, out, parallel)
        else:
            out = self._execute(x, w, out, parallel)
        metrics = get_metrics()
        metrics.inc("conv.fwd_calls")
        metrics.inc("stream.conv_calls", self.total_conv_calls)
        return out

    def _dequant_scale(self) -> float:
        """Runtime multiplier for ``VCVT`` immediates (int16 engine hook)."""
        return 1.0

    def _prepare_weights(self, w: BlockedTensor) -> BlockedTensor:
        """Kernel-facing weight buffer (int16 engine hook: VNNI packing)."""
        return w

    def _shapes_by_variant(self, itemsize: int) -> dict:
        shape_by_variant = {}
        for vid, desc in enumerate(self._descs):
            osh, osw = desc.o_strides
            shape_by_variant[vid] = (
                (desc.rb_p, desc.rb_q, desc.vlen),
                (osh * itemsize, osw * itemsize, itemsize),
            )
        return shape_by_variant

    def _interp_kernel(self, vid: int, buffers: dict, scale: float):
        prog = self.programs[vid]

        def call(i_off, w_off, o_off, pi, pw, po) -> None:
            execute_kernel(
                prog,
                buffers,
                {
                    "I": i_off,
                    "W": w_off,
                    "O": o_off,
                    "I_pf": pi,
                    "W_pf": pw,
                    "O_pf": po,
                },
                scale=scale,
            )

        return call

    def _tier_kernels(
        self, tier: str, xb: np.ndarray, wb: np.ndarray, ob: np.ndarray
    ) -> list[Callable]:
        """Variant-indexed kernel table for one execution tier."""
        if tier == "einsum":
            return self._make_conv_closures(xb, wb, ob)
        buffers = {"I": xb, "W": wb, "O": ob}
        scale = self._dequant_scale()
        if tier == "interpret":
            return [
                self._interp_kernel(vid, buffers, scale)
                for vid in range(len(self.programs))
            ]
        # compiled: any variant the translator rejected falls back to the
        # (equally exact) interpreter so tier semantics stay bitwise stable
        kernels: list[Callable] = []
        for vid, ck in enumerate(self.compiled):
            if ck is not None:
                kernels.append(
                    ck.bind(buffers, args=("I", "W", "O"), scale=scale)
                )
            else:
                get_metrics().inc("exec.compile_fallbacks")
                kernels.append(self._interp_kernel(vid, buffers, scale))
        return kernels

    # ------------------------------------------------------------------
    # stream_compiled tier: whole-segment closure chains (ROADMAP #5)
    # ------------------------------------------------------------------
    def _stream_out_dtype(self) -> np.dtype:
        """Output dtype the replay buffers will actually carry (int16
        engine hook: the quantized engine replays into fp32)."""
        return np.dtype(self.dtype.np_accum)

    def _stream_executor(
        self, xb: np.ndarray, wb: np.ndarray, ob: np.ndarray
    ) -> StreamExecutor:
        key = (xb.dtype.str, wb.dtype.str, ob.dtype.str)
        ex = self._stream_execs.get(key)
        if ex is None:
            ex = self._build_stream_executor(
                xb.dtype, wb.dtype, ob.dtype
            )
            self._stream_execs[key] = ex
        return ex

    def _build_stream_executor(self, xdt, wdt, odt) -> StreamExecutor:
        with self.tracer.span(
            "jit.stream_compile", pass_="fwd", layer=self.params.describe(),
        ):
            proto = {
                "I": np.empty(0, dtype=xdt),
                "W": np.empty(0, dtype=wdt),
                "O": np.empty(0, dtype=odt),
            }
            shape_by_variant = self._shapes_by_variant(np.dtype(odt).itemsize)
            programs = [
                compile_stream(
                    stream, segments, self.compiled, self.programs, proto,
                    args=("I", "W", "O"), fused_ops=self.fused_ops,
                    shape_by_variant=shape_by_variant,
                )
                for stream, segments in zip(self.streams, self.segments)
            ]
        ex = StreamExecutor(programs)
        self.cache.note_stream_program(ex.meta())
        return ex

    def prepare_stream_compiled(self) -> dict:
        """Pre-build the stream_compiled executor for this engine's replay
        dtypes (serve boot / warm-cache path); returns its metadata."""
        idt = np.dtype(self.dtype.np_input)
        return self._stream_executor(
            np.empty(0, dtype=idt),
            np.empty(0, dtype=idt),
            np.empty(0, dtype=self._stream_out_dtype()),
        ).meta()

    def _run_streams(self, kernels, ob, shape_by_variant, parallel) -> None:
        if parallel and len(self.streams) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=len(self.streams)) as pool:
                futures = [
                    pool.submit(
                        self._replay_stream, stream, segments, kernels, ob,
                        shape_by_variant,
                    )
                    for stream, segments in zip(self.streams, self.segments)
                ]
                for f in futures:
                    f.result()
        else:
            for stream, segments in zip(self.streams, self.segments):
                self._replay_stream(
                    stream, segments, kernels, ob, shape_by_variant
                )

    def _execute(
        self,
        x: BlockedTensor,
        w: BlockedTensor,
        out: BlockedTensor | None,
        parallel: bool,
        tier: str | None = None,
    ) -> BlockedTensor:
        if x.layout != self.in_layout:
            raise ShapeError(
                f"input layout {x.layout} != expected {self.in_layout}"
            )
        if w.layout != self.w_layout:
            raise ShapeError(f"weight layout {w.layout} != {self.w_layout}")
        w = self._prepare_weights(w)
        if out is None:
            out = BlockedTensor(
                np.zeros(self.out_layout.size, dtype=self.dtype.np_accum),
                self.out_layout,
            )
        xb, wb, ob = x.data, w.data, out.data
        shape_by_variant = self._shapes_by_variant(ob.itemsize)
        tier = tier if tier is not None else self.execution_tier
        metrics = get_metrics()

        if tier == "verify":
            ref = ob.copy()
            self._run_streams(
                self._tier_kernels("compiled", xb, wb, ob), ob,
                shape_by_variant, parallel,
            )
            self._run_streams(
                self._tier_kernels("interpret", xb, wb, ref), ref,
                shape_by_variant, False,
            )
            got, want = ob.view(np.uint32), ref.view(np.uint32)
            if not np.array_equal(got, want):
                nbad = int((got != want).sum())
                raise TierMismatchError(
                    f"compiled/interpret outputs differ bitwise in {nbad} "
                    f"lanes for {self.params.describe()}"
                )
            metrics.inc("exec.verify.checks")
            metrics.inc("exec.calls.compiled", self.total_conv_calls)
            metrics.inc("exec.calls.interpret", self.total_conv_calls)
        elif tier == "stream_compiled":
            ex = self._stream_executor(xb, wb, ob)
            ex.run(
                {"I": xb, "W": wb, "O": ob},
                scale=self._dequant_scale(),
                parallel=parallel,
            )
            metrics.inc("exec.calls.stream_compiled", self.total_conv_calls)
        else:
            kernels = self._tier_kernels(tier, xb, wb, ob)
            self._run_streams(kernels, ob, shape_by_variant, parallel)
            metrics.inc(f"exec.calls.{tier}", self.total_conv_calls)
        return out

    def _replay_stream(self, stream, segments, kernels, ob, shape_by_variant):
        """Algorithm 5 with APPLY dispatch resolving block shapes."""
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("stream.replay", calls=len(stream)):
                self._replay_stream_body(
                    stream, segments, kernels, ob, shape_by_variant
                )
        else:
            self._replay_stream_body(
                stream, segments, kernels, ob, shape_by_variant
            )

    def _replay_stream_body(
        self, stream, segments, kernels, ob, shape_by_variant
    ):
        from repro.streams.rle import SegmentKind

        kinds = stream.kinds_list
        i_off = stream.i_off_list
        w_off = stream.w_off_list
        o_off = stream.o_off_list
        apply_op = stream.apply_op_list
        next_conv = stream.next_conv_list
        for seg in segments:
            if seg.kind is SegmentKind.APPLY:
                t = seg.start
                op = self.fused_ops[apply_op[t]]
                shape, strides = shape_by_variant[i_off[t]]
                block = as_strided(ob[o_off[t] :], shape, strides)
                if isinstance(op, EltwiseAdd):
                    other = as_strided(
                        op.other_flat[o_off[t] :], shape, strides
                    )
                    op.apply_block(block, w_off[t], other)
                else:
                    op.apply_block(block, w_off[t])
                continue
            # CONV-STREAK, split into same-variant runs; the compiled tier
            # exposes `.batch` and takes each run as one vectorized call
            stop = seg.start + seg.info
            lo = seg.start
            while lo < stop:
                variant = kinds[lo]
                hi = lo + 1
                while hi < stop and kinds[hi] == variant:
                    hi += 1
                fn = kernels[variant]
                batch = getattr(fn, "batch", None)
                if batch is not None and hi - lo > 1:
                    batch(
                        stream.i_off[lo:hi],
                        stream.w_off[lo:hi],
                        stream.o_off[lo:hi],
                    )
                else:
                    for t in range(lo, hi):
                        nt = next_conv[t]
                        fn(
                            i_off[t], w_off[t], o_off[t],
                            i_off[nt], w_off[nt], o_off[nt],
                        )
                lo = hi

    # ------------------------------------------------------------------
    # convenience and validation paths
    # ------------------------------------------------------------------
    def run_nchw(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Block logical inputs, execute, return logical (N, K, P, Q)."""
        p = self.params
        bx = block_activations(
            x, self.plan.vlen, pad_h=p.pad_h, pad_w=p.pad_w,
            dtype=self.dtype.np_input,
        )
        bw = block_weights(w, self.plan.vlen, dtype=self.dtype.np_input)
        return self(bx, bw).to_nchw()

    def execute_uops(
        self, x: BlockedTensor, w: BlockedTensor, out: BlockedTensor | None = None
    ) -> BlockedTensor:
        """Replay the identical streams through the µop interpreter (the
        ``interpret`` tier without going through ``__call__``'s metrics).

        Orders of magnitude slower than the compiled tier; the reference the
        ``verify`` tier and the equivalence tests compare against.
        """
        if out is None:
            out = BlockedTensor(
                np.zeros(self.out_layout.size, dtype=self.dtype.np_accum),
                self.out_layout,
            )
        w = self._prepare_weights(w)
        xb, wb, ob = x.data, w.data, out.data
        shape_by_variant = self._shapes_by_variant(ob.itemsize)
        kernels = self._tier_kernels("interpret", xb, wb, ob)
        self._run_streams(kernels, ob, shape_by_variant, False)
        return out

    # ------------------------------------------------------------------
    @property
    def total_conv_calls(self) -> int:
        return sum(s.conv_calls for s in self.streams)

    @property
    def variant_names(self) -> list[str]:
        return [d.variant_name for d in self._descs]
