"""Fusable post-operators (section II-G).

Modern topologies follow nearly every convolution with bandwidth-bound
element-wise layers (Bias, BatchNorm application, ReLU, residual adds).  The
paper decomposes these so they run on an output sub-tensor right after its
final ``c_b`` accumulation, while the data is hot in cache -- saving a full
read+write pass over the output tensor per fused operator.

Each :class:`FusedOp` provides

* ``kernel_tag`` -- the tag baked into the JIT descriptor (see
  :class:`~repro.jit.codegen.ConvKernelDesc`);
* ``bind(kb, vlen)`` -- the extra buffers/base-offsets the µop kernel needs;
* ``apply_block`` -- the in-place numpy semantics used by the blocked engine
  (and by the streams replay's APPLY calls);
* ``bytes_saved`` -- the memory traffic the fusion avoids, consumed by the
  performance model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import ShapeError

__all__ = ["FusedOp", "Bias", "ReLU", "BatchNormApply", "EltwiseAdd"]


class FusedOp:
    """Base class: an element-wise operator fused after a convolution."""

    #: tag used in ConvKernelDesc.fused
    kernel_tag: str = ""

    def bind(self, kb: int, vlen: int) -> tuple[dict[str, np.ndarray], dict[str, int]]:
        """(buffers, base_offsets) the µop kernel variant consumes."""
        return {}, {}

    def apply_block(self, block: np.ndarray, kb: int) -> None:
        """In-place application to an ``(..., vlen)`` output sub-block of
        output-feature block ``kb``."""
        raise NotImplementedError

    def bytes_saved(self, out_bytes: int) -> int:
        """Output-tensor traffic (bytes) a fused application avoids versus a
        standalone pass: one read + one write of the output by default."""
        return 2 * out_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


@dataclass
class Bias(FusedOp):
    """``O[..., k] += bias[k]``."""

    bias: np.ndarray
    kernel_tag: str = "bias"

    def __post_init__(self) -> None:
        self.bias = np.asarray(self.bias, dtype=np.float32).reshape(-1)

    def bind(self, kb: int, vlen: int):
        if (kb + 1) * vlen > self.bias.size:
            raise ShapeError("bias shorter than K")
        return {"B": self.bias}, {"B": kb * vlen}

    def apply_block(self, block: np.ndarray, kb: int) -> None:
        vlen = block.shape[-1]
        block += self.bias[kb * vlen : (kb + 1) * vlen]


class ReLU(FusedOp):
    """``O = max(O, 0)``."""

    kernel_tag = "relu"

    def apply_block(self, block: np.ndarray, kb: int) -> None:
        np.maximum(block, 0.0, out=block)


@dataclass
class BatchNormApply(FusedOp):
    """Apply pre-computed batch-norm statistics: ``O = O*gamma'[k] + beta'[k]``.

    (The scale/shift form after folding mean/var, which is how inference and
    the fused training forward consume BN.)
    """

    gamma: np.ndarray
    beta: np.ndarray
    kernel_tag: str = "bn"

    def __post_init__(self) -> None:
        self.gamma = np.asarray(self.gamma, dtype=np.float32).reshape(-1)
        self.beta = np.asarray(self.beta, dtype=np.float32).reshape(-1)
        if self.gamma.shape != self.beta.shape:
            raise ShapeError("gamma/beta length mismatch")

    def bind(self, kb: int, vlen: int):
        return (
            {"G": self.gamma, "Bt": self.beta},
            {"G": kb * vlen, "Bt": kb * vlen},
        )

    def apply_block(self, block: np.ndarray, kb: int) -> None:
        vlen = block.shape[-1]
        sl = slice(kb * vlen, (kb + 1) * vlen)
        block *= self.gamma[sl]
        block += self.beta[sl]


@dataclass
class EltwiseAdd(FusedOp):
    """Residual add: ``O += E`` where ``E`` shares O's blocked layout."""

    other_flat: np.ndarray
    kernel_tag: str = "add"

    def bind(self, kb: int, vlen: int):
        # base offset equals O's own offset; the engine passes it per call
        return {"E": self.other_flat}, {}

    def apply_block(self, block: np.ndarray, kb: int, other_block=None) -> None:
        if other_block is None:
            raise ShapeError("EltwiseAdd.apply_block needs the residual block")
        block += other_block

    def bytes_saved(self, out_bytes: int) -> int:
        # avoided: read O + read E + write O of the standalone pass, minus
        # the E read that still happens fused
        return 2 * out_bytes
