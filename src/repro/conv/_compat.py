"""Deprecation shims for the pre-`make_engine` constructor call shapes.

The engine constructors accepted configuration positionally (in per-class
orders that had drifted apart); the unified API makes everything after
``machine`` keyword-only.  :func:`legacy_positionals` maps the old
positional shapes onto the new keyword set with a :class:`DeprecationWarning`
so existing call sites keep working for one release.
"""

from __future__ import annotations

import warnings

__all__ = ["legacy_positionals"]


def legacy_positionals(
    cls_name: str, names: tuple[str, ...], values: tuple
) -> dict:
    """Map legacy positional ``values`` onto keyword ``names``, warning."""
    if len(values) > len(names):
        raise TypeError(
            f"{cls_name}() takes at most {2 + len(names)} positional "
            f"arguments ({2 + len(values)} given)"
        )
    shown = ", ".join(names[: len(values)])
    warnings.warn(
        f"{cls_name}: positional arguments after 'machine' are deprecated; "
        f"pass {shown} by keyword (or use repro.make_engine)",
        DeprecationWarning,
        stacklevel=3,
    )
    return dict(zip(names, values))
