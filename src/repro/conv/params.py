"""Convolution layer descriptors.

Follows the paper's notation (section II): input tensor ``N x C x H x W``,
weights ``K x C x R x S``, output ``N x K x P x Q``, with spatial stride and
symmetric zero padding.  ``P = (H + 2*pad_h - R)//stride + 1`` and likewise
for ``Q``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.types import ShapeError

__all__ = ["ConvParams"]


@dataclass(frozen=True, slots=True)
class ConvParams:
    """Shape and hyper-parameters of one convolution layer."""

    N: int
    C: int
    K: int
    H: int
    W: int
    R: int
    S: int
    stride: int = 1
    pad_h: int = -1  # -1 = "same-style": (R-1)//2
    pad_w: int = -1

    def __post_init__(self) -> None:
        if self.pad_h < 0:
            object.__setattr__(self, "pad_h", (self.R - 1) // 2)
        if self.pad_w < 0:
            object.__setattr__(self, "pad_w", (self.S - 1) // 2)
        for name in ("N", "C", "K", "H", "W", "R", "S", "stride"):
            if getattr(self, name) <= 0:
                raise ShapeError(f"{name} must be positive in {self}")
        if self.R > self.H + 2 * self.pad_h or self.S > self.W + 2 * self.pad_w:
            raise ShapeError(f"filter larger than padded input in {self}")

    # ---- derived dimensions ---------------------------------------------
    @property
    def P(self) -> int:
        return (self.H + 2 * self.pad_h - self.R) // self.stride + 1

    @property
    def Q(self) -> int:
        return (self.W + 2 * self.pad_w - self.S) // self.stride + 1

    @property
    def Hp(self) -> int:
        """Padded input height (physical storage)."""
        return self.H + 2 * self.pad_h

    @property
    def Wp(self) -> int:
        return self.W + 2 * self.pad_w

    @property
    def flops(self) -> int:
        """Fp ops of one forward pass (each MAC counts 2); bwd and upd
        perform the same number of MACs (sections II-I/II-J)."""
        return 2 * self.N * self.K * self.C * self.P * self.Q * self.R * self.S

    def input_bytes(self, itemsize: int = 4) -> int:
        return self.N * self.C * self.H * self.W * itemsize

    def output_bytes(self, itemsize: int = 4) -> int:
        return self.N * self.K * self.P * self.Q * itemsize

    def weight_bytes(self, itemsize: int = 4) -> int:
        return self.K * self.C * self.R * self.S * itemsize

    @property
    def operational_intensity(self) -> float:
        """Flops per byte of compulsory (first-touch) traffic."""
        bytes_total = (
            self.input_bytes() + self.output_bytes() * 2 + self.weight_bytes()
        )
        return self.flops / bytes_total

    def with_minibatch(self, n: int) -> "ConvParams":
        return replace(self, N=n)

    def is_1x1(self) -> bool:
        return self.R == 1 and self.S == 1

    def describe(self) -> str:
        return (
            f"N{self.N} C{self.C} K{self.K} {self.H}x{self.W} "
            f"{self.R}x{self.S}/{self.stride} -> {self.P}x{self.Q}"
        )
