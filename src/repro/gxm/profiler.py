"""GxM execution profiler.

The artifact appendix: "The GxM framework reports time per iteration and
img/s as console output ... the most important performance figures in case
of CNN training."  :class:`TaskProfiler` wraps an ETG and records wall time
per task, aggregating by layer type and pass -- the per-iteration report the
paper's console output shows, plus the breakdown that motivates fusion
(how much of a step the bandwidth-bound operators eat).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.gxm.etg import ExecutionTaskGraph
from repro.types import Pass

__all__ = ["TaskProfiler", "IterationProfile"]


@dataclass
class IterationProfile:
    """Timing of one training step."""

    total_s: float
    minibatch: int
    by_pass: dict[str, float] = field(default_factory=dict)
    by_type: dict[str, float] = field(default_factory=dict)
    by_task: dict[str, float] = field(default_factory=dict)

    @property
    def imgs_per_s(self) -> float:
        return self.minibatch / self.total_s if self.total_s > 0 else 0.0

    def report(self, top: int = 5) -> str:
        lines = [
            f"iteration: {self.total_s * 1e3:.1f} ms, "
            f"{self.imgs_per_s:.1f} img/s (minibatch {self.minibatch})"
        ]
        for name, t in sorted(self.by_pass.items()):
            lines.append(
                f"  {name:>8}: {t * 1e3:7.2f} ms "
                f"({100 * t / self.total_s:5.1f}%)"
            )
        lines.append("  costliest layer types:")
        for name, t in sorted(
            self.by_type.items(), key=lambda kv: -kv[1]
        )[:top]:
            lines.append(
                f"    {name:>14}: {t * 1e3:7.2f} ms "
                f"({100 * t / self.total_s:5.1f}%)"
            )
        return "\n".join(lines)


class TaskProfiler:
    """Profile ETG steps by intercepting per-task execution.

    Usage::

        prof = TaskProfiler(etg)
        loss = prof.step(x, labels)
        print(prof.last.report())
    """

    def __init__(self, etg: ExecutionTaskGraph, clock=time.perf_counter):
        self.etg = etg
        self.clock = clock
        self.last: IterationProfile | None = None
        self.history: list[IterationProfile] = []

    def step(self, x: np.ndarray, labels: np.ndarray) -> float:
        """One profiled train step (functionally identical to
        ``etg.train_step``)."""
        etg = self.etg
        by_task: dict[str, float] = {}
        t_start = self.clock()

        # re-implement the task walk with timers around each task; the
        # tensor plumbing is delegated back to the ETG's own _run by
        # monkey-free interception: we time at task granularity using the
        # ETG's public ordering and node objects.
        acts: dict[str, np.ndarray] = {}
        grads: dict[str, np.ndarray] = {}
        from repro.gxm.nodes import LossNode

        for ln in etg._loss_nodes:
            ln.labels = labels
        for task in etg.tasks:
            layer = etg.enl.layer(task.layer)
            node = etg.nodes[task.layer]
            t0 = self.clock()
            if task.pass_ is Pass.FWD:
                if layer.type == "Data":
                    acts[layer.tops[0]] = x
                else:
                    ins = [acts[b] for b in layer.bottoms]
                    out = node.forward(*ins)
                    if layer.type == "Split":
                        for t, o in zip(layer.tops, out):
                            acts[t] = o
                    else:
                        acts[layer.tops[0]] = out
            elif task.pass_ is Pass.BWD:
                if isinstance(node, LossNode):
                    grads[layer.bottoms[0]] = node.backward()
                elif layer.type == "Split":
                    dys = [grads[t] for t in layer.tops]
                    grads[layer.bottoms[0]] = node.backward(*dys)
                else:
                    dy = grads[layer.tops[0]]
                    dx = node.backward(dy)
                    if layer.type in ("Eltwise", "Concat"):
                        for b, d in zip(layer.bottoms, dx):
                            grads[b] = d
                    elif layer.bottoms and not etg._is_data(layer.bottoms[0]):
                        grads[layer.bottoms[0]] = dx
            else:
                node.update()
            dt = self.clock() - t0
            by_task[f"{task.layer}:{task.pass_.name}"] = (
                by_task.get(f"{task.layer}:{task.pass_.name}", 0.0) + dt
            )

        total = self.clock() - t_start
        by_pass: dict[str, float] = {}
        by_type: dict[str, float] = {}
        for key, dt in by_task.items():
            lname, pname = key.rsplit(":", 1)
            by_pass[pname] = by_pass.get(pname, 0.0) + dt
            ltype = etg.enl.layer(lname).type
            by_type[ltype] = by_type.get(ltype, 0.0) + dt
        prof = IterationProfile(
            total_s=total,
            minibatch=len(labels),
            by_pass=by_pass,
            by_type=by_type,
            by_task=by_task,
        )
        self.last = prof
        self.history.append(prof)
        return etg.loss
