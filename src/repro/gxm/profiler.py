"""GxM execution profiler.

The artifact appendix: "The GxM framework reports time per iteration and
img/s as console output ... the most important performance figures in case
of CNN training."  :class:`TaskProfiler` produces that per-iteration report
-- total time, img/s, per-pass and per-layer-type breakdowns -- by reading
the ``etg.step`` / ``etg.task`` spans the ETG itself records through
:mod:`repro.obs` (the profiler is a *view* over the tracing layer, not a
second instrumented task walk).

If the process-wide tracer is enabled (``repro.obs.enable()``), the
profiler aggregates from it, so profiled steps also land in the exported
chrome trace.  Otherwise it swaps a private always-enabled tracer into the
ETG for the duration of each step, keeping the global disabled path
branch-cheap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.gxm.etg import ExecutionTaskGraph
from repro.obs.metrics import get_metrics
from repro.obs.tracer import Tracer, get_tracer

__all__ = ["TaskProfiler", "IterationProfile"]


@dataclass
class IterationProfile:
    """Timing of one training step."""

    total_s: float
    minibatch: int
    by_pass: dict[str, float] = field(default_factory=dict)
    by_type: dict[str, float] = field(default_factory=dict)
    by_task: dict[str, float] = field(default_factory=dict)

    @property
    def imgs_per_s(self) -> float:
        return self.minibatch / self.total_s if self.total_s > 0 else 0.0

    def report(self, top: int = 5) -> str:
        lines = [
            f"iteration: {self.total_s * 1e3:.1f} ms, "
            f"{self.imgs_per_s:.1f} img/s (minibatch {self.minibatch})"
        ]
        for name, t in sorted(self.by_pass.items()):
            lines.append(
                f"  {name:>8}: {t * 1e3:7.2f} ms "
                f"({100 * t / self.total_s:5.1f}%)"
            )
        lines.append("  costliest layer types:")
        for name, t in sorted(
            self.by_type.items(), key=lambda kv: -kv[1]
        )[:top]:
            lines.append(
                f"    {name:>14}: {t * 1e3:7.2f} ms "
                f"({100 * t / self.total_s:5.1f}%)"
            )
        return "\n".join(lines)


class TaskProfiler:
    """Profile ETG steps from the spans the ETG records per task.

    Usage::

        prof = TaskProfiler(etg)
        loss = prof.step(x, labels)
        print(prof.last.report())
    """

    def __init__(
        self,
        etg: ExecutionTaskGraph,
        clock=time.perf_counter,
        tracer: Tracer | None = None,
    ):
        self.etg = etg
        self.clock = clock  # kept for API compatibility; spans self-time
        if tracer is None:
            tracer = get_tracer()
            if not tracer.enabled:
                # private recorder so profiling works with tracing off
                tracer = Tracer(enabled=True)
        self.tracer = tracer
        self.last: IterationProfile | None = None
        self.history: list[IterationProfile] = []

    def step(self, x: np.ndarray, labels: np.ndarray) -> float:
        """One profiled train step (functionally identical to
        ``etg.train_step`` -- it *is* ``etg.train_step``, observed)."""
        etg = self.etg
        prev_tracer = etg.tracer
        etg.tracer = self.tracer
        mark = len(self.tracer.events)
        try:
            loss = etg.train_step(x, labels)
        finally:
            etg.tracer = prev_tracer
        prof = self._aggregate(self.tracer.events[mark:], len(labels))
        self.last = prof
        self.history.append(prof)
        get_metrics().set_gauge("train.imgs_per_s", prof.imgs_per_s)
        return loss

    @staticmethod
    def _aggregate(events, minibatch: int) -> IterationProfile:
        by_task: dict[str, float] = {}
        by_pass: dict[str, float] = {}
        by_type: dict[str, float] = {}
        total = 0.0
        for r in events:
            if r.name == "etg.step":
                total = r.dur_us / 1e6
            elif r.name == "etg.task":
                dt = r.dur_us / 1e6
                key = f"{r.args['layer']}:{r.args['pass']}"
                by_task[key] = by_task.get(key, 0.0) + dt
                by_pass[r.args["pass"]] = (
                    by_pass.get(r.args["pass"], 0.0) + dt
                )
                by_type[r.args["type"]] = (
                    by_type.get(r.args["type"], 0.0) + dt
                )
        return IterationProfile(
            total_s=total,
            minibatch=minibatch,
            by_pass=by_pass,
            by_type=by_type,
            by_task=by_task,
        )
