"""The Fig. 3 task-graph construction pipeline.

``parse -> NL -> (NL Extender) -> ENL -> ENG -> PETG -> UETG -> ETG``:

* **NL Extender**: whenever a tensor feeds more than one consumer, a Split
  node is inserted (forward distribution / backward gradient reduction).
* **ENG**: the extended node graph -- one node per layer, edges along
  tensor producer -> consumer relations (a networkx DiGraph).
* **PETG**: the preliminary task graph -- each layer contributes a FWD task
  (after its producers' FWD), a BWD task (after its consumers' BWD and its
  own FWD), and, for trainable layers, an UPD task (after its own BWD).
* **UETG**: tasks binned by dependency level (the "task binning approach").
* **ETG**: duplicates eliminated, yielding the final executable order.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.gxm.topology import GRADIENT_EXCHANGE_TYPES, LayerSpec, TopologySpec
from repro.types import Pass, ReproError

__all__ = [
    "extend_network",
    "build_node_graph",
    "build_petg",
    "bin_tasks",
    "dedup_tasks",
    "compile_etg",
    "TaskRef",
]


@dataclass(frozen=True, slots=True)
class TaskRef:
    """One task of the ETG: a layer name plus the pass it executes."""

    layer: str
    pass_: Pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.layer}:{self.pass_.name}"


def extend_network(topo: TopologySpec) -> TopologySpec:
    """NL Extender: insert Split nodes for multi-consumer tensors."""
    consumers: dict[str, list[tuple[int, int]]] = {}
    for li, layer in enumerate(topo.layers):
        for bi, b in enumerate(layer.bottoms):
            consumers.setdefault(b, []).append((li, bi))
    ext = TopologySpec(name=topo.name)
    new_layers = [
        LayerSpec(l.name, l.type, list(l.bottoms), list(l.tops), dict(l.attrs))
        for l in topo.layers
    ]
    inserts: list[tuple[int, LayerSpec]] = []
    for tensor, uses in consumers.items():
        if len(uses) < 2:
            continue
        split_name = f"{tensor}__split"
        tops = [f"{tensor}__s{i}" for i in range(len(uses))]
        for i, (li, bi) in enumerate(uses):
            new_layers[li].bottoms[bi] = tops[i]
        # insert right after the producer (or at front for Data tensors)
        prod_idx = 0
        for li, layer in enumerate(new_layers):
            if tensor in layer.tops:
                prod_idx = li + 1
                break
        inserts.append(
            (prod_idx, LayerSpec(split_name, "Split", [tensor], tops,
                                 {"fanout": len(uses)}))
        )
    for idx, spec in sorted(inserts, key=lambda t: -t[0]):
        new_layers.insert(idx, spec)
    ext.layers = new_layers
    return ext


def build_node_graph(topo: TopologySpec) -> nx.DiGraph:
    """ENG: nodes are layer names; edges follow tensor dataflow."""
    g = nx.DiGraph()
    producer: dict[str, str] = {}
    for layer in topo.layers:
        g.add_node(layer.name, spec=layer)
        for t in layer.tops:
            if t in producer and producer[t] != layer.name:
                raise ReproError(f"tensor {t!r} produced twice")
            producer[t] = layer.name
    for layer in topo.layers:
        for b in layer.bottoms:
            if b not in producer:
                raise ReproError(f"tensor {b!r} consumed but never produced")
            if producer[b] != layer.name:
                g.add_edge(producer[b], layer.name, tensor=b)
    if not nx.is_directed_acyclic_graph(g):
        raise ReproError("topology contains a cycle")
    return g


def build_petg(eng: nx.DiGraph) -> nx.DiGraph:
    """PETG: expand each node into FWD/BWD(/UPD) tasks with dependencies."""
    petg = nx.DiGraph()
    for name, data in eng.nodes(data=True):
        spec: LayerSpec = data["spec"]
        fwd = TaskRef(name, Pass.FWD)
        petg.add_node(fwd, spec=spec)
        if spec.type not in ("Data",):
            bwd = TaskRef(name, Pass.BWD)
            petg.add_node(bwd, spec=spec)
            petg.add_edge(fwd, bwd)
            if spec.type in GRADIENT_EXCHANGE_TYPES:
                upd = TaskRef(name, Pass.UPD)
                petg.add_node(upd, spec=spec)
                petg.add_edge(bwd, upd)
    for u, v in eng.edges():
        petg.add_edge(TaskRef(u, Pass.FWD), TaskRef(v, Pass.FWD))
        bu, bv = TaskRef(u, Pass.BWD), TaskRef(v, Pass.BWD)
        if petg.has_node(bu) and petg.has_node(bv):
            petg.add_edge(bv, bu)  # gradients flow consumers -> producers
    return petg


def bin_tasks(petg: nx.DiGraph) -> list[list[TaskRef]]:
    """UETG: bin tasks by dependency level (topological generations)."""
    return [sorted(gen, key=repr) for gen in nx.topological_generations(petg)]


def dedup_tasks(bins: list[list[TaskRef]]) -> list[TaskRef]:
    """ETG: flatten bins, dropping duplicate (layer, pass) tasks."""
    seen: set[TaskRef] = set()
    order: list[TaskRef] = []
    for b in bins:
        for t in b:
            if t not in seen:
                seen.add(t)
                order.append(t)
    return order


def compile_etg(topo: TopologySpec) -> tuple[TopologySpec, list[TaskRef]]:
    """Run the full Fig. 3 pipeline; returns (extended topology, task order)."""
    enl = extend_network(topo)
    eng = build_node_graph(enl)
    petg = build_petg(eng)
    uetg = bin_tasks(petg)
    etg = dedup_tasks(uetg)
    return enl, etg
