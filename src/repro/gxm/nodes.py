"""Runtime nodes: the executable form of each layer spec.

ConvNode is the bridge to this library's core: its three tasks run the
forward, backward-by-duality and weight-update convolutions.  Two engines
are offered: ``"fast"`` (the vectorized reference semantics -- what GxM uses
for actual training throughput in Python) and ``"blocked"`` (the full
blocked/streams engine of :mod:`repro.conv`, bit-compatible but paying
Python-loop overhead per microkernel call; used for demonstrations and
cross-validation).
"""

from __future__ import annotations

import numpy as np

from repro.arch.machine import SKX, MachineConfig
from repro.conv.params import ConvParams
from repro.conv.reference import (
    conv2d_backward_data,
    conv2d_forward,
    conv2d_update_weights,
)
from repro.gxm.topology import LayerSpec
from repro.layers import (
    AvgPool2D,
    BatchNorm2D,
    EltwiseSum,
    GlobalAvgPool,
    Linear,
    MaxPool2D,
    ReLULayer,
    SoftmaxCrossEntropy,
    Split,
)
from repro.types import ReproError, ShapeError

__all__ = ["Node", "ConvNode", "build_node", "output_shape"]


def _conv_geometry(spec: LayerSpec) -> tuple[int, int, int, int]:
    """(R, S, pad_h, pad_w) supporting square and asymmetric filters."""
    if "kernel" in spec.attrs:
        r = s = spec.attrs["kernel"]
    else:
        r = spec.attrs["kernel_h"]
        s = spec.attrs["kernel_w"]
    ph = spec.attrs.get("pad", spec.attrs.get("pad_h", (r - 1) // 2))
    pw = spec.attrs.get("pad", spec.attrs.get("pad_w", (s - 1) // 2))
    return r, s, ph, pw


class Node:
    """Base runtime node: wraps a LayerSpec and a Layer-like object."""

    def __init__(self, spec: LayerSpec):
        self.spec = spec
        self.name = spec.name

    def forward(self, *xs):
        raise NotImplementedError

    def backward(self, *dys):
        raise NotImplementedError

    def update(self) -> None:
        """Weight-gradient task (UPD); default layers have none."""

    def params(self) -> list[np.ndarray]:
        return []

    def grads(self) -> list[np.ndarray]:
        return []


class ConvNode(Node):
    """Convolution layer: FWD/BWD/UPD tasks over this library's kernels."""

    def __init__(
        self,
        spec: LayerSpec,
        in_shape: tuple[int, int, int, int],
        engine: str = "fast",
        machine: MachineConfig = SKX,
        threads: int = 1,
        rng: np.random.Generator | None = None,
        execution_tier: str | None = None,
        streams=None,
        tuned=False,
    ):
        super().__init__(spec)
        rng = rng or np.random.default_rng(0)
        n, c, h, w = in_shape
        k = spec.attrs["num_output"]
        rh, rw, ph, pw = _conv_geometry(spec)
        stride = spec.attrs.get("stride", 1)
        self.p = ConvParams(
            N=n, C=c, K=k, H=h, W=w, R=rh, S=rw, stride=stride,
            pad_h=ph, pad_w=pw,
        )
        bound = (2.0 / (c * rh * rw)) ** 0.5
        self.weight = (
            rng.standard_normal((k, c, rh, rw)) * bound
        ).astype(np.float32)
        self.dweight = np.zeros_like(self.weight)
        self.engine = engine
        self.machine = machine
        self.threads = threads
        #: section II-G: ReLU applied while the output block is hot; the
        #: backward mask is reconstructed from this node's own output
        self.fused_relu = bool(spec.attrs.get("fused_relu", False))
        self._x = None
        self._dy = None
        self._y = None
        self._execution_tier = execution_tier
        # BWD/UPD engines are built lazily on first use: their dryruns are
        # pure waste for forward-only graphs (inference serving), and a
        # training run pays them once at its first backward step anyway
        self._bwd = None
        self._upd = None
        if engine == "blocked":
            from repro.conv.engine import make_engine
            from repro.conv.fusion import ReLU as FusedReLU
            from repro.types import Pass

            fused_ops = [FusedReLU()] if self.fused_relu else []
            self._fwd = make_engine(
                Pass.FWD, self.p, machine=machine, threads=threads,
                fused_ops=fused_ops, execution_tier=execution_tier,
                streams=streams, tuned=tuned,
            )
        elif engine != "fast":
            raise ReproError(f"unknown conv engine {engine!r}")

    def _bwd_engine(self):
        if self._bwd is None:
            from repro.conv.engine import make_engine
            from repro.types import Pass

            self._bwd = make_engine(
                Pass.BWD, self.p, machine=self.machine,
                threads=self.threads, execution_tier=self._execution_tier,
            )
        return self._bwd

    def _upd_engine(self):
        if self._upd is None:
            from repro.conv.engine import make_engine
            from repro.types import Pass

            self._upd = make_engine(
                Pass.UPD, self.p, machine=self.machine,
                threads=self.threads, execution_tier=self._execution_tier,
            )
        return self._upd

    def _params_for(self, n: int) -> ConvParams:
        """The fast engine accepts any minibatch; the blocked engine was set
        up for a fixed N (kernel streams are recorded per layer setup)."""
        if n == self.p.N:
            return self.p
        if self.engine == "blocked":
            raise ShapeError(
                f"blocked conv {self.name!r} was set up for N={self.p.N}, "
                f"got N={n}; rebuild the ETG for the new minibatch"
            )
        return self.p.with_minibatch(n)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        p = self._params_for(x.shape[0])
        if self.engine == "blocked":
            y = self._fwd.run_nchw(x, self.weight)
        else:
            y = conv2d_forward(x, self.weight, p)
            if self.fused_relu:
                np.maximum(y, 0.0, out=y)
        if self.fused_relu:
            self._y = y
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self.fused_relu:
            # reconstruct the ReLU mask from the fused output: positions
            # clamped to zero pass no gradient
            dy = np.where(self._y > 0, dy, 0.0).astype(np.float32)
        self._dy = dy
        p = self._params_for(dy.shape[0])
        if self.engine == "blocked":
            return self._bwd_engine().run_nchw(dy, self.weight)
        return conv2d_backward_data(dy, self.weight, p)

    def update(self) -> None:
        p = self._params_for(self._x.shape[0])
        if self.engine == "blocked":
            self.dweight[:] = self._upd_engine().run_nchw(self._x, self._dy)
        else:
            self.dweight[:] = conv2d_update_weights(self._x, self._dy, p)

    def params(self):
        return [self.weight]

    def grads(self):
        return [self.dweight]

    @property
    def forward_streams(self):
        """The forward engine's recorded kernel streams (blocked engine
        only; ``None`` for the fast engine) -- serve warm caches persist
        these so a rebooted server skips the dryrun phase."""
        if self.engine != "blocked":
            return None
        return list(self._fwd.streams)

    def prepare_replay(self):
        """Pre-build replay state ahead of traffic: when the forward
        engine runs the ``stream_compiled`` tier, lower its streams into
        closure chains now so the first request doesn't pay it.  Returns
        the executor metadata, or ``None`` when there is nothing to
        prepare (fast engine / other tiers)."""
        if self.engine != "blocked":
            return None
        prep = getattr(self._fwd, "prepare_stream_compiled", None)
        if prep is None or str(self._fwd.execution_tier) != "stream_compiled":
            return None
        return prep()


class _LayerNode(Node):
    """Wraps a stateless/stateful Layer with 1 input and 1 output."""

    def __init__(self, spec: LayerSpec, layer):
        super().__init__(spec)
        self.layer = layer

    def forward(self, x):
        return self.layer.forward(x)

    def backward(self, dy):
        return self.layer.backward(dy)

    def params(self):
        return self.layer.params()

    def grads(self):
        return self.layer.grads()


class SplitNode(Node):
    def __init__(self, spec: LayerSpec):
        super().__init__(spec)
        self.layer = Split(spec.attrs["fanout"])

    def forward(self, x):
        self.layer.forward(x)
        return tuple(x for _ in range(self.layer.fanout))

    def backward(self, *dys):
        out = None
        for dy in dys:
            out = dy if out is None else out + dy
        return out


class EltwiseNode(Node):
    def __init__(self, spec: LayerSpec):
        super().__init__(spec)
        self.layer = EltwiseSum(len(spec.bottoms))

    def forward(self, *xs):
        return self.layer.forward(*xs)

    def backward(self, dy):
        return self.layer.backward(dy)


class ConcatNode(Node):
    def __init__(self, spec: LayerSpec):
        super().__init__(spec)
        from repro.layers.concat import Concat

        self.layer = Concat(len(spec.bottoms))

    def forward(self, *xs):
        return self.layer.forward(*xs)

    def backward(self, dy):
        return self.layer.backward(dy)


class LossNode(Node):
    def __init__(self, spec: LayerSpec):
        super().__init__(spec)
        self.layer = SoftmaxCrossEntropy()
        self.labels: np.ndarray | None = None
        self.loss: float = 0.0

    def forward(self, logits):
        self.loss = self.layer.forward(logits, self.labels)
        return self.loss

    def backward(self):
        return self.layer.backward()

    def accuracy(self):
        return self.layer.accuracy(self.labels)


def output_shape(spec: LayerSpec, in_shapes: list[tuple]) -> tuple:
    """Shape inference for the graph compiler."""
    t = spec.type
    if t == "Data":
        return in_shapes[0]
    s = in_shapes[0]
    if t == "Convolution":
        n, c, h, w = s
        k = spec.attrs["num_output"]
        r, sw_, ph, pw = _conv_geometry(spec)
        stride = spec.attrs.get("stride", 1)
        p = (h + 2 * ph - r) // stride + 1
        q = (w + 2 * pw - sw_) // stride + 1
        return (n, k, p, q)
    if t == "Concat":
        n, _, h, w = s
        return (n, sum(shape[1] for shape in in_shapes), h, w)
    if t in ("ReLU", "BatchNorm", "Split", "Eltwise"):
        return s
    if t in ("Pooling", "AvgPooling"):
        n, c, h, w = s
        k = spec.attrs["kernel"]
        stride = spec.attrs.get("stride", k)
        pad = spec.attrs.get("pad", 0)
        return (
            n,
            c,
            (h + 2 * pad - k) // stride + 1,
            (w + 2 * pad - k) // stride + 1,
        )
    if t == "GlobalPool":
        return (s[0], s[1])
    if t == "InnerProduct":
        return (s[0], spec.attrs["num_output"])
    if t == "SoftmaxWithLoss":
        return (s[0],)
    raise ShapeError(f"cannot infer shape for {t}")


def build_node(
    spec: LayerSpec,
    in_shapes: list[tuple],
    engine: str = "fast",
    machine: MachineConfig = SKX,
    threads: int = 1,
    rng: np.random.Generator | None = None,
    execution_tier: str | None = None,
    streams=None,
    tuned=False,
) -> Node:
    """Instantiate the runtime node for a layer spec."""
    t = spec.type
    if t == "Data":
        return Node(spec)  # placeholder; the ETG feeds it directly
    if t == "Convolution":
        return ConvNode(
            spec, in_shapes[0], engine, machine, threads, rng,
            execution_tier=execution_tier, streams=streams, tuned=tuned,
        )
    if t == "ReLU":
        return _LayerNode(spec, ReLULayer())
    if t == "BatchNorm":
        return _LayerNode(spec, BatchNorm2D(in_shapes[0][1]))
    if t == "Pooling":
        return _LayerNode(
            spec,
            MaxPool2D(spec.attrs["kernel"], spec.attrs.get("stride"),
                      spec.attrs.get("pad", 0)),
        )
    if t == "AvgPooling":
        return _LayerNode(
            spec,
            AvgPool2D(spec.attrs["kernel"], spec.attrs.get("stride"),
                      spec.attrs.get("pad", 0)),
        )
    if t == "GlobalPool":
        return _LayerNode(spec, GlobalAvgPool())
    if t == "InnerProduct":
        return _LayerNode(
            spec, Linear(in_shapes[0][1], spec.attrs["num_output"], rng)
        )
    if t == "Eltwise":
        return EltwiseNode(spec)
    if t == "Concat":
        return ConcatNode(spec)
    if t == "Split":
        return SplitNode(spec)
    if t == "SoftmaxWithLoss":
        return LossNode(spec)
    raise ReproError(f"no runtime node for layer type {t!r}")
