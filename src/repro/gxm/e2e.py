"""End-to-end training throughput model (Fig. 9).

Reconstructs a full training iteration from the per-layer kernel estimates:

* convolution fwd/bwd/upd times from :class:`repro.perf.model.ConvPerfModel`
  weighted by each Table-I shape's occurrence count;
* non-convolution layers (BatchNorm, ReLU, pooling, eltwise, loss) priced as
  bandwidth-bound passes over the activations, with GxM's fusion removing
  the ReLU/bias passes that ride on convolution outputs (section II-G);
* a small framework dispatch overhead (GxM is light-weight -- the paper's
  point is that TensorFlow's equivalent tax is what halves MKL-DNN's
  end-to-end numbers);
* multi-node: compute cores are reduced by the MLSL driver cores and the
  gradient all-reduce is overlapped per layer (:mod:`repro.gxm.mlsl`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.machine import KNM, SKX, MachineConfig
from repro.conv.params import ConvParams
from repro.gxm.mlsl import MLSLSimulator, ScalingPoint
from repro.models.inception_v3 import inception_v3_layers
from repro.models.resnet50 import RESNET50_LAYER_COUNTS, resnet50_layers
from repro.perf.model import ConvPerfModel

__all__ = [
    "dual_socket",
    "TrainingEstimate",
    "estimate_training",
    "fig9_scaling",
]

#: activation passes of the un-fused non-conv layers per conv output:
#: BN fwd (r+w) + BN bwd (2r+w) + pool/eltwise shares, with conv-adjacent
#: ReLU/bias fused away by GxM
NONCONV_PASS_FACTOR = 6.0
#: GxM's own dispatch/synchronization tax (light-weight by design)
FRAMEWORK_OVERHEAD = 0.06


#: a second socket does not double throughput: cross-socket activation
#: traffic (UPI), remote-LLC misses and NUMA-blind allocations cost ~20 %
NUMA_EFFICIENCY = 0.8


def dual_socket(machine: MachineConfig) -> MachineConfig:
    """Two-socket node: double cores/LLC, NUMA-discounted bandwidth and
    frequency stand-in for the cross-socket losses."""
    return machine.scaled(
        name=f"2S-{machine.name}",
        cores=2 * machine.cores,
        freq_hz=machine.freq_hz * NUMA_EFFICIENCY,
        mem_bw=2 * machine.mem_bw * NUMA_EFFICIENCY,
        llc_bytes=2 * machine.llc_bytes,
    )


@dataclass
class TrainingEstimate:
    """One machine's per-iteration breakdown."""

    machine: str
    minibatch: int
    conv_fwd_s: float
    conv_bwd_s: float
    conv_upd_s: float
    nonconv_s: float
    framework_s: float
    grad_bytes: float

    @property
    def iteration_s(self) -> float:
        return (
            self.conv_fwd_s
            + self.conv_bwd_s
            + self.conv_upd_s
            + self.nonconv_s
            + self.framework_s
        )

    @property
    def imgs_per_s(self) -> float:
        return self.minibatch / self.iteration_s


def _topology_layers(topology: str, minibatch: int) -> list[tuple[ConvParams, int]]:
    if topology == "resnet50":
        return [
            (p, RESNET50_LAYER_COUNTS[lid])
            for lid, p in resnet50_layers(minibatch)
        ]
    if topology == "inception_v3":
        return inception_v3_layers(minibatch)
    raise KeyError(topology)


def estimate_training(
    machine: MachineConfig,
    topology: str = "resnet50",
    minibatch: int | None = None,
    threads: int | None = None,
) -> TrainingEstimate:
    """Single-node per-iteration estimate."""
    minibatch = minibatch or (70 if machine.name.endswith("KNM") else 28)
    model = ConvPerfModel(machine, threads)
    fwd = bwd = upd = 0.0
    act_bytes = 0.0
    grad_bytes = 0.0
    for p, count in _topology_layers(topology, minibatch):
        fwd += count * model.estimate_forward(p, fused=("relu",)).time_s
        bwd += count * model.estimate_backward(p).time_s
        upd += count * model.estimate_update(p).time_s
        act_bytes += count * p.N * p.K * p.P * p.Q * 4
        grad_bytes += count * p.weight_bytes()
    nonconv = act_bytes * NONCONV_PASS_FACTOR / machine.mem_bw
    compute = fwd + bwd + upd + nonconv
    return TrainingEstimate(
        machine=machine.name,
        minibatch=minibatch,
        conv_fwd_s=fwd,
        conv_bwd_s=bwd,
        conv_upd_s=upd,
        nonconv_s=nonconv,
        framework_s=compute * FRAMEWORK_OVERHEAD,
        grad_bytes=grad_bytes,
    )


def fig9_scaling(
    machine_name: str = "KNM",
    topology: str = "resnet50",
    node_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> list[ScalingPoint]:
    """The Fig. 9 strong-scaling series for one machine type.

    Multi-node runs lose the MLSL driver cores (8/72 on KNM, 4/56 on a
    dual-socket SKX node) and overlap the per-layer gradient all-reduce.
    """
    if machine_name.upper() == "KNM":
        node_machine = KNM
    else:
        node_machine = dual_socket(SKX)
    single = estimate_training(node_machine, topology)

    # multi-node: fewer compute cores per node
    comm_cores = KNM.comm_cores if machine_name.upper() == "KNM" else SKX.comm_cores
    reduced = node_machine.scaled(cores=node_machine.cores - comm_cores)
    multi = estimate_training(reduced, topology, minibatch=single.minibatch)

    # gradient buckets back-to-front: approximate equal bwd+upd time shares
    layers = _topology_layers(topology, single.minibatch)
    total_w = sum(c * p.weight_bytes() for p, c in layers)
    bwd_upd = multi.conv_bwd_s + multi.conv_upd_s
    buckets = []
    for p, c in reversed(layers):
        share = c * p.weight_bytes() / total_w
        buckets.append((c * p.weight_bytes(), bwd_upd * share))
    fwd_time = (
        multi.conv_fwd_s + multi.nonconv_s + multi.framework_s
    )
    sim = MLSLSimulator(node_machine)
    return sim.scaling_curve(
        list(node_counts),
        single.minibatch,
        fwd_time,
        buckets,
        single_node_time_s=single.iteration_s,
    )
