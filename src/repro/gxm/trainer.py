"""SGD training loop over an ExecutionTaskGraph.

Supports simulated data-parallel multi-node training: the global minibatch
is split across ``nodes`` replicas, each runs fwd/bwd/upd on its shard, and
the weight gradients are all-reduced (averaged) before the SGD step --
numerically the MLSL exchange of section II-L.  (One process hosts all
replicas; the *timing* of the exchange is modelled in
:mod:`repro.gxm.mlsl`.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.gxm.etg import ExecutionTaskGraph
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

__all__ = ["SGD", "Trainer", "TrainMetrics"]


class SGD:
    """SGD with momentum and weight decay, updating arrays in place."""

    def __init__(
        self,
        params: list[np.ndarray],
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p) for p in params]

    def step(self, grads: list[np.ndarray]) -> None:
        for p, g, v in zip(self.params, grads, self._velocity):
            if self.weight_decay:
                g = g + self.weight_decay * p
            v *= self.momentum
            v += g
            p -= self.lr * v


@dataclass
class TrainMetrics:
    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def smoothed_losses(self, k: int = 5) -> list[float]:
        out = []
        for i in range(len(self.losses)):
            lo = max(0, i - k + 1)
            out.append(sum(self.losses[lo : i + 1]) / (i + 1 - lo))
        return out


class Trainer:
    """Minibatch SGD driver, optionally data-parallel over ``nodes``."""

    def __init__(
        self,
        etg: ExecutionTaskGraph,
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        nodes: int = 1,
        lr_schedule=None,
    ):
        self.etg = etg
        self.nodes = nodes
        self.opt = SGD(etg.params(), lr, momentum, weight_decay)
        self.lr_schedule = lr_schedule
        self.iteration = 0
        self.metrics = TrainMetrics()

    def train_step(self, x: np.ndarray, labels: np.ndarray) -> float:
        """One global-minibatch step; with ``nodes > 1`` the batch is
        sharded and the gradients averaged (the MLSL all-reduce)."""
        tracer = get_tracer()
        if tracer.enabled:
            t0 = time.perf_counter()
            with tracer.span(
                "train.step", minibatch=len(labels), nodes=self.nodes,
            ):
                loss = self._train_step(x, labels)
            dt = time.perf_counter() - t0
            if dt > 0:
                get_metrics().set_gauge(
                    "train.imgs_per_s", len(labels) / dt
                )
            return loss
        return self._train_step(x, labels)

    def _train_step(self, x: np.ndarray, labels: np.ndarray) -> float:
        if self.lr_schedule is not None:
            self.opt.lr = self.lr_schedule.lr(self.iteration)
        self.iteration += 1
        if self.nodes == 1:
            loss = self.etg.train_step(x, labels)
            acc = self.etg.accuracy()
            self.opt.step(self.etg.grads())
        else:
            shards = np.array_split(np.arange(len(labels)), self.nodes)
            acc_grads = None
            loss = 0.0
            acc = 0.0
            for shard in shards:
                loss += self.etg.train_step(x[shard], labels[shard]) * len(
                    shard
                )
                acc += self.etg.accuracy() * len(shard)
                g = [gr.copy() for gr in self.etg.grads()]
                if acc_grads is None:
                    acc_grads = g
                else:
                    for a, b in zip(acc_grads, g):
                        a += b
            loss /= len(labels)
            acc /= len(labels)
            # all-reduce: average over replicas
            for a in acc_grads:
                a /= self.nodes
            self.opt.step(acc_grads)
        self.metrics.losses.append(float(loss))
        self.metrics.accuracies.append(float(acc))
        return float(loss)

    def fit(self, dataset, batch_size: int, epochs: int = 1) -> TrainMetrics:
        # per-node batch x nodes = global minibatch, like the paper's runs
        for x, y in dataset.batches(batch_size * self.nodes, epochs):
            self.train_step(x, y)
        return self.metrics
