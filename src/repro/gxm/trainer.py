"""SGD training loop over an ExecutionTaskGraph.

Supports simulated data-parallel multi-node training: the global minibatch
is split across ``nodes`` replicas, each runs fwd/bwd/upd on its shard, and
the weight gradients are all-reduced (averaged) before the SGD step --
numerically the MLSL exchange of section II-L.  (One process hosts all
replicas; the *timing* of the exchange is modelled in
:mod:`repro.gxm.mlsl`.)

Resilience: a :class:`~repro.resilience.watchdog.NumericsWatchdog`
screens gradients before every optimizer step (``nan_policy``), and
periodic :func:`~repro.gxm.checkpoint.save_training_checkpoint` autosave
plus :meth:`Trainer.resume` give crash recovery that is exact to the
step -- weights, SGD velocity and metrics all restored, and the data
order rewound by deterministic replay of the shuffle stream.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.gxm.etg import ExecutionTaskGraph
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.watchdog import NumericsWatchdog

__all__ = ["SGD", "Trainer", "TrainMetrics"]


class SGD:
    """SGD with momentum and weight decay, updating arrays in place."""

    def __init__(
        self,
        params: list[np.ndarray],
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p) for p in params]

    def step(self, grads: list[np.ndarray]) -> None:
        for p, g, v in zip(self.params, grads, self._velocity):
            if self.weight_decay:
                g = g + self.weight_decay * p
            v *= self.momentum
            v += g
            p -= self.lr * v


@dataclass
class TrainMetrics:
    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def smoothed_losses(self, k: int = 5) -> list[float]:
        out = []
        for i in range(len(self.losses)):
            lo = max(0, i - k + 1)
            out.append(sum(self.losses[lo : i + 1]) / (i + 1 - lo))
        return out


class Trainer:
    """Minibatch SGD driver, optionally data-parallel over ``nodes``.

    ``nan_policy`` arms the numerics watchdog (``"raise"``/``"skip"``/
    ``"off"``); ``checkpoint_path`` + ``checkpoint_every`` autosave a
    training checkpoint every N optimizer steps (atomic write).
    """

    def __init__(
        self,
        etg: ExecutionTaskGraph,
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        nodes: int = 1,
        lr_schedule=None,
        nan_policy: str = "raise",
        checkpoint_path: str | None = None,
        checkpoint_every: int = 0,
        shuffle_seed: int = 1,
        fault_plan: FaultPlan | None = None,
    ):
        self.etg = etg
        self.nodes = nodes
        self.opt = SGD(etg.params(), lr, momentum, weight_decay)
        self.lr_schedule = lr_schedule
        self.iteration = 0
        self.metrics = TrainMetrics()
        self.watchdog = NumericsWatchdog(nan_policy)
        self.injector = FaultInjector(fault_plan) if fault_plan else None
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        #: seed of the shuffle stream :meth:`fit` drives the dataset with
        #: -- pinned here so a resumed run replays the identical order
        self.shuffle_seed = shuffle_seed
        #: batches the next :meth:`fit` call fast-forwards past (set by
        #: :meth:`resume`, consumed once)
        self._resume_skip = 0

    def train_step(self, x: np.ndarray, labels: np.ndarray) -> float:
        """One global-minibatch step; with ``nodes > 1`` the batch is
        sharded and the gradients averaged (the MLSL all-reduce)."""
        tracer = get_tracer()
        if tracer.enabled:
            t0 = time.perf_counter()
            with tracer.span(
                "train.step", minibatch=len(labels), nodes=self.nodes,
            ):
                loss = self._train_step(x, labels)
            dt = time.perf_counter() - t0
            if dt > 0:
                get_metrics().set_gauge(
                    "train.imgs_per_s", len(labels) / dt
                )
            return loss
        return self._train_step(x, labels)

    def _train_step(self, x: np.ndarray, labels: np.ndarray) -> float:
        if self.lr_schedule is not None:
            self.opt.lr = self.lr_schedule.lr(self.iteration)
        step = self.iteration
        self.iteration += 1
        ok = True
        if self.nodes == 1:
            loss = self.etg.train_step(x, labels)
            acc = self.etg.accuracy()
            grads = self.etg.grads()
            self._maybe_poison(grads, step)
            ok = self.watchdog.check(grads, node="local", step=step)
            if ok:
                self.opt.step(grads)
        else:
            shards = np.array_split(np.arange(len(labels)), self.nodes)
            acc_grads = None
            loss = 0.0
            acc = 0.0
            for rank, shard in enumerate(shards):
                loss += self.etg.train_step(x[shard], labels[shard]) * len(
                    shard
                )
                acc += self.etg.accuracy() * len(shard)
                g = [gr.copy() for gr in self.etg.grads()]
                self._maybe_poison(g, step, rank=rank)
                # per-replica attribution: the watchdog names the shard
                # whose backward pass produced the divergence
                ok = self.watchdog.check(
                    g, node=f"replica{rank}", step=step
                ) and ok
                if acc_grads is None:
                    acc_grads = g
                else:
                    for a, b in zip(acc_grads, g):
                        a += b
            loss /= len(labels)
            acc /= len(labels)
            if ok:
                # all-reduce: average over replicas
                for a in acc_grads:
                    a /= self.nodes
                self.opt.step(acc_grads)
        if not ok:
            # skip policy: the step is dropped, the weights untouched
            self.watchdog.skipped()
        self.metrics.losses.append(float(loss))
        self.metrics.accuracies.append(float(acc))
        self._maybe_autosave()
        return float(loss)

    def _maybe_poison(
        self, grads: list[np.ndarray], step: int, rank: int | None = None
    ) -> None:
        """The ``trainer.grads`` fault-injection site (``nan_grad``)."""
        if self.injector is None:
            return
        fault = self.injector.fire("trainer.grads", step=step, rank=rank)
        if fault is not None and fault.kind == "nan_grad":
            grads[fault.param % len(grads)].flat[0] = np.nan

    def _maybe_autosave(self) -> None:
        if (
            self.checkpoint_path
            and self.checkpoint_every
            and self.iteration % self.checkpoint_every == 0
        ):
            self.save(self.checkpoint_path)

    def fit(self, dataset, batch_size: int, epochs: int = 1) -> TrainMetrics:
        # per-node batch x nodes = global minibatch, like the paper's
        # runs.  The first fit after :meth:`resume` fast-forwards the
        # deterministic shuffle stream past the steps already taken, so
        # the post-resume data order -- hence the whole trajectory -- is
        # bit-identical to an uninterrupted run's (call fit with the
        # same batch size and total epochs as the interrupted run).
        skip, self._resume_skip = self._resume_skip, 0
        for i, (x, y) in enumerate(
            dataset.batches(
                batch_size * self.nodes, epochs, seed=self.shuffle_seed
            )
        ):
            if i < skip:
                continue
            self.train_step(x, y)
        return self.metrics

    # -- crash recovery -------------------------------------------------
    def save(self, path_or_file) -> None:
        """Atomically checkpoint weights + SGD velocity + step +
        trajectory (see :func:`~repro.gxm.checkpoint
        .save_training_checkpoint`)."""
        from repro.gxm.checkpoint import save_training_checkpoint

        save_training_checkpoint(
            path_or_file,
            self.etg,
            self.opt,
            step=self.iteration,
            losses=self.metrics.losses,
            accuracies=self.metrics.accuracies,
            rng_state={
                "shuffle_seed": self.shuffle_seed,
                "batches_consumed": self.iteration,
            },
            injector=self.injector,
        )

    def resume(self, path_or_file) -> int:
        """Restore a :meth:`save`d checkpoint; returns the step to
        continue from.  Weights, SGD velocity, step counter and the
        recorded metrics are all exact; a following :meth:`fit` replays
        the shuffle stream up to the restored step, so the continued
        trajectory is bit-identical to a run that never stopped."""
        from repro.gxm.checkpoint import load_training_checkpoint

        ck = load_training_checkpoint(path_or_file, self.etg, self.opt)
        self.iteration = ck.step
        self._resume_skip = ck.step
        self.metrics.losses = list(ck.losses)
        self.metrics.accuracies = list(ck.accuracies)
        if ck.rng_state and "shuffle_seed" in ck.rng_state:
            self.shuffle_seed = ck.rng_state["shuffle_seed"]
        return ck.step
