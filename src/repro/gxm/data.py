"""Synthetic image dataset (the ImageNet substitution, see DESIGN.md).

Deterministic, learnable class structure: each class has a random smooth
spatial prototype; samples are prototype + Gaussian noise, standardized.
Exercises the identical training code path (augmentation-free).
"""

from __future__ import annotations

import numpy as np

__all__ = ["SyntheticImageDataset"]


class SyntheticImageDataset:
    """``n`` labelled images of shape (C, H, W) over ``num_classes``."""

    def __init__(
        self,
        n: int = 512,
        num_classes: int = 8,
        shape: tuple[int, int, int] = (16, 16, 16),
        noise: float = 0.6,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        c, h, w = shape
        self.num_classes = num_classes
        # smooth prototypes: low-frequency random fields
        base = rng.standard_normal((num_classes, c, 4, 4)).astype(np.float32)
        protos = np.repeat(np.repeat(base, h // 4, axis=2), w // 4, axis=3)
        self.labels = rng.integers(0, num_classes, size=n).astype(np.int64)
        self.images = (
            protos[self.labels] + noise * rng.standard_normal((n, c, h, w))
        ).astype(np.float32)
        self.images -= self.images.mean()
        self.images /= self.images.std() + 1e-8

    def __len__(self) -> int:
        return len(self.labels)

    def batches(self, batch_size: int, epochs: int = 1, seed: int = 1):
        """Yield (images, labels) minibatches, reshuffled per epoch."""
        rng = np.random.default_rng(seed)
        n = len(self)
        for _ in range(epochs):
            order = rng.permutation(n)
            for i in range(0, n - batch_size + 1, batch_size):
                idx = order[i : i + batch_size]
                yield self.images[idx], self.labels[idx]
