"""Protobuf-text topology parser (the "Parser" block of Fig. 3).

Understands the subset of protobuf text format GxM topologies use: a
top-level ``name`` and repeated ``layer { ... }`` messages with scalar
fields (``key: value``) where repeated ``bottom``/``top`` fields accumulate.
"""

from __future__ import annotations

import re

from repro.gxm.topology import LayerSpec, TopologySpec
from repro.types import ReproError

__all__ = ["parse_topology", "TopologyParseError"]


class TopologyParseError(ReproError):
    pass


_TOKEN = re.compile(
    r"""
    (?P<brace_open>\{) | (?P<brace_close>\}) |
    (?P<kv>([A-Za-z_][A-Za-z0-9_]*)\s*:\s*("[^"]*"|-?\d+\.\d+|-?\d+|true|false)) |
    (?P<ident>[A-Za-z_][A-Za-z0-9_]*) |
    (?P<comment>\#[^\n]*)
    """,
    re.VERBOSE,
)


def _parse_value(raw: str):
    if raw.startswith('"'):
        return raw[1:-1]
    if raw in ("true", "false"):
        return raw == "true"
    if "." in raw:
        return float(raw)
    return int(raw)


def parse_topology(text: str) -> TopologySpec:
    """Parse topology text into a :class:`TopologySpec`."""
    topo = TopologySpec(name="unnamed")
    pos = 0
    in_layer = False
    current: dict | None = None
    depth = 0
    for m in _TOKEN.finditer(text):
        if m.lastgroup == "comment":
            continue
        if m.group("brace_open"):
            depth += 1
            if not in_layer:
                raise TopologyParseError("unexpected '{' outside a layer block")
            continue
        if m.group("brace_close"):
            depth -= 1
            if depth == 0 and in_layer:
                assert current is not None
                try:
                    topo.layers.append(
                        LayerSpec(
                            name=current.pop("name"),
                            type=current.pop("type"),
                            bottoms=current.pop("bottom", []),
                            tops=current.pop("top", []),
                            attrs=current,
                        )
                    )
                except KeyError as e:
                    raise TopologyParseError(
                        f"layer block missing required field {e}"
                    ) from None
                in_layer = False
                current = None
            continue
        if m.group("ident"):
            if m.group("ident") == "layer":
                if in_layer:
                    raise TopologyParseError("nested layer blocks")
                in_layer = True
                current = {}
            continue
        if m.group("kv"):
            key, raw = re.match(
                r"([A-Za-z_][A-Za-z0-9_]*)\s*:\s*(.+)", m.group("kv")
            ).groups()
            value = _parse_value(raw.strip())
            if not in_layer:
                if key == "name":
                    topo.name = value
                continue
            assert current is not None
            if key in ("bottom", "top"):
                current.setdefault(key, []).append(value)
            else:
                current[key] = value
    if in_layer:
        raise TopologyParseError("unterminated layer block")
    if not topo.layers:
        raise TopologyParseError("no layer blocks found")
    return topo
