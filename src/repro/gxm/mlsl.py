"""Simulated MLSL: multi-node gradient exchange timing (section III-C).

The paper trains data-parallel over 16 nodes of Omnipath, reserving cores
per node to drive communication (8 of 72 on KNM, 4 of 56 on a dual-socket
SKX node) and overlapping the weight-gradient all-reduce with the backward
pass.  ``MLSLSimulator`` reproduces that schedule: each layer's gradient
bucket becomes eligible when its UPD task finishes (back-to-front), rides a
ring all-reduce, and only the part still in flight after the last bucket's
compute is exposed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.machine import MachineConfig

__all__ = ["ring_allreduce_time", "MLSLSimulator", "ScalingPoint"]


def ring_allreduce_time(
    nbytes: float, nodes: int, link_bw: float, latency_s: float
) -> float:
    """Ring all-reduce: ``2*(T-1)/T`` of the buffer crosses each link, in
    ``2*(T-1)`` latency-bound steps."""
    if nodes <= 1 or nbytes <= 0:
        return 0.0
    steps = 2 * (nodes - 1)
    return steps * latency_s + 2.0 * (nodes - 1) / nodes * nbytes / link_bw


@dataclass(frozen=True, slots=True)
class ScalingPoint:
    """One point of the Fig. 9 strong-scaling curve."""

    nodes: int
    imgs_per_s: float
    parallel_efficiency: float
    exposed_comm_s: float
    iteration_s: float


class MLSLSimulator:
    """Timing model of data-parallel training for one machine type.

    ``grad_buckets`` lists, back-to-front (the order gradients become
    ready), each gradient-exchange layer's ``(bytes, compute_time_s)`` where
    compute_time is the bwd+upd time *after* which this bucket is ready.
    """

    def __init__(self, machine: MachineConfig):
        self.machine = machine

    def iteration_time(
        self,
        nodes: int,
        fwd_time_s: float,
        grad_buckets: list[tuple[float, float]],
    ) -> tuple[float, float]:
        """(iteration_time, exposed_comm) for one global minibatch step."""
        m = self.machine
        if nodes <= 1:
            return fwd_time_s + sum(t for _, t in grad_buckets), 0.0
        # walk the backward pass; each bucket's all-reduce starts when its
        # compute finishes and proceeds concurrently with later compute
        t_compute = fwd_time_s
        t_comm_free = fwd_time_s  # when the network is next available
        for nbytes, t in grad_buckets:
            t_compute += t
            ar = ring_allreduce_time(nbytes, nodes, m.link_bw, m.link_latency_s)
            start = max(t_compute, t_comm_free)
            t_comm_free = start + ar
        exposed = max(0.0, t_comm_free - t_compute)
        return t_compute + exposed, exposed

    def scaling_curve(
        self,
        node_counts: list[int],
        per_node_minibatch: int,
        fwd_time_s: float,
        grad_buckets: list[tuple[float, float]],
        single_node_time_s: float | None = None,
    ) -> list[ScalingPoint]:
        """Strong-scale (fixed per-node minibatch) the iteration time."""
        base_imgs = None
        out = []
        for n in node_counts:
            it, exposed = self.iteration_time(n, fwd_time_s, grad_buckets)
            if n == 1 and single_node_time_s is not None:
                it = single_node_time_s
            imgs = per_node_minibatch * n / it
            if base_imgs is None:
                base_imgs = imgs / n if n == 1 else imgs / n
            eff = imgs / (base_imgs * n)
            out.append(
                ScalingPoint(
                    nodes=n,
                    imgs_per_s=imgs,
                    parallel_efficiency=eff,
                    exposed_comm_s=exposed,
                    iteration_s=it,
                )
            )
        return out
