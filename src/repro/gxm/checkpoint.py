"""Weight checkpointing.

The artifact appendix lists "dumped weights in case of full topology
training which can be used for inference tasks afterwards" among GxM's
outputs.  ``save_checkpoint``/``load_checkpoint`` round-trip every
trainable parameter plus BatchNorm running statistics through a single
``.npz`` keyed by node name.
"""

from __future__ import annotations

import json

import numpy as np

from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.nodes import ConvNode, _LayerNode
from repro.layers.bn import BatchNorm2D
from repro.layers.fc import Linear
from repro.types import ReproError

__all__ = ["save_checkpoint", "load_checkpoint"]

_VERSION = 1


def _state_dict(etg: ExecutionTaskGraph) -> dict[str, np.ndarray]:
    state: dict[str, np.ndarray] = {}
    for name, node in etg.nodes.items():
        if isinstance(node, ConvNode):
            state[f"{name}/weight"] = node.weight
        elif isinstance(node, _LayerNode) and isinstance(node.layer, Linear):
            state[f"{name}/weight"] = node.layer.weight
            state[f"{name}/bias"] = node.layer.bias
        elif isinstance(node, _LayerNode) and isinstance(node.layer, BatchNorm2D):
            bn = node.layer
            state[f"{name}/gamma"] = bn.gamma
            state[f"{name}/beta"] = bn.beta
            state[f"{name}/running_mean"] = bn.running_mean
            state[f"{name}/running_var"] = bn.running_var
    return state


def save_checkpoint(etg: ExecutionTaskGraph, path_or_file) -> None:
    """Dump all trainable state of the ETG's nodes."""
    state = _state_dict(etg)
    meta = {
        "version": _VERSION,
        "topology": etg.topology.name,
        "keys": sorted(state),
    }
    np.savez_compressed(
        path_or_file,
        __meta__=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        **state,
    )


def load_checkpoint(etg: ExecutionTaskGraph, path_or_file, strict: bool = True) -> list[str]:
    """Load a checkpoint into the ETG's nodes (in place).

    Returns the list of restored keys.  With ``strict`` every key present in
    the ETG must exist in the file (extra file keys are always an error).
    """
    state = _state_dict(etg)
    with np.load(path_or_file) as z:
        meta = json.loads(bytes(z["__meta__"]).decode())
        if meta.get("version") != _VERSION:
            raise ReproError(f"unsupported checkpoint version {meta.get('version')}")
        file_keys = set(meta["keys"])
        etg_keys = set(state)
        if file_keys - etg_keys:
            raise ReproError(
                f"checkpoint has keys the topology lacks: {sorted(file_keys - etg_keys)[:5]}"
            )
        if strict and etg_keys - file_keys:
            raise ReproError(
                f"checkpoint missing keys: {sorted(etg_keys - file_keys)[:5]}"
            )
        restored = []
        for key in sorted(file_keys):
            dst = state[key]
            src = z[key]
            if dst.shape != src.shape:
                raise ReproError(
                    f"shape mismatch for {key}: {dst.shape} vs {src.shape}"
                )
            dst[...] = src
            restored.append(key)
    return restored
