"""Weight + training-state checkpointing.

The artifact appendix lists "dumped weights in case of full topology
training which can be used for inference tasks afterwards" among GxM's
outputs.  ``save_checkpoint``/``load_checkpoint`` round-trip every
trainable parameter plus BatchNorm running statistics through a single
``.npz`` keyed by node name.

Crash safety: every on-disk write goes through an atomic
tmp-sibling-then-``os.replace`` rename, so a process killed mid-save can
never leave a half-written file under the checkpoint's name.  The
``checkpoint.save`` fault site (kind ``crash``) fires in exactly that
torn-write window -- after the tmp sibling is fully written, before the
rename -- so tests can prove the last good checkpoint survives a
mid-save death and a subsequent resume falls back to it.  Every
checkpoint embeds a content digest that is re-verified on load, and
every way a file can be unusable (truncated zip, missing ``__meta__``,
version mismatch, bit corruption) raises a descriptive
:class:`~repro.types.ReproError` instead of a raw ``zipfile``/``KeyError``
traceback.

``save_training_checkpoint``/``load_training_checkpoint`` extend the
weight checkpoint with everything an *exact-to-the-step* resume needs:
the SGD velocity buffers, the step counter, the recorded loss/accuracy
trajectory and an opaque RNG-state document (see
:class:`TrainingCheckpoint`).
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.forensics.recorder import get_recorder
from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.nodes import ConvNode, _LayerNode
from repro.layers.bn import BatchNorm2D
from repro.layers.fc import Linear
from repro.types import ReproError

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "read_checkpoint_meta",
    "TrainingCheckpoint",
    "save_training_checkpoint",
    "load_training_checkpoint",
]

_VERSION = 1
_TRAIN_VERSION = 1


def _state_dict(etg: ExecutionTaskGraph) -> dict[str, np.ndarray]:
    state: dict[str, np.ndarray] = {}
    for name, node in etg.nodes.items():
        if isinstance(node, ConvNode):
            state[f"{name}/weight"] = node.weight
        elif isinstance(node, _LayerNode) and isinstance(node.layer, Linear):
            state[f"{name}/weight"] = node.layer.weight
            state[f"{name}/bias"] = node.layer.bias
        elif isinstance(node, _LayerNode) and isinstance(node.layer, BatchNorm2D):
            bn = node.layer
            state[f"{name}/gamma"] = bn.gamma
            state[f"{name}/beta"] = bn.beta
            state[f"{name}/running_mean"] = bn.running_mean
            state[f"{name}/running_var"] = bn.running_var
    return state


def _digest(arrays: dict[str, np.ndarray]) -> str:
    """Content digest over every array in sorted key order."""
    h = hashlib.sha256()
    for key in sorted(arrays):
        h.update(key.encode())
        h.update(np.ascontiguousarray(arrays[key]).tobytes())
    return h.hexdigest()[:16]


def _atomic_savez(path_or_file, payload: dict, injector=None) -> None:
    """``np.savez_compressed`` through a tmp sibling + ``os.replace`` so
    a crash mid-write never truncates an existing checkpoint (file
    objects are written directly -- the caller owns their atomicity).

    ``injector`` arms the ``checkpoint.save`` fault site: a ``crash``
    fires in the torn-write window between the completed tmp write and
    the rename, raising :class:`~repro.resilience.InjectedFault` -- the
    tmp sibling is unlinked and the file under ``path`` (the last good
    checkpoint) is never touched.
    """
    if hasattr(path_or_file, "write"):
        np.savez_compressed(path_or_file, **payload)
        return
    path = os.fspath(path_or_file)
    tmp = f"{path}.tmp~{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **payload)
        if injector is not None:
            fault = injector.fire("checkpoint.save")
            if fault is not None and fault.kind == "crash":
                from repro.resilience.faults import InjectedFault

                raise InjectedFault(
                    f"injected crash between tmp write and replace of "
                    f"{path}"
                )
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class _checkpoint_file:
    """Context manager: ``np.load`` with every corruption mode mapped to
    a clear :class:`ReproError`."""

    def __init__(self, path_or_file, what: str = "checkpoint"):
        self.path_or_file = path_or_file
        self.what = what
        self._z = None

    def __enter__(self):
        try:
            self._z = np.load(self.path_or_file, allow_pickle=False)
            if "__meta__" not in self._z:
                raise ReproError(
                    f"not a repro {self.what}: file has no __meta__ entry"
                )
            meta = json.loads(bytes(self._z["__meta__"]).decode())
        except FileNotFoundError:
            raise
        except ReproError:
            self._close()
            raise
        except (zipfile.BadZipFile, zlib.error, ValueError, EOFError,
                KeyError, UnicodeDecodeError, json.JSONDecodeError,
                OSError) as err:
            self._close()
            raise ReproError(
                f"unreadable {self.what} (truncated or corrupted): {err}"
            ) from err
        return self._z, meta

    def __exit__(self, exc_type, exc, tb):
        self._close()
        # a truncated member can surface only once its bytes are read;
        # map those late zip/zlib failures to ReproError too
        if exc_type is not None and issubclass(
            exc_type, (zipfile.BadZipFile, zlib.error, EOFError, KeyError)
        ):
            raise ReproError(
                f"unreadable {self.what} (truncated or corrupted): {exc}"
            ) from exc

    def _close(self) -> None:
        if self._z is not None:
            self._z.close()
            self._z = None


def _record_ck(event: str, path_or_file, digest: str | None) -> None:
    """Flight-recorder checkpoint lifecycle breadcrumb (no-op when the
    recorder is disabled)."""
    rec = get_recorder()
    if rec.enabled:
        rec.record(
            event,
            path=(None if hasattr(path_or_file, "write")
                  else os.fspath(path_or_file)),
            digest=digest,
        )


def save_checkpoint(etg: ExecutionTaskGraph, path_or_file,
                    injector=None) -> None:
    """Dump all trainable state of the ETG's nodes (atomic on-disk).
    ``injector`` arms the ``checkpoint.save`` torn-write fault site."""
    state = _state_dict(etg)
    meta = {
        "version": _VERSION,
        "topology": etg.topology.name,
        "keys": sorted(state),
        "digest": _digest(state),
    }
    _atomic_savez(
        path_or_file,
        {
            "__meta__": np.frombuffer(
                json.dumps(meta).encode(), dtype=np.uint8
            ),
            **state,
        },
        injector=injector,
    )
    _record_ck("checkpoint.save", path_or_file, meta["digest"])


def load_checkpoint(etg: ExecutionTaskGraph, path_or_file, strict: bool = True) -> list[str]:
    """Load a checkpoint into the ETG's nodes (in place).

    Returns the list of restored keys.  With ``strict`` every key present in
    the ETG must exist in the file (extra file keys are always an error).
    Raises :class:`ReproError` on a truncated, ``__meta__``-less,
    version-mismatched or digest-mismatched file.
    """
    state = _state_dict(etg)
    with _checkpoint_file(path_or_file) as (z, meta):
        if meta.get("version") != _VERSION:
            raise ReproError(
                f"unsupported checkpoint version {meta.get('version')}"
            )
        file_keys = set(meta.get("keys", ()))
        etg_keys = set(state)
        if file_keys - etg_keys:
            raise ReproError(
                f"checkpoint has keys the topology lacks: {sorted(file_keys - etg_keys)[:5]}"
            )
        if strict and etg_keys - file_keys:
            raise ReproError(
                f"checkpoint missing keys: {sorted(etg_keys - file_keys)[:5]}"
            )
        loaded: dict[str, np.ndarray] = {}
        for key in sorted(file_keys):
            dst = state[key]
            src = z[key]
            if dst.shape != src.shape:
                raise ReproError(
                    f"shape mismatch for {key}: {dst.shape} vs {src.shape}"
                )
            loaded[key] = src
        want = meta.get("digest")
        if want is not None and _digest(loaded) != want:
            raise ReproError(
                "checkpoint digest mismatch: file content does not match "
                "the digest recorded at save time (bit corruption?)"
            )
        # verified: now (and only now) mutate the live parameters
        for key, src in loaded.items():
            state[key][...] = src
    _record_ck("checkpoint.load", path_or_file, want)
    return sorted(loaded)


def read_checkpoint_meta(path_or_file) -> dict:
    """The checkpoint's metadata document (version, topology, keys,
    content ``digest``) without loading any weight array -- what a
    serving reload reports so operators can tell which weights are live.
    Raises :class:`ReproError` on anything unreadable."""
    with _checkpoint_file(path_or_file) as (_z, meta):
        return dict(meta)


# ---------------------------------------------------------------------------
@dataclass
class TrainingCheckpoint:
    """Bookkeeping restored by :func:`load_training_checkpoint`.

    ``step`` is the number of completed optimizer steps; ``losses`` /
    ``accuracies`` the recorded trajectory up to that step.  ``rng_state``
    is an opaque JSON-serializable document the *saver* provided (e.g. a
    numpy ``Generator.bit_generator.state`` dict, or the shuffle seed +
    batch count a deterministic data pipeline rewinds from).
    """

    step: int
    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    rng_state: dict | None = None


def save_training_checkpoint(
    path_or_file,
    etg: ExecutionTaskGraph,
    opt,
    *,
    step: int,
    losses=(),
    accuracies=(),
    rng_state: dict | None = None,
    injector=None,
) -> None:
    """Atomically persist weights + SGD velocity + step + trajectory.

    ``opt`` is the :class:`~repro.gxm.trainer.SGD` whose per-parameter
    velocity buffers make a resumed momentum step bit-identical to the
    uninterrupted one.
    """
    state = _state_dict(etg)
    velocity = {
        f"__velocity__/{i}": v for i, v in enumerate(opt._velocity)
    }
    arrays = {**state, **velocity}
    meta = {
        "version": _VERSION,
        "kind": "training",
        "train_version": _TRAIN_VERSION,
        "topology": etg.topology.name,
        "keys": sorted(state),
        "n_velocity": len(opt._velocity),
        "step": int(step),
        "losses": [float(v) for v in losses],
        "accuracies": [float(v) for v in accuracies],
        "rng_state": rng_state,
        "opt": {
            "lr": opt.lr,
            "momentum": opt.momentum,
            "weight_decay": opt.weight_decay,
        },
        "digest": _digest(arrays),
    }
    _atomic_savez(
        path_or_file,
        {
            "__meta__": np.frombuffer(
                json.dumps(meta).encode(), dtype=np.uint8
            ),
            **arrays,
        },
        injector=injector,
    )
    _record_ck("checkpoint.save", path_or_file, meta["digest"])


def load_training_checkpoint(
    path_or_file, etg: ExecutionTaskGraph, opt
) -> TrainingCheckpoint:
    """Restore weights and SGD velocity in place; return the bookkeeping.

    Everything is digest-verified before any live array is touched, so a
    corrupt file cannot leave the trainer half-restored.
    """
    state = _state_dict(etg)
    with _checkpoint_file(path_or_file, what="training checkpoint") as (
        z, meta,
    ):
        if meta.get("kind") != "training":
            raise ReproError(
                "not a training checkpoint (plain weight checkpoints "
                "carry no optimizer state; use load_checkpoint)"
            )
        if (
            meta.get("version") != _VERSION
            or meta.get("train_version") != _TRAIN_VERSION
        ):
            raise ReproError(
                f"unsupported training checkpoint version "
                f"{meta.get('version')}/{meta.get('train_version')}"
            )
        file_keys = set(meta.get("keys", ()))
        if file_keys != set(state):
            missing = sorted(set(state) - file_keys)[:5]
            extra = sorted(file_keys - set(state))[:5]
            raise ReproError(
                f"training checkpoint does not match the topology "
                f"(missing {missing}, extra {extra})"
            )
        if meta.get("n_velocity") != len(opt._velocity):
            raise ReproError(
                f"training checkpoint has {meta.get('n_velocity')} "
                f"velocity buffers; optimizer expects "
                f"{len(opt._velocity)}"
            )
        loaded: dict[str, np.ndarray] = {}
        for key in sorted(file_keys):
            src = z[key]
            if state[key].shape != src.shape:
                raise ReproError(
                    f"shape mismatch for {key}: "
                    f"{state[key].shape} vs {src.shape}"
                )
            loaded[key] = src
        for i, v in enumerate(opt._velocity):
            src = z[f"__velocity__/{i}"]
            if v.shape != src.shape:
                raise ReproError(
                    f"velocity buffer {i} shape mismatch: "
                    f"{v.shape} vs {src.shape}"
                )
            loaded[f"__velocity__/{i}"] = src
        want = meta.get("digest")
        if want is not None and _digest(loaded) != want:
            raise ReproError(
                "training checkpoint digest mismatch: file content does "
                "not match the digest recorded at save time"
            )
        for key in sorted(file_keys):
            state[key][...] = loaded[key]
        for i, v in enumerate(opt._velocity):
            v[...] = loaded[f"__velocity__/{i}"]
    _record_ck("checkpoint.load", path_or_file, want)
    return TrainingCheckpoint(
        step=int(meta["step"]),
        losses=list(meta.get("losses", ())),
        accuracies=list(meta.get("accuracies", ())),
        rng_state=meta.get("rng_state"),
    )
