"""GxM topology fusion pass (section II-G at graph level).

"Most of this good MKL-DNN performance is lost during framework integration
(TensorFlow in this case) for various reasons such as the lack of fusion"
(section III-C) -- GxM's advantage is precisely that it fuses the
bandwidth-bound operators following a convolution into the convolution's
own kernel streams.

:func:`fuse_topology` rewrites a network list: every ``Convolution -> ReLU``
chain (the dominant pattern; Bias rides along when present) collapses into
one Convolution layer with a ``fused_relu`` attribute, provided the
intermediate tensor has no other consumer.  The runtime
:class:`~repro.gxm.nodes.ConvNode` then applies ReLU while the output block
is hot (via the streams engine's APPLY records in blocked mode, inline in
fast mode) and reconstructs the ReLU mask from its own output during
backward -- so training numerics are *identical* to the un-fused graph
(tests assert this bit-for-bit).

BatchNorm is deliberately not fused in training mode: its forward needs
cross-sample statistics of the pre-activation, which breaks the
one-sub-tensor-at-a-time fusion contract.  (Inference-time BN folding lives
in :mod:`repro.gxm.inference`.)
"""

from __future__ import annotations

from repro.gxm.topology import LayerSpec, TopologySpec

__all__ = ["fuse_topology", "fusion_report"]


def _consumers(topo: TopologySpec) -> dict[str, list[str]]:
    out: dict[str, list[str]] = {}
    for layer in topo.layers:
        for b in layer.bottoms:
            out.setdefault(b, []).append(layer.name)
    return out


def fuse_topology(topo: TopologySpec) -> TopologySpec:
    """Return a new topology with Conv->ReLU chains fused.

    The fused convolution keeps the *ReLU's* top name so downstream
    consumers are untouched.
    """
    cons = _consumers(topo)
    by_name = {l.name: l for l in topo.layers}
    drop: set[str] = set()
    fused_attr: dict[str, str] = {}  # conv name -> new top name
    for layer in topo.layers:
        if layer.type != "ReLU":
            continue
        src = layer.bottoms[0]
        producer = next(
            (l for l in topo.layers if src in l.tops), None
        )
        if producer is None or producer.type != "Convolution":
            continue
        if len(cons.get(src, [])) != 1:
            continue  # the pre-activation is used elsewhere: cannot fuse
        drop.add(layer.name)
        fused_attr[producer.name] = layer.tops[0]

    out = TopologySpec(name=topo.name)
    for layer in topo.layers:
        if layer.name in drop:
            continue
        if layer.name in fused_attr:
            new_top = fused_attr[layer.name]
            out.add(
                LayerSpec(
                    layer.name,
                    "Convolution",
                    list(layer.bottoms),
                    [new_top],
                    {**layer.attrs, "fused_relu": True},
                )
            )
        else:
            out.add(
                LayerSpec(layer.name, layer.type, list(layer.bottoms),
                          list(layer.tops), dict(layer.attrs))
            )
    return out


def fusion_report(before: TopologySpec, after: TopologySpec) -> str:
    """Human-readable summary of what the pass removed."""
    removed = len(before.layers) - len(after.layers)
    fused = sum(
        1 for l in after.layers if l.attrs.get("fused_relu")
    )
    return (
        f"fusion pass: {removed} ReLU layer(s) removed, "
        f"{fused} convolution(s) now apply ReLU in-register "
        f"({len(before.layers)} -> {len(after.layers)} layers)"
    )
