"""Inference mode (section II-L: "only the forward pass for inference").

``InferenceSession`` wraps a trained ETG: switches BatchNorm nodes to their
running statistics, runs only FWD tasks, and reports top-1/top-5 accuracy.
``fold_batchnorms`` additionally returns the per-conv fused scale/shift
parameters -- the exact tensors a fused conv+BN kernel (section II-G,
``BatchNormApply``) consumes at inference time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.nodes import _LayerNode
from repro.layers.bn import BatchNorm2D

__all__ = ["InferenceSession", "fold_batchnorms"]


def fold_batchnorms(etg: ExecutionTaskGraph) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """(gamma', beta') per BatchNorm node, ready for fused application."""
    folded = {}
    for name, node in etg.nodes.items():
        if isinstance(node, _LayerNode) and isinstance(node.layer, BatchNorm2D):
            folded[name] = node.layer.folded_scale_shift()
    return folded


@dataclass
class EvalResult:
    loss: float
    top1: float
    top5: float
    n: int


class InferenceSession:
    """Forward-only execution over a trained graph.

    Entering the session switches every BatchNorm node to its running
    statistics; exiting restores whatever mode each node was in *at
    entry*.  Entries nest (the same graph may be wrapped by several
    sessions, or one session re-entered) and restoration is driven by the
    ``with`` protocol, so an exception inside the block cannot leave the
    graph stuck in evaluation mode -- and an inner exit cannot flip the
    layers back to training while an outer session is still active.
    """

    def __init__(self, etg: ExecutionTaskGraph):
        self.etg = etg
        self._bns = [
            node.layer
            for node in etg.nodes.values()
            if isinstance(node, _LayerNode) and isinstance(node.layer, BatchNorm2D)
        ]
        #: stack of per-entry saved ``training`` flags (LIFO restore)
        self._saved_modes: list[list[bool]] = []

    def __enter__(self) -> "InferenceSession":
        self._saved_modes.append([bn.training for bn in self._bns])
        for bn in self._bns:
            bn.training = False
        return self

    def __exit__(self, *exc) -> None:
        if not self._saved_modes:
            return
        for bn, mode in zip(self._bns, self._saved_modes.pop()):
            bn.training = mode

    def predict(self, x: np.ndarray, replay=None) -> np.ndarray:
        """Class probabilities for one batch.  ``replay`` (a
        :class:`~repro.jit.ReplayOptions` or a tier) overrides the conv
        nodes' execution tier for this call; see
        :meth:`ExecutionTaskGraph.predict`."""
        return self.etg.predict(x, replay=replay)

    def evaluate(self, dataset, batch_size: int) -> EvalResult:
        """Loss and top-1/top-5 accuracy over one pass of the dataset."""
        losses, top1, top5, n = [], 0, 0, 0
        for x, y in dataset.batches(batch_size, epochs=1):
            loss = self.etg.forward_only(x, y)
            losses.append(loss * len(y))
            probs = self.etg.output_probabilities()
            order = np.argsort(-probs, axis=1)
            top1 += int((order[:, 0] == y).sum())
            k = min(5, probs.shape[1])
            top5 += int((order[:, :k] == y[:, None]).any(axis=1).sum())
            n += len(y)
        return EvalResult(
            loss=sum(losses) / n, top1=top1 / n, top5=top5 / n, n=n
        )
