"""The Execution Task Graph: compile + execute (section II-L).

``ExecutionTaskGraph`` compiles a topology through the Fig. 3 pipeline and
executes one training step as the ETG's task order: every node contributes a
FWD task, a BWD task and (for gradient-exchange node types) an UPD task.
Tensors and gradients flow through name-keyed pools; after the NL Extender
every tensor has exactly one consumer, so gradient routing needs no
reductions outside Split nodes.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.arch.machine import SKX, MachineConfig
from repro.gxm.graph import TaskRef, compile_etg
from repro.gxm.nodes import LossNode, Node, build_node, output_shape
from repro.gxm.topology import TopologySpec
from repro.jit.tiers import ReplayOptions, as_tier
from repro.obs.metrics import get_metrics
from repro.obs.tracer import Tracer, get_tracer
from repro.types import Pass, ReproError

__all__ = ["ExecutionTaskGraph", "Task"]

Task = TaskRef


@dataclass
class _TensorPools:
    acts: dict
    grads: dict


class ExecutionTaskGraph:
    """Executable form of a topology.

    Parameters
    ----------
    topo:
        The network list (builder or parsed text).
    input_shape:
        ``(N, C, H, W)`` of the Data layer (drives shape inference and
        weight allocation).
    engine:
        ``"fast"`` or ``"blocked"`` convolution engine (see
        :mod:`repro.gxm.nodes`).
    execution_tier:
        Kernel-stream execution tier for ``"blocked"`` conv nodes -- an
        :class:`~repro.jit.ExecutionTier` or its string spelling
        (``"compiled"``/``"stream_compiled"``/``"interpret"``/
        ``"einsum"``/``"verify"``; ``None`` = process default).
    conv_streams:
        Optional pre-recorded forward kernel streams per conv-node name
        (from :meth:`conv_stream_state` or a serve warm cache); blocked
        conv nodes with an entry skip the dryrun phase.
    replay:
        A :class:`~repro.jit.ReplayOptions` bundle; the explicit
        ``execution_tier`` keyword wins over ``replay.tier`` when both
        are given.
    tuned:
        Forwarded to :func:`repro.conv.make_engine` for every
        ``"blocked"`` conv node: ``True`` / a path / a
        :class:`~repro.tune.TuningDatabase` consults the tuning database
        for each layer's blocking plan, falling back to the paper
        heuristics per layer when no validated entry exists.
    """

    def __init__(
        self,
        topo: TopologySpec,
        input_shape: tuple[int, int, int, int],
        engine: str = "fast",
        machine: MachineConfig = SKX,
        threads: int = 1,
        seed: int = 0,
        fuse: bool = False,
        tracer: Tracer | None = None,
        execution_tier: str | None = None,
        conv_streams: dict | None = None,
        replay: ReplayOptions | None = None,
        tuned=False,
    ):
        if replay is not None and execution_tier is None:
            execution_tier = replay.resolve_tier()
        #: spans (``etg.step`` / ``etg.task``) are recorded here; the
        #: TaskProfiler swaps in its own always-enabled tracer per step.
        self.tracer = tracer if tracer is not None else get_tracer()
        if fuse:
            from repro.gxm.fusion_pass import fuse_topology

            topo = fuse_topology(topo)
        self.topology = topo
        self.enl, self.tasks = compile_etg(topo)
        self.input_shape = input_shape
        rng = np.random.default_rng(seed)

        # shape inference over the extended NL (it is in dataflow order
        # after compile; walk producer-first)
        self._producer: dict[str, str] = {}
        for layer in self.enl.layers:
            for t in layer.tops:
                self._producer[t] = layer.name
        shapes: dict[str, tuple] = {}
        self.nodes: dict[str, Node] = {}
        for layer in self.enl.layers:
            if layer.type == "Data":
                in_shapes = [input_shape]
            else:
                in_shapes = [shapes[b] for b in layer.bottoms]
            out = output_shape(layer, in_shapes)
            if layer.type == "Split":
                for t in layer.tops:
                    shapes[t] = out
            else:
                for t in layer.tops:
                    shapes[t] = out
            self.nodes[layer.name] = build_node(
                layer, in_shapes, engine, machine, threads, rng,
                execution_tier=execution_tier,
                streams=(conv_streams or {}).get(layer.name),
                tuned=tuned,
            )
        self.shapes = shapes
        self._loss_nodes = [
            n for n in self.nodes.values() if isinstance(n, LossNode)
        ]
        if not self._loss_nodes:
            raise ReproError("topology has no SoftmaxWithLoss layer")
        self._pools = _TensorPools({}, {})
        #: optional ``hook(layer_name)`` invoked right after each UPD task
        #: lands that layer's weight gradients -- the overlap seam the
        #: collective all-reduce (:mod:`repro.collective`) hangs buckets
        #: off, so communication starts while backprop is still running.
        self.grad_hook = None

    # ------------------------------------------------------------------
    def params(self) -> list[np.ndarray]:
        out = []
        for n in self.nodes.values():
            out.extend(n.params())
        return out

    def grads(self) -> list[np.ndarray]:
        out = []
        for n in self.nodes.values():
            out.extend(n.grads())
        return out

    @property
    def loss(self) -> float:
        return self._loss_nodes[0].loss

    def accuracy(self) -> float:
        return self._loss_nodes[0].accuracy()

    def output_probabilities(self) -> np.ndarray:
        """Class probabilities of the loss head after the latest forward
        pass -- the public face of the softmax output (inference callers
        must not reach into loss-node internals)."""
        return self._loss_nodes[0].layer.probabilities

    def conv_stream_state(self) -> dict[str, list]:
        """Recorded forward kernel streams per blocked conv node, keyed by
        node name -- the warm-start payload for ``conv_streams``."""
        out: dict[str, list] = {}
        for name, node in self.nodes.items():
            streams = getattr(node, "forward_streams", None)
            if streams is not None:
                out[name] = streams
        return out

    def prepare_replay(self) -> dict[str, dict]:
        """Pre-build per-node replay state (``stream_compiled`` closure
        chains) ahead of traffic; returns each prepared node's executor
        metadata keyed by node name.  Serve boot calls this so the first
        request never pays stream lowering, and the warm cache persists
        the metadata."""
        out: dict[str, dict] = {}
        for name, node in self.nodes.items():
            prep = getattr(node, "prepare_replay", None)
            if prep is None:
                continue
            meta = prep()
            if meta is not None:
                out[name] = meta
        return out

    # ------------------------------------------------------------------
    def train_step(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Run every ETG task once (FWD + BWD + UPD); returns the loss."""
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("etg.step", minibatch=len(labels)):
                self._run(x, labels, training=True)
        else:
            self._run(x, labels, training=True)
        get_metrics().inc("etg.steps")
        return self.loss

    def forward_only(self, x: np.ndarray, labels: np.ndarray | None = None):
        """Inference: only the FWD tasks (the ETG for inference, II-L)."""
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("etg.forward", minibatch=len(x)):
                self._run(x, labels, training=False)
        else:
            self._run(x, labels, training=False)
        return self.loss if labels is not None else None

    @contextmanager
    def _replay_tier(self, tier):
        """Temporarily point every blocked conv forward engine at ``tier``
        (engines keep their recorded streams and JIT'ed variants; only the
        replay dispatch changes, so the override is cheap and reversible)."""
        if tier is None:
            yield
            return
        tier = as_tier(tier)
        saved = []
        for node in self.nodes.values():
            eng = getattr(node, "_fwd", None)
            if eng is not None and hasattr(eng, "execution_tier"):
                saved.append((eng, eng.execution_tier))
                eng.execution_tier = tier
        try:
            yield
        finally:
            for eng, prev in saved:
                eng.execution_tier = prev

    def predict(self, x: np.ndarray, replay: ReplayOptions | None = None):
        """Forward-only execution returning class probabilities.

        ``replay`` (a :class:`~repro.jit.ReplayOptions`, an
        :class:`~repro.jit.ExecutionTier`, or a tier name) overrides the
        conv nodes' execution tier for this call only -- serving replicas
        use this to run warm traffic on ``stream_compiled`` while a
        degraded bucket replays on a lower tier.
        """
        tier = None
        if replay is not None:
            if isinstance(replay, ReplayOptions):
                tier = replay.resolve_tier()
            else:
                tier = as_tier(replay)
        with self._replay_tier(tier):
            self.forward_only(x, None)
        return self.output_probabilities()

    # ------------------------------------------------------------------
    def _run(self, x, labels, training: bool) -> None:
        acts: dict[str, np.ndarray] = {}
        grads: dict[str, np.ndarray] = {}
        for ln in self._loss_nodes:
            ln.labels = labels
        tracer = self.tracer
        for task in self.tasks:
            layer = self.enl.layer(task.layer)
            node = self.nodes[task.layer]
            if tracer.enabled:
                with tracer.span(
                    "etg.task",
                    **{"layer": task.layer, "pass": task.pass_.name,
                       "type": layer.type},
                ):
                    self._exec_task(task, layer, node, acts, grads, x,
                                    training)
            else:
                self._exec_task(task, layer, node, acts, grads, x, training)
        self._pools = _TensorPools(acts, grads)

    def _exec_task(self, task, layer, node, acts, grads, x, training) -> None:
        """Execute one ETG task against the name-keyed tensor pools."""
        if task.pass_ is Pass.FWD:
            if layer.type == "Data":
                acts[layer.tops[0]] = x
                return
            ins = [acts[b] for b in layer.bottoms]
            out = node.forward(*ins)
            if layer.type == "Split":
                for t, o in zip(layer.tops, out):
                    acts[t] = o
            else:
                acts[layer.tops[0]] = out
        elif task.pass_ is Pass.BWD:
            if not training:
                return
            if isinstance(node, LossNode):
                grads[layer.bottoms[0]] = node.backward()
                return
            if layer.type == "Split":
                dys = [grads[t] for t in layer.tops]
                grads[layer.bottoms[0]] = node.backward(*dys)
                return
            dy = grads.get(layer.tops[0])
            if dy is None:
                raise ReproError(
                    f"missing gradient for {layer.tops[0]!r}"
                )
            dx = node.backward(dy)
            if layer.type in ("Eltwise", "Concat"):
                for b, d in zip(layer.bottoms, dx):
                    grads[b] = d
            elif layer.bottoms:
                if layer.bottoms[0] in self._producer and not self._is_data(
                    layer.bottoms[0]
                ):
                    grads[layer.bottoms[0]] = dx
        else:  # UPD
            if training:
                node.update()
                if self.grad_hook is not None:
                    self.grad_hook(task.layer)

    def _is_data(self, tensor: str) -> bool:
        prod = self._producer.get(tensor)
        return prod is not None and self.enl.layer(prod).type == "Data"
