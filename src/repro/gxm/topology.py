"""Topology description: the DNN as a list of layer specs.

GxM parses a Protobuf-format topology description (section II-L); this
module defines the in-memory form plus a builder API, and renders/loads the
textual format (see :mod:`repro.gxm.parser`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.types import ShapeError

__all__ = ["LayerSpec", "TopologySpec"]

#: layer types GxM understands; Split is inserted by the NL Extender
LAYER_TYPES = {
    "Data",
    "Convolution",
    "ReLU",
    "BatchNorm",
    "Pooling",
    "AvgPooling",
    "GlobalPool",
    "InnerProduct",
    "Eltwise",
    "Concat",
    "SoftmaxWithLoss",
    "Split",
}

#: node types that exchange weight gradients in multi-node training (II-L)
GRADIENT_EXCHANGE_TYPES = {"Convolution", "BatchNorm", "InnerProduct"}


@dataclass
class LayerSpec:
    """One layer of the Network List."""

    name: str
    type: str
    bottoms: list[str] = field(default_factory=list)
    tops: list[str] = field(default_factory=list)
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.type not in LAYER_TYPES:
            raise ShapeError(f"unknown layer type {self.type!r} in {self.name}")

    def to_text(self) -> str:
        lines = [f'layer {{', f'  name: "{self.name}"', f'  type: "{self.type}"']
        for b in self.bottoms:
            lines.append(f'  bottom: "{b}"')
        for t in self.tops:
            lines.append(f'  top: "{t}"')
        for k, v in self.attrs.items():
            if isinstance(v, str):
                lines.append(f'  {k}: "{v}"')
            else:
                lines.append(f"  {k}: {v}")
        lines.append("}")
        return "\n".join(lines)


@dataclass
class TopologySpec:
    """An ordered Network List plus a name."""

    name: str
    layers: list[LayerSpec] = field(default_factory=list)

    def to_text(self) -> str:
        parts = [f'name: "{self.name}"']
        parts.extend(layer.to_text() for layer in self.layers)
        return "\n".join(parts) + "\n"

    def layer(self, name: str) -> LayerSpec:
        for l in self.layers:
            if l.name == name:
                return l
        raise KeyError(name)

    # ---- builder API ------------------------------------------------------
    def add(self, spec: LayerSpec) -> "TopologySpec":
        self.layers.append(spec)
        return self

    def data(self, name: str = "data", **attrs) -> str:
        self.add(LayerSpec(name, "Data", [], [name], attrs))
        return name

    def conv(
        self, name: str, bottom: str, num_output: int,
        kernel: int | tuple[int, int],
        stride: int = 1, pad: int | tuple[int, int] | None = None,
        relu: bool = False, batchnorm: bool = False,
    ) -> str:
        kh, kw = (kernel, kernel) if isinstance(kernel, int) else kernel
        if pad is None:
            ph, pw = (kh - 1) // 2, (kw - 1) // 2
        else:
            ph, pw = (pad, pad) if isinstance(pad, int) else pad
        attrs = {"num_output": num_output, "stride": stride}
        if kh == kw and ph == pw:
            attrs.update({"kernel": kh, "pad": ph})
        else:
            attrs.update({"kernel_h": kh, "kernel_w": kw,
                          "pad_h": ph, "pad_w": pw})
        self.add(LayerSpec(name, "Convolution", [bottom], [name], attrs))
        top = name
        if batchnorm:
            bn = f"{name}_bn"
            self.add(LayerSpec(bn, "BatchNorm", [top], [bn], {}))
            top = bn
        if relu:
            rl = f"{name}_relu"
            self.add(LayerSpec(rl, "ReLU", [top], [rl], {}))
            top = rl
        return top

    def pool(
        self, name: str, bottom: str, kernel: int,
        stride: int | None = None, pad: int = 0,
    ) -> str:
        self.add(
            LayerSpec(name, "Pooling", [bottom], [name],
                      {"kernel": kernel, "stride": stride or kernel,
                       "pad": pad})
        )
        return name

    def global_pool(self, name: str, bottom: str) -> str:
        self.add(LayerSpec(name, "GlobalPool", [bottom], [name], {}))
        return name

    def avg_pool(
        self, name: str, bottom: str, kernel: int, stride: int = 1,
        pad: int = 0,
    ) -> str:
        self.add(
            LayerSpec(name, "AvgPooling", [bottom], [name],
                      {"kernel": kernel, "stride": stride, "pad": pad})
        )
        return name

    def concat(self, name: str, bottoms: list[str]) -> str:
        self.add(LayerSpec(name, "Concat", list(bottoms), [name], {}))
        return name

    def eltwise(self, name: str, a: str, b: str, relu: bool = False) -> str:
        self.add(LayerSpec(name, "Eltwise", [a, b], [name], {}))
        top = name
        if relu:
            rl = f"{name}_relu"
            self.add(LayerSpec(rl, "ReLU", [top], [rl], {}))
            top = rl
        return top

    def fc(self, name: str, bottom: str, num_output: int) -> str:
        self.add(
            LayerSpec(name, "InnerProduct", [bottom], [name],
                      {"num_output": num_output})
        )
        return name

    def loss(self, name: str, bottom: str) -> str:
        self.add(LayerSpec(name, "SoftmaxWithLoss", [bottom], [name], {}))
        return name
