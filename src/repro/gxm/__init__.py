"""GxM -- the Graph execution Model (section II-L).

A lightweight training/inference framework: a protobuf-style topology text
is parsed into a Network List, extended with Split nodes, transformed into
node/task graphs, and finally an Execution Task Graph (ETG) whose tasks run
the forward, backward and weight-update passes (Fig. 3's seven-stage
pipeline).  Multi-node data-parallel training overlaps the gradient
all-reduce with backward compute via a simulated MLSL (:mod:`repro.gxm.mlsl`).
"""

from repro.gxm.topology import LayerSpec, TopologySpec
from repro.gxm.parser import parse_topology
from repro.gxm.graph import (
    extend_network,
    build_node_graph,
    build_petg,
    bin_tasks,
    dedup_tasks,
    compile_etg,
)
from repro.gxm.etg import ExecutionTaskGraph, Task
from repro.gxm.trainer import SGD, Trainer
from repro.gxm.multiproc import ProcessParallelTrainer
from repro.gxm.checkpoint import (
    TrainingCheckpoint,
    load_checkpoint,
    load_training_checkpoint,
    save_checkpoint,
    save_training_checkpoint,
)
from repro.gxm.data import SyntheticImageDataset
from repro.gxm.mlsl import MLSLSimulator, ring_allreduce_time

__all__ = [
    "LayerSpec",
    "TopologySpec",
    "parse_topology",
    "extend_network",
    "build_node_graph",
    "build_petg",
    "bin_tasks",
    "dedup_tasks",
    "compile_etg",
    "ExecutionTaskGraph",
    "Task",
    "SGD",
    "Trainer",
    "ProcessParallelTrainer",
    "TrainingCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "save_training_checkpoint",
    "load_training_checkpoint",
    "SyntheticImageDataset",
    "MLSLSimulator",
    "ring_allreduce_time",
]
