"""Process-parallel data-parallel training.

:class:`ProcessParallelTrainer` runs one *real* OS process per simulated
node -- the closest a pure-Python, no-MPI environment gets to the paper's
multi-node setup.  Since the collective rework the default communication
pattern is MLSL's *overlapped* data parallelism (section II-L):

1. the root broadcasts the initial weights + optimizer velocity once
   (``sync``), then acts as a **coordinator**, not a gradient funnel;
2. each step, workers run FWD/BWD/UPD on their minibatch shard; as every
   layer's dW lands, a deterministic gradient bucket is cut and pushed
   into a peer-to-peer all-reduce (:mod:`repro.collective`) that runs
   *while the rest of backprop continues* -- ``allreduce="ring"`` (the
   pipelined chain-ring, whose fold order is bitwise identical to the
   root fold) or ``"tree"`` (binomial);
3. when every worker reports its finished average, the root commits: an
   all-or-nothing barrier where workers and the root replica take the
   *same* SGD step on the *same* averaged gradients -- replicas stay
   bitwise in lockstep with no per-step weight scatter;
4. ``allreduce="root"`` keeps the legacy blocking scatter/gather through
   the root (stateless workers, per-step weight broadcast) -- the
   baseline ``benchmarks/bench_allreduce.py`` measures against, and the
   fallback path whenever the mesh cannot be built (a rank is down and
   out of respawn budget), so training always makes progress.

Fault tolerance.  Every pipe *and* peer-channel operation is
timeout-guarded; peer hops carry (step, epoch, bucket) headers plus a
CRC, and are rejected with typed :class:`~repro.collective.errors
.CollectiveError`\\ s.  A worker lost mid-collective (crash, SIGKILL,
hang, corruption) triggers **ring repair**: the first rank to notice
reports a ``cerr`` to the root, the root bumps the epoch (straggling
buckets of the old epoch become stale everywhere), kills the attributed
culprit, collects the survivors' local shard gradients over the root
pipes, and completes the step under the existing degrade policies --
``"recompute"`` re-runs lost shards on the root replica and folds all N
shards with the mode's deterministic fold, so recovered weights are
**bit-identical** to a healthy run; ``"rescale"`` averages survivors
only.  The folded average is re-broadcast (``commit_degraded``) so
surviving replicas stay in lockstep; failed ranks are respawned
(bounded by ``max_respawns``) and resynchronized at the next mesh
rewire.  No step is ever half-applied: weights only move inside the
commit barrier.  A :class:`~repro.resilience.NumericsWatchdog` screens
gradients with per-rank attribution even in collective mode (a worker
that detects local NaN withholds its buckets and reports ``cerr
numerics``; the root re-checks every collected shard), and periodic
training-checkpoint autosave plus :meth:`ProcessParallelTrainer.resume`
survive a root crash.  Faults are injectable deterministically via a
:class:`~repro.resilience.FaultPlan` (sites ``"mp.worker.step"``,
``"mp.worker.reply"`` and ``"collective.hop"``).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import shutil
import tempfile
import time
from typing import Optional

import numpy as np

from repro.collective.repair import Membership, fold_gradients, peers_for
from repro.forensics.bundle import IncidentWriter
from repro.forensics.recorder import get_recorder
from repro.forensics.recorder import enable as _recorder_enable
from repro.forensics.replay import digest_tensor_list
from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.topology import TopologySpec
from repro.gxm.trainer import SGD, TrainMetrics
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.resilience.faults import FaultInjector, FaultPlan, WorkerFailure
from repro.resilience.watchdog import NumericsWatchdog
from repro.types import ReproError

__all__ = ["ProcessParallelTrainer", "WorkerFailure"]

#: pipe-poll granularity while waiting on a worker (also bounds how
#: stale a dead-process check can be)
_POLL_S = 0.05

#: root-pipe reply tags a stale (older step/epoch) copy of which may be
#: safely discarded while waiting for something else; any other payload
#: is a corrupt message
_KNOWN_REPLIES = ("done", "cerr", "grads", "ringok", "ringfail")


def _drain_obs(trace: bool):
    """Everything a worker ships back with each reply: tracer spans,
    metrics and the flight-recorder ring -- so the parent's merged view
    (and any incident bundle it writes) includes the children's recent
    history, even for workers that die right after replying."""
    rec = get_recorder()
    if not trace and not rec.enabled:
        return None
    return {
        "pid": os.getpid(),
        "events": get_tracer().export_events(clear=True) if trace else [],
        "metrics": get_metrics().snapshot(clear=True) if trace else {},
        "ring": rec.export_events(clear=True) if rec.enabled else [],
    }


def _worker_main(
    conn,
    topo_text: str,
    input_shape,
    seed: int,
    trace: bool = False,
    rank: int = 0,
    fault_plan: FaultPlan | None = None,
    collective: dict | None = None,
    record: bool = False,
) -> None:
    """Worker loop.  Root-pipe protocol (all messages are tagged tuples;
    ``None`` = shutdown):

    =====================================  ============================
    root -> worker                         worker -> root
    =====================================  ============================
    ``("sync", weights, velocity)``        --
    ``("ring", epoch, mode, addresses)``   ``("ringok", epoch)`` or
                                           ``("ringfail", epoch, why)``
    ``("step", step, epoch, x, y)``        ``("done", step, loss, acc,
                                           payload, stats, avg|None)``
                                           or ``("cerr", step, epoch,
                                           kind, culprit, detail)``
    ``("commit", step)``                   -- (applies the average)
    ``("abort", step)``                    ``("grads", step, grads,
                                           loss, acc, payload)``
    ``("commit_degraded", step, avg)``     -- (applies the average)
    ``("wstep", step, weights, x, y)``     ``("grads", step, grads,
                                           loss, acc, payload)``
    =====================================  ============================
    """
    from repro import obs
    from repro.collective.channels import PeerHub
    from repro.collective.engine import PeerReceiver
    from repro.collective.worker import CollectiveStepRunner
    from repro.collective.bucketing import layer_param_indices

    injector = FaultInjector(fault_plan)
    if trace:
        obs.enable()
        # per-process observability: this worker's spans/counters are
        # drained after every step and merged at the root
        get_tracer().clear()
        get_metrics().clear()
    if record:
        # this worker's flight-recorder ring rides the same per-reply
        # payload as the tracer spans and lands in the parent's ring
        _recorder_enable()
        get_recorder().clear()
    recorder = get_recorder()
    hub = None
    opt = None
    layer_idx = None
    if collective is not None:
        # listen before the (slow) ETG build so peers can start dialing
        hub = PeerHub(collective["address"], collective["authkey"])
    etg = ExecutionTaskGraph(
        parse_topology_text(topo_text), input_shape, engine="fast", seed=seed
    )
    params = etg.params()
    if collective is not None:
        opt = SGD(params, collective["lr"], collective["momentum"],
                  collective["weight_decay"])
        layer_idx = layer_param_indices(etg)
    conns: dict = {}
    receiver = None
    epoch = -1
    mode = None
    tracer = get_tracer()

    def reply_fault(step):
        f = injector.fire("mp.worker.reply", step=step, rank=rank)
        if f is not None and f.kind == "crash":
            os._exit(19)  # died right after the reply hit the pipe

    try:
        while True:
            msg = conn.recv()
            if msg is None:
                return
            tag = msg[0]
            if tag == "sync":
                _, weights, velocity = msg
                for p, w in zip(params, weights):
                    p[...] = w
                for v, w in zip(opt._velocity, velocity):
                    v[...] = w
            elif tag == "ring":
                _, new_epoch, new_mode, addresses = msg
                try:
                    if receiver is not None:
                        receiver.stop()  # before rewire closes its conns
                        receiver = None
                    peers = peers_for(new_mode, rank, collective["nodes"])
                    conns = hub.rewire(
                        rank, peers, addresses, new_epoch,
                        timeout=collective["ring_timeout"],
                    )
                    receiver = PeerReceiver(conns, new_epoch)
                    epoch, mode = new_epoch, new_mode
                    if recorder.enabled:
                        recorder.record(
                            "collective.rewire", epoch=new_epoch,
                            mode=new_mode, rank=rank,
                        )
                    conn.send(("ringok", new_epoch))
                except Exception as err:
                    conn.send(("ringfail", new_epoch, repr(err)))
            elif tag == "wstep":
                # stateless legacy step: weights in, local grads out
                _, step, weights, x, labels = msg
                if recorder.enabled:
                    recorder.record("mp.step", step=step, rank=rank,
                                    mode="root", n=len(labels))
                fault = injector.fire("mp.worker.step", step=step, rank=rank)
                if fault is not None and fault.kind == "crash":
                    os._exit(17)  # simulated SIGKILL: no cleanup
                if fault is not None and fault.kind == "hang":
                    time.sleep(3600)  # the root's timeout reaps us
                if fault is not None and fault.kind == "slow":
                    time.sleep(fault.delay_s)  # latency, not death
                for p, w in zip(params, weights):
                    p[...] = w
                loss = etg.train_step(x, labels)
                acc = etg.accuracy()
                payload = _drain_obs(trace)
                grads = [g.copy() for g in etg.grads()]
                if fault is not None and fault.kind == "nan_grad":
                    grads[fault.param % len(grads)].flat[0] = np.nan
                reply = ("grads", step, grads, float(loss), float(acc),
                         payload)
                if fault is not None and fault.kind == "corrupt_message":
                    reply = ("corrupt", step)
                conn.send(reply)
                reply_fault(step)
            elif tag == "step":
                _, step, sepoch, x, labels = msg
                if recorder.enabled:
                    recorder.record("mp.step", step=step, rank=rank,
                                    mode=mode, epoch=sepoch,
                                    n=len(labels))
                fault = injector.fire("mp.worker.step", step=step, rank=rank)
                if fault is not None and fault.kind == "crash":
                    os._exit(17)
                if fault is not None and fault.kind == "hang":
                    time.sleep(3600)
                if fault is not None and fault.kind == "slow":
                    time.sleep(fault.delay_s)
                poison = fault is not None and fault.kind == "nan_grad"
                corrupt = (
                    fault is not None and fault.kind == "corrupt_message"
                )
                runner = None
                if not poison:
                    runner = CollectiveStepRunner(
                        mode=mode, rank=rank, nodes=collective["nodes"],
                        step=step, epoch=sepoch, conns=conns,
                        receiver=receiver, etg=etg,
                        layer_indices=layer_idx,
                        bucket_bytes=collective["bucket_bytes"],
                        hop_timeout=collective["hop_timeout"],
                        injector=injector, corrupt_first=corrupt,
                    )
                    runner.attach()
                if tracer.enabled:
                    with tracer.span("collective.step", step=step,
                                     mode=mode or "detached", rank=rank):
                        loss = etg.train_step(x, labels)
                else:
                    loss = etg.train_step(x, labels)
                acc = etg.accuracy()
                if runner is not None:
                    runner.detach_and_finish()
                _finish_collective_step(
                    conn, runner, tracer, trace, rank, step,
                    epoch, opt, etg, float(loss), float(acc),
                    poison_param=(fault.param if poison else None),
                    reply_fault=reply_fault,
                )
            elif tag == "commit_degraded":
                # a repaired step's folded average, arriving after this
                # worker already returned its local grads: apply it so
                # the replica stays in lockstep with the root
                opt.step(msg[2])
            # stale "commit"/"abort" and unknown tags are ignored
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # root went away; nothing to report to
    finally:
        if receiver is not None:
            receiver.stop()
        if hub is not None:
            hub.close()
        try:
            conn.close()
        except OSError:
            pass


def _finish_collective_step(conn, runner, tracer, trace, rank,
                            step, epoch, opt, etg, loss, acc, *,
                            poison_param, reply_fault) -> None:
    """Post-compute worker state machine: wait for the all-reduce while
    obeying the root (commit / abort), and escalate engine failures."""

    def local_grads():
        g = [a.copy() for a in etg.grads()]
        if poison_param is not None:
            g[poison_param % len(g)].flat[0] = np.nan
        return g

    if poison_param is not None:
        # never feed poisoned gradients to peers: withhold buckets and
        # self-report so the root keeps per-rank NaN attribution
        conn.send(("cerr", step, epoch, "numerics", rank,
                   "nan detected in local gradients"))
    done_sent = False
    cerr_sent = poison_param is not None
    avg = None
    span = None
    if tracer.enabled and runner is not None:
        span = tracer.span("collective.exposed", step=step, rank=rank)
        span.__enter__()
    try:
        while True:
            engine = runner.engine if runner is not None else None
            if engine is not None and engine.done and not done_sent:
                if span is not None:
                    span.__exit__(None, None, None)
                    span = None
                avg = engine.result_list()
                conn.send(("done", step, loss, acc, _drain_obs(trace),
                           runner.step_stats(),
                           avg if rank == 0 else None))
                done_sent = True
                reply_fault(step)
            elif (engine is not None and engine.failed is not None
                    and not done_sent and not cerr_sent):
                err = engine.failed
                conn.send(("cerr", step, epoch, err.kind, err.culprit,
                           str(err)))
                cerr_sent = True
            if conn.poll(0.02):
                msg = conn.recv()
                if msg is None:
                    raise EOFError  # shutdown mid-step
                tag = msg[0]
                if tag == "commit" and done_sent and msg[1] == step:
                    opt.step(avg)
                    return
                if tag == "abort" and msg[1] == step:
                    if runner is not None:
                        runner.abandon()
                    conn.send(("grads", step, local_grads(), loss, acc,
                               _drain_obs(trace)))
                    return
                # stale control traffic for an older step: ignore
    finally:
        if span is not None:
            span.__exit__(None, None, None)


def parse_topology_text(text: str):
    from repro.gxm.parser import parse_topology

    return parse_topology(text)


class ProcessParallelTrainer:
    """Data-parallel SGD over ``nodes`` worker processes.

    Use as a context manager (or call :meth:`close`) so the workers exit.

    Parameters (beyond the healthy-path ones)
    -----------------------------------------
    allreduce:
        ``"ring"`` (default) -- overlapped bucketed chain-ring all-reduce
        between the workers; ``"tree"`` -- binomial tree; ``"root"`` --
        the legacy blocking scatter/gather through the root.  With
        ``nodes=1`` there is nothing to reduce and ``"root"`` is used.
    bucket_bytes:
        Gradient-bucket threshold for the collective modes; smaller
        buckets start communicating earlier (more overlap) at more
        per-hop overhead.
    step_timeout:
        Seconds the root waits for any single worker reply before
        declaring it hung (:class:`WorkerFailure`); never blocks
        forever.  Also the per-hop timeout inside the collective.
    max_respawns:
        Total worker respawns allowed across the run; a rank whose
        budget is exhausted stays down (every later step degrades
        through the root-fold fallback).
    degrade_policy:
        ``"recompute"`` (default) -- a failed worker's shard is re-run on
        the root's replica and folded with the active mode's
        deterministic fold, keeping training numerics bit-identical to a
        healthy run; ``"rescale"`` -- average over survivors only.
    nan_policy:
        Numerics-watchdog policy: ``"raise"``/``"skip"``/``"off"``.
    fault_plan:
        Deterministic :class:`~repro.resilience.FaultPlan` handed to
        every worker (fault-matrix testing; sites ``mp.worker.step``,
        ``mp.worker.reply``, ``collective.hop``).
    checkpoint_path / checkpoint_every:
        Training-checkpoint autosave every N steps (atomic write);
        :meth:`resume` restores it exact-to-the-step.
    incident_dir:
        When set, arms the forensics layer: the flight recorder is
        enabled in the root *and* every worker (rings drain back with
        each reply), and every degraded step writes one
        :mod:`repro.forensics` incident bundle there -- the failing
        shard, the step-start weights and the digests of the gradients
        the root recomputed bit-identically, replayable via
        ``python -m repro incident replay``.
    """

    def __init__(
        self,
        topo: TopologySpec,
        input_shape: tuple[int, int, int, int],
        nodes: int = 2,
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        seed: int = 0,
        start_method: str = "fork",
        trace: bool | None = None,
        step_timeout: float = 30.0,
        max_respawns: int = 2,
        degrade_policy: str = "recompute",
        nan_policy: str = "raise",
        fault_plan: FaultPlan | None = None,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 0,
        shuffle_seed: int = 1,
        allreduce: str = "ring",
        bucket_bytes: int = 1 << 20,
        incident_dir: str | None = None,
    ):
        if nodes < 1:
            raise ReproError("need at least one worker node")
        if degrade_policy not in ("recompute", "rescale"):
            raise ReproError(
                f"unknown degrade_policy {degrade_policy!r}; expected "
                f"'recompute' or 'rescale'"
            )
        if allreduce not in ("ring", "tree", "root"):
            raise ReproError(
                f"unknown allreduce {allreduce!r}; expected 'ring', "
                f"'tree' or 'root'"
            )
        if nodes == 1:
            allreduce = "root"  # degenerate: nothing to reduce
        # per-process tracer merge: workers record their own spans/metrics
        # and the root folds them in after every step (default: follow the
        # root tracer's enabled state at construction time)
        self.trace = get_tracer().enabled if trace is None else trace
        self._topo_text = topo.to_text()
        self._input_shape = input_shape
        self._seed = seed
        # the root keeps a replica purely to own the parameter arrays --
        # and, under the recompute policy, to re-run a failed worker's
        # shard.  It is built from the same topology *text* the workers
        # parse, so a recomputed shard is bit-identical to the lost one.
        self.root = ExecutionTaskGraph(
            parse_topology_text(self._topo_text), input_shape,
            engine="fast", seed=seed,
        )
        self.params = self.root.params()
        self.opt = SGD(self.params, lr, momentum, weight_decay)
        self.metrics = TrainMetrics()
        self.nodes = nodes
        self.allreduce = allreduce
        self.bucket_bytes = bucket_bytes
        self.step_timeout = step_timeout
        self.degrade_policy = degrade_policy
        self.watchdog = NumericsWatchdog(nan_policy)
        self.fault_plan = fault_plan
        #: root-side injector: only root-owned sites (``checkpoint.save``)
        #: fire here; worker sites fire in the workers' own injectors
        self._injector = FaultInjector(fault_plan) if fault_plan else None
        self.incidents = IncidentWriter(incident_dir)
        if incident_dir is not None:
            _recorder_enable()
        #: workers enable their own recorder ring when the parent's is
        #: armed (incident_dir, or recording already on at construction)
        self.record = get_recorder().enabled
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.shuffle_seed = shuffle_seed
        self.iteration = 0
        self._resume_skip = 0
        self._respawn_budget = max_respawns
        #: every :class:`WorkerFailure` survived so far (step order)
        self.failures: list[WorkerFailure] = []
        self._ctx = mp.get_context(start_method)
        self._conns: list = [None] * nodes
        self._procs: list = [None] * nodes
        self._mesh = Membership(nodes)
        self._mesh.reset_all()
        self._sockdir = None
        self._authkey = os.urandom(16)
        self._spawn_gen = 0
        #: a mesh (re)build may legitimately wait for a fresh worker's
        #: ETG construction -- give it more room than one step
        self.ring_build_timeout = max(step_timeout, 20.0)
        if self.allreduce != "root":
            self._sockdir = tempfile.mkdtemp(prefix="repro-ring-")
        for rank in range(nodes):
            self._spawn(rank)

    # -- worker lifecycle ----------------------------------------------
    def _spawn(self, rank: int) -> None:
        parent, child = self._ctx.Pipe()
        collective = None
        if self.allreduce != "root":
            # fresh socket path per incarnation: a crashed predecessor's
            # bound path must never collide with the replacement's
            address = os.path.join(
                self._sockdir, f"w{rank}.g{self._spawn_gen}"
            )
            self._spawn_gen += 1
            self._mesh.addresses[rank] = address
            collective = {
                "mode": self.allreduce,
                "nodes": self.nodes,
                "address": address,
                "authkey": self._authkey,
                "lr": self.opt.lr,
                "momentum": self.opt.momentum,
                "weight_decay": self.opt.weight_decay,
                "bucket_bytes": self.bucket_bytes,
                "hop_timeout": self.step_timeout,
                "ring_timeout": self.ring_build_timeout,
            }
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child, self._topo_text, self._input_shape, self._seed,
                  self.trace, rank, self.fault_plan, collective,
                  self.record),
            daemon=True,
        )
        proc.start()
        child.close()
        self._conns[rank] = parent
        self._procs[rank] = proc

    def _kill(self, rank: int) -> None:
        """Reap one worker unconditionally (broken pipe, hung, dead)."""
        conn, proc = self._conns[rank], self._procs[rank]
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if proc is not None:
            proc.terminate()
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.kill()
                proc.join(timeout=5)
        self._conns[rank] = None
        self._procs[rank] = None

    def _respawn(self, rank: int) -> bool:
        """Bounded replacement of a failed worker.  The fresh process
        resynchronizes through the next mesh rewire (collective modes)
        or the per-step weight scatter (root mode)."""
        self._kill(rank)
        self._mesh.stale = True
        if self._respawn_budget <= 0:
            return False
        self._respawn_budget -= 1
        self._spawn(rank)
        self._mesh.needs_sync.add(rank)
        get_metrics().inc("resilience.respawns")
        return True

    @property
    def live_workers(self) -> int:
        return sum(
            1 for p in self._procs if p is not None and p.is_alive()
        )

    def _live_ranks(self) -> list[int]:
        return [
            r for r in range(self.nodes)
            if self._procs[r] is not None and self._procs[r].is_alive()
            and self._conns[r] is not None
        ]

    # -- timeout-guarded pipe I/O --------------------------------------
    def _send(self, rank: int, msg) -> None:
        conn = self._conns[rank]
        if conn is None or self._procs[rank] is None:
            raise WorkerFailure(rank, "worker is down")
        try:
            conn.send(msg)
        except (BrokenPipeError, OSError) as err:
            raise WorkerFailure(rank, f"send failed ({err})") from err

    @staticmethod
    def _reply_matches(msg, want) -> bool:
        if want is None:
            return True
        tags, key = want
        return (
            isinstance(msg, tuple)
            and len(msg) >= 2
            and msg[0] in tags
            and msg[1] == key
        )

    def _classify(self, rank: int, msg, want):
        """Return the message if it matches ``want``; silently discard a
        stale-but-recognized reply (``None``); raise on garbage."""
        if self._reply_matches(msg, want):
            return msg
        if isinstance(msg, tuple) and msg and msg[0] in _KNOWN_REPLIES:
            return None  # a stale reply that raced an abort/rewire
        raise WorkerFailure(rank, f"corrupt message ({msg!r:.120})")

    def _recv(self, rank: int, want=None, timeout: float | None = None):
        """Receive the reply matching ``want`` (``(tags, step-or-epoch)``;
        ``None`` = first message), never blocking past the timeout and
        detecting a dead worker in at most ``_POLL_S`` seconds.  A worker
        that replied and *then* exited is not a failure: everything it
        queued is drained before the death verdict."""
        conn, proc = self._conns[rank], self._procs[rank]
        if conn is None or proc is None:
            raise WorkerFailure(rank, "worker is down")
        budget = self.step_timeout if timeout is None else timeout
        deadline = time.monotonic() + budget
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerFailure(
                    rank,
                    f"no reply within {budget}s (hung worker)",
                )
            try:
                if conn.poll(min(_POLL_S, remaining)):
                    msg = self._classify(rank, conn.recv(), want)
                    if msg is not None:
                        return msg
                    continue
            except (EOFError, OSError) as err:
                raise WorkerFailure(
                    rank, f"pipe broke mid-step ({err})"
                ) from err
            if not proc.is_alive():
                # the worker may have replied (possibly several queued
                # messages: a stale ack plus the real reply) and then
                # exited -- drain the whole queue before declaring death
                try:
                    while conn.poll(0):
                        msg = self._classify(rank, conn.recv(), want)
                        if msg is not None:
                            return msg
                except (EOFError, OSError):
                    pass
                raise WorkerFailure(
                    rank, f"process died (exit code {proc.exitcode})"
                )

    def _poll_worker(self, rank: int):
        """One non-blocking look at a worker: ``("msg", m)``,
        ``("dead", WorkerFailure)`` or ``None`` (nothing yet)."""
        conn, proc = self._conns[rank], self._procs[rank]
        if conn is None or proc is None:
            return ("dead", WorkerFailure(rank, "worker is down"))
        try:
            if conn.poll(0):
                return ("msg", conn.recv())
        except (EOFError, OSError) as err:
            return ("dead", WorkerFailure(rank, f"pipe broke ({err})"))
        if not proc.is_alive():
            try:
                if conn.poll(0):
                    return ("msg", conn.recv())
            except (EOFError, OSError):
                pass
            return (
                "dead",
                WorkerFailure(
                    rank, f"process died (exit code {proc.exitcode})"
                ),
            )
        return None

    def _validate_grads_reply(self, rank: int, reply):
        """Typed rejection of corrupt messages (never a downstream
        TypeError/ValueError deep in the all-reduce)."""
        try:
            tag, step, grads, loss, acc, payload = reply
            if tag != "grads":
                raise ValueError(f"unexpected tag {tag!r}")
            if len(grads) != len(self.params):
                raise ValueError(
                    f"{len(grads)} gradient tensors, expected "
                    f"{len(self.params)}"
                )
            for g, p in zip(grads, self.params):
                if not isinstance(g, np.ndarray) or g.shape != p.shape:
                    raise ValueError("gradient tensor shape mismatch")
            return grads, float(loss), float(acc), payload
        except (TypeError, ValueError) as err:
            raise WorkerFailure(
                rank, f"corrupt message ({err})"
            ) from err

    def _ingest_payload(self, payload) -> None:
        if payload is not None:
            get_tracer().ingest(payload["events"], pid=payload["pid"])
            get_metrics().merge(payload["metrics"])
            get_recorder().ingest(
                payload.get("ring", ()), pid=payload["pid"]
            )

    # ------------------------------------------------------------------
    def _recompute_shard(self, x: np.ndarray, labels: np.ndarray):
        """Re-run a lost shard on the root replica.  The root's params
        still hold exactly the step's starting weights (the SGD step
        happens at the commit barrier, after the all-reduce), so the
        result is bit-identical to what the failed worker computed."""
        loss = self.root.train_step(x, labels)
        acc = self.root.accuracy()
        return [g.copy() for g in self.root.grads()], float(loss), float(acc)

    def train_step(self, x: np.ndarray, labels: np.ndarray) -> float:
        """One data-parallel step.  Collective modes: dispatch ->
        overlapped all-reduce -> commit barrier; ring repair + degraded
        completion on any failure.  Root mode (and the fallback when the
        mesh cannot cover every rank): scatter -> compute -> root fold.

        Survives worker failures mid-step: the step completes degraded
        (recompute or rescale), failed ranks are respawned afterwards,
        and ``resilience.degraded_steps`` counts the event.
        """
        step = self.iteration
        shards = np.array_split(np.arange(len(labels)), self.nodes)
        if self.allreduce == "root":
            return self._train_step_root(step, x, labels, shards)
        if len(self._live_ranks()) < self.nodes:
            # a rank is down (respawn budget exhausted, or it died since
            # last step): the mesh cannot cover every shard, so fall
            # back to the blocking root fold -- same mode-aware fold,
            # so a recompute-policy run stays bit-identical
            get_metrics().inc("collective.rootsteps")
            return self._train_step_root(step, x, labels, shards)
        failed: dict[int, WorkerFailure] = {}
        if not self._ensure_mesh(failed):
            for rank in sorted(failed):
                self._kill(rank)
            get_metrics().inc("collective.rootsteps")
            return self._train_step_root(
                step, x, labels, shards, prefailed=failed
            )
        return self._train_step_collective(step, x, labels, shards)

    # -- mesh / sync ----------------------------------------------------
    def _ensure_mesh(self, failed: dict) -> bool:
        """Bring every worker's replica and peer mesh up to date.  On
        any failure the offending ranks land in ``failed`` and the
        caller falls back to a root-fold step."""
        mesh = self._mesh
        if not mesh.stale and not mesh.needs_sync:
            return True
        try:
            for rank in sorted(mesh.needs_sync):
                self._send(rank, ("sync", self.params, self.opt._velocity))
            get_metrics().inc("collective.syncs", len(mesh.needs_sync))
            mesh.needs_sync = set()
            epoch = mesh.epoch + 1
            for rank in range(self.nodes):
                self._send(
                    rank, ("ring", epoch, self.allreduce, mesh.addresses)
                )
            for rank in range(self.nodes):
                ack = self._recv(
                    rank, want=(("ringok", "ringfail"), epoch),
                    timeout=self.ring_build_timeout,
                )
                if ack[0] != "ringok":
                    raise WorkerFailure(
                        rank, f"mesh build failed: {ack[2]}"
                    )
            mesh.epoch = epoch
            mesh.stale = False
            get_metrics().inc("collective.rebuilds")
            return True
        except WorkerFailure as f:
            failed[f.rank] = f
            mesh.stale = True
            mesh.epoch += 1  # invalidate anything the half-built mesh sent
            return False

    # -- collective step ------------------------------------------------
    def _train_step_collective(self, step, x, labels, shards) -> float:
        mesh = self._mesh
        culprits: dict[int, WorkerFailure] = {}
        pending = set(range(self.nodes))
        dones: dict[int, tuple] = {}
        cerrs: list[dict] = []
        grace = None
        avg = None
        for rank in range(self.nodes):
            try:
                self._send(rank, ("step", step, mesh.epoch,
                                  x[shards[rank]], labels[shards[rank]]))
            except WorkerFailure as f:
                culprits[rank] = f
                pending.discard(rank)
        # wait: every rank reports done, or anyone reports/becomes a
        # failure -- compute plus the slowest hop-timeout cascade (a
        # broadcast-phase wait is 2x the hop timeout), with margin
        deadline = time.monotonic() + self.step_timeout * 3 + 2
        while pending and not culprits:
            if cerrs:
                # definitive evidence (EOF, CRC, stale epoch, NaN) names
                # the culprit outright; a hop *timeout* only implicates a
                # neighbour, and a hung rank stalls its whole downstream
                # cascade -- so the first timeout report opens a grace
                # window long enough for every healthy rank's own wait
                # (up to 2x the hop timeout on broadcast legs) to expire
                # and report, after which the silent accused stand out
                if any(c["kind"] != "timeout" for c in cerrs):
                    break
                if time.monotonic() > grace:
                    break
            progressed = False
            for rank in sorted(pending):
                got = self._poll_worker(rank)
                if got is None:
                    continue
                progressed = True
                if got[0] == "dead":
                    culprits[rank] = got[1]
                    pending.discard(rank)
                    break
                msg = got[1]
                try:
                    msg = self._classify(
                        rank, msg, (("done", "cerr"), step)
                    )
                except WorkerFailure as f:
                    culprits[rank] = f
                    pending.discard(rank)
                    break
                if msg is None:
                    continue  # stale reply from before a repair
                if msg[0] == "done":
                    _, _, loss_r, acc_r, payload, stats, rank_avg = msg
                    self._ingest_payload(payload)
                    dones[rank] = (loss_r, acc_r, stats)
                    if rank_avg is not None:
                        avg = rank_avg
                    pending.discard(rank)
                else:  # cerr
                    cerrs.append({"rank": rank, "kind": msg[3],
                                  "culprit": msg[4], "detail": msg[5]})
                    pending.discard(rank)
                    if grace is None:
                        grace = (time.monotonic()
                                 + self.step_timeout * 2 + 0.5)
            if not progressed:
                if time.monotonic() > max(deadline, grace or 0):
                    for rank in sorted(pending):
                        culprits[rank] = WorkerFailure(
                            rank, "no collective result within budget"
                        )
                    pending.clear()
                    break
                time.sleep(_POLL_S)
        if culprits or cerrs:
            return self._repair_and_complete(
                step, x, labels, shards, culprits, cerrs, dones
            )
        # -- healthy commit barrier -------------------------------------
        m = get_metrics()
        if avg is None:  # pragma: no cover - defensive
            return self._repair_and_complete(
                step, x, labels, shards,
                {0: WorkerFailure(0, "no average reported")}, [], dones,
            )
        ok = self.watchdog.check(avg, node="collective", step=step)
        if not ok:
            # never half-apply: abort instead of committing, discard the
            # survivors' grads replies, and skip the step everywhere
            mesh.stale = True
            mesh.epoch += 1
            _, afails = self._abort_collect(step, set(), collect=False)
            self.watchdog.skipped()
            for rank in sorted(afails):
                self._respawn(rank)
            self._finish_step_accounting(step, shards, {
                r: (d[0], d[1]) for r, d in dones.items()
            })
            return self.metrics.losses[-1]
        postfail: dict[int, WorkerFailure] = {}
        for rank in range(self.nodes):
            try:
                self._send(rank, ("commit", step))
            except WorkerFailure as f:
                postfail[rank] = f
        self.opt.step([np.asarray(g) for g in avg])
        for rank, (_, _, stats) in dones.items():
            m.inc("collective.buckets", stats.get("buckets", 0))
            m.inc("collective.hops", stats.get("hops", 0))
            m.inc("collective.bytes", stats.get("bytes", 0))
            m.inc("collective.stale_dropped", stats.get("stale_dropped", 0))
            m.observe("collective.exposed_ms", stats.get("exposed_ms", 0.0))
            m.observe("collective.overlap_ms", stats.get("overlap_ms", 0.0))
        m.inc("collective.steps")
        if postfail:
            # a worker died between its done and the commit: its replica
            # missed the update, so it must be resynced from scratch
            self.failures.extend(postfail[r] for r in sorted(postfail))
            for rank in sorted(postfail):
                self._respawn(rank)
        self._finish_step_accounting(step, shards, {
            r: (d[0], d[1]) for r, d in dones.items()
        })
        return self.metrics.losses[-1]

    def _abort_collect(self, step, exclude: set, collect: bool = True):
        """Broadcast ``abort`` and (optionally) gather every surviving
        worker's local shard gradients; returns ``{rank: (grads, loss,
        acc)}`` plus the ranks that failed while collecting."""
        collected: dict[int, tuple] = {}
        failures: dict[int, WorkerFailure] = {}
        live = [r for r in self._live_ranks() if r not in exclude]
        for rank in live:
            try:
                self._send(rank, ("abort", step))
            except WorkerFailure as f:
                failures[rank] = f
        for rank in live:
            if rank in failures:
                continue
            try:
                reply = self._recv(
                    rank, want=(("grads",), step),
                    timeout=self.step_timeout * 1.5 + 1,
                )
                grads, loss_r, acc_r, payload = self._validate_grads_reply(
                    rank, reply
                )
            except WorkerFailure as f:
                failures[rank] = f
                continue
            if collect:
                self._ingest_payload(payload)
                collected[rank] = (grads, loss_r, acc_r)
        return collected, failures

    def _repair_and_complete(self, step, x, labels, shards, culprits,
                             cerrs, dones) -> float:
        """Ring repair: epoch bump, culprit kill, survivor grad
        collection over the root pipes, degraded completion."""
        mesh = self._mesh
        m = get_metrics()
        m.inc("collective.aborts")
        mesh.epoch += 1  # in-flight buckets of the old epoch are stale
        mesh.stale = True
        numerics = any(c["kind"] == "numerics" for c in cerrs)
        for c in cerrs:
            m.inc(f"collective.errors.{c['kind']}")
        if cerrs and not numerics:
            # a rank that reported (or finished) was demonstrably making
            # progress: the real culprit is whoever was accused yet stayed
            # silent through the grace window.  A pile-up of timeout
            # reports otherwise blames the first accused's own victim.
            reporters = {c["rank"] for c in cerrs}
            accused = [c for c in cerrs if c["culprit"] is not None]
            guilty = [c for c in accused
                      if c["culprit"] not in reporters
                      and c["culprit"] not in dones] or accused[:1]
            for c in guilty:
                blamed = c["culprit"]
                culprits.setdefault(blamed, WorkerFailure(
                    blamed,
                    f"collective {c['kind']}: {c['detail']}",
                ))
        # the culprit's collective state is untrusted: reap it (numerics
        # reporters stay -- their process is healthy and their gradients
        # are needed for per-rank watchdog attribution)
        for rank in sorted(culprits):
            self._kill(rank)
        collected, fails = self._abort_collect(step, set(culprits))
        culprits.update(fails)
        for rank in sorted(fails):
            self._kill(rank)
        results: list[Optional[tuple]] = [None] * self.nodes
        for rank, res in collected.items():
            results[rank] = res
        return self._complete_degraded(
            step, x, labels, shards, results, culprits,
            count_degraded=bool(culprits), broadcast=True,
        )

    # -- root-fold path (legacy mode + fallback) ------------------------
    def _train_step_root(self, step, x, labels, shards,
                         prefailed: dict | None = None) -> float:
        """Blocking scatter/compute/gather through the root: stateless
        workers receive this step's weights with their shard."""
        failed: dict[int, WorkerFailure] = dict(prefailed or {})
        weights = [p.copy() for p in self.params]
        for rank in range(self.nodes):
            if rank in failed:
                continue
            try:
                self._send(
                    rank,
                    ("wstep", step, weights, x[shards[rank]],
                     labels[shards[rank]]),
                )
            except WorkerFailure as f:
                failed[rank] = f
        results: list[Optional[tuple]] = [None] * self.nodes
        for rank in range(self.nodes):
            if rank in failed:
                continue
            try:
                reply = self._recv(rank, want=(("grads",), step))
                grads, loss_r, acc_r, payload = self._validate_grads_reply(
                    rank, reply
                )
            except WorkerFailure as f:
                failed[rank] = f
                self._kill(rank)
                continue
            self._ingest_payload(payload)
            results[rank] = (grads, loss_r, acc_r)
        # stateless workers' replicas now diverge from the root (they
        # never see this step's update): resync before any collective
        if self.allreduce != "root":
            self._mesh.reset_all()
        return self._complete_degraded(
            step, x, labels, shards, results, failed,
            count_degraded=bool(failed), broadcast=False,
        )

    # -- shared degraded/root completion --------------------------------
    def _complete_degraded(self, step, x, labels, shards, results, failed,
                           *, count_degraded, broadcast) -> float:
        """Finish a step from per-rank shard gradients: degrade policy,
        numerics watchdog (per-rank attribution), the mode's
        deterministic fold, the optimizer commit, respawns."""
        # a rank can die *unblamed*: the wait loop stops at the first
        # detected culprit, so a simultaneous casualty elsewhere in the
        # ring shows up only as a missing result here.  It must still be
        # failed -- recompute covers its shard (bit-identity), rescale
        # excludes it *explicitly* -- never silently dropped from the
        # fold divisor and the loss weighting
        for rank, res in enumerate(results):
            if res is None and rank not in failed:
                failed[rank] = WorkerFailure(
                    rank, f"no shard gradients for step {step} "
                    "(died unblamed mid-collective)"
                )
                count_degraded = True
        if failed and count_degraded:
            get_metrics().inc("resilience.degraded_steps")
            self.failures.extend(failed[rank] for rank in sorted(failed))
        if failed and self.degrade_policy == "recompute":
            for rank in sorted(failed):
                results[rank] = self._recompute_shard(
                    x[shards[rank]], labels[shards[rank]]
                )
        if failed and count_degraded and self.incidents.enabled:
            # the root's params still hold the step-start weights (the
            # optimizer commit is below), so the bundle freezes exactly
            # the state a replay must rebuild
            self._capture_train_incident(
                step, x, labels, shards, results, failed
            )
        # numerics watchdog: attribute divergence to the worker rank
        ok = True
        for rank, res in enumerate(results):
            if res is not None:
                ok = self.watchdog.check(
                    res[0], node=f"worker{rank}", step=step
                ) and ok
        shard_grads = []
        contributors: dict[int, tuple] = {}
        for rank, res in enumerate(results):
            if res is None:
                continue
            shard_grads.append(res[0])
            contributors[rank] = (res[1], res[2])
        if not shard_grads:
            # every worker failed: heal (bounded) *before* propagating,
            # otherwise the fleet stays permanently dead and every
            # subsequent step is doomed
            for rank in sorted(failed):
                self._respawn(rank)
            raise WorkerFailure(
                -1, f"step {step}: every worker failed "
                f"({[str(f) for f in failed.values()]})"
            )
        if ok:
            avg = fold_gradients(
                self.allreduce, shard_grads, len(shard_grads)
            )
            self.opt.step(avg)
            if broadcast:
                # keep the surviving replicas' weights in lockstep: they
                # apply the same average inside the same barrier
                for rank in list(contributors):
                    if rank in failed or self._procs[rank] is None:
                        continue  # this shard was recomputed at the root
                    try:
                        self._send(
                            rank, ("commit_degraded", step, avg)
                        )
                    except WorkerFailure as f:
                        failed[rank] = f
                        self._kill(rank)
        else:
            self.watchdog.skipped()
            if broadcast:
                self._mesh.stale = True
        for rank in sorted(failed):
            self._respawn(rank)
        self._finish_step_accounting(step, shards, contributors)
        return self.metrics.losses[-1]

    def _capture_train_incident(self, step, x, labels, shards, results,
                                failed) -> None:
        """One incident bundle for a degraded step: the first failed
        rank's shard, the step-start weights, and (under ``recompute``)
        the digests of the bit-identically recomputed gradients the
        replay must reproduce."""
        rank = sorted(failed)[0]
        err = failed[rank]
        tensors = {
            "x": np.ascontiguousarray(x[shards[rank]]),
            "labels": np.ascontiguousarray(labels[shards[rank]]),
        }
        for i, p in enumerate(self.params):
            tensors[f"weights__{i}"] = p.copy()
        expect = {}
        if self.degrade_policy == "recompute" and results[rank] is not None:
            grads, loss_r, _acc = results[rank]
            expect = {
                "grads": digest_tensor_list(grads),
                "loss": float(loss_r),
            }
        machine = getattr(self.root, "machine", None)
        self.incidents.capture(
            "train",
            error=err,
            replay={
                "mode": "train",
                "topo_text": self._topo_text,
                "input_shape": list(self._input_shape),
                "seed": self._seed,
                "engine": "fast",
                "step": step,
            },
            machine_fingerprint=(
                machine.fingerprint()
                if machine is not None and hasattr(machine, "fingerprint")
                else None
            ),
            fault_plan=self.fault_plan,
            rng_state={
                "shuffle_seed": self.shuffle_seed,
                "batches_consumed": self.iteration,
            },
            tensors=tensors,
            expect=expect,
            extra={
                "failed_rank": rank,
                "failures": {
                    r: str(f) for r, f in sorted(failed.items())
                },
                "degrade_policy": self.degrade_policy,
                "allreduce": self.allreduce,
                "nodes": self.nodes,
            },
        )

    def _finish_step_accounting(self, step, shards, contributors) -> None:
        loss = acc = 0.0
        n_samples = 0
        for rank, (loss_r, acc_r) in contributors.items():
            n = len(shards[rank])
            loss += loss_r * n
            acc += acc_r * n
            n_samples += n
        if n_samples:
            loss /= n_samples
            acc /= n_samples
        self.metrics.losses.append(float(loss))
        self.metrics.accuracies.append(float(acc))
        self.iteration += 1
        self._maybe_autosave()

    def fit(self, dataset, batch_size: int, epochs: int = 1) -> TrainMetrics:
        skip, self._resume_skip = self._resume_skip, 0
        for i, (x, y) in enumerate(
            dataset.batches(
                batch_size * self.nodes, epochs, seed=self.shuffle_seed
            )
        ):
            if i < skip:
                continue
            self.train_step(x, y)
        return self.metrics

    # -- crash recovery -------------------------------------------------
    def _maybe_autosave(self) -> None:
        if (
            self.checkpoint_path
            and self.checkpoint_every
            and self.iteration % self.checkpoint_every == 0
        ):
            self.save(self.checkpoint_path)

    def save(self, path_or_file) -> None:
        """Atomic training checkpoint of the root replica: weights + SGD
        velocity + step + trajectory."""
        from repro.gxm.checkpoint import save_training_checkpoint

        save_training_checkpoint(
            path_or_file,
            self.root,
            self.opt,
            step=self.iteration,
            losses=self.metrics.losses,
            accuracies=self.metrics.accuracies,
            rng_state={
                "shuffle_seed": self.shuffle_seed,
                "batches_consumed": self.iteration,
            },
            injector=self._injector,
        )

    def resume(self, path_or_file) -> int:
        """Restore a :meth:`save`d checkpoint exact-to-the-step; worker
        replicas resynchronize at the next mesh rewire (collective) or
        weight scatter (root mode)."""
        from repro.gxm.checkpoint import load_training_checkpoint

        ck = load_training_checkpoint(path_or_file, self.root, self.opt)
        self.iteration = ck.step
        self._resume_skip = ck.step
        self.metrics.losses = list(ck.losses)
        self.metrics.accuracies = list(ck.accuracies)
        if ck.rng_state and "shuffle_seed" in ck.rng_state:
            self.shuffle_seed = ck.rng_state["shuffle_seed"]
        self._mesh.reset_all()
        return ck.step

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut workers down; reaps zombies even with broken pipes."""
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.kill()
                proc.join(timeout=5)
        self._conns = []
        self._procs = []
        if self._sockdir is not None:
            shutil.rmtree(self._sockdir, ignore_errors=True)
            self._sockdir = None

    def __enter__(self) -> "ProcessParallelTrainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
