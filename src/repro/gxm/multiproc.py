"""Process-parallel data-parallel training.

:class:`ProcessParallelTrainer` runs one *real* OS process per simulated
node -- the closest a pure-Python, no-MPI environment gets to the paper's
multi-node setup.  The communication pattern is exactly MLSL's data
parallelism (section II-L):

1. the root scatters minibatch shards to the workers,
2. each worker runs FWD/BWD/UPD on its replica,
3. the gradients are all-reduced (gathered and averaged at the root --
   numerically identical to a ring all-reduce),
4. the root takes the SGD step and broadcasts the updated weights.

Workers rebuild the ETG from the (picklable) topology + seed, so replicas
start bit-identical; weight broadcast keeps them synchronized thereafter.
Numerics match the in-process ``Trainer(nodes=k)`` exactly, which the tests
assert.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Optional

import numpy as np

from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.topology import TopologySpec
from repro.gxm.trainer import SGD, TrainMetrics
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.types import ReproError

__all__ = ["ProcessParallelTrainer"]


def _worker_main(
    conn, topo_text: str, input_shape, seed: int, trace: bool = False
) -> None:
    """Worker loop: receive (weights, shard) -> return
    (grads, loss, acc, obs-payload)."""
    from repro import obs
    from repro.gxm.parser import parse_topology

    if trace:
        obs.enable()
        # per-process observability: this worker's spans/counters are
        # drained after every step and merged at the root
        get_tracer().clear()
        get_metrics().clear()
    etg = ExecutionTaskGraph(
        parse_topology(topo_text), input_shape, engine="fast", seed=seed
    )
    params = etg.params()
    while True:
        msg = conn.recv()
        if msg is None:
            conn.close()
            return
        weights, x, labels = msg
        for p, w in zip(params, weights):
            p[...] = w
        loss = etg.train_step(x, labels)
        acc = etg.accuracy()
        payload = None
        if trace:
            payload = {
                "pid": os.getpid(),
                "events": get_tracer().export_events(clear=True),
                "metrics": get_metrics().snapshot(clear=True),
            }
        conn.send(
            ([g.copy() for g in etg.grads()], float(loss), float(acc),
             payload)
        )


class ProcessParallelTrainer:
    """Data-parallel SGD over ``nodes`` worker processes.

    Use as a context manager (or call :meth:`close`) so the workers exit.
    """

    def __init__(
        self,
        topo: TopologySpec,
        input_shape: tuple[int, int, int, int],
        nodes: int = 2,
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        seed: int = 0,
        start_method: str = "fork",
        trace: bool | None = None,
    ):
        if nodes < 1:
            raise ReproError("need at least one worker node")
        # per-process tracer merge: workers record their own spans/metrics
        # and the root folds them in after every step (default: follow the
        # root tracer's enabled state at construction time)
        self.trace = get_tracer().enabled if trace is None else trace
        # the root keeps a replica purely to own the parameter arrays
        self.root = ExecutionTaskGraph(topo, input_shape, engine="fast",
                                       seed=seed)
        self.params = self.root.params()
        self.opt = SGD(self.params, lr, momentum, weight_decay)
        self.metrics = TrainMetrics()
        self.nodes = nodes
        ctx = mp.get_context(start_method)
        self._conns = []
        self._procs = []
        text = topo.to_text()
        for _ in range(nodes):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child, text, input_shape, seed, self.trace),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    # ------------------------------------------------------------------
    def train_step(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Scatter -> compute -> all-reduce -> step -> (implicit) broadcast."""
        shards = np.array_split(np.arange(len(labels)), self.nodes)
        weights = [p.copy() for p in self.params]
        for conn, shard in zip(self._conns, shards):
            conn.send((weights, x[shard], labels[shard]))
        acc_grads: Optional[list[np.ndarray]] = None
        loss = 0.0
        acc = 0.0
        for conn, shard in zip(self._conns, shards):
            grads, l, a, payload = conn.recv()
            if payload is not None:
                get_tracer().ingest(payload["events"], pid=payload["pid"])
                get_metrics().merge(payload["metrics"])
            loss += l * len(shard)
            acc += a * len(shard)
            if acc_grads is None:
                acc_grads = grads
            else:
                for g0, g1 in zip(acc_grads, grads):
                    g0 += g1
        assert acc_grads is not None
        for g in acc_grads:
            g /= self.nodes
        self.opt.step(acc_grads)
        loss /= len(labels)
        acc /= len(labels)
        self.metrics.losses.append(float(loss))
        self.metrics.accuracies.append(float(acc))
        return float(loss)

    def fit(self, dataset, batch_size: int, epochs: int = 1) -> TrainMetrics:
        for x, y in dataset.batches(batch_size * self.nodes, epochs):
            self.train_step(x, y)
        return self.metrics

    # ------------------------------------------------------------------
    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._conns = []
        self._procs = []

    def __enter__(self) -> "ProcessParallelTrainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
