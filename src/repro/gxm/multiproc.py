"""Process-parallel data-parallel training.

:class:`ProcessParallelTrainer` runs one *real* OS process per simulated
node -- the closest a pure-Python, no-MPI environment gets to the paper's
multi-node setup.  The communication pattern is exactly MLSL's data
parallelism (section II-L):

1. the root scatters minibatch shards to the workers,
2. each worker runs FWD/BWD/UPD on its replica,
3. the gradients are all-reduced (gathered and averaged at the root --
   numerically identical to a ring all-reduce),
4. the root takes the SGD step and broadcasts the updated weights.

Workers rebuild the ETG from the (picklable) topology + seed, so replicas
start bit-identical; weight broadcast keeps them synchronized thereafter.
Numerics match the in-process ``Trainer(nodes=k)`` exactly, which the tests
assert.

Fault tolerance: every pipe operation is timeout-guarded (a dead or hung
worker raises a typed :class:`~repro.resilience.WorkerFailure`, never an
indefinite ``recv`` block).  When a worker fails mid-step the root
finishes the step *degraded* -- by default it recomputes the lost shard
on its own replica, which keeps the all-reduce bit-identical to a
healthy run (``degrade_policy="recompute"``); ``"rescale"`` instead
averages over the surviving workers only.  Failed workers are respawned
(bounded by ``max_respawns``) and resynchronize through the per-step
weight scatter, so a recovered run continues exactly where a healthy one
would be.  A :class:`~repro.resilience.NumericsWatchdog` screens every
worker's gradients (``nan_policy``), and periodic training-checkpoint
autosave plus :meth:`ProcessParallelTrainer.resume` survive a root
crash.  Faults themselves are injectable deterministically via a
:class:`~repro.resilience.FaultPlan` (site ``"mp.worker.step"``).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from typing import Optional

import numpy as np

from repro.gxm.etg import ExecutionTaskGraph
from repro.gxm.topology import TopologySpec
from repro.gxm.trainer import SGD, TrainMetrics
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.resilience.faults import FaultInjector, FaultPlan, WorkerFailure
from repro.resilience.watchdog import NumericsWatchdog
from repro.types import ReproError

__all__ = ["ProcessParallelTrainer", "WorkerFailure"]

#: pipe-poll granularity while waiting on a worker (also bounds how
#: stale a dead-process check can be)
_POLL_S = 0.05


def _worker_main(
    conn,
    topo_text: str,
    input_shape,
    seed: int,
    trace: bool = False,
    rank: int = 0,
    fault_plan: FaultPlan | None = None,
) -> None:
    """Worker loop: receive (step, weights, shard) -> return
    (grads, loss, acc, obs-payload)."""
    from repro import obs
    from repro.gxm.parser import parse_topology

    injector = FaultInjector(fault_plan)
    if trace:
        obs.enable()
        # per-process observability: this worker's spans/counters are
        # drained after every step and merged at the root
        get_tracer().clear()
        get_metrics().clear()
    etg = ExecutionTaskGraph(
        parse_topology(topo_text), input_shape, engine="fast", seed=seed
    )
    params = etg.params()
    while True:
        msg = conn.recv()
        if msg is None:
            conn.close()
            return
        step, weights, x, labels = msg
        fault = injector.fire("mp.worker.step", step=step, rank=rank)
        if fault is not None and fault.kind == "crash":
            os._exit(17)  # simulated SIGKILL: no cleanup, no goodbye
        if fault is not None and fault.kind == "hang":
            time.sleep(3600)  # the root's timeout reaps us
        if fault is not None and fault.kind == "slow":
            time.sleep(fault.delay_s)  # latency, not death
        for p, w in zip(params, weights):
            p[...] = w
        loss = etg.train_step(x, labels)
        acc = etg.accuracy()
        payload = None
        if trace:
            payload = {
                "pid": os.getpid(),
                "events": get_tracer().export_events(clear=True),
                "metrics": get_metrics().snapshot(clear=True),
            }
        grads = [g.copy() for g in etg.grads()]
        if fault is not None and fault.kind == "nan_grad":
            grads[fault.param % len(grads)].flat[0] = np.nan
        reply = (grads, float(loss), float(acc), payload)
        if fault is not None and fault.kind == "corrupt_message":
            reply = ("corrupt", step)
        conn.send(reply)


class ProcessParallelTrainer:
    """Data-parallel SGD over ``nodes`` worker processes.

    Use as a context manager (or call :meth:`close`) so the workers exit.

    Parameters (beyond the healthy-path ones)
    -----------------------------------------
    step_timeout:
        Seconds the root waits for any single worker reply before
        declaring it hung (:class:`WorkerFailure`); never blocks forever.
    max_respawns:
        Total worker respawns allowed across the run; a rank whose
        budget is exhausted stays down (every later step degrades).
    degrade_policy:
        ``"recompute"`` (default) -- a failed worker's shard is re-run on
        the root's replica, keeping training numerics bit-identical to a
        healthy run; ``"rescale"`` -- average over survivors only.
    nan_policy:
        Numerics-watchdog policy: ``"raise"``/``"skip"``/``"off"``.
    fault_plan:
        Deterministic :class:`~repro.resilience.FaultPlan` handed to
        every worker (fault-matrix testing).
    checkpoint_path / checkpoint_every:
        Training-checkpoint autosave every N steps (atomic write);
        :meth:`resume` restores it exact-to-the-step.
    """

    def __init__(
        self,
        topo: TopologySpec,
        input_shape: tuple[int, int, int, int],
        nodes: int = 2,
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        seed: int = 0,
        start_method: str = "fork",
        trace: bool | None = None,
        step_timeout: float = 30.0,
        max_respawns: int = 2,
        degrade_policy: str = "recompute",
        nan_policy: str = "raise",
        fault_plan: FaultPlan | None = None,
        checkpoint_path: str | None = None,
        checkpoint_every: int = 0,
        shuffle_seed: int = 1,
    ):
        if nodes < 1:
            raise ReproError("need at least one worker node")
        if degrade_policy not in ("recompute", "rescale"):
            raise ReproError(
                f"unknown degrade_policy {degrade_policy!r}; expected "
                f"'recompute' or 'rescale'"
            )
        # per-process tracer merge: workers record their own spans/metrics
        # and the root folds them in after every step (default: follow the
        # root tracer's enabled state at construction time)
        self.trace = get_tracer().enabled if trace is None else trace
        self._topo_text = topo.to_text()
        self._input_shape = input_shape
        self._seed = seed
        # the root keeps a replica purely to own the parameter arrays --
        # and, under the recompute policy, to re-run a failed worker's
        # shard.  It is built from the same topology *text* the workers
        # parse, so a recomputed shard is bit-identical to the lost one.
        from repro.gxm.parser import parse_topology

        self.root = ExecutionTaskGraph(
            parse_topology(self._topo_text), input_shape, engine="fast",
            seed=seed,
        )
        self.params = self.root.params()
        self.opt = SGD(self.params, lr, momentum, weight_decay)
        self.metrics = TrainMetrics()
        self.nodes = nodes
        self.step_timeout = step_timeout
        self.degrade_policy = degrade_policy
        self.watchdog = NumericsWatchdog(nan_policy)
        self.fault_plan = fault_plan
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.shuffle_seed = shuffle_seed
        self.iteration = 0
        self._resume_skip = 0
        self._respawn_budget = max_respawns
        #: every :class:`WorkerFailure` survived so far (step order)
        self.failures: list[WorkerFailure] = []
        self._ctx = mp.get_context(start_method)
        self._conns: list = [None] * nodes
        self._procs: list = [None] * nodes
        for rank in range(nodes):
            self._spawn(rank)

    # -- worker lifecycle ----------------------------------------------
    def _spawn(self, rank: int) -> None:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child, self._topo_text, self._input_shape, self._seed,
                  self.trace, rank, self.fault_plan),
            daemon=True,
        )
        proc.start()
        child.close()
        self._conns[rank] = parent
        self._procs[rank] = proc

    def _kill(self, rank: int) -> None:
        """Reap one worker unconditionally (broken pipe, hung, dead)."""
        conn, proc = self._conns[rank], self._procs[rank]
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if proc is not None:
            proc.terminate()
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.kill()
                proc.join(timeout=5)
        self._conns[rank] = None
        self._procs[rank] = None

    def _respawn(self, rank: int) -> bool:
        """Bounded replacement of a failed worker.  The fresh process
        resynchronizes through the next step's weight scatter (workers
        are stateless between steps), so recovery needs no extra
        broadcast round."""
        self._kill(rank)
        if self._respawn_budget <= 0:
            return False
        self._respawn_budget -= 1
        self._spawn(rank)
        get_metrics().inc("resilience.respawns")
        return True

    @property
    def live_workers(self) -> int:
        return sum(
            1 for p in self._procs if p is not None and p.is_alive()
        )

    # -- timeout-guarded pipe I/O --------------------------------------
    def _send(self, rank: int, msg) -> None:
        conn = self._conns[rank]
        if conn is None or self._procs[rank] is None:
            raise WorkerFailure(rank, "worker is down")
        try:
            conn.send(msg)
        except (BrokenPipeError, OSError) as err:
            raise WorkerFailure(rank, f"send failed ({err})") from err

    def _recv(self, rank: int):
        """Receive one reply, never blocking past ``step_timeout`` and
        detecting a dead worker in at most ``_POLL_S`` seconds."""
        conn, proc = self._conns[rank], self._procs[rank]
        if conn is None or proc is None:
            raise WorkerFailure(rank, "worker is down")
        deadline = time.monotonic() + self.step_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerFailure(
                    rank,
                    f"no reply within {self.step_timeout}s (hung worker)",
                )
            try:
                if conn.poll(min(_POLL_S, remaining)):
                    return conn.recv()
            except (EOFError, OSError) as err:
                raise WorkerFailure(
                    rank, f"pipe broke mid-step ({err})"
                ) from err
            if not proc.is_alive():
                # the worker may have replied and then exited: drain once
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):
                    pass
                raise WorkerFailure(
                    rank, f"process died (exit code {proc.exitcode})"
                )

    def _validate_reply(self, rank: int, reply):
        """Typed rejection of corrupt messages (never a downstream
        TypeError/ValueError deep in the all-reduce)."""
        try:
            grads, loss, acc, payload = reply
            if len(grads) != len(self.params):
                raise ValueError(
                    f"{len(grads)} gradient tensors, expected "
                    f"{len(self.params)}"
                )
            for g, p in zip(grads, self.params):
                if not isinstance(g, np.ndarray) or g.shape != p.shape:
                    raise ValueError("gradient tensor shape mismatch")
            return grads, float(loss), float(acc), payload
        except (TypeError, ValueError) as err:
            raise WorkerFailure(
                rank, f"corrupt message ({err})"
            ) from err

    # ------------------------------------------------------------------
    def _recompute_shard(self, x: np.ndarray, labels: np.ndarray):
        """Re-run a lost shard on the root replica.  The root's params
        still hold exactly the weights scattered this step (the SGD step
        happens after the all-reduce), so the result is bit-identical to
        what the failed worker would have returned."""
        loss = self.root.train_step(x, labels)
        acc = self.root.accuracy()
        return [g.copy() for g in self.root.grads()], float(loss), float(acc)

    def train_step(self, x: np.ndarray, labels: np.ndarray) -> float:
        """Scatter -> compute -> all-reduce -> step -> (implicit) broadcast.

        Survives worker failures mid-step: the step completes degraded
        (recompute or rescale), failed ranks are respawned afterwards,
        and ``resilience.degraded_steps`` counts the event.
        """
        step = self.iteration
        shards = np.array_split(np.arange(len(labels)), self.nodes)
        weights = [p.copy() for p in self.params]
        failed: dict[int, WorkerFailure] = {}
        for rank in range(self.nodes):
            try:
                self._send(
                    rank,
                    (step, weights, x[shards[rank]], labels[shards[rank]]),
                )
            except WorkerFailure as f:
                failed[rank] = f
        results: list[Optional[tuple]] = [None] * self.nodes
        for rank in range(self.nodes):
            if rank in failed:
                continue
            try:
                reply = self._recv(rank)
                grads, loss_r, acc_r, payload = self._validate_reply(
                    rank, reply
                )
            except WorkerFailure as f:
                failed[rank] = f
                self._kill(rank)
                continue
            if payload is not None:
                get_tracer().ingest(payload["events"], pid=payload["pid"])
                get_metrics().merge(payload["metrics"])
            results[rank] = (grads, loss_r, acc_r)
        if failed:
            get_metrics().inc("resilience.degraded_steps")
            self.failures.extend(
                failed[rank] for rank in sorted(failed)
            )
            if self.degrade_policy == "recompute":
                for rank in sorted(failed):
                    results[rank] = self._recompute_shard(
                        x[shards[rank]], labels[shards[rank]]
                    )
        # numerics watchdog: attribute divergence to the worker rank
        ok = True
        for rank, res in enumerate(results):
            if res is not None:
                ok = self.watchdog.check(
                    res[0], node=f"worker{rank}", step=step
                ) and ok
        # all-reduce folded in rank order -- the same accumulation order
        # as a healthy run, so recovered numerics stay bit-identical
        acc_grads: Optional[list[np.ndarray]] = None
        loss = acc = 0.0
        n_samples = contributing = 0
        for rank, res in enumerate(results):
            if res is None:
                continue
            grads, loss_r, acc_r = res
            n = len(shards[rank])
            loss += loss_r * n
            acc += acc_r * n
            n_samples += n
            contributing += 1
            if acc_grads is None:
                acc_grads = grads
            else:
                for g0, g1 in zip(acc_grads, grads):
                    g0 += g1
        if acc_grads is None:
            raise WorkerFailure(
                -1, f"step {step}: every worker failed "
                f"({[str(f) for f in failed.values()]})"
            )
        if ok:
            for g in acc_grads:
                g /= contributing
            self.opt.step(acc_grads)
        else:
            self.watchdog.skipped()
        loss /= n_samples
        acc /= n_samples
        self.metrics.losses.append(float(loss))
        self.metrics.accuracies.append(float(acc))
        # heal: bounded respawn; the fresh worker resyncs next scatter
        for rank in sorted(failed):
            self._respawn(rank)
        self.iteration += 1
        self._maybe_autosave()
        return float(loss)

    def fit(self, dataset, batch_size: int, epochs: int = 1) -> TrainMetrics:
        skip, self._resume_skip = self._resume_skip, 0
        for i, (x, y) in enumerate(
            dataset.batches(
                batch_size * self.nodes, epochs, seed=self.shuffle_seed
            )
        ):
            if i < skip:
                continue
            self.train_step(x, y)
        return self.metrics

    # -- crash recovery -------------------------------------------------
    def _maybe_autosave(self) -> None:
        if (
            self.checkpoint_path
            and self.checkpoint_every
            and self.iteration % self.checkpoint_every == 0
        ):
            self.save(self.checkpoint_path)

    def save(self, path_or_file) -> None:
        """Atomic training checkpoint of the root replica: weights + SGD
        velocity + step + trajectory."""
        from repro.gxm.checkpoint import save_training_checkpoint

        save_training_checkpoint(
            path_or_file,
            self.root,
            self.opt,
            step=self.iteration,
            losses=self.metrics.losses,
            accuracies=self.metrics.accuracies,
            rng_state={
                "shuffle_seed": self.shuffle_seed,
                "batches_consumed": self.iteration,
            },
        )

    def resume(self, path_or_file) -> int:
        """Restore a :meth:`save`d checkpoint exact-to-the-step; workers
        resynchronize through the next step's weight scatter."""
        from repro.gxm.checkpoint import load_training_checkpoint

        ck = load_training_checkpoint(path_or_file, self.root, self.opt)
        self.iteration = ck.step
        self._resume_skip = ck.step
        self.metrics.losses = list(ck.losses)
        self.metrics.accuracies = list(ck.accuracies)
        if ck.rng_state and "shuffle_seed" in ck.rng_state:
            self.shuffle_seed = ck.rng_state["shuffle_seed"]
        return ck.step

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut workers down; reaps zombies even with broken pipes."""
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.kill()
                proc.join(timeout=5)
        self._conns = []
        self._procs = []

    def __enter__(self) -> "ProcessParallelTrainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
