"""Learning-rate schedules.

The paper trains ResNet-50 to SOTA accuracy with the standard large-batch
recipe ([8]: warmup + step decay).  These schedules plug into
:class:`~repro.gxm.trainer.Trainer` via ``lr_schedule``.
"""

from __future__ import annotations

__all__ = ["LRSchedule", "ConstantLR", "StepDecay", "WarmupThenDecay",
           "PolynomialDecay"]


class LRSchedule:
    """Maps an iteration index to a learning rate."""

    def lr(self, iteration: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    def __init__(self, lr: float):
        self._lr = lr

    def lr(self, iteration: int) -> float:
        return self._lr


class StepDecay(LRSchedule):
    """``base * gamma^k`` after each milestone (the ResNet recipe)."""

    def __init__(self, base: float, milestones: list[int], gamma: float = 0.1):
        if sorted(milestones) != list(milestones):
            raise ValueError("milestones must be ascending")
        self.base = base
        self.milestones = list(milestones)
        self.gamma = gamma

    def lr(self, iteration: int) -> float:
        k = sum(1 for m in self.milestones if iteration >= m)
        return self.base * (self.gamma**k)


class WarmupThenDecay(LRSchedule):
    """Linear warmup from ``base/divisor`` to ``base`` over ``warmup``
    iterations, then the wrapped schedule -- the [8] large-minibatch recipe
    the paper's multi-node runs rely on."""

    def __init__(self, after: LRSchedule, warmup: int, divisor: float = 10.0):
        self.after = after
        self.warmup = max(0, warmup)
        self.divisor = divisor

    def lr(self, iteration: int) -> float:
        target = self.after.lr(self.warmup)
        if iteration < self.warmup:
            start = target / self.divisor
            frac = iteration / self.warmup
            return start + (target - start) * frac
        return self.after.lr(iteration)


class PolynomialDecay(LRSchedule):
    """``base * (1 - t/total)^power`` over a fixed budget."""

    def __init__(self, base: float, total: int, power: float = 2.0):
        self.base = base
        self.total = max(1, total)
        self.power = power

    def lr(self, iteration: int) -> float:
        t = min(iteration, self.total)
        return self.base * (1.0 - t / self.total) ** self.power
