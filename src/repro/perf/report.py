"""Paper-style result formatting.

The figures plot GFLOPS per ResNet-50 layer id with one series per
implementation; ``format_table`` renders the same rows as fixed-width text,
plus the %-of-peak column the figures carry on their right axes.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.perf.model import LayerPerf

__all__ = ["gflops_row", "format_table", "format_series"]


def gflops_row(perfs: Sequence[LayerPerf]) -> list[float]:
    return [round(p.gflops, 1) for p in perfs]


def format_series(name: str, values: Sequence[float], fmt: str = "7.0f") -> str:
    return f"{name:>10} " + " ".join(format(v, fmt) for v in values)


def format_table(
    title: str,
    layer_ids: Sequence[int],
    series: Mapping[str, Sequence[LayerPerf]],
    peak_series: str | None = None,
) -> str:
    """Render one figure's data: one row per implementation, GFLOPS per
    layer id, with a %-of-peak row for ``peak_series`` (right y-axis)."""
    lines = [title, format_series("layer", list(layer_ids), "7d")]
    for name, perfs in series.items():
        lines.append(format_series(name, [p.gflops for p in perfs]))
    if peak_series and peak_series in series:
        effs = [100.0 * p.efficiency for p in series[peak_series]]
        lines.append(format_series("% peak", effs, "7.1f"))
    return "\n".join(lines)
