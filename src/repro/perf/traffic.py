"""Working-set traffic analysis for the blocked convolution loops.

For each tensor the model answers: *how many times does it cross each cache
boundary, given the loop order and block sizes?*  This is the communication
analysis of Demmel & Dinh [15] specialized to the paper's loop nests:

* **L2 -> L1**: every microkernel call streams its input block; the weight
  block is L1-resident across the spatial loop *iff* the call working set
  fits L1 (for 1x1 layers with many input channels it does not -- the
  mechanism behind their lower efficiency); output blocks move per call in
  the ``c_b``-outer order and once in the ``c_b``-inner order.
* **beyond L2**: re-read factors follow from the loop order.  Two orders are
  evaluated -- Algorithm 3's ``n, k_b, chunk, c_b`` (input re-streamed per
  ``k_b``) and the chunk-outer variant ``n, chunk, k_b, c_b`` (weights
  re-streamed per chunk) -- and the cheaper one is chosen, which is what
  "properly blocked to maximize cache reuse" (section III-B) amounts to.
* **LLC vs DRAM**: on SKX a tensor whose live footprint fits the shared LLC
  is served there (activations are LLC-hot in steady-state training: the
  previous layer just wrote them); larger tensors stream from DRAM.  KNM has
  no LLC -- everything beyond L2 is MCDRAM (the Fig. 6 vs Fig. 4 story).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.machine import MachineConfig
from repro.conv.blocking import BlockingPlan, UpdBlockingPlan
from repro.conv.params import ConvParams
from repro.types import DType

__all__ = ["TrafficEstimate", "forward_traffic", "upd_traffic"]

#: usable fraction of a cache level (conflict/metadata slack)
CAP_FRACTION = 0.75


@dataclass
class TrafficEstimate:
    """Aggregate traffic in bytes, summed over all cores of one socket/chip.

    ``llc_*`` is traffic served by a shared last-level cache; ``mem_*`` is
    DRAM/MCDRAM.  ``l2_*`` is the L2->L1 demand stream (per-core bandwidths
    apply, so the model divides by the thread count downstream).
    """

    l2_read: float = 0.0
    l2_write: float = 0.0
    llc_read: float = 0.0
    llc_write: float = 0.0
    mem_read: float = 0.0
    mem_write: float = 0.0
    notes: dict = field(default_factory=dict)

    def scaled(self, factor: float) -> "TrafficEstimate":
        return TrafficEstimate(
            l2_read=self.l2_read * factor,
            l2_write=self.l2_write * factor,
            llc_read=self.llc_read * factor,
            llc_write=self.llc_write * factor,
            mem_read=self.mem_read * factor,
            mem_write=self.mem_write * factor,
            notes=dict(self.notes),
        )


def _beyond_split(
    est: TrafficEstimate,
    machine: MachineConfig,
    read_bytes: float,
    write_bytes: float,
    live_bytes: float,
) -> None:
    """Route beyond-L2 traffic between the shared LLC and DRAM.

    ``live_bytes`` is the total working footprint competing for the LLC
    during this pass (all tensors of the layer).  The fraction of it that
    fits determines how much of this tensor's traffic the LLC absorbs --
    a smooth version of "does it fit?" that captures partially-resident
    tensors (e.g. a 90 MB output against a 38 MB LLC).
    """
    if machine.llc_bytes and live_bytes > 0:
        frac = min(1.0, CAP_FRACTION * machine.llc_bytes / live_bytes)
        est.llc_read += read_bytes * frac
        est.llc_write += write_bytes * frac
        est.mem_read += read_bytes * (1.0 - frac)
        est.mem_write += write_bytes * (1.0 - frac)
    else:
        est.mem_read += read_bytes
        est.mem_write += write_bytes


def forward_traffic(
    p: ConvParams,
    plan: BlockingPlan,
    machine: MachineConfig,
    threads: int,
    dtype: DType = DType.F32,
    fused_extra_l2: float = 0.0,
) -> TrafficEstimate:
    """Socket-wide traffic of one forward pass with the paper's blocking.

    ``fused_extra_l2`` adds L2 traffic for fused operators' parameter reads
    (their output read+write is free -- that is the point of fusion).
    """
    isz = dtype.input_itemsize
    osz = dtype.output_itemsize
    vlen = plan.vlen
    cb = p.C // vlen
    kb = p.K // vlen
    pb = -(-p.P // plan.rb_p)
    qb = -(-p.Q // plan.rb_q)
    calls = p.N * kb * pb * qb

    # strided convolutions with 1-wide taps skip whole cache lines/rows of
    # the input: only 1/stride of the rows (R==1) and of the in-row lines
    # (S==1, one VLEN pixel block = one 64B line) are ever touched.
    touch_frac = (1.0 / p.stride if p.R == 1 else 1.0) * (
        1.0 / p.stride if p.S == 1 else 1.0
    )
    in_bytes = p.N * p.C * p.Hp * p.Wp * isz * touch_frac
    w_bytes = p.K * p.C * p.R * p.S * isz
    out_bytes = p.N * p.K * p.P * p.Q * osz
    slab_in = in_bytes / p.N  # one sample's touched input
    slab_out = out_bytes / (p.N * kb)  # one (n, k_b) output plane

    est = TrafficEstimate()

    # ---- L2 -> L1 ---------------------------------------------------------
    rows = (plan.rb_p - 1) * p.stride + p.R
    cols = (plan.rb_q - 1) * p.stride + p.S
    cbu = cb if plan.loop_order == "cb_inner" else 1
    ifp = cbu * rows * cols * vlen * isz
    wfp = cbu * p.R * p.S * vlen * vlen * isz
    ofp = plan.rb_p * plan.rb_q * vlen * osz

    call_ws = ifp + wfp + 2 * ofp
    weights_l1_resident = call_ws <= CAP_FRACTION * machine.l1_bytes
    est.notes["weights_l1_resident"] = weights_l1_resident

    est.l2_read += calls * ifp
    if weights_l1_resident:
        # weight block fetched once per (n, k_b, c_b, chunk)
        chunks = max(1, p.P // max(plan.oj_block, 1))
        est.l2_read += p.N * kb * cb * chunks * (p.R * p.S * vlen * vlen * isz)
    else:
        est.l2_read += calls * wfp
    if plan.loop_order == "cb_inner":
        est.l2_write += calls * ofp  # written once, never re-read
    else:
        conv_calls_per_point = cb
        est.l2_read += calls * (conv_calls_per_point - 1) / conv_calls_per_point * ofp
        est.l2_write += calls * ofp
    est.l2_read += fused_extra_l2

    # ---- beyond L2 ---------------------------------------------------------
    # The thread grid can be factored T = tn x tk (minibatch x feature-map
    # groups, section II-F): each of the tk column groups collectively
    # streams the whole input once, and each of the tn row groups streams
    # the whole weight tensor once (re-per-chunk if even the 1/tk weight
    # slice exceeds L2).  "Properly blocked to maximize cache reuse"
    # (section III-B) means picking the cheapest factorization -- which is
    # what lets big-weight layers (e.g. Table-I id 18) avoid re-reading
    # 9 MB of weights per minibatch sample.
    l2b = CAP_FRACTION * machine.l2_bytes
    # read-shared weight slices see the whole tile L2 (KNM pairs 2 cores)
    l2b_w = l2b * machine.l2_shared_cores
    chunks = max(1.0, p.P / max(plan.oj_block, 1))
    in_total = p.N * slab_in
    best = None
    for tk in sorted({d for d in range(1, threads + 1) if threads % d == 0}):
        tn = threads // tk
        w_slice = w_bytes / tk
        if w_slice <= l2b_w:
            cost_w = min(tn, p.N) * w_bytes  # one stream per row group
        else:
            cost_w = p.N * chunks * w_bytes  # re-read per sample (and chunk)
        cost_in = tk * in_total  # each kb column group streams the input
        total = cost_w + cost_in
        if best is None or total < best[0]:
            best = (total, cost_in, cost_w, tk)
    _, in_reads, w_reads, tk_pick = best
    est.notes["beyond_mode"] = f"grid_tk{tk_pick}"

    # live LLC footprint this layer competes for (activations were written
    # by the previous layer, weights are shared once across cores)
    live = in_bytes + out_bytes + w_bytes
    _beyond_split(est, machine, in_reads, 0.0, live)
    if machine.llc_bytes and w_bytes <= CAP_FRACTION * machine.llc_bytes / 4:
        # one shared LLC copy serves all cores; DRAM sees it once
        est.llc_read += w_reads - w_bytes
        est.mem_read += w_bytes
    else:
        _beyond_split(est, machine, w_reads, 0.0, live)
    # outputs: written once (streamed); accumulation read-backs stay in L2
    _beyond_split(est, machine, 0.0, out_bytes, live)
    return est


def upd_traffic(
    p: ConvParams,
    plan: UpdBlockingPlan,
    machine: MachineConfig,
    threads: int,
    ncopies: int,
    dtype: DType = DType.F32,
) -> TrafficEstimate:
    """Socket-wide traffic of one weight-gradient pass (section II-J).

    The gradient-copy reduction is the pass's defining cost: ``G`` copies are
    written and re-read once each (KNM lacks an LLC to absorb this, the
    Fig. 7b mechanism), and on KNM the upfront transpose of the gradient
    input tensor for 4FMA adds a full read+write of ``dO`` (section III-B).
    """
    isz = dtype.input_itemsize
    osz = 4  # gradients accumulate in 32 bits (section II-K)
    in_bytes = p.N * p.C * p.Hp * p.Wp * isz
    do_bytes = p.N * p.K * p.P * p.Q * isz
    dw_bytes = p.R * p.S * p.C * p.K * osz

    est = TrafficEstimate()
    vlen = plan.vlen
    # L2->L1: every (r, s) tap re-streams the input block and dO block
    est.l2_read += p.R * p.S * (in_bytes + do_bytes)
    est.l2_read += (p.N * (p.K // vlen) * (p.C // vlen)) * dw_bytes / (
        (p.K // vlen) * (p.C // vlen)
    )  # dW blocks cycled per minibatch sample
    est.l2_write += p.N * dw_bytes

    # beyond L2: within a copy group of T/G threads, each thread reads the
    # group's minibatch share of I once per 1/tc of the feature maps, so the
    # group collectively reads its share group_threads/tc times; summed over
    # groups: in_bytes * group_threads / tc (section II-J's T/T_c factor).
    group_threads = max(1, threads // ncopies)
    tk = min(group_threads, max(1, p.K // vlen))
    tc = min(max(1, group_threads // tk), max(1, p.C // vlen))
    in_reads = in_bytes * group_threads / tc
    do_reads = do_bytes * group_threads / tk
    red_rw = 2.0 * ncopies * dw_bytes if ncopies > 1 else 2.0 * dw_bytes

    if machine.has_4fma:
        # transpose of dO's W/feature dims for 4FMA: memory-bound pre-pass
        est_extra = 2.0 * do_bytes
    else:
        est_extra = 0.0

    _beyond_split(est, machine, in_reads, 0.0, in_bytes)
    _beyond_split(est, machine, do_reads + est_extra / 2, est_extra / 2, do_bytes)
    _beyond_split(est, machine, red_rw / 2, red_rw / 2, ncopies * dw_bytes)
    est.notes["ncopies"] = ncopies
    return est
