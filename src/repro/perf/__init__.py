"""Layer-level performance model.

Combines three mechanistic ingredients:

* the µop-stream timing of each JIT'ed microkernel
  (:mod:`repro.jit.timing`) -- FMA ports/latency, load/store ports,
  instruction-selection penalties;
* a working-set traffic analysis of the blocked loop nest
  (:mod:`repro.perf.traffic`) -- which tensor streams from which level, with
  the re-read factors the loop order implies (validated against
  :mod:`repro.cachesim` on microkernel traces);
* the section II-F/II-J parallelization policies.

The per-layer estimate is a partial-overlap roofline:
``T = max(parts) + alpha * (sum(parts) - max(parts))`` where ``alpha`` is a
per-machine calibration constant (see ``MachineConfig.overlap_alpha``).
"""

from repro.perf.traffic import TrafficEstimate, forward_traffic, upd_traffic
from repro.perf.model import LayerPerf, ConvPerfModel
from repro.perf.report import format_table, gflops_row

__all__ = [
    "TrafficEstimate",
    "forward_traffic",
    "upd_traffic",
    "LayerPerf",
    "ConvPerfModel",
    "format_table",
    "gflops_row",
]
