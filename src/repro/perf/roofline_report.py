"""Per-layer roofline breakdown report.

For each layer, the performance model produces the per-resource times that
the partial-overlap roofline combines; this module renders them as a table
(what fraction of the layer each resource would take standalone, and which
one binds) -- the quantitative version of the paper's section III-B roofline
discussion.
"""

from __future__ import annotations

from repro.arch.machine import MachineConfig, machine_by_name
from repro.models.resnet50 import resnet50_layers
from repro.perf.model import ConvPerfModel

__all__ = ["roofline_table", "layer_breakdown"]

_COLUMNS = ("compute", "l2_read", "l2_write", "llc_read", "llc_write",
            "mem_read", "mem_write")


def layer_breakdown(perf) -> dict[str, float]:
    """Resource shares (each part / combined time) for one LayerPerf."""
    return {k: perf.parts.get(k, 0.0) / perf.time_s for k in _COLUMNS}


def roofline_table(
    machine: MachineConfig | str, minibatch: int | None = None
) -> str:
    """ResNet-50 per-layer resource-share table for one machine."""
    m = machine_by_name(machine) if isinstance(machine, str) else machine
    minibatch = minibatch or (70 if m.name.endswith("KNM") else 28)
    model = ConvPerfModel(m)
    header = f"{'id':>3} {'bound':>10} " + " ".join(
        f"{c:>9}" for c in _COLUMNS
    )
    lines = [f"ResNet-50 fwd roofline shares on {m.name}", header,
             "-" * len(header)]
    for lid, p in resnet50_layers(minibatch):
        perf = model.estimate_forward(p)
        shares = layer_breakdown(perf)
        lines.append(
            f"{lid:>3} {perf.bound:>10} "
            + " ".join(f"{100 * shares[c]:>8.1f}%" for c in _COLUMNS)
        )
    lines.append(
        "\nshares are standalone resource times over the combined layer "
        "time;\nthe binding resource approaches 100% minus the overlap "
        "exposure."
    )
    return "\n".join(lines)
