"""Published reference numbers quoted by the paper (section III-C).

These are *comparison data*, not systems under test: the paper itself cites
them from Google's TensorFlow benchmarks [23] and Intel's TensorFlow
optimization post [24].  They are reproduced here so the Fig. 9 bench can
print the same series.
"""

__all__ = ["REFERENCE_IMG_PER_S", "PAPER_MEASURED"]

#: external comparison points: img/s for training
REFERENCE_IMG_PER_S = {
    ("resnet50", "P100+cuDNN (TF, fp32) [23]"): 219.0,
    ("resnet50", "2S-SKX TF+MKL-DNN [24]"): 90.0,
    ("inception_v3", "P100+cuDNN (TF, fp32) [23]"): 142.0,
    ("inception_v3", "2S-SKX TF+MKL-DNN [24]"): 58.0,
}

#: the paper's own measured end-to-end results (targets for the model)
PAPER_MEASURED = {
    ("resnet50", "KNM", 1): 192.0,
    ("resnet50", "SKX", 1): 136.0,  # dual-socket node
    ("resnet50", "KNM", 16): 2430.0,
    ("resnet50", "SKX", 16): 1696.0,
    ("inception_v3", "KNM", 1): 98.0,
    ("inception_v3", "SKX", 1): 84.0,
}
