"""Per-layer performance estimation for this work and MKL-DNN.

``ConvPerfModel`` prices one convolution layer on one machine for each pass,
by (1) JIT-generating the exact microkernel the engine would use and timing
its µop stream, (2) running the traffic analysis for the blocked loop nest,
(3) applying the section II-F/II-J parallelization, and (4) combining the
resource times with the partial-overlap roofline.

Two implementations live here because they share all machinery:

* ``"thiswork"`` -- the paper's kernels: fused memory operands (SKX) or 4FMA
  (KNM), remainder variants, streams replay (low call overhead), optional
  fusion, two-level prefetch.
* ``"mkl"`` -- MKL-DNN v0.12 as the paper characterizes it (section III):
  same core ideas, but on SKX it avoids fused memory operands via more
  aggressive output-channel blocking (faster compute ceiling, up to ~20 %),
  has no kernel streams (higher per-call dispatch/branch overhead) and no
  fusion; on KNM the instruction sequence is identical to this work.

The im2col / small-GEMM / autovec baselines build on this module from
:mod:`repro.baselines`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.machine import MachineConfig
from repro.conv.blocking import (
    BlockingPlan,
    choose_blocking,
    choose_upd_blocking,
)
from repro.conv.params import ConvParams
from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.jit.gemm import GemmDesc, generate_gemm_kernel
from repro.jit.kernel_cache import get_default_cache
from repro.jit.timing import time_kernel
from repro.jit.upd_codegen import UpdKernelDesc, generate_upd_kernel
from repro.parallel.wu_strategies import choose_upd_strategy
from repro.perf.traffic import TrafficEstimate, forward_traffic, upd_traffic
from repro.types import DType, Pass

__all__ = ["LayerPerf", "ConvPerfModel"]

#: extra per-call dispatch cycles without kernel streams (branchy prefetch/
#: fusion/boundary logic of section II-H) -- the replay loop avoids these.
BRANCHY_CALL_OVERHEAD = 60.0
#: int16 kernels: VNNI ops per int32 accumulator before a flush (II-K)
Q16_CHAIN_LIMIT = 8


@dataclass
class LayerPerf:
    """Estimated execution of one layer pass on a full socket/chip."""

    params: ConvParams
    machine: str
    impl: str
    pass_: Pass
    dtype: DType
    time_s: float
    flops: float
    bound: str
    parts: dict[str, float] = field(default_factory=dict)
    notes: dict = field(default_factory=dict)

    @property
    def gflops(self) -> float:
        return self.flops / self.time_s / 1e9 if self.time_s > 0 else 0.0

    @property
    def efficiency(self) -> float:
        return self.notes.get("efficiency", 0.0)


def combine_parts(
    parts: dict[str, float], alpha: float
) -> tuple[float, str]:
    """Partial-overlap roofline: binding time plus a calibrated fraction of
    the non-binding work that cannot hide under it."""
    bound = max(parts, key=parts.get)
    t_max = parts[bound]
    t_sum = sum(parts.values())
    return t_max + alpha * (t_sum - t_max), bound


class ConvPerfModel:
    """Performance model for one machine."""

    def __init__(self, machine: MachineConfig, threads: int | None = None):
        self.machine = machine
        self.threads = threads or machine.cores
        self.cache = get_default_cache()

    # ------------------------------------------------------------------
    def _plan(self, p: ConvParams, dtype: DType, impl: str) -> BlockingPlan:
        if dtype is DType.QI16F32:
            # fp32+int32 accumulator pairs double register pressure (II-K)
            return choose_blocking(p, self.machine, DType.F32, acc_budget_cap=13)
        if impl == "mkl" and not self.machine.has_4fma and p.K >= 2 * self.machine.vlen():
            # output-channel blocking: kb_unroll=2 halves the RB_Q budget
            return choose_blocking(p, self.machine, DType.F32, acc_budget_cap=13)
        return choose_blocking(p, self.machine, DType.F32)

    def _fwd_desc(
        self, p: ConvParams, plan: BlockingPlan, dtype: DType, impl: str,
        fused: tuple[str, ...] = (),
    ) -> ConvKernelDesc:
        vlen = plan.vlen
        cb = p.C // vlen
        # strides of the standard layouts (values only matter relatively)
        i_strides = (p.Hp * p.Wp * vlen, p.Wp * vlen, vlen)
        w_strides = (p.R * p.S * vlen * vlen, p.S * vlen * vlen, vlen * vlen, vlen)
        o_strides = (p.Q * vlen, vlen)
        kb_unroll = 2 if (impl == "mkl" and not self.machine.has_4fma and p.K >= 2 * vlen) else 1
        return ConvKernelDesc(
            vlen=vlen,
            rb_p=plan.rb_p,
            rb_q=plan.rb_q,
            R=p.R,
            S=p.S,
            stride=p.stride,
            i_strides=i_strides,
            w_strides=w_strides,
            o_strides=o_strides,
            cb_unroll=cb if plan.loop_order == "cb_inner" else 1,
            kb_unroll=kb_unroll,
            w_skb=p.C // vlen * p.R * p.S * vlen * vlen if kb_unroll > 1 else 0,
            o_skb=p.P * p.Q * vlen if kb_unroll > 1 else 0,
            zero_init=True,
            hoist_output=True,
            fused_memop=(
                impl == "thiswork"
                and not self.machine.has_4fma
                and dtype is DType.F32
            ),
            use_4fma=self.machine.has_4fma and dtype is DType.F32,
            use_4vnni=self.machine.has_4fma and dtype is DType.QI16F32,
            fused=fused,
            prefetch="both",
            dtype=dtype,
            acc_chain_limit=Q16_CHAIN_LIMIT if dtype is DType.QI16F32 else 0,
        )

    # ------------------------------------------------------------------
    def estimate_forward(
        self,
        p: ConvParams,
        impl: str = "thiswork",
        dtype: DType = DType.F32,
        fused: tuple[str, ...] = (),
        prefetch: bool = True,
        streams: bool = True,
    ) -> LayerPerf:
        """Forward-pass estimate (Figs. 4, 6, 8a)."""
        m = self.machine
        t = self.threads
        plan = self._plan(p, dtype, impl)
        if impl == "mkl":
            fused = ()  # "fusion ... today is not available in vendor's libraries"
            streams = False
        desc = self._fwd_desc(p, plan, dtype, impl, fused)
        prog = self.cache.get(desc, generate_conv_kernel)
        call_overhead = 30.0 + (0.0 if streams else BRANCHY_CALL_OVERHEAD)
        kt = time_kernel(prog, m, call_overhead=call_overhead)

        vlen = plan.vlen
        kb = p.K // vlen
        cbf = 1 if plan.loop_order == "cb_inner" else p.C // vlen
        pb = -(-p.P // plan.rb_p)
        qb = -(-p.Q // plan.rb_q)
        if desc.kb_unroll > 1:
            kb_calls = -(-kb // desc.kb_unroll)
        else:
            kb_calls = kb
        calls_total = p.N * kb_calls * cbf * pb * qb
        # imbalance: ceil division of work items over threads
        items = p.N * kb_calls * pb
        imbalance = -(-items // t) * t / items
        calls_core = calls_total / t * imbalance

        # throughput x work + per-call overhead: remainder variants (II-H)
        # do proportionally less work, so compute time is priced per flop of
        # the main variant's steady-state rate, not per call.
        cycles_per_flop = (kt.cycles - call_overhead) / prog.flops
        t_comp = (
            p.flops / t * imbalance * cycles_per_flop
            + calls_core * call_overhead
        ) / m.freq_hz
        traffic = forward_traffic(p, plan, m, t, dtype)
        parts = self._parts(t_comp, traffic)
        if impl == "mkl" and not m.has_4fma:
            # v0.12 lacked streaming stores on several SKX paths: output
            # writes pay read-for-ownership -- the source of this work's
            # 1.1-1.2x wins on the write-bound layers (section III-A);
            # on KNM the instruction sequences are identical (III-B)
            parts["mem_write"] = parts.get("mem_write", 0.0) * 1.5
        if not prefetch:
            # exposed miss latency: ~8 outstanding misses hide the rest
            lines = (traffic.l2_read + traffic.llc_read + traffic.mem_read) / 64
            parts["miss_latency"] = lines / t * 20e-9 / 8
        time_s, bound = combine_parts(parts, m.overlap_alpha)
        flops = p.flops
        perf = LayerPerf(
            params=p,
            machine=m.name,
            impl=impl,
            pass_=Pass.FWD,
            dtype=dtype,
            time_s=time_s,
            flops=flops,
            bound=bound,
            parts=parts,
            notes={
                "kernel_bottleneck": kt.bottleneck,
                "kernel_efficiency": kt.efficiency(m),
                "calls_core": calls_core,
                "efficiency": flops / time_s / (m.peak_flops_core * t),
                **traffic.notes,
            },
        )
        return perf

    # ------------------------------------------------------------------
    def estimate_backward(
        self,
        p: ConvParams,
        impl: str = "thiswork",
        dtype: DType = DType.F32,
    ) -> LayerPerf:
        """Backward-pass estimate (Figs. 5a, 7a, 8b): duality reuses the
        forward model on the transposed problem; the Algorithm-7 fallback
        pays un-hoisted output traffic."""
        m = self.machine
        if p.stride == 1:
            fp = ConvParams(
                N=p.N, C=p.K, K=p.C, H=p.P, W=p.Q, R=p.R, S=p.S, stride=1,
                pad_h=p.R - 1 - p.pad_h, pad_w=p.S - 1 - p.pad_w,
            )
            perf = self.estimate_forward(fp, impl=impl, dtype=dtype)
        elif p.is_1x1():
            fp = ConvParams(
                N=p.N, C=p.K, K=p.C, H=p.P, W=p.Q, R=1, S=1, stride=1,
                pad_h=0, pad_w=0,
            )
            perf = self.estimate_forward(fp, impl=impl, dtype=dtype)
            # stride-2 expansion: dI is stride^2 larger than the kernels'
            # natural output -- extra write bandwidth (the Fig. 5a dips)
            extra_write = (p.stride**2 - 1) * fp.N * fp.K * fp.P * fp.Q * 4
            parts = dict(perf.parts)
            if m.llc_bytes and extra_write * p.stride**2 <= 0.75 * m.llc_bytes:
                parts["llc_write"] = parts.get("llc_write", 0.0) + extra_write / self.threads / m.llc_bw
            else:
                parts["mem_write"] = parts.get("mem_write", 0.0) + extra_write / m.mem_write_bw
            time_s, bound = combine_parts(parts, m.overlap_alpha)
            perf = LayerPerf(
                params=p, machine=m.name, impl=impl, pass_=Pass.BWD,
                dtype=dtype, time_s=time_s, flops=p.flops, bound=bound,
                parts=parts,
                notes={**perf.notes,
                       "efficiency": p.flops / time_s / (m.peak_flops_core * self.threads)},
            )
            return perf
        else:
            return self._estimate_bwd_gemm(p, impl, dtype)
        return LayerPerf(
            params=p, machine=m.name, impl=impl, pass_=Pass.BWD, dtype=dtype,
            time_s=perf.time_s, flops=p.flops, bound=perf.bound,
            parts=perf.parts, notes=perf.notes,
        )

    def _estimate_bwd_gemm(self, p: ConvParams, impl: str, dtype: DType) -> LayerPerf:
        """Algorithm 7: small GEMMs, output loads/stores not hoisted."""
        m = self.machine
        t = self.threads
        vlen = m.vlen(dtype)
        desc = GemmDesc(
            vlen=vlen, k=vlen, n=p.Q,
            a_sk=vlen, b_sk=1, b_sn=vlen, c_sn=p.stride * vlen,
        )
        prog = self.cache.get(desc, generate_gemm_kernel)
        kt = time_kernel(prog, m)
        calls = p.N * (p.K // vlen) * (p.C // vlen) * p.P * p.R * p.S
        t_comp = calls / t * kt.cycles / m.freq_hz
        # traffic: dI blocks read+written per (r, s, k_b) -- R*S*Kb re-reads
        isz = dtype.input_itemsize
        di_bytes = p.N * p.C * p.Hp * p.Wp * 4
        do_bytes = p.N * p.K * p.P * p.Q * isz
        w_bytes = p.K * p.C * p.R * p.S * isz
        est = TrafficEstimate()
        redundancy = p.R * p.S * (p.K // vlen)
        est.l2_read += redundancy * di_bytes + p.R * p.S * do_bytes
        est.l2_write += redundancy * di_bytes
        from repro.perf.traffic import _beyond_split

        _beyond_split(est, m, do_bytes, 0.0, do_bytes)
        _beyond_split(est, m, w_bytes, 0.0, w_bytes)
        _beyond_split(est, m, di_bytes, di_bytes, di_bytes)
        parts = self._parts(t_comp, est)
        time_s, bound = combine_parts(parts, m.overlap_alpha)
        return LayerPerf(
            params=p, machine=m.name, impl=impl, pass_=Pass.BWD, dtype=dtype,
            time_s=time_s, flops=p.flops, bound=bound, parts=parts,
            notes={"mode": "gemm-fallback",
                   "efficiency": p.flops / time_s / (m.peak_flops_core * t)},
        )

    # ------------------------------------------------------------------
    def estimate_update(
        self,
        p: ConvParams,
        impl: str = "thiswork",
        dtype: DType = DType.F32,
    ) -> LayerPerf:
        """Weight-gradient estimate (Figs. 5b, 7b, 8c)."""
        m = self.machine
        t = self.threads
        plan = choose_upd_blocking(p, m, DType.F32)
        strategy = choose_upd_strategy(p, m, t)
        vlen = plan.vlen
        i_strides = (p.Wp * vlen, vlen)
        o_strides = (p.Q * vlen, vlen)
        desc = UpdKernelDesc(
            vlen=vlen, b_p=plan.b_p, b_q=plan.b_q, stride=p.stride,
            i_strides=i_strides, o_strides=o_strides,
            fused_memop=m.fused_memop_penalty > 0 and dtype is DType.F32,
            dtype=dtype,
        )
        prog = self.cache.get(desc, generate_upd_kernel)
        kt = time_kernel(prog, m)
        if dtype is DType.QI16F32:
            # int16 MACs run 2x, but chain-limit flushes and the 4FMA-layout
            # transpose eat into it: ~1.5x effective compute gain (II-K/III-B)
            cycles = kt.cycles / (m.vnni16_speedup * 0.62)
        else:
            cycles = kt.cycles
        pb = -(-p.P // plan.b_p)
        calls = p.N * (p.K // vlen) * (p.C // vlen) * pb * p.R * p.S
        # x1.1: gradient-copy zeroing, dW block cycling, and the reduction
        # barrier -- the section II-J costs a compute-bound layer still pays
        t_comp = calls / t * cycles / m.freq_hz * 1.1
        traffic = upd_traffic(p, plan, m, t, strategy.ncopies, dtype)
        parts = self._parts(t_comp, traffic)
        time_s, bound = combine_parts(parts, m.overlap_alpha)
        return LayerPerf(
            params=p, machine=m.name, impl=impl, pass_=Pass.UPD, dtype=dtype,
            time_s=time_s, flops=p.flops, bound=bound, parts=parts,
            notes={
                "strategy": strategy.name,
                "efficiency": p.flops / time_s / (m.peak_flops_core * t),
            },
        )

    # ------------------------------------------------------------------
    def _parts(self, t_comp: float, traffic: TrafficEstimate) -> dict[str, float]:
        m = self.machine
        t = self.threads
        parts = {
            "compute": t_comp,
            "l2_read": traffic.l2_read / t / m.l2_read_bw,
            "l2_write": traffic.l2_write / t / m.l2_write_bw,
            "mem_read": traffic.mem_read / m.mem_read_bw,
            "mem_write": traffic.mem_write / m.mem_write_bw,
        }
        if m.llc_bytes:
            parts["llc_read"] = traffic.llc_read / t / m.llc_bw
            parts["llc_write"] = traffic.llc_write / t / m.llc_bw
        else:
            parts["mem_read"] += traffic.llc_read / m.mem_read_bw
            parts["mem_write"] += traffic.llc_write / m.mem_write_bw
        return parts
