"""Figure dataset API: one call per paper table/figure.

The benchmarks, examples and CLI all consume these functions, so the data
behind every figure is produced by exactly one code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.machine import MachineConfig, machine_by_name
from repro.baselines import (
    estimate_autovec,
    estimate_im2col,
    estimate_smallgemm,
)
from repro.models.inception_v3 import inception_v3_layers
from repro.models.resnet50 import resnet50_layers
from repro.perf.model import ConvPerfModel
from repro.types import DType, Pass

__all__ = ["FigureData", "resnet50_forward_sweep", "resnet50_pass_sweep",
           "resnet50_lowprecision_sweep", "inception_averages"]


@dataclass
class FigureData:
    """Series keyed by implementation name, one value per layer id."""

    title: str
    layer_ids: list[int]
    series: dict[str, list[float]] = field(default_factory=dict)
    efficiency: dict[str, list[float]] = field(default_factory=dict)

    def table(self) -> str:
        lines = [self.title,
                 "layer " + " ".join(f"{i:>7d}" for i in self.layer_ids)]
        for name, vals in self.series.items():
            lines.append(f"{name:>10} " + " ".join(f"{v:7.0f}" for v in vals))
        return "\n".join(lines)


def _minibatch(machine: MachineConfig) -> int:
    return 70 if machine.name.endswith("KNM") else 28


def resnet50_forward_sweep(
    machine: MachineConfig | str,
    baselines: bool = True,
    dtype: DType = DType.F32,
) -> FigureData:
    """Fig. 4 (SKX) / Fig. 6 (KNM) data."""
    m = machine_by_name(machine) if isinstance(machine, str) else machine
    model = ConvPerfModel(m)
    layers = resnet50_layers(_minibatch(m))
    fig = FigureData(
        title=f"ResNet-50 fwd on {m.name} (GFLOPS)",
        layer_ids=[lid for lid, _ in layers],
    )
    names = ["thiswork", "mkl"]
    fig.series = {n: [] for n in names}
    fig.efficiency = {"thiswork": []}
    if baselines:
        for n in ("im2col", "libxsmm", "blas", "autovec"):
            fig.series[n] = []
    for lid, p in layers:
        tw = model.estimate_forward(p, dtype=dtype)
        fig.series["thiswork"].append(tw.gflops)
        fig.efficiency["thiswork"].append(tw.efficiency)
        fig.series["mkl"].append(
            model.estimate_forward(p, impl="mkl", dtype=dtype).gflops
        )
        if baselines:
            fig.series["im2col"].append(estimate_im2col(p, m, dtype=dtype).gflops)
            fig.series["libxsmm"].append(
                estimate_smallgemm(p, m, "libxsmm", dtype=dtype).gflops
            )
            fig.series["blas"].append(
                estimate_smallgemm(p, m, "blas", dtype=dtype).gflops
            )
            fig.series["autovec"].append(
                estimate_autovec(p, m, dtype=dtype).gflops
            )
    return fig


def resnet50_pass_sweep(
    machine: MachineConfig | str, pass_: Pass, dtype: DType = DType.F32
) -> FigureData:
    """Fig. 5 (SKX) / Fig. 7 (KNM) data for BWD or UPD."""
    m = machine_by_name(machine) if isinstance(machine, str) else machine
    model = ConvPerfModel(m)
    layers = resnet50_layers(_minibatch(m))
    fig = FigureData(
        title=f"ResNet-50 {pass_.value} on {m.name} (GFLOPS)",
        layer_ids=[lid for lid, _ in layers],
    )
    fig.series = {"thiswork": [], "mkl": []}
    fig.efficiency = {"thiswork": []}
    est = (
        model.estimate_backward if pass_ is Pass.BWD else model.estimate_update
    )
    for lid, p in layers:
        tw = est(p, dtype=dtype)
        fig.series["thiswork"].append(tw.gflops)
        fig.efficiency["thiswork"].append(tw.efficiency)
        fig.series["mkl"].append(est(p, impl="mkl", dtype=dtype).gflops)
    return fig


def resnet50_lowprecision_sweep(pass_: Pass) -> FigureData:
    """Fig. 8 data: fp32 vs int16 on KNM for one pass."""
    from repro.arch.machine import KNM

    model = ConvPerfModel(KNM)
    layers = resnet50_layers(70)
    fig = FigureData(
        title=f"ResNet-50 {pass_.value} on KNM: fp32 vs int16 (GFLOPS)",
        layer_ids=[lid for lid, _ in layers],
    )
    fig.series = {"fp32": [], "int16": [], "speedup": []}
    est = {
        Pass.FWD: model.estimate_forward,
        Pass.BWD: model.estimate_backward,
        Pass.UPD: model.estimate_update,
    }[pass_]
    for lid, p in layers:
        f = est(p)
        q = est(p, dtype=DType.QI16F32)
        fig.series["fp32"].append(f.gflops)
        fig.series["int16"].append(q.gflops)
        fig.series["speedup"].append(f.time_s / q.time_s)
    return fig


def inception_averages(machine: MachineConfig | str) -> dict[str, tuple]:
    """Section III-A/B text: Inception-v3 topology-average GFLOPS."""
    import statistics

    m = machine_by_name(machine) if isinstance(machine, str) else machine
    model = ConvPerfModel(m)
    out = {}
    for impl in ("thiswork", "mkl"):
        f, b, u = [], [], []
        for p, _count in inception_v3_layers(_minibatch(m)):
            f.append(model.estimate_forward(p, impl=impl).gflops)
            b.append(model.estimate_backward(p, impl=impl).gflops)
            u.append(model.estimate_update(p, impl=impl).gflops)
        out[impl] = tuple(statistics.mean(v) for v in (f, b, u))
    return out
