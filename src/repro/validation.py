"""Numerical-accuracy norms, as the paper's artifact reports them.

The artifact appendix: "the layer example runs a simple loop nest as
reference code for each convolution operation.  The JIT is compared using
several norms (Linf of absolute error, L2 of absolute error, Linf of
relative error, L2 of relative error)."  :func:`compare` computes exactly
those four, and :func:`check` turns them into a pass/fail verdict with
fp32-appropriate tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import ReproError

__all__ = [
    "ErrorNorms",
    "compare",
    "check",
    "ValidationError",
    "nonfinite_report",
]


class ValidationError(ReproError):
    """A kernel's output diverged from the reference beyond tolerance."""


@dataclass(frozen=True, slots=True)
class ErrorNorms:
    """The artifact's four norms for one (test, reference) pair."""

    linf_abs: float
    l2_abs: float
    linf_rel: float
    l2_rel: float

    def __str__(self) -> str:
        return (
            f"Linf-abs={self.linf_abs:.3e}  L2-abs={self.l2_abs:.3e}  "
            f"Linf-rel={self.linf_rel:.3e}  L2-rel={self.l2_rel:.3e}"
        )


def compare(test: np.ndarray, reference: np.ndarray) -> ErrorNorms:
    """Compute the four artifact norms of ``test`` against ``reference``."""
    t = np.asarray(test, dtype=np.float64).reshape(-1)
    r = np.asarray(reference, dtype=np.float64).reshape(-1)
    if t.shape != r.shape:
        raise ValidationError(
            f"shape mismatch: test {test.shape} vs reference {reference.shape}"
        )
    diff = np.abs(t - r)
    linf_abs = float(diff.max(initial=0.0))
    l2_abs = float(np.sqrt((diff**2).sum()))
    denom = np.abs(r)
    ref_scale = float(denom.max(initial=0.0))
    # relative error guarded against zero reference entries: entries whose
    # reference magnitude is numerically zero use the tensor's scale instead
    guard = np.where(denom > 1e-30 * max(ref_scale, 1.0), denom,
                     max(ref_scale, 1e-30))
    rel = diff / guard
    linf_rel = float(rel.max(initial=0.0))
    ref_l2 = float(np.sqrt((r**2).sum()))
    l2_rel = l2_abs / ref_l2 if ref_l2 > 0 else l2_abs
    return ErrorNorms(linf_abs, l2_abs, linf_rel, l2_rel)


def nonfinite_report(
    arrays: list[np.ndarray],
) -> list[tuple[int, int, int]]:
    """Non-finite accounting over a tensor set (the numerics-watchdog
    primitive): ``(index, n_nan, n_inf)`` for every array containing a
    NaN or Inf, empty when all values are finite."""
    bad = []
    for i, a in enumerate(arrays):
        if np.isfinite(a).all():
            continue
        n_nan = int(np.isnan(a).sum())
        n_inf = int(np.isinf(a).sum())
        bad.append((i, n_nan, n_inf))
    return bad


def check(
    test: np.ndarray,
    reference: np.ndarray,
    linf_rel_tol: float = 1e-3,
    l2_rel_tol: float = 1e-4,
    raise_on_fail: bool = True,
) -> ErrorNorms:
    """Validate and (optionally) raise with the full norm report.

    Default tolerances suit fp32 kernels whose accumulation order differs
    from the reference's; int16 kernels need looser ``linf_rel_tol``.
    """
    norms = compare(test, reference)
    ok = norms.linf_rel <= linf_rel_tol and norms.l2_rel <= l2_rel_tol
    if not ok and raise_on_fail:
        raise ValidationError(
            f"kernel output exceeds tolerance: {norms} "
            f"(limits: Linf-rel {linf_rel_tol:g}, L2-rel {l2_rel_tol:g})"
        )
    return norms
