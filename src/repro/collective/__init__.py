"""repro.collective -- fault-tolerant overlapped all-reduce.

The paper's multi-node pillar (SS-GxM/MLSL, Georganas et al., SC'18):
data-parallel training where the gradient all-reduce *overlaps* the
remaining backward/update work instead of blocking after it.  This
package provides the peer-to-peer machinery behind
``ProcessParallelTrainer(allreduce="ring"|"tree")``:

* :mod:`~repro.collective.channels` -- dedicated ``AF_UNIX`` peer
  connections (:class:`PeerHub`) and the framed, CRC-guarded hop format
  carrying a (step, epoch, bucket) header on every message;
* :mod:`~repro.collective.bucketing` -- deterministic landing-order
  gradient buckets (:class:`GradBucketer`) cut as each layer's UPD task
  fires the ETG ``grad_hook``;
* :mod:`~repro.collective.ring` / :mod:`~repro.collective.tree` -- the
  pipelined chain-ring (rank-order fold, bitwise identical to the
  root fold) and binomial-tree engines, each with a root-side fold
  emulation (``fold_ring`` / ``fold_tree``) used by degraded steps;
* :mod:`~repro.collective.engine` -- the shared threaded engine core
  (per-edge rx threads, per-hop timeouts, fault site
  ``collective.hop``);
* :mod:`~repro.collective.errors` -- typed :class:`CollectiveError`
  rejection of corrupt/stale/late/lost hops with culprit attribution;
* :mod:`~repro.collective.repair` -- membership/epoch bookkeeping and
  the mode-aware fold behind the ring-repair protocol.
"""

from repro.collective.bucketing import (
    BucketSpec,
    GradBucketer,
    layer_param_indices,
)
from repro.collective.channels import PeerHub, decode_bucket, send_bucket
from repro.collective.engine import AllReduceEngine, PeerReceiver
from repro.collective.errors import (
    CollectiveError,
    CorruptBucket,
    HopTimeout,
    PeerGone,
    RingBuildError,
    StaleBucket,
)
from repro.collective.repair import Membership, fold_gradients, peers_for
from repro.collective.ring import RingEngine, fold_ring, ring_peers
from repro.collective.tree import (
    TreeEngine,
    fold_tree,
    tree_children,
    tree_parent,
    tree_peers,
)
from repro.collective.worker import CollectiveStepRunner

__all__ = [
    "AllReduceEngine",
    "BucketSpec",
    "CollectiveError",
    "CollectiveStepRunner",
    "CorruptBucket",
    "GradBucketer",
    "HopTimeout",
    "Membership",
    "PeerGone",
    "PeerHub",
    "PeerReceiver",
    "RingBuildError",
    "RingEngine",
    "StaleBucket",
    "TreeEngine",
    "decode_bucket",
    "fold_gradients",
    "fold_ring",
    "fold_tree",
    "layer_param_indices",
    "peers_for",
    "ring_peers",
    "send_bucket",
    "tree_children",
    "tree_parent",
    "tree_peers",
]
