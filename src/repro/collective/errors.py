"""Typed failures of the peer-to-peer collective.

Every error carries a ``kind`` (a short machine-readable tag that the
root folds into ``collective.errors.<kind>`` counters) and, where the
protocol can attribute blame, a ``culprit`` rank.  Attribution is always
*direct*: a corrupt or missing hop blames the rank that sent (or should
have sent) it, because every hop re-frames the payload with a fresh
checksum -- corruption cannot travel further than one edge.
"""

from __future__ import annotations

from repro.types import ReproError

__all__ = [
    "CollectiveError",
    "CorruptBucket",
    "HopTimeout",
    "PeerGone",
    "RingBuildError",
    "StaleBucket",
]


class CollectiveError(ReproError):
    """Base class: something went wrong inside an all-reduce step.

    ``culprit`` is the rank the failure is attributed to (``None`` when
    unattributable), ``kind`` a short tag for counters/logs.
    """

    def __init__(self, detail: str, *, culprit: int | None = None,
                 kind: str = "collective"):
        super().__init__(detail)
        self.culprit = culprit
        self.kind = kind


class HopTimeout(CollectiveError):
    """An expected bucket never arrived within the per-hop timeout; the
    sending rank is presumed hung (or wedged upstream of us)."""

    def __init__(self, detail: str, *, culprit: int | None = None):
        super().__init__(detail, culprit=culprit, kind="timeout")


class CorruptBucket(CollectiveError):
    """A hop failed its checksum / framing / shape validation.  Rejected
    at the receiving rank; blamed on the direct sender."""

    def __init__(self, detail: str, *, culprit: int | None = None):
        super().__init__(detail, culprit=culprit, kind="corrupt")


class StaleBucket(CollectiveError):
    """A hop carried a (step, epoch) header *ahead of* or inconsistent
    with the receiver's -- a protocol violation.  (Messages from an
    *older* epoch/step are stragglers of an aborted collective; those are
    silently dropped and counted, not raised.)"""

    def __init__(self, detail: str, *, culprit: int | None = None):
        super().__init__(detail, culprit=culprit, kind="stale")


class PeerGone(CollectiveError):
    """A peer connection died mid-collective (EOF/EPIPE): the peer
    process crashed or was SIGKILLed."""

    def __init__(self, detail: str, *, culprit: int | None = None):
        super().__init__(detail, culprit=culprit, kind="peer_gone")


class RingBuildError(CollectiveError):
    """The peer mesh for a new epoch could not be wired up in time."""

    def __init__(self, detail: str, *, culprit: int | None = None):
        super().__init__(detail, culprit=culprit, kind="build")
