"""Peer channels: framed bucket messages + the per-rank connection hub.

Workers talk to each other over dedicated ``AF_UNIX`` sockets (one
full-duplex :class:`multiprocessing.connection.Connection` per ring/tree
edge), *not* through the root pipes -- the root stays a coordinator.

Wire format of one hop (a tuple, sent with ``Connection.send``)::

    ("bkt", kind, step, epoch, bucket_id, sender, crc32, blob)

``kind`` is ``"red"`` (a partial sum travelling the reduce phase) or
``"avg"`` (the finished average travelling the broadcast phase).  The
``blob`` is the pickled list of gradient arrays; its CRC is computed
*before* any injected corruption, so a scribbled payload always fails
verification at the receiving rank (:class:`CorruptBucket`), blaming the
direct sender.

:class:`PeerHub` owns a rank's listening endpoint and rebuilds the peer
connections for every ring epoch (``rewire``): lower rank dials higher,
each dialer introduces itself with a ``("hello", rank, epoch)`` so a
straggler from an aborted epoch can never slip into the new mesh.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
import zlib
from multiprocessing.connection import Client, Listener

import numpy as np

from repro.collective.errors import CorruptBucket, RingBuildError

__all__ = ["MSG_TAG", "PeerHub", "decode_bucket", "send_bucket"]

MSG_TAG = "bkt"


def send_bucket(conn, kind, step, epoch, bucket_id, sender, arrays,
                corrupt=False) -> int:
    """Frame and send one hop; returns the payload size in bytes.

    ``corrupt=True`` scribbles the blob *after* the CRC is computed --
    the deterministic ``corrupt_message`` fault."""
    blob = pickle.dumps(list(arrays), protocol=pickle.HIGHEST_PROTOCOL)
    crc = zlib.crc32(blob)
    if corrupt:
        scribbled = bytearray(blob)
        mid = len(scribbled) // 2
        scribbled[mid] ^= 0xFF
        blob = bytes(scribbled)
    conn.send((MSG_TAG, kind, step, epoch, bucket_id, sender, crc, blob))
    return len(blob)


def decode_bucket(msg, *, culprit: int | None = None):
    """Validate one hop's framing + checksum; returns
    ``(kind, step, epoch, bucket_id, sender, arrays)`` or raises a
    :class:`CorruptBucket` blaming ``culprit``."""
    if (
        not isinstance(msg, tuple)
        or len(msg) != 8
        or msg[0] != MSG_TAG
        or not all(isinstance(v, int) for v in msg[2:7])
        or not isinstance(msg[7], bytes)
    ):
        raise CorruptBucket(
            f"malformed hop frame from peer {culprit}", culprit=culprit
        )
    _, kind, step, epoch, bucket_id, sender, crc, blob = msg
    if zlib.crc32(blob) != crc:
        raise CorruptBucket(
            f"checksum mismatch on bucket {bucket_id} from peer {culprit}",
            culprit=culprit,
        )
    try:
        arrays = pickle.loads(blob)
    except Exception as err:  # pragma: no cover - crc catches this first
        raise CorruptBucket(
            f"undecodable bucket {bucket_id} from peer {culprit} ({err!r})",
            culprit=culprit,
        ) from err
    if not isinstance(arrays, list) or not all(
        isinstance(a, np.ndarray) for a in arrays
    ):
        raise CorruptBucket(
            f"bucket {bucket_id} payload is not a gradient list",
            culprit=culprit,
        )
    return kind, step, epoch, bucket_id, sender, arrays


class PeerHub:
    """One rank's listening endpoint + its current epoch's peer mesh."""

    def __init__(self, address: str, authkey: bytes):
        self.address = address
        self.authkey = authkey
        self._listener = Listener(
            address=address, family="AF_UNIX", backlog=16, authkey=authkey
        )
        # a timeout on the listening socket turns blocking accept() into
        # a pollable loop (deadline-guarded ring builds, clean shutdown)
        sock = getattr(
            getattr(self._listener, "_listener", None), "_socket", None
        )
        if sock is not None:
            sock.settimeout(0.2)
        self.conns: dict = {}

    # ------------------------------------------------------------------
    def rewire(self, rank: int, peers, addresses: dict, epoch: int,
               timeout: float) -> dict:
        """Tear down the old mesh and build this epoch's connections to
        ``peers``: accept dials from lower-ranked peers, dial higher.
        Returns ``{peer_rank: Connection}`` or raises
        :class:`RingBuildError`."""
        self.close_conns()
        deadline = time.monotonic() + timeout
        inbound = {p for p in peers if p < rank}
        outbound = sorted(p for p in peers if p > rank)
        got: dict = {}
        errs: list[str] = []
        acceptor = threading.Thread(
            target=self._accept_loop,
            args=(set(inbound), epoch, deadline, got, errs),
            daemon=True,
        )
        acceptor.start()
        try:
            for p in outbound:
                got[p] = self._dial(addresses[p], rank, epoch, deadline)
        except RingBuildError as err:
            errs.append(str(err))
        acceptor.join(timeout=max(0.0, deadline - time.monotonic()) + 1.0)
        if errs or set(got) != set(peers):
            for conn in got.values():
                try:
                    conn.close()
                except OSError:
                    pass
            missing = sorted(set(peers) - set(got))
            raise RingBuildError(
                f"epoch {epoch} mesh incomplete (missing {missing}; "
                f"{'; '.join(errs) or 'timed out'})"
            )
        self.conns = got
        return got

    def _accept_loop(self, expect, epoch, deadline, got, errs):
        while expect and time.monotonic() < deadline:
            try:
                conn = self._listener.accept()
            except socket.timeout:
                continue
            except Exception:
                # auth failure / half-open dial from a dead straggler
                continue
            try:
                if not conn.poll(max(0.0, deadline - time.monotonic())):
                    conn.close()
                    continue
                hello = conn.recv()
            except Exception:
                conn.close()
                continue
            if (
                isinstance(hello, tuple)
                and len(hello) == 3
                and hello[0] == "hello"
                and hello[2] == epoch
                and hello[1] in expect
            ):
                got[hello[1]] = conn
                expect.discard(hello[1])
            else:  # wrong epoch (straggler) or unexpected rank
                conn.close()
        if expect:
            errs.append(f"no hello from inbound peers {sorted(expect)}")

    def _dial(self, address, rank, epoch, deadline):
        while True:
            try:
                conn = Client(address, family="AF_UNIX", authkey=self.authkey)
                conn.send(("hello", rank, epoch))
                return conn
            except Exception as err:  # refused / absent / auth race
                if time.monotonic() >= deadline:
                    raise RingBuildError(
                        f"dial {address} timed out ({err!r})"
                    ) from err
                time.sleep(0.02)

    # ------------------------------------------------------------------
    def close_conns(self) -> None:
        for conn in self.conns.values():
            try:
                conn.close()
            except OSError:
                pass
        self.conns = {}

    def close(self) -> None:
        self.close_conns()
        try:
            self._listener.close()
        except OSError:
            pass
