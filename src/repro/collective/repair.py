"""Ring repair: the root-side membership/epoch bookkeeping plus the
mode-aware fold used to complete an aborted step.

The repair protocol (driven by ``ProcessParallelTrainer``):

1. any rank that detects a failure mid-collective (checksum mismatch,
   hop timeout, dead peer) reports a typed ``cerr`` to the root instead
   of a result;
2. the root **bumps the epoch** -- every straggling in-flight bucket of
   the old epoch is now stale and gets dropped at whoever receives it;
3. the attributed culprit is killed (its state is untrusted), every
   survivor is sent an ``abort`` and returns its *local* shard
   gradients over its root pipe;
4. the step completes under the existing degrade policies --
   ``recompute`` re-runs lost shards on the root replica and folds all
   N shards with this mode's deterministic fold (bit-identical to a
   healthy step), ``rescale`` folds survivors only;
5. the root broadcasts the folded average (``commit_degraded``) so the
   survivors' optimizer replicas stay bitwise in lockstep, respawns the
   dead (bounded), and marks the mesh stale -- the next step rewires
   fresh connections for the new epoch.

No step is ever half-applied: workers only touch their weights on an
explicit commit, and the root commits its replica in the same barrier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collective.ring import fold_ring, ring_peers
from repro.collective.tree import fold_tree, tree_peers
from repro.types import ReproError

__all__ = ["Membership", "fold_gradients", "peers_for"]

MODES = ("ring", "tree", "root")


def peers_for(mode: str, rank: int, nodes: int) -> set[int]:
    """The peer-channel edges touching ``rank`` under ``mode``."""
    if mode == "ring":
        return ring_peers(rank, nodes)
    if mode == "tree":
        return tree_peers(rank, nodes)
    raise ReproError(f"mode {mode!r} has no peer topology")


def fold_gradients(mode: str, shard_grads: list[list], divisor: int) -> list:
    """Fold per-rank gradient lists exactly as a healthy ``mode``
    collective would, divided by ``divisor``."""
    if mode == "tree":
        return fold_tree(shard_grads, divisor)
    # ring and root-fold share the sequential rank-order fold
    return fold_ring(shard_grads, divisor)


@dataclass
class Membership:
    """Root-side view of the worker mesh for the collective modes."""

    nodes: int
    #: bumped on every repair/rewire; stale-epoch traffic is dropped
    epoch: int = 0
    #: the mesh must be rewired before the next collective step
    stale: bool = True
    #: ranks whose weight/velocity replicas need a fresh broadcast
    needs_sync: set = field(default_factory=set)
    #: rank -> AF_UNIX listener address (refreshed on every spawn)
    addresses: dict = field(default_factory=dict)

    def reset_all(self) -> None:
        self.stale = True
        self.needs_sync = set(range(self.nodes))
