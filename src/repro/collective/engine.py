"""The all-reduce engine core shared by the ring and tree topologies.

Threading model inside one worker process:

* the **main thread** runs backprop; every bucket the
  :class:`~repro.collective.bucketing.GradBucketer` cuts is ``feed()``'d
  to the engine while later layers are still computing -- this is the
  comm/compute overlap;
* a :class:`PeerReceiver` owns one **rx thread per peer connection for
  the whole ring epoch** (not per step: a fast neighbour may already be
  sending step *k+1* while this rank is still committing step *k*, and
  a per-step receiver would swallow those early buckets).  Each rx
  thread drains its connection unconditionally into a step-keyed inbox
  (so a peer's send never blocks on our compute -- no socket-buffer
  deadlock) and performs the per-hop validation: framing + CRC
  (:class:`CorruptBucket`), the epoch header (stragglers of an aborted
  epoch are dropped and counted; *future* epochs raise
  :class:`StaleBucket` -- they can only mean a protocol bug, since every
  epoch gets fresh connections), EOF (:class:`PeerGone`);
* the per-step **engine thread** executes the topology protocol
  (:meth:`_run_protocol`), pulling local buckets from the feed queue and
  peer buckets from the epoch inbox, each wait bounded by
  ``hop_timeout`` (:class:`HopTimeout`).

The first failure anywhere freezes the step's engine (``failed``), and
the worker's main loop escalates it to the root as a ``cerr`` for ring
repair.  ``abandon()`` detaches an aborted step's engine thread; the
receiver itself is torn down only when its epoch is rewired.

Fault site ``collective.hop`` fires just before a rank forwards a given
bucket (filters: ``rank``, ``bucket``, ``step``), honouring ``crash``,
``hang``, ``slow`` and ``corrupt_message`` kinds.
"""

from __future__ import annotations

import os
import queue
import threading
import time

from repro.collective.channels import decode_bucket, send_bucket
from repro.forensics.recorder import get_recorder
from repro.collective.errors import (
    CollectiveError,
    CorruptBucket,
    HopTimeout,
    PeerGone,
    StaleBucket,
)

__all__ = ["AllReduceEngine", "PeerReceiver"]


class _Inbox:
    """Keyed mailbox: rx threads put, engine threads take."""

    def __init__(self):
        self._cv = threading.Condition()
        self._msgs: dict = {}

    def put(self, key, value) -> None:
        with self._cv:
            self._msgs[key] = value
            self._cv.notify_all()

    def kick(self) -> None:
        with self._cv:
            self._cv.notify_all()

    def purge_below(self, step: int) -> None:
        """Drop leftovers of steps older than ``step`` (aborted or
        already-completed collectives this epoch)."""
        with self._cv:
            for key in [k for k in self._msgs if k[0] < step]:
                del self._msgs[key]

    def try_take(self, key):
        with self._cv:
            return self._msgs.pop(key, None)

    def take(self, key, timeout: float, stop: threading.Event,
             error_of, culprit: int | None):
        deadline = time.monotonic() + timeout
        with self._cv:
            while True:
                if key in self._msgs:
                    return self._msgs.pop(key)
                if stop.is_set():
                    raise CollectiveError("collective aborted", kind="abort")
                err = error_of()
                if err is not None:
                    raise err
                left = deadline - time.monotonic()
                if left <= 0:
                    raise HopTimeout(
                        f"bucket {key} not received within {timeout:.1f}s",
                        culprit=culprit,
                    )
                self._cv.wait(min(left, 0.05))


class PeerReceiver:
    """One ring epoch's always-draining receive side: a daemon thread
    per peer connection, delivering validated buckets into a step-keyed
    inbox that successive step engines consume."""

    def __init__(self, conns: dict, epoch: int):
        self.epoch = epoch
        self.inbox = _Inbox()
        self.stale_dropped = 0
        self._stop = threading.Event()
        self._error: CollectiveError | None = None
        self._threads = []
        for prank, conn in conns.items():
            t = threading.Thread(
                target=self._rx, args=(prank, conn), daemon=True,
                name=f"coll-rx-e{epoch}-p{prank}",
            )
            t.start()
            self._threads.append(t)

    @property
    def error(self) -> CollectiveError | None:
        return self._error

    def stop(self) -> None:
        """Wind the epoch down (called before its connections close)."""
        self._stop.set()
        self.inbox.kick()
        for t in self._threads:
            t.join(timeout=2)

    def _fail(self, err: CollectiveError) -> None:
        if self._error is None:
            self._error = err
        self.inbox.kick()

    def _rx(self, prank: int, conn) -> None:
        while not self._stop.is_set():
            try:
                if not conn.poll(0.05):
                    continue
                msg = conn.recv()
            except (EOFError, OSError) as err:
                if not self._stop.is_set():
                    self._fail(PeerGone(
                        f"peer {prank} connection lost ({err!r})",
                        culprit=prank,
                    ))
                return
            try:
                kind, step, epoch, bucket_id, sender, arrays = decode_bucket(
                    msg, culprit=prank
                )
                if epoch != self.epoch:
                    if epoch < self.epoch:
                        # straggler of an aborted epoch
                        self.stale_dropped += 1
                        continue
                    raise StaleBucket(
                        f"bucket from a future epoch: peer {prank} sent "
                        f"epoch {epoch}, this mesh is epoch {self.epoch}",
                        culprit=prank,
                    )
                # future *steps* are fine: a fast neighbour is already
                # past its commit -- the bucket waits in the inbox
                self.inbox.put((step, kind, bucket_id, sender), arrays)
            except CollectiveError as err:
                self._fail(err)
                return


class AllReduceEngine:
    """One step's bucketed all-reduce at one rank (subclassed per
    topology).  ``peers`` maps peer rank -> duplex Connection (used for
    sends; receives flow through the epoch's :class:`PeerReceiver`);
    ``param_shapes`` is the flat parameter-shape list used to validate
    every consumed bucket."""

    def __init__(self, *, rank: int, nodes: int, step: int, epoch: int,
                 peers: dict, receiver: PeerReceiver, param_shapes: list,
                 hop_timeout: float, injector=None,
                 corrupt_first: bool = False):
        self.rank = rank
        self.nodes = nodes
        self.step = step
        self.epoch = epoch
        self.peers = peers
        self.receiver = receiver
        self.param_shapes = param_shapes
        self.hop_timeout = hop_timeout
        self.injector = injector
        self._corrupt_next_send = corrupt_first
        self._queue: queue.Queue = queue.Queue()
        self._stop = threading.Event()
        self._done = threading.Event()
        self._error: CollectiveError | None = None
        #: flat param index -> averaged gradient array
        self.result: dict = {}
        self.stats = {
            "buckets": 0, "bytes": 0, "hops": 0,
            "overlap_ms": 0.0, "exposed_ms": 0.0,
        }
        self._t_finish: float | None = None
        self._t_first_send: float | None = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        self.receiver.inbox.purge_below(self.step)
        t = threading.Thread(
            target=self._engine, daemon=True,
            name=f"coll-engine-{self.rank}-s{self.step}",
        )
        t.start()

    def feed(self, spec, arrays) -> None:
        """Hand a locally-cut bucket to the engine (main thread)."""
        self._queue.put((spec, list(arrays)))

    def finish(self) -> None:
        """All local buckets are in: compute is done, the remaining
        engine time is *exposed* (non-overlapped) communication."""
        self._t_finish = time.monotonic()
        self._queue.put(None)

    def abandon(self) -> None:
        """Detach from an aborted step; the engine thread winds down on
        its own (the epoch's receiver keeps running until rewire)."""
        self._stop.set()
        self.receiver.inbox.kick()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def failed(self) -> CollectiveError | None:
        return self._error if self._error is not None else self.receiver.error

    # -- subclass hooks -------------------------------------------------
    def _run_protocol(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- threads --------------------------------------------------------
    def _fail(self, err: CollectiveError) -> None:
        if self._error is None:
            self._error = err
        self._stop.set()

    def _engine(self) -> None:
        try:
            self._run_protocol()
        except CollectiveError as err:
            self._fail(err)
        except Exception as err:  # pragma: no cover - defensive
            self._fail(CollectiveError(
                f"engine internal failure: {err!r}", kind="internal"
            ))
        else:
            now = time.monotonic()
            if self._t_finish is not None:
                self.stats["exposed_ms"] = max(
                    0.0, (now - self._t_finish) * 1e3
                )
                if self._t_first_send is not None:
                    self.stats["overlap_ms"] = max(
                        0.0, (self._t_finish - self._t_first_send) * 1e3
                    )
            self._done.set()

    # -- engine-thread helpers -----------------------------------------
    def _error_now(self) -> CollectiveError | None:
        return self._error if self._error is not None else self.receiver.error

    def _next_local(self):
        """Next locally-fed bucket (None = compute finished)."""
        while True:
            if self._stop.is_set():
                raise CollectiveError("collective aborted", kind="abort")
            err = self._error_now()
            if err is not None:
                raise err
            try:
                return self._queue.get(timeout=0.05)
            except queue.Empty:
                continue

    def _take(self, kind: str, spec, sender: int):
        # broadcast-phase waits get double the budget: when a rank dies,
        # the rank waiting on its *reduce* hop times out first, so the
        # first cerr the root sees always blames the true culprit
        timeout = self.hop_timeout * (2.0 if kind == "avg" else 1.0)
        return self.receiver.inbox.take(
            (self.step, kind, spec.bucket_id, sender), timeout,
            self._stop, self._error_now, sender,
        )

    def _try_take(self, kind: str, spec, sender: int):
        return self.receiver.inbox.try_take(
            (self.step, kind, spec.bucket_id, sender)
        )

    def _validate(self, spec, arrays, sender: int) -> None:
        if len(arrays) != len(spec.indices) or any(
            a.shape != self.param_shapes[idx]
            for idx, a in zip(spec.indices, arrays)
        ):
            raise CorruptBucket(
                f"bucket {spec.bucket_id} from peer {sender} has wrong "
                f"arity/shapes", culprit=sender,
            )

    def _send(self, prank: int, kind: str, spec, arrays) -> None:
        corrupt = self._corrupt_next_send
        self._corrupt_next_send = False
        try:
            n = send_bucket(
                self.peers[prank], kind, self.step, self.epoch,
                spec.bucket_id, self.rank, arrays, corrupt=corrupt,
            )
        except (OSError, ValueError) as err:
            raise PeerGone(
                f"send to peer {prank} failed ({err!r})", culprit=prank
            ) from err
        if self._t_first_send is None:
            self._t_first_send = time.monotonic()
        self.stats["bytes"] += n
        self.stats["hops"] += 1
        rec = get_recorder()
        if rec.enabled:
            rec.record(
                "collective.hop", step=self.step, epoch=self.epoch,
                bucket=spec.bucket_id, kind=kind, rank=self.rank,
                peer=prank, bytes=n,
            )

    def _store(self, spec, arrays) -> None:
        for idx, a in zip(spec.indices, arrays):
            self.result[idx] = a
        self.stats["buckets"] += 1

    def _fire_fault(self, spec) -> None:
        inj = self.injector
        if inj is None:
            return
        fault = inj.fire(
            "collective.hop", step=self.step, rank=self.rank,
            bucket=spec.bucket_id,
        )
        if fault is None:
            return
        if fault.kind == "crash":
            os._exit(23)  # simulated SIGKILL mid-collective
        elif fault.kind == "hang":
            time.sleep(3600)  # peers' hop timeouts detect us
        elif fault.kind == "slow":
            time.sleep(fault.delay_s)
        elif fault.kind == "corrupt_message":
            self._corrupt_next_send = True

    def result_list(self) -> list:
        """The averaged gradients as a flat list (completes only after
        ``done``); raises if any parameter index is missing."""
        return [self.result[i] for i in range(len(self.param_shapes))]
