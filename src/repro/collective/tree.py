"""The binomial-tree all-reduce (the comparison topology).

Reduce phase: in round *k* (distances 1, 2, 4, ...), every rank whose
index is an odd multiple of 2^k sends its partial sum to ``rank - 2^k``;
rank 0 ends up holding the total, divides by N, and the broadcast phase
mirrors the reduce edges in reverse.  log2(N) hops of latency instead of
the ring's 2N-2, at the cost of 2x the bytes through the root-adjacent
links -- the classic latency-vs-bandwidth trade the paper's MLSL layer
models.

The fold order is the binomial combination ``(g0+g1) + (g2+g3) ...``,
*not* rank order -- so tree mode has its own root-side emulation
(:func:`fold_tree`) that degraded steps use to stay bit-identical to
healthy tree steps.  Works for any N, powers of two or not.
"""

from __future__ import annotations

from repro.collective.engine import AllReduceEngine

__all__ = ["TreeEngine", "fold_tree", "tree_children", "tree_parent",
           "tree_peers"]


def tree_parent(rank: int) -> int | None:
    """The rank this one reduces into (None for rank 0)."""
    if rank == 0:
        return None
    k = 1
    while rank % (2 * k) != k:
        k *= 2
    return rank - k


def tree_children(rank: int, nodes: int) -> list[int]:
    """The ranks that reduce into this one, in ascending round order."""
    out = []
    k = 1
    while k < nodes:
        if rank % (2 * k) == k:
            break  # this rank sends at round log2(k); no later rounds
        if rank % (2 * k) == 0 and rank + k < nodes:
            out.append(rank + k)
        k *= 2
    return out


def tree_peers(rank: int, nodes: int) -> set[int]:
    peers = set(tree_children(rank, nodes))
    parent = tree_parent(rank)
    if parent is not None:
        peers.add(parent)
    return peers


def fold_tree(shard_grads: list[list], divisor: int) -> list:
    """Root-side emulation of the binomial fold.  Bitwise identical to
    what :class:`TreeEngine` produces across real processes."""
    n = len(shard_grads)
    parts = [list(s) for s in shard_grads]
    own = [False] * n  # whether parts[r] is already a private copy
    d = 1
    while d < n:
        for r in range(0, n - d, 2 * d):
            if not own[r]:
                parts[r] = [g.copy() for g in parts[r]]
                own[r] = True
            for a, g in zip(parts[r], parts[r + d]):
                a += g
        d *= 2
    acc = parts[0] if own[0] else [g.copy() for g in parts[0]]
    for a in acc:
        a /= divisor
    return acc


class TreeEngine(AllReduceEngine):
    """Binomial-tree engine at one rank (see module docstring)."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self._children = tree_children(self.rank, self.nodes)
        self._parent = tree_parent(self.rank)

    def _run_protocol(self) -> None:
        pending = []  # buckets awaiting the average from our parent
        while True:
            item = self._next_local()
            if item is None:
                break
            spec, own = item
            self._fire_fault(spec)
            if self._children:
                acc = [g.copy() for g in own]
                for child in self._children:  # ascending distance order
                    part = self._take("red", spec, child)
                    self._validate(spec, part, child)
                    for a, g in zip(acc, part):
                        a += g
            else:
                acc = own
            if self._parent is not None:
                self._send(self._parent, "red", spec, acc)
                pending.append(spec)
            else:
                for a in acc:
                    a /= self.nodes
                self._store(spec, acc)
                for child in reversed(self._children):
                    self._send(child, "avg", spec, acc)
            self._drain_pending(pending, block=False)
        self._drain_pending(pending, block=True)

    def _drain_pending(self, pending: list, block: bool) -> None:
        for spec in list(pending):
            if block:
                arrays = self._take("avg", spec, self._parent)
            else:
                arrays = self._try_take("avg", spec, self._parent)
                if arrays is None:
                    continue
            self._validate(spec, arrays, self._parent)
            self._store(spec, arrays)
            for child in reversed(self._children):
                self._send(child, "avg", spec, arrays)
            pending.remove(spec)
