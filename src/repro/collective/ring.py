"""The pipelined chain-ring all-reduce.

Per bucket, the reduce phase travels rank 0 -> 1 -> ... -> N-1, each rank
adding its own gradients to the incoming partial sum; the last rank
divides by N and the broadcast phase carries the average N-1 -> 0 -> 1
-> ... -> N-2.  Like the classic ring, every link carries each bucket at
most twice (2N-2 hops per bucket); unlike the classic ring's
reduce-scatter rotation, the per-element fold order here is exactly rank
order -- ``(((g0 + g1) + g2) ... ) / N`` -- which is bitwise identical
to the root-mode sequential fold *and* to the in-process
``Trainer(nodes=k)`` data-parallel fold.  That is what lets a degraded
step (failed rank recomputed at the root) reproduce a healthy step's
weights bit-for-bit.

Buckets are pipelined: while a rank waits for bucket *k*'s average to
come back around, it keeps reducing buckets *k+1, k+2, ...* as its own
backprop lands them.
"""

from __future__ import annotations

from repro.collective.engine import AllReduceEngine

__all__ = ["RingEngine", "fold_ring", "ring_peers"]


def ring_peers(rank: int, nodes: int) -> set[int]:
    """The chain-ring neighbours of ``rank`` (both directions used)."""
    return {(rank - 1) % nodes, (rank + 1) % nodes} - {rank}


def fold_ring(shard_grads: list[list], divisor: int) -> list:
    """Root-side emulation of the chain-ring fold: sequential rank-order
    accumulation, one division at the end.  Bitwise identical to what
    :class:`RingEngine` produces across real processes."""
    acc = [g.copy() for g in shard_grads[0]]
    for grads in shard_grads[1:]:
        for a, g in zip(acc, grads):
            a += g
    for a in acc:
        a /= divisor
    return acc


class RingEngine(AllReduceEngine):
    """Chain-ring engine at one rank (see module docstring)."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self._nxt = (self.rank + 1) % self.nodes
        self._prv = (self.rank - 1) % self.nodes

    def _run_protocol(self) -> None:
        last = self.nodes - 1
        pending = []  # buckets whose broadcast copy is still in flight
        while True:
            item = self._next_local()
            if item is None:
                break
            spec, own = item
            self._fire_fault(spec)
            if self.rank == 0:
                self._send(self._nxt, "red", spec, own)
                pending.append(spec)
            else:
                part = self._take("red", spec, self._prv)
                self._validate(spec, part, self._prv)
                for a, g in zip(part, own):
                    a += g
                if self.rank < last:
                    self._send(self._nxt, "red", spec, part)
                    pending.append(spec)
                else:
                    for a in part:
                        a /= self.nodes
                    self._store(spec, part)
                    self._send(self._nxt, "avg", spec, part)
            self._drain_pending(pending, block=False)
        self._drain_pending(pending, block=True)

    def _drain_pending(self, pending: list, block: bool) -> None:
        # the broadcast dies out at rank N-2 (its successor is N-1, the
        # averaging rank, which already holds every average)
        forward = self.rank < self.nodes - 2
        for spec in list(pending):
            if block:
                arrays = self._take("avg", spec, self._prv)
            else:
                arrays = self._try_take("avg", spec, self._prv)
                if arrays is None:
                    continue
            self._validate(spec, arrays, self._prv)
            self._store(spec, arrays)
            if forward:
                self._send(self._nxt, "avg", spec, arrays)
            pending.remove(spec)
