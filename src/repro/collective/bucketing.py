"""Deterministic gradient bucketing.

As each layer's UPD task lands its weight gradients (the ETG
``grad_hook``), the bucketer accumulates their parameter indices in
landing order and cuts a bucket whenever the byte threshold is crossed.
Landing order is the ETG task order -- identical on every rank (same
topology, same compile) -- so bucket ids, contents and boundaries agree
across the whole ring without any negotiation.

``finish`` sweeps up the remainder *and* any parameter whose layer never
fired the hook, so the union of all buckets always covers every
parameter index exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BucketSpec", "GradBucketer", "layer_param_indices"]


def layer_param_indices(etg) -> dict[str, tuple[int, ...]]:
    """Map each trainable layer name to its index range in the flat
    ``etg.params()`` / ``etg.grads()`` ordering."""
    out: dict[str, tuple[int, ...]] = {}
    i = 0
    for name, node in etg.nodes.items():
        k = len(node.params())
        if k:
            out[name] = tuple(range(i, i + k))
            i += k
    return out


@dataclass(frozen=True)
class BucketSpec:
    """One bucket: its ring-wide id, the flat parameter indices it
    carries (in landing order), and the payload size in bytes."""

    bucket_id: int
    indices: tuple
    nbytes: int


class GradBucketer:
    """Cuts landing-order gradient buckets at a byte threshold.

    A single layer larger than ``bucket_bytes`` still forms one bucket
    (buckets never split a layer's tensors).
    """

    def __init__(self, layer_indices: dict[str, tuple[int, ...]],
                 sizes_bytes: list[int], bucket_bytes: int):
        if bucket_bytes < 1:
            raise ValueError("bucket_bytes must be >= 1")
        self._layer_indices = layer_indices
        self._sizes = list(sizes_bytes)
        self._cap = bucket_bytes
        self._pending: list[int] = []
        self._pending_arrays: dict[int, object] = {}
        self._pending_bytes = 0
        self._next_id = 0
        self._landed: set[int] = set()

    @property
    def buckets_cut(self) -> int:
        return self._next_id

    def land(self, layer: str, arrays) -> list[tuple[BucketSpec, list]]:
        """Record ``layer``'s gradient arrays; returns the buckets (if
        any) that became full and should be fed to the engine now."""
        idxs = self._layer_indices.get(layer, ())
        for idx, a in zip(idxs, arrays):
            if idx in self._landed:
                continue
            self._landed.add(idx)
            self._pending.append(idx)
            self._pending_arrays[idx] = a
            self._pending_bytes += self._sizes[idx]
        if self._pending and self._pending_bytes >= self._cap:
            return [self._cut()]
        return []

    def finish(self, all_grads) -> list[tuple[BucketSpec, list]]:
        """Flush the remainder plus any never-landed parameters (flat
        index order) as the final bucket."""
        for idx in range(len(self._sizes)):
            if idx not in self._landed:
                self._landed.add(idx)
                self._pending.append(idx)
                self._pending_arrays[idx] = all_grads[idx]
                self._pending_bytes += self._sizes[idx]
        return [self._cut()] if self._pending else []

    def _cut(self) -> tuple[BucketSpec, list]:
        spec = BucketSpec(
            self._next_id, tuple(self._pending), self._pending_bytes
        )
        arrays = [self._pending_arrays.pop(i) for i in self._pending]
        self._pending = []
        self._pending_bytes = 0
        self._next_id += 1
        return spec, arrays
