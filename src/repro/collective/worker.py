"""The worker-side face of one collective training step.

``CollectiveStepRunner`` glues the three collective pieces together for
one (step, epoch): it hangs a :class:`GradBucketer` off the ETG's
``grad_hook`` so buckets are cut the moment each layer's UPD lands, and
feeds them to a running ring/tree engine -- communication overlaps the
rest of backprop.  The worker main loop drives it::

    runner = CollectiveStepRunner(...)   # engine threads start now
    runner.attach()
    loss = etg.train_step(x, y)          # buckets stream out mid-step
    runner.detach_and_finish()           # leftovers + compute-done mark
    ... poll runner.engine.done / .failed and the root pipe ...
    avg = runner.engine.result_list()    # after done

On abort (ring repair) the runner is ``abandon()``'d: the engine's
threads detach and the next step builds a fresh runner on the new
epoch's connections.
"""

from __future__ import annotations

from repro.collective.bucketing import GradBucketer
from repro.collective.repair import peers_for
from repro.collective.ring import RingEngine
from repro.collective.tree import TreeEngine

__all__ = ["CollectiveStepRunner"]

_ENGINES = {"ring": RingEngine, "tree": TreeEngine}


class CollectiveStepRunner:
    def __init__(self, *, mode: str, rank: int, nodes: int, step: int,
                 epoch: int, conns: dict, receiver, etg,
                 layer_indices: dict, bucket_bytes: int,
                 hop_timeout: float, injector=None,
                 corrupt_first: bool = False):
        self._etg = etg
        params = etg.params()
        self._bucketer = GradBucketer(
            layer_indices, [p.nbytes for p in params], bucket_bytes
        )
        self.engine = _ENGINES[mode](
            rank=rank, nodes=nodes, step=step, epoch=epoch,
            peers={p: conns[p] for p in peers_for(mode, rank, nodes)},
            receiver=receiver,
            param_shapes=[p.shape for p in params],
            hop_timeout=hop_timeout, injector=injector,
            corrupt_first=corrupt_first,
        )
        self.engine.start()

    def step_stats(self) -> dict:
        """The engine's hop/byte/overlap stats plus the epoch receiver's
        stale-drop count (reported with the done reply)."""
        stats = dict(self.engine.stats)
        stats["stale_dropped"] = self.engine.receiver.stale_dropped
        return stats

    def attach(self) -> None:
        self._etg.grad_hook = self._on_layer_landed

    def _on_layer_landed(self, layer: str) -> None:
        arrays = self._etg.nodes[layer].grads()
        for spec, bucket in self._bucketer.land(layer, arrays):
            self.engine.feed(spec, bucket)

    def detach_and_finish(self) -> None:
        """Compute is done: flush the remainder and mark the boundary
        between overlapped and exposed communication."""
        self._etg.grad_hook = None
        for spec, bucket in self._bucketer.finish(self._etg.grads()):
            self.engine.feed(spec, bucket)
        self.engine.finish()

    def abandon(self) -> None:
        self._etg.grad_hook = None
        self.engine.abandon()
