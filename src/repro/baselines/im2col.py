"""The im2col + GEMM baseline (Caffe's method, section III "im2col").

``im2col_forward`` materializes the ``(C*R*S) x (P*Q)`` patch matrix per
sample and multiplies by the ``K x (C*R*S)`` weight matrix -- numerically
identical to the reference convolution.

``estimate_im2col`` prices it: one pass reading the input and writing the
R*S-inflated patch matrix (pure bandwidth), then a large GEMM that re-reads
the inflated matrix.  The GEMM itself runs near peak (MKL on large shapes),
so the slowdown vs. direct convolution is the memory time -- about 3x on the
bandwidth-heavy layers, little on compute-dominated ones, matching Fig. 4.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.arch.machine import MachineConfig
from repro.conv.params import ConvParams
from repro.conv.reference import pad_input
from repro.perf.model import LayerPerf, combine_parts
from repro.types import DType, Pass

__all__ = ["im2col_forward", "im2col_matrix", "estimate_im2col"]

#: large-GEMM efficiency of a tuned BLAS (SGEMM benchmarks in section III)
GEMM_EFFICIENCY = 0.92


def im2col_matrix(x: np.ndarray, p: ConvParams) -> np.ndarray:
    """Patch matrix of shape ``(N, C*R*S, P*Q)`` (one column per output
    pixel), built with stride tricks then materialized -- the copy *is* the
    method's cost."""
    xp = pad_input(x, p)
    n, c, hp, wp = xp.shape
    sn, sc, sh, sw = xp.strides
    patches = as_strided(
        xp,
        shape=(n, c, p.R, p.S, p.P, p.Q),
        strides=(sn, sc, sh, sw, sh * p.stride, sw * p.stride),
    )
    return np.ascontiguousarray(patches.reshape(n, c * p.R * p.S, p.P * p.Q))


def im2col_forward(x: np.ndarray, w: np.ndarray, p: ConvParams) -> np.ndarray:
    """Forward convolution via im2col + GEMM."""
    cols = im2col_matrix(x, p)  # (N, C*R*S, P*Q)
    wmat = w.reshape(p.K, p.C * p.R * p.S)
    out = np.einsum("kc,ncp->nkp", wmat, cols, optimize=True)
    return out.reshape(p.N, p.K, p.P, p.Q)


def estimate_im2col(
    p: ConvParams,
    machine: MachineConfig,
    threads: int | None = None,
    dtype: DType = DType.F32,
) -> LayerPerf:
    """Performance model of im2col + MKL SGEMM."""
    m = machine
    t = threads or m.cores
    isz = dtype.input_itemsize
    in_bytes = p.N * p.C * p.Hp * p.Wp * isz
    col_bytes = p.N * p.C * p.R * p.S * p.P * p.Q * isz
    out_bytes = p.N * p.K * p.P * p.Q * 4
    w_bytes = p.K * p.C * p.R * p.S * isz

    # transform pass: read input, write patch matrix (write-allocate: the
    # matrix is too large for caches on the big layers)
    live = in_bytes + col_bytes + out_bytes + w_bytes
    if m.llc_bytes:
        frac = min(1.0, 0.75 * m.llc_bytes / live)
    else:
        frac = 0.0
    transform_read = in_bytes * (p.R * p.S)  # gather re-reads input R*S times
    t_transform = (
        transform_read * (1 - frac) / m.mem_read_bw
        + transform_read * frac / (t * max(m.llc_bw, m.l2_read_bw))
        + col_bytes * (1 - frac) / m.mem_write_bw
        + col_bytes * frac / (t * max(m.llc_bw, m.l2_write_bw))
    )
    # GEMM pass: near-peak compute on wide matrices, but the GEMM's N
    # dimension is the pixel count -- late layers (P*Q = 49) are
    # tall-and-skinny, where tuned BLAS loses efficiency ([14])
    pq = p.P * p.Q
    gemm_eff = GEMM_EFFICIENCY * pq / (pq + 160.0)
    t_gemm_compute = p.flops / (m.peak_flops_core * t * gemm_eff)
    t_gemm_mem = col_bytes * (1 - frac) / m.mem_read_bw + out_bytes * (
        1 - frac
    ) / m.mem_write_bw
    parts = {
        "transform": t_transform,
        "compute": t_gemm_compute,
        "gemm_mem": t_gemm_mem,
    }
    time_s, bound = combine_parts(parts, m.overlap_alpha)
    # the transform pass cannot overlap the GEMM pass at all
    time_s = max(time_s, t_transform + max(t_gemm_compute, t_gemm_mem))
    return LayerPerf(
        params=p,
        machine=m.name,
        impl="im2col",
        pass_=Pass.FWD,
        dtype=dtype,
        time_s=time_s,
        flops=p.flops,
        bound=bound,
        parts=parts,
        notes={"efficiency": p.flops / time_s / (m.peak_flops_core * t)},
    )
