"""Alternative convolution implementations benchmarked in section III.

Each baseline has a *functional* numpy implementation (validated against the
reference loops) and a *performance model* capturing the structural reasons
the paper gives for its slowdown:

* ``im2col`` -- flatten + big GEMM (the Caffe approach): pays the
  R*S-fold data inflation and an extra full pass over the input
  (memory-footprint + bandwidth downsides named in section I).
* ``libxsmm`` -- blocked direct-conv loops with a JIT'ed small GEMM as the
  innermost kernel: cannot hoist output loads/stores out of the ``r, s``
  loops nor pixel-block short rows (the two section II-D optimizations a
  batched-GEMM interface cannot express).
* ``blas`` -- same loops calling MKL GEMM: adds the large fixed dispatch
  overhead of statically-tuned BLAS on tall-and-skinny shapes ([14]).
* ``autovec`` -- compiler-vectorized naive loops: a single accumulation
  chain per output vector (FMA latency fully exposed) plus un-hoisted
  output traffic.
"""

from repro.baselines.im2col import im2col_forward, estimate_im2col
from repro.baselines.smallgemm_loops import (
    smallgemm_forward,
    estimate_smallgemm,
)
from repro.baselines.autovec import autovec_forward, estimate_autovec

__all__ = [
    "im2col_forward",
    "estimate_im2col",
    "smallgemm_forward",
    "estimate_smallgemm",
    "autovec_forward",
    "estimate_autovec",
]
