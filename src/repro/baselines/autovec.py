"""The compiler-autovectorized baseline ("autovec", section III).

The small GEMM is spelled out as three nested scalar loops and the compiler
vectorizes the innermost one.  What the compiler cannot do is the paper's
register blocking: each output vector is a *single* accumulation chain, so
every FMA waits out the full FMA latency; output values round-trip through
memory per tap; and strided/short trip counts defeat vectorization entirely
on part of the iterations.  Fig. 4 shows this up to 16x slower.
"""

from __future__ import annotations

import numpy as np

from repro.arch.machine import MachineConfig
from repro.conv.params import ConvParams
from repro.conv.reference import pad_input
from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.jit.kernel_cache import get_default_cache
from repro.jit.timing import time_kernel
from repro.perf.model import LayerPerf, combine_parts
from repro.perf.traffic import forward_traffic
from repro.conv.blocking import choose_blocking
from repro.types import DType, Pass

__all__ = ["autovec_forward", "estimate_autovec"]


def autovec_forward(x: np.ndarray, w: np.ndarray, p: ConvParams) -> np.ndarray:
    """Functional semantics of the three spelled-out loops (vectorized by
    numpy the way icc would vectorize the inner loop)."""
    xp = pad_input(x, p)
    out = np.zeros((p.N, p.K, p.P, p.Q), dtype=np.float32)
    for n in range(p.N):
        for oj in range(p.P):
            ij = oj * p.stride
            for r in range(p.R):
                for s in range(p.S):
                    b = xp[n, :, ij + r, s : s + p.stride * p.Q : p.stride]
                    out[n, :, oj, :] += w[:, :, r, s] @ b
    return out


def estimate_autovec(
    p: ConvParams,
    machine: MachineConfig,
    threads: int | None = None,
    dtype: DType = DType.F32,
) -> LayerPerf:
    """Performance model: single accumulation chain, un-hoisted output."""
    m = machine
    t = threads or m.cores
    vlen = m.vlen(dtype)
    cache = get_default_cache()
    # rb_p = rb_q = 1: no register blocking -- one chain per output vector
    desc = ConvKernelDesc(
        vlen=vlen,
        rb_p=1,
        rb_q=1,
        R=p.R,
        S=p.S,
        stride=p.stride,
        i_strides=(p.Hp * p.Wp * vlen, p.Wp * vlen, vlen),
        w_strides=(p.R * p.S * vlen * vlen, p.S * vlen * vlen, vlen * vlen, vlen),
        o_strides=(p.Q * vlen, vlen),
        cb_unroll=1,
        zero_init=False,
        hoist_output=False,
        fused_memop=False,
        use_4fma=False,  # the compiler does not emit 4FMA sequences
        dtype=dtype,
    )
    prog = cache.get(desc, generate_conv_kernel)
    kt = time_kernel(prog, m, call_overhead=10.0)
    cb = p.C // vlen
    kb = p.K // vlen
    calls = p.N * kb * cb * p.P * p.Q
    cycles_per_flop = kt.cycles / prog.flops
    # peel/remainder scalar code, no unrolling, and store-to-load stalls on
    # the per-tap output round-trips: ~1.8x over the idealized µop stream
    t_comp = p.flops / t * cycles_per_flop / m.freq_hz * 1.8

    plan = choose_blocking(p, m, dtype)
    traffic = forward_traffic(p, plan, m, t, dtype)
    # output re-accumulated through memory per tap and per c_b iteration
    extra_o = (p.R * p.S * cb - 1) * p.N * p.K * p.P * p.Q * 4
    parts = {
        "compute": t_comp,
        "l2_read": (traffic.l2_read + extra_o) / t / m.l2_read_bw,
        "l2_write": (traffic.l2_write + extra_o) / t / m.l2_write_bw,
        "mem_read": (traffic.mem_read + (0 if m.llc_bytes else traffic.llc_read))
        / m.mem_read_bw,
        "mem_write": traffic.mem_write / m.mem_write_bw,
    }
    if m.llc_bytes:
        parts["llc_read"] = traffic.llc_read / t / m.llc_bw
        parts["llc_write"] = traffic.llc_write / t / m.llc_bw
    time_s, bound = combine_parts(parts, m.overlap_alpha)
    return LayerPerf(
        params=p,
        machine=m.name,
        impl="autovec",
        pass_=Pass.FWD,
        dtype=dtype,
        time_s=time_s,
        flops=p.flops,
        bound=bound,
        parts=parts,
        notes={"efficiency": p.flops / time_s / (m.peak_flops_core * t)},
    )
