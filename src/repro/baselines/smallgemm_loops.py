"""Blocked direct-conv loops with small-GEMM microkernels ("libxsmm"/"blas").

This is the paper's strongest baseline pair: the *same* blocked loop
structure as this work, but the innermost kernel is a generic small GEMM
``O'[: , :] += W'[r,s] x I'[r,s]`` per filter tap.  A batched-GEMM interface
cannot express the two section II-D optimizations:

(a) hoisting the output block's loads/stores out of the ``r, s`` loops --
    every tap re-loads and re-stores the C matrix (R*S-fold output traffic,
    plus store-to-load forwarding stalls between dependent GEMMs);
(b) pixel blocking over rows when ``Q`` is shorter than the FMA-latency
    window -- short-row layers run latency-exposed.

The "blas" variant additionally pays MKL's fixed per-call dispatch overhead,
which [14] measured in the thousands of cycles for tall-and-skinny shapes --
this is what buries the 7x7-spatial layers (the up-to-9x cases of Fig. 4).
"""

from __future__ import annotations

import numpy as np

from repro.arch.machine import MachineConfig
from repro.conv.params import ConvParams
from repro.conv.reference import pad_input
from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.jit.kernel_cache import get_default_cache
from repro.jit.timing import time_kernel
from repro.perf.model import LayerPerf, combine_parts
from repro.perf.traffic import forward_traffic
from repro.conv.blocking import choose_blocking
from repro.types import DType, Pass

__all__ = ["smallgemm_forward", "estimate_smallgemm"]

#: per-small-GEMM dispatch overhead in cycles ([14]: statically-tuned BLAS
#: pays a large fixed cost per call; a JIT'ed kernel pointer costs almost
#: nothing)
CALL_OVERHEAD = {"libxsmm": 80.0, "blas": 700.0}


def smallgemm_forward(
    x: np.ndarray, w: np.ndarray, p: ConvParams, vlen: int = 16
) -> np.ndarray:
    """Functional baseline: blocked loops, one small GEMM per ``(r, s)`` tap,
    output re-accumulated through memory each tap (no hoisting)."""
    xp = pad_input(x, p)
    out = np.zeros((p.N, p.K, p.P, p.Q), dtype=np.float32)
    kb = max(1, p.K // vlen)
    cb = max(1, p.C // vlen)
    kw = p.K // kb
    cw = p.C // cb
    for n in range(p.N):
        for kbi in range(kb):
            ks = slice(kbi * kw, (kbi + 1) * kw)
            for cbi in range(cb):
                cs = slice(cbi * cw, (cbi + 1) * cw)
                for oj in range(p.P):
                    ij = oj * p.stride
                    for r in range(p.R):
                        for s in range(p.S):
                            # small GEMM: (kw x cw) @ (cw x Q)
                            a = w[ks, cs, r, s]
                            b = xp[n, cs, ij + r, s : s + p.stride * p.Q : p.stride]
                            out[n, ks, oj, :] += a @ b
    return out


def estimate_smallgemm(
    p: ConvParams,
    machine: MachineConfig,
    variant: str = "libxsmm",
    threads: int | None = None,
    dtype: DType = DType.F32,
) -> LayerPerf:
    """Performance model for the "libxsmm" and "blas" baselines."""
    assert variant in CALL_OVERHEAD
    m = machine
    t = threads or m.cores
    cache = get_default_cache()
    vlen = m.vlen(dtype)

    # one small GEMM per (n, k_b, c_b, oj, r, s): M=VLEN, N=Q, K=VLEN,
    # realized as the un-hoisted kernel (hoist_output=False) so the µop
    # stream carries the per-tap O loads/stores.
    plan = choose_blocking(p, m, dtype)
    desc = ConvKernelDesc(
        vlen=vlen,
        rb_p=1,
        rb_q=plan.rb_q,
        R=p.R,
        S=p.S,
        stride=p.stride,
        i_strides=(p.Hp * p.Wp * vlen, p.Wp * vlen, vlen),
        w_strides=(p.R * p.S * vlen * vlen, p.S * vlen * vlen, vlen * vlen, vlen),
        o_strides=(p.Q * vlen, vlen),
        cb_unroll=1,
        zero_init=False,  # GEMM beta=1: always load C
        hoist_output=False,  # the defining deficit (section II-D)
        fused_memop=False,
        use_4fma=m.has_4fma,
        dtype=dtype,
    )
    prog = cache.get(desc, generate_conv_kernel)
    overhead = CALL_OVERHEAD[variant]
    # each (r, s) tap is a separate GEMM call for the dispatch overhead
    kt = time_kernel(prog, m, call_overhead=0.0)
    cb = p.C // vlen
    kb = p.K // vlen
    pb = -(-p.P // 1)
    qb = -(-p.Q // plan.rb_q)
    blocks = p.N * kb * cb * pb * qb
    gemm_calls = blocks * p.R * p.S
    cycles_per_flop = kt.cycles / prog.flops
    t_comp = (
        p.flops / t * cycles_per_flop + gemm_calls / t * overhead
    ) / m.freq_hz

    traffic = forward_traffic(p, plan, m, t, dtype)
    # un-hoisted output: a batched-GEMM interface reduces into C through
    # memory (beta=1), so the O block crosses L1<->L2 once per tap AND per
    # c_b -- it can never stay in registers across the reduction
    extra_o = (p.R * p.S * cb - 1) * p.N * p.K * p.P * p.Q * 4
    parts = {
        "compute": t_comp,
        "l2_read": (traffic.l2_read + extra_o) / t / m.l2_read_bw,
        "l2_write": (traffic.l2_write + extra_o) / t / m.l2_write_bw,
        "mem_read": (traffic.mem_read + traffic.llc_read * (0 if m.llc_bytes else 1))
        / m.mem_read_bw,
        "mem_write": traffic.mem_write / m.mem_write_bw,
    }
    if m.llc_bytes:
        parts["llc_read"] = traffic.llc_read / t / m.llc_bw
        parts["llc_write"] = traffic.llc_write / t / m.llc_bw
    time_s, bound = combine_parts(parts, m.overlap_alpha)
    return LayerPerf(
        params=p,
        machine=m.name,
        impl=variant,
        pass_=Pass.FWD,
        dtype=dtype,
        time_s=time_s,
        flops=p.flops,
        bound=bound,
        parts=parts,
        notes={
            "gemm_calls": gemm_calls,
            "efficiency": p.flops / time_s / (m.peak_flops_core * t),
        },
    )
