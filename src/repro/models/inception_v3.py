"""Inception-v3 [21] convolution layers.

The paper reports only topology-average GFLOPS for Inception-v3 (sections
III-A/III-B), so this module enumerates the network's convolution shapes
(with occurrence counts) rather than assigning figure ids.  Shapes follow
the canonical 299x299 Inception-v3: the stem, three 35x35 Inception-A
blocks, the grid reduction, four 17x17 Inception-B blocks with factorized
7x1/1x7 convolutions, the second reduction, and two 8x8 Inception-C blocks
with 3x1/1x3 branches.

Channel counts that are not VLEN multiples (the C=3 stem input, the 35- and
80-channel stem intermediates) are padded to the next vector block, as in
:mod:`repro.models.resnet50`.
"""

from __future__ import annotations

from repro.conv.params import ConvParams

__all__ = ["INCEPTION_V3_CONVS", "inception_v3_layers"]

#: (C, K, H, W, R, S, stride, pad_h, pad_w, count)
#: Derived from (and test-verified against) the compiled
#: :func:`inception_v3_topology` graph -- 94 convolutions in total.
INCEPTION_V3_CONVS: list[tuple[int, int, int, int, int, int, int, int, int, int]] = [
    # ---- stem -----------------------------------------------------------
    (3, 32, 299, 299, 3, 3, 2, 0, 0, 1),
    (32, 32, 149, 149, 3, 3, 1, 0, 0, 1),
    (32, 64, 147, 147, 3, 3, 1, 1, 1, 1),
    (64, 80, 73, 73, 1, 1, 1, 0, 0, 1),
    (80, 192, 73, 73, 3, 3, 1, 0, 0, 1),
    # ---- Inception-A x3 + reduction-A (35x35) -----------------------------
    (192, 64, 35, 35, 1, 1, 1, 0, 0, 2),
    (192, 48, 35, 35, 1, 1, 1, 0, 0, 1),
    (48, 64, 35, 35, 5, 5, 1, 2, 2, 3),
    (64, 96, 35, 35, 3, 3, 1, 1, 1, 4),
    (96, 96, 35, 35, 3, 3, 1, 1, 1, 3),
    (192, 32, 35, 35, 1, 1, 1, 0, 0, 1),
    (256, 64, 35, 35, 1, 1, 1, 0, 0, 3),
    (256, 48, 35, 35, 1, 1, 1, 0, 0, 1),
    (288, 64, 35, 35, 1, 1, 1, 0, 0, 4),
    (288, 48, 35, 35, 1, 1, 1, 0, 0, 1),
    (288, 384, 35, 35, 3, 3, 2, 0, 0, 1),
    (96, 96, 35, 35, 3, 3, 2, 0, 0, 1),
    # ---- Inception-B x4 + reduction-B (17x17, factorized 7x1/1x7) ---------
    (768, 192, 17, 17, 1, 1, 1, 0, 0, 12),
    (768, 128, 17, 17, 1, 1, 1, 0, 0, 2),
    (128, 128, 17, 17, 1, 7, 1, 0, 3, 2),
    (128, 192, 17, 17, 7, 1, 1, 3, 0, 1),
    (128, 128, 17, 17, 7, 1, 1, 3, 0, 2),
    (128, 192, 17, 17, 1, 7, 1, 0, 3, 1),
    (768, 160, 17, 17, 1, 1, 1, 0, 0, 4),
    (160, 160, 17, 17, 1, 7, 1, 0, 3, 4),
    (160, 192, 17, 17, 7, 1, 1, 3, 0, 2),
    (160, 160, 17, 17, 7, 1, 1, 3, 0, 4),
    (160, 192, 17, 17, 1, 7, 1, 0, 3, 2),
    (192, 192, 17, 17, 1, 7, 1, 0, 3, 4),
    (192, 192, 17, 17, 7, 1, 1, 3, 0, 4),
    (192, 320, 17, 17, 3, 3, 2, 0, 0, 1),
    (192, 192, 17, 17, 3, 3, 2, 0, 0, 1),
    # ---- Inception-C x2 (8x8, 1x3/3x1 branches) ---------------------------
    (1280, 320, 8, 8, 1, 1, 1, 0, 0, 1),
    (1280, 384, 8, 8, 1, 1, 1, 0, 0, 1),
    (384, 384, 8, 8, 1, 3, 1, 0, 1, 4),
    (384, 384, 8, 8, 3, 1, 1, 1, 0, 4),
    (1280, 448, 8, 8, 1, 1, 1, 0, 0, 1),
    (448, 384, 8, 8, 3, 3, 1, 1, 1, 2),
    (1280, 192, 8, 8, 1, 1, 1, 0, 0, 1),
    (2048, 320, 8, 8, 1, 1, 1, 0, 0, 1),
    (2048, 384, 8, 8, 1, 1, 1, 0, 0, 1),
    (2048, 448, 8, 8, 1, 1, 1, 0, 0, 1),
    (2048, 192, 8, 8, 1, 1, 1, 0, 0, 1),
]



def inception_v3_layers(
    minibatch: int = 28, pad_channels_to: int = 16
) -> list[tuple[ConvParams, int]]:
    """All Inception-v3 convolutions as ``(params, occurrence_count)``."""
    out: list[tuple[ConvParams, int]] = []
    for c, k, h, w, r, s, stride, ph, pw, count in INCEPTION_V3_CONVS:
        pad = pad_channels_to
        c_pad = -(-c // pad) * pad
        k_pad = -(-k // pad) * pad
        out.append(
            (
                ConvParams(
                    N=minibatch, C=c_pad, K=k_pad, H=h, W=w, R=r, S=s,
                    stride=stride, pad_h=ph, pad_w=pw,
                ),
                count,
            )
        )
    return out


# ---------------------------------------------------------------------------
# Full GxM topology (used by tests to cross-validate INCEPTION_V3_CONVS and
# by the end-to-end estimator; functional training is feasible at miniature
# input sizes via `inception_mini_topology`).
# ---------------------------------------------------------------------------

from repro.gxm.topology import TopologySpec  # noqa: E402


def _cbr(topo, name, bottom, k, kernel, stride=1, pad=None):
    """conv + BN + ReLU, Inception's universal building block."""
    return topo.conv(
        name, bottom, k, kernel, stride=stride, pad=pad,
        relu=True, batchnorm=True,
    )


def _inception_a(topo, name, bottom, pool_proj):
    b1 = _cbr(topo, f"{name}_1x1", bottom, 64, 1)
    b2 = _cbr(topo, f"{name}_5x5_r", bottom, 48, 1)
    b2 = _cbr(topo, f"{name}_5x5", b2, 64, 5, pad=2)
    b3 = _cbr(topo, f"{name}_3x3_r", bottom, 64, 1)
    b3 = _cbr(topo, f"{name}_3x3a", b3, 96, 3, pad=1)
    b3 = _cbr(topo, f"{name}_3x3b", b3, 96, 3, pad=1)
    b4 = topo.avg_pool(f"{name}_pool", bottom, 3, 1, pad=1)
    b4 = _cbr(topo, f"{name}_proj", b4, pool_proj, 1)
    return topo.concat(f"{name}_out", [b1, b2, b3, b4])


def _reduction_a(topo, name, bottom):
    b1 = _cbr(topo, f"{name}_3x3", bottom, 384, 3, stride=2, pad=0)
    b2 = _cbr(topo, f"{name}_dbl_r", bottom, 64, 1)
    b2 = _cbr(topo, f"{name}_dbl_a", b2, 96, 3, pad=1)
    b2 = _cbr(topo, f"{name}_dbl_b", b2, 96, 3, stride=2, pad=0)
    b3 = topo.pool(f"{name}_pool", bottom, 3, 2)
    return topo.concat(f"{name}_out", [b1, b2, b3])


def _inception_b(topo, name, bottom, c7):
    b1 = _cbr(topo, f"{name}_1x1", bottom, 192, 1)
    b2 = _cbr(topo, f"{name}_7x7_r", bottom, c7, 1)
    b2 = _cbr(topo, f"{name}_1x7", b2, c7, (1, 7))
    b2 = _cbr(topo, f"{name}_7x1", b2, 192, (7, 1))
    b3 = _cbr(topo, f"{name}_dbl_r", bottom, c7, 1)
    b3 = _cbr(topo, f"{name}_dbl_7x1a", b3, c7, (7, 1))
    b3 = _cbr(topo, f"{name}_dbl_1x7a", b3, c7, (1, 7))
    b3 = _cbr(topo, f"{name}_dbl_7x1b", b3, c7, (7, 1))
    b3 = _cbr(topo, f"{name}_dbl_1x7b", b3, 192, (1, 7))
    b4 = topo.avg_pool(f"{name}_pool", bottom, 3, 1, pad=1)
    b4 = _cbr(topo, f"{name}_proj", b4, 192, 1)
    return topo.concat(f"{name}_out", [b1, b2, b3, b4])


def _reduction_b(topo, name, bottom):
    b1 = _cbr(topo, f"{name}_3x3_r", bottom, 192, 1)
    b1 = _cbr(topo, f"{name}_3x3", b1, 320, 3, stride=2, pad=0)
    b2 = _cbr(topo, f"{name}_7x7_r", bottom, 192, 1)
    b2 = _cbr(topo, f"{name}_1x7", b2, 192, (1, 7))
    b2 = _cbr(topo, f"{name}_7x1", b2, 192, (7, 1))
    b2 = _cbr(topo, f"{name}_3x3b", b2, 192, 3, stride=2, pad=0)
    b3 = topo.pool(f"{name}_pool", bottom, 3, 2)
    return topo.concat(f"{name}_out", [b1, b2, b3])


def _inception_c(topo, name, bottom):
    b1 = _cbr(topo, f"{name}_1x1", bottom, 320, 1)
    b2 = _cbr(topo, f"{name}_3x3_r", bottom, 384, 1)
    b2a = _cbr(topo, f"{name}_1x3", b2, 384, (1, 3))
    b2b = _cbr(topo, f"{name}_3x1", b2, 384, (3, 1))
    b3 = _cbr(topo, f"{name}_dbl_r", bottom, 448, 1)
    b3 = _cbr(topo, f"{name}_dbl_3x3", b3, 384, 3, pad=1)
    b3a = _cbr(topo, f"{name}_dbl_1x3", b3, 384, (1, 3))
    b3b = _cbr(topo, f"{name}_dbl_3x1", b3, 384, (3, 1))
    b4 = topo.avg_pool(f"{name}_pool", bottom, 3, 1, pad=1)
    b4 = _cbr(topo, f"{name}_proj", b4, 192, 1)
    return topo.concat(f"{name}_out", [b1, b2a, b2b, b3a, b3b, b4])


def inception_v3_topology(num_classes: int = 1000) -> TopologySpec:
    """The full Inception-v3 [21] network as a GxM topology (299x299)."""
    topo = TopologySpec("inception_v3")
    t = topo.data("data")
    t = _cbr(topo, "conv1", t, 32, 3, stride=2, pad=0)     # 149
    t = _cbr(topo, "conv2", t, 32, 3, pad=0)               # 147
    t = _cbr(topo, "conv3", t, 64, 3, pad=1)               # 147
    t = topo.pool("pool1", t, 3, 2)                        # 73
    t = _cbr(topo, "conv4", t, 80, 1, pad=0)
    t = _cbr(topo, "conv5", t, 192, 3, pad=0)              # 71
    t = topo.pool("pool2", t, 3, 2)                        # 35
    t = _inception_a(topo, "mixed0", t, pool_proj=32)      # 256
    t = _inception_a(topo, "mixed1", t, pool_proj=64)      # 288
    t = _inception_a(topo, "mixed2", t, pool_proj=64)      # 288
    t = _reduction_a(topo, "mixed3", t)                    # 17x17x768
    for i, c7 in enumerate((128, 160, 160, 192)):
        t = _inception_b(topo, f"mixed{4 + i}", t, c7)
    t = _reduction_b(topo, "mixed8", t)                    # 8x8x1280
    t = _inception_c(topo, "mixed9", t)                    # 2048
    t = _inception_c(topo, "mixed10", t)                   # 2048
    t = topo.global_pool("gap", t)
    t = topo.fc("fc", t, num_classes)
    topo.loss("loss", t)
    return topo


def inception_mini_topology(
    num_classes: int = 8, width: int = 16
) -> TopologySpec:
    """A miniature with the same block types (A + reduction + concat) for
    tractable functional training in the tests/examples.

    ``width`` scales every feature-map count (branches are ``width // 2``);
    ``width=32`` makes all of them VLEN=16-aligned for the blocked engines.
    """
    half = width // 2
    topo = TopologySpec("inception-mini")
    t = topo.data("data")
    t = _cbr(topo, "stem", t, width, 3, pad=1)
    b1 = _cbr(topo, "m_1x1", t, half, 1)
    b2 = _cbr(topo, "m_3x3_r", t, half, 1)
    b2 = _cbr(topo, "m_3x3", b2, half, 3, pad=1)
    b3 = topo.avg_pool("m_pool", t, 3, 1, pad=1)
    b3 = _cbr(topo, "m_proj", b3, half, 1)
    t = topo.concat("m_out", [b1, b2, b3])
    t = _cbr(topo, "red", t, 2 * width, 3, stride=2, pad=0)
    t = topo.global_pool("gap", t)
    t = topo.fc("fc", t, num_classes)
    topo.loss("loss", t)
    return topo
