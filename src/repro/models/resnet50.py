"""ResNet-50 convolution layers (Table I) and occurrence counts.

Table I lists the 20 *distinct* convolution shapes of ResNet-50 [17]; the
kernel benchmarks (Figs. 4-8) are indexed by these ids.  The paper used
minibatch 28 on SKX and 70 on KNM.

Layer 1 has C=3 input channels, which is not a multiple of VLEN; like
LIBXSMM, the reproduction physically pads the channel dimension to one
vector block and reports efficiency against the *logical* (C=3) flops --
which is why the first layer cannot reach the efficiency of the interior
layers on any implementation.

``RESNET50_LAYER_COUNTS`` maps each Table-I id to how many times that shape
occurs in the full network -- needed to reconstruct end-to-end time (Fig. 9)
from per-layer kernel times.
"""

from __future__ import annotations

from repro.conv.params import ConvParams
from repro.gxm.topology import TopologySpec

__all__ = [
    "RESNET50_TABLE1",
    "RESNET50_LAYER_COUNTS",
    "resnet50_layer",
    "resnet50_layers",
    "resnet50_topology",
    "resnet_mini_topology",
]

#: Table I: id -> (C, K, H, W, R, S, stride)
RESNET50_TABLE1: dict[int, tuple[int, int, int, int, int, int, int]] = {
    1: (3, 64, 224, 224, 7, 7, 2),
    2: (64, 256, 56, 56, 1, 1, 1),
    3: (64, 64, 56, 56, 1, 1, 1),
    4: (64, 64, 56, 56, 3, 3, 1),
    5: (256, 64, 56, 56, 1, 1, 1),
    6: (256, 512, 56, 56, 1, 1, 2),
    7: (256, 128, 56, 56, 1, 1, 2),
    8: (128, 128, 28, 28, 3, 3, 1),
    9: (128, 512, 28, 28, 1, 1, 1),
    10: (512, 128, 28, 28, 1, 1, 1),
    11: (512, 1024, 28, 28, 1, 1, 2),
    12: (512, 256, 28, 28, 1, 1, 2),
    13: (256, 256, 14, 14, 3, 3, 1),
    14: (256, 1024, 14, 14, 1, 1, 1),
    15: (1024, 256, 14, 14, 1, 1, 1),
    16: (1024, 2048, 14, 14, 1, 1, 2),
    17: (1024, 512, 14, 14, 1, 1, 2),
    18: (512, 512, 7, 7, 3, 3, 1),
    19: (512, 2048, 7, 7, 1, 1, 1),
    20: (2048, 512, 7, 7, 1, 1, 1),
}

#: how often each distinct shape occurs in the full ResNet-50
#: (bottleneck blocks: conv2_x x3, conv3_x x4, conv4_x x6, conv5_x x3;
#: verified against the compiled resnet50_topology() in the tests)
RESNET50_LAYER_COUNTS: dict[int, int] = {
    1: 1,   # stem
    2: 4,   # 64->256 1x1: expand x3 + the conv2 shortcut projection
    3: 1,   # first conv2 reduce (64->64)
    4: 3,   # 3x3 in each conv2 block
    5: 2,   # 256->64 reduce in the later conv2 blocks
    6: 1,   # conv3 shortcut projection (256->512 /2)
    7: 1,   # conv3 first reduce (256->128 /2)
    8: 4,   # 3x3 in each conv3 block
    9: 4,   # 1x1 expand 128->512
    10: 3,  # reduce 512->128 in later conv3 blocks
    11: 1,  # conv4 shortcut projection
    12: 1,  # conv4 first reduce
    13: 6,  # 3x3 in each conv4 block
    14: 6,  # 1x1 expand 256->1024
    15: 5,  # reduce 1024->256 in later conv4 blocks
    16: 1,  # conv5 shortcut projection
    17: 1,  # conv5 first reduce
    18: 3,  # 3x3 in each conv5 block
    19: 3,  # 1x1 expand 512->2048
    20: 2,  # reduce 2048->512 in later conv5 blocks
}


def resnet50_layer(
    layer_id: int, minibatch: int = 28, pad_channels_to: int = 16
) -> ConvParams:
    """Table-I row as a :class:`ConvParams` (channels padded to VLEN)."""
    c, k, h, w, r, s, stride = RESNET50_TABLE1[layer_id]
    if c % pad_channels_to:
        c = -(-c // pad_channels_to) * pad_channels_to
    return ConvParams(N=minibatch, C=c, K=k, H=h, W=w, R=r, S=s, stride=stride)


def resnet50_layers(
    minibatch: int = 28, pad_channels_to: int = 16
) -> list[tuple[int, ConvParams]]:
    """All 20 Table-I layers in id order."""
    return [
        (i, resnet50_layer(i, minibatch, pad_channels_to))
        for i in sorted(RESNET50_TABLE1)
    ]


def _bottleneck(
    topo: TopologySpec, name: str, bottom: str, in_ch: int, mid: int,
    stride: int = 1,
) -> str:
    """One ResNet bottleneck block: 1x1 reduce, 3x3, 1x1 expand + shortcut."""
    out_ch = 4 * mid
    t = topo.conv(f"{name}_a", bottom, mid, 1, stride=stride, relu=True,
                  batchnorm=True)
    t = topo.conv(f"{name}_b", t, mid, 3, relu=True, batchnorm=True)
    t = topo.conv(f"{name}_c", t, out_ch, 1, batchnorm=True)
    if stride != 1 or in_ch != out_ch:
        sc = topo.conv(f"{name}_sc", bottom, out_ch, 1, stride=stride,
                       batchnorm=True)
    else:
        sc = bottom
    return topo.eltwise(f"{name}_sum", t, sc, relu=True)


def resnet50_topology(num_classes: int = 1000) -> TopologySpec:
    """The full ResNet-50 bottleneck topology as a GxM network list.

    Compiles through the Fig. 3 pipeline; a functional training step at
    small N is feasible (the "fast" engine), and the per-layer conv shapes
    reproduce Table I.
    """
    topo = TopologySpec("resnet50")
    t = topo.data("data")
    t = topo.conv("conv1", t, 64, 7, stride=2, pad=3, relu=True,
                  batchnorm=True)
    t = topo.pool("pool1", t, 3, 2, pad=1)  # 112 -> 56
    stages = [(3, 64, 1), (4, 128, 2), (6, 256, 2), (3, 512, 2)]
    in_ch = 64
    for si, (blocks, mid, first_stride) in enumerate(stages, start=2):
        for bi in range(blocks):
            stride = first_stride if bi == 0 else 1
            t = _bottleneck(topo, f"res{si}{chr(ord('a') + bi)}", t, in_ch,
                            mid, stride)
            in_ch = 4 * mid
    t = topo.global_pool("gap", t)
    t = topo.fc("fc1000", t, num_classes)
    topo.loss("loss", t)
    return topo


def resnet_mini_topology(
    num_classes: int = 8, width: int = 16
) -> TopologySpec:
    """A ResNet-style miniature (two bottleneck stages) for fast functional
    training on the synthetic dataset -- same node types and graph shape as
    the full network, tractable in pure numpy."""
    topo = TopologySpec("resnet-mini")
    t = topo.data("data")
    t = topo.conv("conv1", t, width, 3, relu=True, batchnorm=True)
    t = _bottleneck(topo, "res2a", t, width, width // 2 or 8, 1)
    t = _bottleneck(topo, "res3a", t, 2 * width, width, 2)
    t = topo.global_pool("gap", t)
    t = topo.fc("fc", t, num_classes)
    topo.loss("loss", t)
    return topo
