"""Network topologies evaluated in the paper.

* :mod:`repro.models.resnet50` -- Table I's 20 distinct convolution shapes
  plus the full ResNet-50 bottleneck topology for GxM.
* :mod:`repro.models.inception_v3` -- the Inception-v3 convolution set used
  for the section III average-GFLOPS comparisons.
"""

from repro.models.resnet50 import (
    RESNET50_TABLE1,
    resnet50_layer,
    resnet50_layers,
    RESNET50_LAYER_COUNTS,
)
from repro.models.inception_v3 import INCEPTION_V3_CONVS, inception_v3_layers

__all__ = [
    "RESNET50_TABLE1",
    "resnet50_layer",
    "resnet50_layers",
    "RESNET50_LAYER_COUNTS",
    "INCEPTION_V3_CONVS",
    "inception_v3_layers",
]
