"""Mapspace definition: every legal variant of one layer on one machine.

A *candidate* is a point in the blocking mapspace the JIT can actually
realize: register-block factors ``(RB_P, RB_Q)``, the L2 cache block over
output rows (``oj_block``, section II-C), the reduction-loop position
(``cb_outer`` vs the 1x1 ``cb_inner`` of section II-C) and the software
prefetch level (section II-E).  :func:`build_mapspace` enumerates the
feasible set under FactorFlow-style per-dimension constraints:

* **register budget** -- ``rb_p * rb_q`` accumulators must fit the vector
  register file (:func:`repro.conv.blocking.accumulator_budget`), and the
  pair should expose at least ``fma_ports * fma_latency`` independent
  chains (latency-hiding, section II-B) whenever the layer allows it;
* **divisibility / low waste** -- factors are preferred that divide the
  spatial extents; a non-divisor whose remainder exceeds half the block
  is pruned (it would spend most calls in tail variants, section II-H);
* **capacity** -- ``oj_block`` choices are multiples of ``rb_p`` whose
  working set (input rows + output rows + weight block) plausibly fits
  L2; the ladder brackets the paper's half-L2 heuristic from both sides.

Enumeration order is deterministic, so downstream rankings (and the
tuning-database digests built from them) are reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.arch.machine import MachineConfig
from repro.conv.blocking import (
    BlockingPlan,
    accumulator_budget,
    choose_blocking,
)
from repro.conv.params import ConvParams
from repro.types import CodegenError, DType

__all__ = ["Candidate", "Mapspace", "build_mapspace", "feasible_rb_pairs"]

#: software-prefetch levels the codegen understands (section II-E)
PREFETCH_MODES = ("both", "l2", "l1", "none")

#: oj_block ladder: powers of two over rb_p, bracketing the heuristic
_OJ_LADDER = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True, slots=True)
class Candidate:
    """One point of the mapspace -- everything the searcher varies."""

    rb_p: int
    rb_q: int
    oj_block: int
    loop_order: str  # "cb_outer" | "cb_inner"
    prefetch: str  # "none" | "l1" | "l2" | "both"

    def sort_key(self) -> tuple:
        """Total deterministic order over candidates (tie-breaking)."""
        return (
            self.rb_p,
            self.rb_q,
            self.oj_block,
            self.loop_order,
            self.prefetch,
        )

    def plan(self, p: ConvParams, machine: MachineConfig,
             dtype: DType = DType.F32) -> BlockingPlan:
        """Materialize this candidate as an engine-ready blocking plan."""
        vlen = machine.vlen(dtype)
        return BlockingPlan(
            vlen=vlen,
            rb_p=self.rb_p,
            rb_q=self.rb_q,
            rb_p_rem=p.P % self.rb_p if self.rb_p > 1 else 0,
            rb_q_rem=p.Q % self.rb_q,
            loop_order=self.loop_order,
            # cb_inner keeps the block in registers across the whole
            # reduction; cb_outer re-loads it per c_b, so hoisting pays
            hoist_output=self.loop_order == "cb_outer",
            oj_block=self.oj_block,
            acc_regs=self.rb_p * self.rb_q,
        )

    def describe(self) -> str:
        return (
            f"rb{self.rb_p}x{self.rb_q} oj{self.oj_block} "
            f"{self.loop_order} pf:{self.prefetch}"
        )


def feasible_rb_pairs(
    p: ConvParams,
    machine: MachineConfig,
    dtype: DType = DType.F32,
    max_waste: float = 0.5,
) -> list[tuple[int, int]]:
    """Feasible ``(rb_p, rb_q)`` register blockings, deterministic order.

    Shared between the mapspace and the legacy ``repro.jit.autotune``
    shim so both search the same space.  ``max_waste`` is the
    divisibility constraint: a factor whose remainder exceeds
    ``max_waste * factor`` is pruned unless it is the full extent.
    """
    budget = accumulator_budget(machine, dtype)
    pairs: list[tuple[int, int]] = []
    for rb_q in range(1, min(p.Q, budget) + 1):
        if p.Q % rb_q > rb_q * max_waste and rb_q != p.Q:
            continue
        for rb_p in range(1, min(p.P, budget // rb_q) + 1):
            if rb_p > 1 and p.P % rb_p > rb_p * max_waste and rb_p != p.P:
                continue
            pairs.append((rb_p, rb_q))
    return pairs


def _oj_blocks(p: ConvParams, machine: MachineConfig, vlen: int,
               rb_p: int) -> tuple[int, ...]:
    """Candidate L2 cache blocks over output rows for one ``rb_p``."""
    from repro.conv.blocking import _choose_oj_block

    out = {rb_p * m for m in _OJ_LADDER if rb_p * m <= max(p.P, rb_p)}
    out.add(_choose_oj_block(p, machine, vlen, rb_p))  # the paper's pick
    # the whole output plane (rounded up to rb_p) -- "no chunking"
    out.add(-(-p.P // rb_p) * rb_p)
    return tuple(sorted(out))


@dataclass(frozen=True)
class Mapspace:
    """The enumerated feasible set for one (layer, machine, dtype)."""

    params: ConvParams
    machine: MachineConfig
    dtype: DType
    rb_pairs: tuple[tuple[int, int], ...]
    oj_blocks: dict  # rb_p -> tuple of oj_block choices
    loop_orders: tuple[str, ...]
    prefetch_modes: tuple[str, ...]

    def __iter__(self) -> Iterator[Candidate]:
        return self.candidates()

    def candidates(self) -> Iterator[Candidate]:
        """All points, in a fixed deterministic order."""
        for rb_p, rb_q in self.rb_pairs:
            for oj in self.oj_blocks[rb_p]:
                for order in self.loop_orders:
                    for pf in self.prefetch_modes:
                        yield Candidate(rb_p, rb_q, oj, order, pf)

    @property
    def size(self) -> int:
        per_pair = len(self.loop_orders) * len(self.prefetch_modes)
        return sum(
            len(self.oj_blocks[rb_p]) * per_pair
            for rb_p, _ in self.rb_pairs
        )

    def heuristic_candidate(self) -> Candidate:
        """The paper's closed-form pick, expressed as a mapspace point."""
        plan = choose_blocking(
            self.params, self.machine, DType.F32,
            acc_budget_cap=accumulator_budget(self.machine, self.dtype),
        )
        # clamp into the legal space: e.g. the int16 engine cannot
        # schedule the cb_inner pick choose_blocking makes for 1x1 layers
        order = (plan.loop_order if plan.loop_order in self.loop_orders
                 else self.loop_orders[0])
        return Candidate(
            rb_p=plan.rb_p,
            rb_q=plan.rb_q,
            oj_block=plan.oj_block,
            loop_order=order,
            prefetch="both",
        )


def build_mapspace(
    p: ConvParams,
    machine: MachineConfig,
    dtype: DType = DType.F32,
    prefetch_modes: tuple[str, ...] = PREFETCH_MODES,
    max_waste: float = 0.5,
) -> Mapspace:
    """Enumerate the feasible mapspace of ``p`` on ``machine``.

    Raises :class:`~repro.types.CodegenError` for shapes the blocked
    engines cannot realize at all (feature maps not multiples of VLEN).
    """
    vlen = machine.vlen(dtype)
    if p.C % vlen or p.K % vlen:
        raise CodegenError(
            f"feature maps must be multiples of VLEN={vlen}: C={p.C}, K={p.K}"
        )
    for mode in prefetch_modes:
        if mode not in PREFETCH_MODES:
            raise CodegenError(
                f"unknown prefetch mode {mode!r}; expected one of "
                f"{PREFETCH_MODES}"
            )
    pairs = tuple(feasible_rb_pairs(p, machine, dtype, max_waste))
    oj = {rb_p: _oj_blocks(p, machine, vlen, rb_p)
          for rb_p in sorted({rp for rp, _ in pairs})}
    # cb_inner only pays (and is only generated) for 1x1 layers: the whole
    # C_b reduction unrolls into one kernel body (section II-C).  The int16
    # engine's split accumulator chains (section II-K) exist only in the
    # cb_outer schedule, so its mapspace excludes cb_inner entirely.
    orders = (
        ("cb_outer", "cb_inner")
        if p.is_1x1() and dtype is not DType.QI16F32
        else ("cb_outer",)
    )
    return Mapspace(
        params=p,
        machine=machine,
        dtype=dtype,
        rb_pairs=pairs,
        oj_blocks=oj,
        loop_orders=orders,
        prefetch_modes=tuple(prefetch_modes),
    )
