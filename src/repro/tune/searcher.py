"""Pruned mapspace search with empirical refinement and validation.

The pipeline of :func:`search_mapspace`:

1. **enumerate** the feasible mapspace (:func:`repro.tune.build_mapspace`
   -- register-budget + divisibility pruning keeps it small);
2. **price** every candidate on the analytical model
   (:func:`repro.tune.cost.price_candidate`); rank deterministically --
   cheapest modeled cycles first, ties broken on the candidate tuple;
3. **refine** the analytical top-k with the empirical evaluators: the
   µop-level kernel timing is already inside the pricing, so refinement
   adds the cachesim-measured L2->L1 stream (:func:`refine_cost`) and
   re-ranks the k finalists;
4. **validate** the winner bit-exactly against the µop interpreter on a
   one-sample probe problem; a candidate that fails validation (or whose
   output an armed ``tune.candidate`` fault corrupts) is *rejected* and
   the next finalist is tried -- the search continues, never crashes.

Only a validated winner is returned as ``best`` / recorded into a
:class:`~repro.tune.db.TuningDatabase`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.arch.machine import MachineConfig
from repro.conv.blocking import BlockingPlan
from repro.conv.params import ConvParams
from repro.jit.kernel_cache import KernelCache, get_default_cache
from repro.obs.metrics import get_metrics
from repro.resilience.faults import FaultInjector
from repro.tune.cost import CandidateCost, price_candidate, refine_cost
from repro.tune.db import TuneEntry, TuningDatabase
from repro.tune.mapspace import Candidate, Mapspace, build_mapspace
from repro.types import CodegenError, DType

__all__ = ["TuneOutcome", "search_mapspace", "validate_candidate",
           "tune_layer"]

#: probe minibatch for bit-exact validation -- plans are N-independent,
#: so one sample exercises every kernel variant the plan generates
_PROBE_N = 1


def _probe_params(
    p: ConvParams, cand: Candidate, machine: MachineConfig, dtype: DType
) -> ConvParams:
    """The smallest problem that exercises every µop program and stream
    record the candidate generates on ``p``.

    Spatial extents stay (they decide the remainder variants and block
    boundaries); the minibatch shrinks to one sample and the feature-map
    counts to the fewest blocks with identical kernels: ``K`` to one
    output block (all ``k_b`` iterations replay the same program) and
    ``C`` to two blocks (one accumulation step over ``c_b`` plus the
    zero-init first step) -- except for ``cb_inner`` candidates, whose
    descriptor unrolls the *full* reduction (``cb_unroll = C/VLEN``), so
    ``C`` must be kept.  This turns interpreter validation of the large
    Table-I layers from tens of seconds into fractions of one without
    weakening what is checked bit-for-bit.
    """
    vlen = machine.vlen(dtype)
    c = p.C if cand.loop_order == "cb_inner" else min(p.C, 2 * vlen)
    return replace(p, N=_PROBE_N, C=c, K=vlen)


@dataclass
class TuneOutcome:
    """Everything one layer's search produced."""

    params: ConvParams
    machine: MachineConfig
    machine_fingerprint: str
    dtype: DType
    threads: int
    best: CandidateCost  # the validated winner
    heuristic: CandidateCost  # the paper's pick, priced identically
    ranking: list[CandidateCost]  # analytical order, deterministic
    candidates: int  # mapspace points priced
    validated: bool  # False only when validate=False was requested
    rejected: int  # finalists discarded by validation

    @property
    def plan(self) -> BlockingPlan:
        return self.best.candidate.plan(self.params, self.machine, self.dtype)

    @property
    def speedup(self) -> float:
        """Modeled heuristic/tuned cycles (>= 1.0: tuner won or tied)."""
        return (self.heuristic.cycles / self.best.cycles
                if self.best.cycles else 1.0)

    def entry(self) -> TuneEntry:
        cand = self.best.candidate
        return TuneEntry(
            vlen=self.plan.vlen,
            rb_p=cand.rb_p,
            rb_q=cand.rb_q,
            rb_p_rem=self.plan.rb_p_rem,
            rb_q_rem=self.plan.rb_q_rem,
            loop_order=cand.loop_order,
            hoist_output=self.plan.hoist_output,
            oj_block=cand.oj_block,
            acc_regs=cand.rb_p * cand.rb_q,
            prefetch=cand.prefetch,
            cycles=self.best.cycles,
            heuristic_cycles=self.heuristic.cycles,
            validated=self.validated,
        )


def validate_candidate(
    p: ConvParams,
    cand: Candidate,
    machine: MachineConfig,
    dtype: DType = DType.F32,
    kernel_cache: KernelCache | None = None,
    injector: FaultInjector | None = None,
    seed: int = 0,
) -> bool:
    """Bit-exact check of one candidate against the µop interpreter.

    Builds the real engine with the candidate's plan and prefetch mode
    on a one-sample probe, runs the compiled tier and the interpreter on
    identical blocked inputs, and compares raw output bytes.  An armed
    ``tune.candidate`` fault (kind ``corrupt_message``) scribbles the
    compiled output before the comparison -- the mechanism the fault
    tests use to prove a wrong candidate cannot enter the database.
    """
    from repro.tensor.blocked import block_activations, block_weights

    probe = _probe_params(p, cand, machine, dtype)
    plan = cand.plan(probe, machine, dtype)
    rng = np.random.default_rng(seed + 17 * cand.rb_p + cand.rb_q)
    x = rng.standard_normal(
        (probe.N, probe.C, probe.H, probe.W)).astype(np.float32)
    w = rng.standard_normal(
        (probe.K, probe.C, probe.R, probe.S)).astype(np.float32)

    if dtype is DType.QI16F32:
        from repro.quant.qconv_engine import QuantConvForward
        from repro.quant.qtensor import quantize

        eng = QuantConvForward(
            probe, machine, threads=1, plan=plan, prefetch=cand.prefetch,
            kernel_cache=kernel_cache, execution_tier="compiled",
        )
        # narrow operands: tier equivalence is width-independent, and
        # 12-bit products can never overflow the int32 accumulator chain
        qx, qw = quantize(x, bits=12), quantize(w, bits=12)
        eng._scale = qx.scale * qw.scale
        bx = block_activations(
            qx.data.reshape(probe.N, probe.C, probe.H, probe.W),
            plan.vlen, pad_h=probe.pad_h, pad_w=probe.pad_w, dtype=np.int16,
        )
        bw = block_weights(
            qw.data.reshape(probe.K, probe.C, probe.R, probe.S),
            plan.vlen, dtype=np.int16,
        )
    else:
        from repro.conv.forward import DirectConvForward

        eng = DirectConvForward(
            probe, machine, dtype=dtype, threads=1, plan=plan,
            prefetch=cand.prefetch, kernel_cache=kernel_cache,
            execution_tier="compiled",
        )
        bx = block_activations(
            x, plan.vlen, pad_h=probe.pad_h, pad_w=probe.pad_w,
            dtype=dtype.np_input,
        )
        bw = block_weights(w, plan.vlen, dtype=dtype.np_input)

    got = eng(bx, bw)
    if injector is not None:
        spec = injector.fire("tune.candidate")
        if spec is not None and spec.kind == "corrupt_message":
            # deterministic scribble over the compiled output: the
            # validator below must catch this and reject the candidate
            flat = got.data
            flat[: max(1, flat.size // 7)] += 1.0
    want = eng.execute_uops(bx, bw)
    return got.data.tobytes() == want.data.tobytes()


def search_mapspace(
    p: ConvParams,
    machine: MachineConfig,
    dtype: DType = DType.F32,
    threads: int = 1,
    top_k: int = 8,
    refine: bool = True,
    validate: bool = True,
    injector: FaultInjector | None = None,
    kernel_cache: KernelCache | None = None,
    max_candidates: int | None = None,
    mapspace: Mapspace | None = None,
) -> TuneOutcome:
    """Search the full mapspace of ``p`` on ``machine``; return the
    cheapest *validated* candidate plus the complete deterministic
    ranking.

    ``max_candidates`` truncates the enumeration (CI smoke); ``refine``
    toggles the cachesim top-k refinement; ``validate=False`` skips the
    interpreter check (the outcome is then not recordable into a DB).
    """
    metrics = get_metrics()
    cache = kernel_cache if kernel_cache is not None else get_default_cache()
    space = mapspace if mapspace is not None else build_mapspace(
        p, machine, dtype)

    costs: list[CandidateCost] = []
    for i, cand in enumerate(space.candidates()):
        if max_candidates is not None and i >= max_candidates:
            break
        try:
            costs.append(
                price_candidate(p, cand, machine, dtype, threads, cache))
        except CodegenError:
            continue  # infeasible point (e.g. unroll limits); skip
    if not costs:
        raise CodegenError(f"no feasible mapspace point for {p.describe()}")
    costs.sort(key=CandidateCost.sort_key)
    metrics.inc("tune.candidates_priced", len(costs))

    # the paper's heuristic, priced with the identical model -- both the
    # win-rate report and the fallback guarantee hang off this
    heur_cost = price_candidate(
        p, space.heuristic_candidate(), machine, dtype, threads, cache)

    # the heuristic always rides through the finalist stage so tuned and
    # heuristic are compared at the same model fidelity (and the winner
    # can never price worse than it)
    finalists = costs[: max(1, top_k)]
    if all(c.candidate != heur_cost.candidate for c in finalists):
        finalists.append(heur_cost)
    if refine:
        refined = [
            refine_cost(p, c, machine, dtype, threads, cache)
            for c in finalists
        ]
        refined.sort(key=CandidateCost.sort_key)
        finalists = refined
        metrics.inc("tune.candidates_refined", len(refined))
    for c in finalists:
        if c.candidate == heur_cost.candidate:
            heur_cost = c
            break

    rejected = 0
    best: CandidateCost | None = None
    if validate:
        for cost in finalists:
            if validate_candidate(
                p, cost.candidate, machine, dtype, cache, injector,
            ):
                best = cost
                break
            rejected += 1
            metrics.inc("tune.candidates_rejected")
        if best is None:
            # every finalist failed (pathological injector plans): fall
            # back to the validated heuristic rather than dying
            if not validate_candidate(
                p, heur_cost.candidate, machine, dtype, cache, injector,
            ):
                raise CodegenError(
                    f"tuning validation failed for every finalist and the "
                    f"heuristic of {p.describe()}"
                )
            best = heur_cost
    else:
        best = finalists[0]

    metrics.inc("tune.layers_tuned")
    return TuneOutcome(
        params=p,
        machine=machine,
        machine_fingerprint=machine.fingerprint(),
        dtype=dtype,
        threads=threads,
        best=best,
        heuristic=heur_cost,
        ranking=costs,
        candidates=len(costs),
        validated=validate,
        rejected=rejected,
    )


def tune_layer(
    p: ConvParams,
    machine: MachineConfig,
    db: TuningDatabase,
    dtype: DType = DType.F32,
    threads: int = 1,
    **kwargs,
) -> TuneOutcome:
    """Search one layer and record the validated winner into ``db``."""
    outcome = search_mapspace(
        p, machine, dtype=dtype, threads=threads, **kwargs)
    db.record(p, machine, dtype, outcome.entry())
    return outcome
