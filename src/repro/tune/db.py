"""The persistent tuning database.

Winning, interpreter-validated candidates are stored in an atomic JSON
artifact keyed by ``(machine fingerprint, dtype, layer shape)`` -- the
minibatch is deliberately *not* part of the key because a blocking plan
is N-independent (the N loop sits outside everything the plan decides).

File format (``repro.tune/v1``)::

    {
      "format":  "repro.tune/v1",
      "version": 1,
      "digest":  "<sha256 over the canonical entries json>",
      "entries": {
        "<machine-fp>/<dtype>/<layer-key>": {
          "rb_p": 2, "rb_q": 14, ... , "prefetch": "both",
          "cycles": ..., "heuristic_cycles": ..., "validated": true
        }
      }
    }

Writes go through a same-directory temp file + ``os.replace`` (atomic on
POSIX), the pattern used by the checkpoint and stream-bundle writers.
Loads verify the digest; a corrupt, truncated or foreign-format file
raises :class:`TuningDBError` -- a
:class:`~repro.streams.serialize.StaleArtifactError` subtype, so every
caller that already catch-and-falls-back on stale stream artifacts
(serve boot, ``make_engine``) treats a bad tuning DB the same way:
heuristics, not a crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass

from repro.arch.machine import MachineConfig
from repro.conv.blocking import BlockingPlan
from repro.conv.params import ConvParams
from repro.streams.serialize import StaleArtifactError
from repro.types import DType

__all__ = [
    "TuningDBError",
    "TuneEntry",
    "TuningDatabase",
    "layer_key",
    "entry_key",
    "get_default_db",
    "set_default_db",
    "resolve_db",
]

FORMAT = "repro.tune/v1"
VERSION = 1

_PLAN_FIELDS = (
    "vlen", "rb_p", "rb_q", "rb_p_rem", "rb_q_rem",
    "loop_order", "hoist_output", "oj_block", "acc_regs",
)


class TuningDBError(StaleArtifactError):
    """The tuning database is unusable -- unreadable, corrupt (digest
    mismatch), truncated, or from a different format version.  A
    :class:`StaleArtifactError` subtype so existing catch-and-fallback
    paths degrade to the paper heuristics without string matching."""


def layer_key(p: ConvParams) -> str:
    """Shape key of one layer, minibatch-independent."""
    return (
        f"C{p.C}K{p.K}H{p.H}W{p.W}R{p.R}S{p.S}"
        f"st{p.stride}ph{p.pad_h}pw{p.pad_w}"
    )


def entry_key(p: ConvParams, machine: MachineConfig, dtype: DType) -> str:
    return f"{machine.fingerprint()}/{dtype.value}/{layer_key(p)}"


@dataclass(frozen=True, slots=True)
class TuneEntry:
    """One stored winner: the plan plus its provenance."""

    vlen: int
    rb_p: int
    rb_q: int
    rb_p_rem: int
    rb_q_rem: int
    loop_order: str
    hoist_output: bool
    oj_block: int
    acc_regs: int
    prefetch: str
    cycles: float  # modeled cycles of the tuned candidate
    heuristic_cycles: float  # modeled cycles of the paper heuristic
    validated: bool  # bit-exact vs the interpreter (always True in a DB)

    def plan(self) -> BlockingPlan:
        return BlockingPlan(**{f: getattr(self, f) for f in _PLAN_FIELDS})

    @property
    def speedup(self) -> float:
        """Modeled heuristic/tuned ratio (>= 1.0 means the tuner won)."""
        return self.heuristic_cycles / self.cycles if self.cycles else 1.0

    def to_doc(self) -> dict:
        return {
            **{f: getattr(self, f) for f in _PLAN_FIELDS},
            "prefetch": self.prefetch,
            "cycles": self.cycles,
            "heuristic_cycles": self.heuristic_cycles,
            "validated": self.validated,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "TuneEntry":
        try:
            return cls(
                **{f: doc[f] for f in _PLAN_FIELDS},
                prefetch=doc["prefetch"],
                cycles=doc["cycles"],
                heuristic_cycles=doc["heuristic_cycles"],
                validated=doc["validated"],
            )
        except (KeyError, TypeError) as exc:
            raise TuningDBError(f"malformed tuning-db entry: {exc}") from exc


def _entries_digest(entries: dict[str, dict]) -> str:
    canon = json.dumps(entries, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


class TuningDatabase:
    """In-memory view of one tuning-DB artifact, with atomic persistence."""

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._entries: dict[str, dict] = {}
        self._lock = threading.Lock()

    # -- persistence ---------------------------------------------------
    @classmethod
    def load(cls, path: str | os.PathLike) -> "TuningDatabase":
        """Load and digest-verify an artifact.

        Raises :class:`FileNotFoundError` when there is no file (callers
        distinguish "never tuned" from "tuned but rotten") and
        :class:`TuningDBError` for anything unusable.
        """
        path = os.fspath(path)
        with open(path, "rb") as fh:
            raw = fh.read()
        try:
            doc = json.loads(raw)
        except (ValueError, UnicodeDecodeError) as exc:
            raise TuningDBError(
                f"tuning db {path!r} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(doc, dict) or doc.get("format") != FORMAT:
            raise TuningDBError(
                f"tuning db {path!r}: unknown format "
                f"{doc.get('format') if isinstance(doc, dict) else type(doc)}"
            )
        if doc.get("version") != VERSION:
            raise TuningDBError(
                f"tuning db {path!r}: version {doc.get('version')} != "
                f"{VERSION}"
            )
        entries = doc.get("entries")
        if not isinstance(entries, dict):
            raise TuningDBError(f"tuning db {path!r}: missing entries table")
        digest = _entries_digest(entries)
        if doc.get("digest") != digest:
            raise TuningDBError(
                f"tuning db {path!r}: content digest mismatch "
                f"(stored {doc.get('digest')!r})"
            )
        db = cls(path)
        # validate eagerly so a malformed entry fails at load, not lookup
        for key, entry in entries.items():
            TuneEntry.from_doc(entry)
            db._entries[key] = dict(entry)
        return db

    def save(self, path: str | os.PathLike | None = None) -> str:
        """Atomically persist: temp sibling + ``os.replace``."""
        path = os.fspath(path) if path is not None else self.path
        if path is None:
            raise TuningDBError("tuning db has no path to save to")
        with self._lock:
            entries = {k: dict(v) for k, v in sorted(self._entries.items())}
        doc = {
            "format": FORMAT,
            "version": VERSION,
            "digest": _entries_digest(entries),
            "entries": entries,
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.path = path
        return path

    # -- content -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[str]:
        return sorted(self._entries)

    def digest(self) -> str:
        """Content digest -- folded into serve fingerprints so warm
        artifacts go stale when the tuning DB changes underneath them."""
        with self._lock:
            entries = {k: dict(v) for k, v in sorted(self._entries.items())}
        return _entries_digest(entries)

    def lookup(
        self, p: ConvParams, machine: MachineConfig, dtype: DType
    ) -> TuneEntry | None:
        doc = self._entries.get(entry_key(p, machine, dtype))
        return TuneEntry.from_doc(doc) if doc is not None else None

    def record(
        self,
        p: ConvParams,
        machine: MachineConfig,
        dtype: DType,
        entry: TuneEntry,
    ) -> str:
        """Store one winner.  Refuses unvalidated entries: nothing enters
        the database without the bit-exact interpreter check."""
        if not entry.validated:
            raise TuningDBError(
                "refusing to record an unvalidated tuning entry for "
                f"{p.describe()}"
            )
        key = entry_key(p, machine, dtype)
        with self._lock:
            self._entries[key] = entry.to_doc()
        return key


# -- process-wide default + resolution ---------------------------------
_default_db: TuningDatabase | None = None
_load_cache: dict[str, tuple[int, int, TuningDatabase]] = {}
_resolve_lock = threading.Lock()


def get_default_db() -> TuningDatabase | None:
    return _default_db


def set_default_db(
    db: TuningDatabase | str | os.PathLike | None,
) -> TuningDatabase | None:
    """Install the process-wide database ``make_engine(tuned=True)`` uses.

    Accepts an instance, a path (loaded now -- load errors propagate so
    misconfiguration is loud at setup time), or ``None`` to clear.
    Returns the installed instance.
    """
    global _default_db
    if db is None or isinstance(db, TuningDatabase):
        _default_db = db
    else:
        _default_db = TuningDatabase.load(db)
    return _default_db


def resolve_db(tuned) -> TuningDatabase | None:
    """Resolve a ``make_engine``-style ``tuned`` argument to a database.

    ``True`` -> the process default (may be ``None``); a
    :class:`TuningDatabase` -> itself; a path -> loaded, with an mtime/
    size-keyed cache so hot paths (serve boot over many buckets) parse
    the artifact once.  Raises :class:`FileNotFoundError` /
    :class:`TuningDBError` for missing/corrupt paths -- callers decide
    whether that falls back or aborts.
    """
    if tuned is None or tuned is False:
        return None
    if tuned is True:
        return _default_db
    if isinstance(tuned, TuningDatabase):
        return tuned
    path = os.fspath(tuned)
    st = os.stat(path)  # FileNotFoundError propagates
    with _resolve_lock:
        hit = _load_cache.get(path)
        if hit is not None and hit[0] == st.st_mtime_ns and hit[1] == st.st_size:
            return hit[2]
    db = TuningDatabase.load(path)
    with _resolve_lock:
        _load_cache[path] = (st.st_mtime_ns, st.st_size, db)
    return db
