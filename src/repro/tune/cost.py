"""Analytical + cachesim pricing of mapspace candidates.

Two evaluators, in increasing cost:

* :func:`price_candidate` -- the analytical model.  JIT-generates the
  candidate's exact microkernel, times its µop stream
  (:func:`repro.jit.timing.time_kernel`), runs the blocked-loop traffic
  analysis for the candidate's cache block and loop order
  (:func:`repro.perf.traffic.forward_traffic`), and combines the
  per-level resource times with the partial-overlap roofline
  (:func:`repro.perf.model.combine_parts`).  Microseconds per candidate;
  this prices the whole mapspace.
* :func:`refine_cost` -- the empirical step for the analytical top-k.
  Replays one kernel invocation through the µop interpreter with a
  :class:`repro.cachesim.CacheHierarchy` attached, replacing the modeled
  L2->L1 stream with *measured* per-invocation line fills (capacity and
  line-granularity effects the closed-form block geometry misses).

Prefetch is a real trade-off in both: the prefetch µops the candidate
requests occupy load ports inside ``time_kernel``, while the un-prefetched
share of beyond-L1 misses pays exposed latency
(:data:`PREFETCH_EXPOSURE`), mirroring the no-prefetch penalty of
:class:`repro.perf.model.ConvPerfModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.machine import MachineConfig
from repro.cachesim.hierarchy import CacheHierarchy, LevelTraffic
from repro.conv.blocking import BlockingPlan
from repro.conv.params import ConvParams
from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.jit.interpreter import execute_kernel
from repro.jit.kernel_cache import KernelCache, get_default_cache
from repro.jit.timing import time_kernel
from repro.perf.model import Q16_CHAIN_LIMIT, combine_parts
from repro.perf.traffic import forward_traffic
from repro.tune.mapspace import Candidate
from repro.types import DType

__all__ = ["CandidateCost", "price_candidate", "refine_cost",
           "candidate_desc", "PREFETCH_EXPOSURE"]

#: streams-replay per-call dispatch cycles (matches the perf model)
CALL_OVERHEAD = 30.0

#: fraction of the exposed-miss-latency penalty each software-prefetch
#: level leaves unhidden.  PREFETCH1 fills L1+L2 (section II-E) so "l1"
#: hides nearly everything; "l2" leaves the L1-miss/L2-hit latency;
#: "none" pays the full penalty (about 8 outstanding misses hide the
#: rest, as in the perf model's no-prefetch estimate).
PREFETCH_EXPOSURE = {"both": 0.0, "l1": 0.25, "l2": 0.4, "none": 1.0}


@dataclass
class CandidateCost:
    """Priced execution of one candidate on one machine."""

    candidate: Candidate
    time_s: float  # modeled wall-clock of one full layer pass
    cycles: float  # time_s * freq -- the ranking objective
    cycles_per_flop: float  # steady-state main-variant kernel rate
    bound: str  # binding resource ("compute", "l2_read", ...)
    parts: dict[str, float] = field(default_factory=dict)
    refined: bool = False  # cachesim-measured L2->L1 stream?

    def sort_key(self) -> tuple:
        """Deterministic ranking key: cheapest first, stable tie-break."""
        return (self.cycles,) + self.candidate.sort_key()


def candidate_desc(
    p: ConvParams,
    cand: Candidate,
    machine: MachineConfig,
    dtype: DType = DType.F32,
) -> ConvKernelDesc:
    """The main-variant kernel descriptor a candidate generates."""
    vlen = machine.vlen(dtype)
    return ConvKernelDesc(
        vlen=vlen,
        rb_p=cand.rb_p,
        rb_q=cand.rb_q,
        R=p.R,
        S=p.S,
        stride=p.stride,
        i_strides=(p.Hp * p.Wp * vlen, p.Wp * vlen, vlen),
        w_strides=(p.R * p.S * vlen * vlen, p.S * vlen * vlen,
                   vlen * vlen, vlen),
        o_strides=(p.Q * vlen, vlen),
        cb_unroll=(p.C // vlen) if cand.loop_order == "cb_inner" else 1,
        zero_init=True,
        hoist_output=True,
        fused_memop=not machine.has_4fma and dtype is DType.F32,
        use_4fma=machine.has_4fma and dtype is DType.F32,
        use_4vnni=machine.has_4fma and dtype is DType.QI16F32,
        prefetch=cand.prefetch,
        dtype=dtype,
        acc_chain_limit=Q16_CHAIN_LIMIT if dtype is DType.QI16F32 else 0,
    )


def _parts(machine: MachineConfig, threads: int, t_comp: float,
           traffic) -> dict[str, float]:
    m = machine
    parts = {
        "compute": t_comp,
        "l2_read": traffic.l2_read / threads / m.l2_read_bw,
        "l2_write": traffic.l2_write / threads / m.l2_write_bw,
        "mem_read": traffic.mem_read / m.mem_read_bw,
        "mem_write": traffic.mem_write / m.mem_write_bw,
    }
    if m.llc_bytes:
        parts["llc_read"] = traffic.llc_read / threads / m.llc_bw
        parts["llc_write"] = traffic.llc_write / threads / m.llc_bw
    else:
        parts["mem_read"] += traffic.llc_read / m.mem_read_bw
        parts["mem_write"] += traffic.llc_write / m.mem_write_bw
    return parts


def price_candidate(
    p: ConvParams,
    cand: Candidate,
    machine: MachineConfig,
    dtype: DType = DType.F32,
    threads: int = 1,
    cache: KernelCache | None = None,
    l1_fill_override: float | None = None,
) -> CandidateCost:
    """Analytical cost of one candidate (roofline over modeled traffic).

    ``l1_fill_override`` replaces the modeled per-invocation L2->L1
    stream with a measured byte count (the :func:`refine_cost` hook).
    """
    m = machine
    cache = cache if cache is not None else get_default_cache()
    desc = candidate_desc(p, cand, m, dtype)
    prog = cache.get(desc, generate_conv_kernel)
    kt = time_kernel(prog, m, call_overhead=CALL_OVERHEAD)

    plan = cand.plan(p, m, dtype)
    vlen = plan.vlen
    kb = p.K // vlen
    cbf = 1 if cand.loop_order == "cb_inner" else p.C // vlen
    pb = -(-p.P // cand.rb_p)
    qb = -(-p.Q // cand.rb_q)
    calls_total = p.N * kb * cbf * pb * qb
    items = p.N * kb * pb
    imbalance = -(-items // threads) * threads / items
    calls_core = calls_total / threads * imbalance

    cycles_per_flop = (kt.cycles - CALL_OVERHEAD) / prog.flops
    t_comp = (
        p.flops / threads * imbalance * cycles_per_flop
        + calls_core * CALL_OVERHEAD
    ) / m.freq_hz

    traffic = forward_traffic(p, plan, m, threads, dtype)
    if l1_fill_override is not None:
        # measured L2->L1 bytes for one invocation, scaled to all calls
        traffic = traffic.scaled(1.0)
        traffic.l2_read = l1_fill_override * calls_total
    parts = _parts(m, threads, t_comp, traffic)

    exposure = PREFETCH_EXPOSURE[cand.prefetch]
    if exposure > 0.0:
        lines = (traffic.l2_read + traffic.llc_read + traffic.mem_read) / 64
        parts["miss_latency"] = exposure * lines / threads * 20e-9 / 8

    time_s, bound = combine_parts(parts, m.overlap_alpha)
    return CandidateCost(
        candidate=cand,
        time_s=time_s,
        cycles=time_s * m.freq_hz,
        cycles_per_flop=cycles_per_flop,
        bound=bound,
        parts=parts,
    )


def _buffer_extents(prog) -> dict[str, int]:
    """Max element offset per tensor one invocation references."""
    ext: dict[str, int] = {}
    for u in prog.uops:
        if u.tensor is None:
            continue
        name = u.tensor[:-3] if u.tensor.endswith("_pf") else u.tensor
        ext[name] = max(ext.get(name, 0), u.offset)
    return ext


def simulate_kernel_traffic(
    p: ConvParams,
    cand: Candidate,
    machine: MachineConfig,
    dtype: DType = DType.F32,
    cache: KernelCache | None = None,
) -> LevelTraffic:
    """Measured per-level line traffic of one cold kernel invocation.

    Runs the candidate's generated program through the µop interpreter
    with the cache hierarchy attached -- the empirical counterpart of the
    block-geometry footprint math in :func:`forward_traffic`.
    """
    cache = cache if cache is not None else get_default_cache()
    desc = candidate_desc(p, cand, machine, dtype)
    prog = cache.get(desc, generate_conv_kernel)
    hier = CacheHierarchy(machine, itemsize=dtype.input_itemsize)
    ext = _buffer_extents(prog)
    in_dt = np.dtype(dtype.np_input)
    out_dt = np.dtype(dtype.np_accum)
    margin = 2 * prog.vlen + 2
    buffers = {
        "I": np.zeros(ext.get("I", 0) + margin, dtype=in_dt),
        "W": np.zeros(ext.get("W", 0) + margin, dtype=in_dt),
        "O": np.zeros(ext.get("O", 0) + margin, dtype=out_dt),
    }
    bases = {"I": 0, "W": 0, "O": 0, "I_pf": 0, "W_pf": 0, "O_pf": 0}
    execute_kernel(prog, buffers, bases, touch=hier.touch)
    return hier.traffic()


def refine_cost(
    p: ConvParams,
    cost: CandidateCost,
    machine: MachineConfig,
    dtype: DType = DType.F32,
    threads: int = 1,
    cache: KernelCache | None = None,
) -> CandidateCost:
    """Re-price a candidate with cachesim-measured L2->L1 traffic."""
    sim = simulate_kernel_traffic(p, cost.candidate, machine, dtype, cache)
    refined = price_candidate(
        p, cost.candidate, machine, dtype, threads, cache,
        l1_fill_override=float(sim.l1_fill),
    )
    refined.refined = True
    return refined
