"""Cost-model-driven mapspace autotuning with a persistent database.

The subsystem ROADMAP item 1 asks for, FactorFlow-style:

* :mod:`repro.tune.mapspace` -- the feasible variant space per layer
  (register blocks, L2 cache blocks, loop order, prefetch levels) under
  per-dimension divisibility and register-budget constraints;
* :mod:`repro.tune.cost` -- analytical pricing (µop kernel timing +
  blocked-loop traffic + partial-overlap roofline) and cachesim-measured
  refinement;
* :mod:`repro.tune.searcher` -- pruned exhaustive search, top-k
  empirical refinement, bit-exact interpreter validation of winners;
* :mod:`repro.tune.db` -- the atomic, digest-verified tuning database
  keyed by ``(machine fingerprint, dtype, layer shape)`` that
  ``make_engine(tuned=...)`` and serve warm boot consult transparently.

Offline population: ``python -m repro tune --layers 2,4 --db tune.json``.
"""

from repro.tune.cost import CandidateCost, price_candidate, refine_cost
from repro.tune.db import (
    TuneEntry,
    TuningDatabase,
    TuningDBError,
    entry_key,
    get_default_db,
    layer_key,
    resolve_db,
    set_default_db,
)
from repro.tune.mapspace import (
    Candidate,
    Mapspace,
    build_mapspace,
    feasible_rb_pairs,
)
from repro.tune.searcher import (
    TuneOutcome,
    search_mapspace,
    tune_layer,
    validate_candidate,
)

__all__ = [
    "Candidate",
    "CandidateCost",
    "Mapspace",
    "TuneEntry",
    "TuneOutcome",
    "TuningDBError",
    "TuningDatabase",
    "build_mapspace",
    "entry_key",
    "feasible_rb_pairs",
    "get_default_db",
    "layer_key",
    "price_candidate",
    "refine_cost",
    "resolve_db",
    "search_mapspace",
    "set_default_db",
    "tune_layer",
    "validate_candidate",
]
