"""Tensor distribution/reduction nodes.

``Split`` is the node type the NL Extender inserts when one tensor feeds
several consumers (Fig. 3): forward fans the tensor out, backward *sums* the
incoming gradients.  ``EltwiseSum`` is the residual join of ResNet blocks --
fusable into the producing convolution (section II-G).
"""

from __future__ import annotations

import numpy as np

from repro.layers.base import Layer

__all__ = ["Split", "EltwiseSum"]


class Split(Layer):
    """Forward: identity to ``fanout`` consumers; backward: gradient sum."""

    def __init__(self, fanout: int):
        self.fanout = fanout
        self._grads: list[np.ndarray] = []

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._grads = []
        return x

    def accumulate(self, dy: np.ndarray) -> np.ndarray | None:
        """Collect one consumer's gradient; returns the summed gradient once
        all ``fanout`` consumers have reported, else None."""
        self._grads.append(dy)
        if len(self._grads) == self.fanout:
            out = self._grads[0].copy()
            for g in self._grads[1:]:
                out += g
            self._grads = []
            return out
        return None

    def backward(self, dy: np.ndarray) -> np.ndarray:
        out = self.accumulate(dy)
        if out is None:
            raise RuntimeError(
                "Split.backward called before all consumers reported; use "
                "accumulate() from the ETG"
            )
        return out


class EltwiseSum(Layer):
    """``y = sum(inputs)``; backward passes dy to every input."""

    def __init__(self, n_inputs: int = 2):
        self.n_inputs = n_inputs

    def forward(self, *xs: np.ndarray) -> np.ndarray:
        out = xs[0].copy()
        for x in xs[1:]:
            out += x
        return out

    def backward(self, dy: np.ndarray) -> tuple[np.ndarray, ...]:
        return tuple(dy for _ in range(self.n_inputs))
