"""Fully-connected (inner-product) layer -- a GxM gradient-exchange node."""

from __future__ import annotations

import numpy as np

from repro.layers.base import Layer
from repro.types import ShapeError

__all__ = ["Linear"]


class Linear(Layer):
    """``y = x @ W.T + b`` over (N, in_features)."""

    def __init__(self, in_features: int, out_features: int, rng=None):
        rng = rng or np.random.default_rng(0)
        bound = (2.0 / in_features) ** 0.5
        self.weight = (
            rng.standard_normal((out_features, in_features)) * bound
        ).astype(np.float32)
        self.bias = np.zeros(out_features, dtype=np.float32)
        self.dweight = np.zeros_like(self.weight)
        self.dbias = np.zeros_like(self.bias)
        self._x = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.weight.shape[1]:
            raise ShapeError(
                f"Linear expected (N, {self.weight.shape[1]}), got {x.shape}"
            )
        self._x = x
        # non-optimized einsum keeps the per-row accumulation order
        # independent of N (BLAS gemv/gemm switch at N=1 otherwise), so a
        # sample's logits are bitwise identical whatever batch it rides in
        # -- the invariant the serving batcher relies on
        return np.einsum("nc,kc->nk", x, self.weight) + self.bias

    def backward(self, dy: np.ndarray) -> np.ndarray:
        self.dweight[:] = dy.T @ self._x
        self.dbias[:] = dy.sum(axis=0)
        return dy @ self.weight

    def params(self):
        return [self.weight, self.bias]

    def grads(self):
        return [self.dweight, self.dbias]

    @property
    def flops_forward(self) -> int:
        return 2 * self.weight.size
