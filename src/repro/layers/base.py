"""Layer protocol for GxM nodes."""

from __future__ import annotations

import numpy as np

__all__ = ["Layer"]


class Layer:
    """Minimal trainable-operator interface.

    ``forward`` caches whatever ``backward`` needs (activations, masks); the
    GxM task graph guarantees backward of a node runs after its forward and
    before its parameters are updated, mirroring the ETG ordering.
    """

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dy: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> list[np.ndarray]:
        """Trainable parameter arrays (shared, updated in place)."""
        return []

    def grads(self) -> list[np.ndarray]:
        """Gradients matching ``params()``, filled by ``backward``."""
        return []

    @property
    def flops_forward(self) -> int:
        return 0
