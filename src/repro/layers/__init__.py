"""Non-convolution operators for GxM (section II-G / II-L).

These layers "do not impose any memory layout requirements" (section I), so
their functional implementations operate on logical NCHW numpy arrays; the
performance model prices them as bandwidth-bound element-wise passes (which
is why fusing them into convolutions pays, section II-G).

Every layer implements ``forward(x)`` and ``backward(dy)``; parameterized
layers expose ``params()``/``grads()`` pairs for the SGD trainer.
"""

from repro.layers.base import Layer
from repro.layers.relu import ReLULayer
from repro.layers.pool import MaxPool2D, AvgPool2D, GlobalAvgPool
from repro.layers.bn import BatchNorm2D
from repro.layers.fc import Linear
from repro.layers.softmax import SoftmaxCrossEntropy
from repro.layers.eltwise import EltwiseSum, Split

__all__ = [
    "Layer",
    "ReLULayer",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool",
    "BatchNorm2D",
    "Linear",
    "SoftmaxCrossEntropy",
    "EltwiseSum",
    "Split",
]
