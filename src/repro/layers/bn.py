"""Batch normalization (training mode).

GxM nodes of this type exchange gradients in multi-node training
(section II-L lists batch normalization among the communication endpoints).
The forward's scale/shift application is exactly the fusable
:class:`~repro.conv.fusion.BatchNormApply` post-op.
"""

from __future__ import annotations

import numpy as np

from repro.layers.base import Layer

__all__ = ["BatchNorm2D"]


class BatchNorm2D(Layer):
    """Per-channel batch norm over (N, H, W) with running statistics."""

    def __init__(self, channels: int, eps: float = 1e-5, momentum: float = 0.9):
        self.gamma = np.ones(channels, dtype=np.float32)
        self.beta = np.zeros(channels, dtype=np.float32)
        self.dgamma = np.zeros_like(self.gamma)
        self.dbeta = np.zeros_like(self.beta)
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self.eps = eps
        self.momentum = momentum
        self.training = True
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        inv = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean[None, :, None, None]) * inv[None, :, None, None]
        self._cache = (xhat, inv)
        return (
            self.gamma[None, :, None, None] * xhat
            + self.beta[None, :, None, None]
        ).astype(np.float32)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        xhat, inv = self._cache
        m = dy.shape[0] * dy.shape[2] * dy.shape[3]
        self.dgamma[:] = (dy * xhat).sum(axis=(0, 2, 3))
        self.dbeta[:] = dy.sum(axis=(0, 2, 3))
        g = self.gamma[None, :, None, None]
        term = (
            dy
            - self.dbeta[None, :, None, None] / m
            - xhat * self.dgamma[None, :, None, None] / m
        )
        return (g * inv[None, :, None, None] * term).astype(np.float32)

    def params(self):
        return [self.gamma, self.beta]

    def grads(self):
        return [self.dgamma, self.dbeta]

    def folded_scale_shift(self) -> tuple[np.ndarray, np.ndarray]:
        """(gamma', beta') for the fused inference-style application."""
        inv = 1.0 / np.sqrt(self.running_var + self.eps)
        return self.gamma * inv, self.beta - self.gamma * inv * self.running_mean
