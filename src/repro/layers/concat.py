"""Channel concatenation -- the Inception join (the paper's
"Batch-concatenation" layer, section I: layout-agnostic, bandwidth-bound).
"""

from __future__ import annotations

import numpy as np

from repro.layers.base import Layer
from repro.types import ShapeError

__all__ = ["Concat"]


class Concat(Layer):
    """Concatenate NCHW inputs along the channel dimension."""

    def __init__(self, n_inputs: int):
        self.n_inputs = n_inputs
        self._splits: list[int] = []

    def forward(self, *xs: np.ndarray) -> np.ndarray:
        if len(xs) != self.n_inputs:
            raise ShapeError(
                f"Concat expected {self.n_inputs} inputs, got {len(xs)}"
            )
        base = xs[0].shape
        for x in xs[1:]:
            if x.shape[0] != base[0] or x.shape[2:] != base[2:]:
                raise ShapeError(
                    f"Concat inputs disagree: {base} vs {x.shape}"
                )
        self._splits = [x.shape[1] for x in xs]
        return np.concatenate(xs, axis=1)

    def backward(self, dy: np.ndarray) -> tuple[np.ndarray, ...]:
        outs = []
        c0 = 0
        for c in self._splits:
            outs.append(np.ascontiguousarray(dy[:, c0 : c0 + c]))
            c0 += c
        return tuple(outs)
