"""ReLU activation (fusable into convolutions, section II-G)."""

from __future__ import annotations

import numpy as np

from repro.layers.base import Layer

__all__ = ["ReLULayer"]


class ReLULayer(Layer):
    """``y = max(x, 0)``; backward masks the gradient."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(x.dtype, copy=False)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return np.where(self._mask, dy, 0.0).astype(dy.dtype, copy=False)
