"""Spatial pooling layers."""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.layers.base import Layer
from repro.types import ShapeError

__all__ = ["MaxPool2D", "AvgPool2D", "GlobalAvgPool"]


def _windows(x: np.ndarray, k: int, stride: int, pad: int) -> np.ndarray:
    """View of shape (N, C, P, Q, k, k) over the (padded) input."""
    if pad:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (pad, pad), (pad, pad)),
            mode="constant",
            constant_values=-np.inf,
        )
    n, c, h, w = x.shape
    p = (h - k) // stride + 1
    q = (w - k) // stride + 1
    sn, sc, sh, sw = x.strides
    return (
        as_strided(
            x,
            shape=(n, c, p, q, k, k),
            strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        ),
        x,
    )


class MaxPool2D(Layer):
    """Max pooling with argmax-routing backward."""

    def __init__(self, kernel: int, stride: int | None = None, pad: int = 0):
        self.k = kernel
        self.stride = stride or kernel
        self.pad = pad
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        win, xp = _windows(x, self.k, self.stride, self.pad)
        n, c, p, q, _, _ = win.shape
        flat = win.reshape(n, c, p, q, self.k * self.k)
        arg = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
        self._cache = (x.shape, xp.shape, arg)
        return np.ascontiguousarray(out)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x_shape, xp_shape, arg = self._cache
        n, c, hp, wp = xp_shape
        dxp = np.zeros((n, c, hp, wp), dtype=dy.dtype)
        p, q = dy.shape[2], dy.shape[3]
        ki = arg // self.k
        kj = arg % self.k
        oj = np.arange(p)[None, None, :, None]
        oi = np.arange(q)[None, None, None, :]
        rows = oj * self.stride + ki
        cols = oi * self.stride + kj
        nn = np.arange(n)[:, None, None, None]
        cc = np.arange(c)[None, :, None, None]
        np.add.at(dxp, (nn, cc, rows, cols), dy)
        if self.pad:
            dxp = dxp[:, :, self.pad : -self.pad, self.pad : -self.pad]
        if dxp.shape != x_shape:
            out = np.zeros(x_shape, dtype=dy.dtype)
            out[:, :, : dxp.shape[2], : dxp.shape[3]] = dxp
            return out
        return dxp


class AvgPool2D(Layer):
    """Average pooling (count-include-pad when ``pad > 0``, like Inception's
    3x3/1 same-size pooling branches)."""

    def __init__(self, kernel: int, stride: int | None = None, pad: int = 0):
        self.k = kernel
        self.stride = stride or kernel
        self.pad = pad
        self._in_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in_shape = x.shape
        if self.pad:
            x = np.pad(
                x,
                ((0, 0), (0, 0), (self.pad, self.pad), (self.pad, self.pad)),
                mode="constant",
            )
        win, _ = _windows(x, self.k, self.stride, 0)
        return win.mean(axis=(-1, -2))

    def backward(self, dy: np.ndarray) -> np.ndarray:
        n, c, h, w = self._in_shape
        hp, wp = h + 2 * self.pad, w + 2 * self.pad
        dxp = np.zeros((n, c, hp, wp), dtype=dy.dtype)
        scale = 1.0 / (self.k * self.k)
        p, q = dy.shape[2], dy.shape[3]
        for i in range(self.k):
            for j in range(self.k):
                dxp[
                    :,
                    :,
                    i : i + p * self.stride : self.stride,
                    j : j + q * self.stride : self.stride,
                ] += dy * scale
        if self.pad:
            return np.ascontiguousarray(
                dxp[:, :, self.pad : self.pad + h, self.pad : self.pad + w]
            )
        return dxp


class GlobalAvgPool(Layer):
    """Spatial global average -> (N, C)."""

    def __init__(self) -> None:
        self._in_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"expected NCHW, got {x.shape}")
        self._in_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, dy: np.ndarray) -> np.ndarray:
        n, c, h, w = self._in_shape
        return np.broadcast_to(
            dy[:, :, None, None] / (h * w), self._in_shape
        ).astype(dy.dtype, copy=True)
