"""Softmax + cross-entropy loss head."""

from __future__ import annotations

import numpy as np

from repro.layers.base import Layer
from repro.types import ReproError

__all__ = ["SoftmaxCrossEntropy"]


class SoftmaxCrossEntropy(Layer):
    """Combined softmax/NLL: ``forward`` returns per-batch mean loss;
    ``backward`` needs no incoming gradient."""

    def __init__(self) -> None:
        self._probs = None
        self._labels = None

    def forward(self, logits: np.ndarray, labels: np.ndarray | None = None):
        z = logits - logits.max(axis=1, keepdims=True)
        e = np.exp(z)
        probs = e / e.sum(axis=1, keepdims=True)
        self._probs = probs
        if labels is None:
            return probs
        self._labels = labels
        n = logits.shape[0]
        loss = -np.log(probs[np.arange(n), labels] + 1e-12).mean()
        return float(loss)

    def backward(self, dy: float = 1.0) -> np.ndarray:
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._labels] -= 1.0
        return (grad / n * dy).astype(np.float32)

    @property
    def probabilities(self) -> np.ndarray:
        """Class probabilities from the most recent forward pass."""
        if self._probs is None:
            raise ReproError("no forward pass has run yet")
        return self._probs

    def accuracy(self, labels: np.ndarray) -> float:
        return float((self._probs.argmax(axis=1) == labels).mean())
