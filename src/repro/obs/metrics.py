"""Named counters, gauges and distributions shared by every subsystem.

The paper's methodology reports the same handful of numbers for every
experiment -- kernels generated, cache hits/misses, stream segments, µops
executed, simulated traffic bytes, img/s.  :class:`MetricsRegistry` is the
single home for them: counters are monotonically increasing (and merge
additively across processes), gauges hold last-written values, and
distributions keep a bounded window of observed samples for the serving
SLO percentiles (request latency, batch occupancy).

All mutation happens under one lock so concurrent replay threads and the
kernel cache can update counters safely; reads return copies.  As with the
tracer there is ONE process-wide registry (:func:`get_metrics`) whose
identity never changes, so modules may bind it at import time.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = ["Ewma", "MetricsRegistry", "get_metrics", "merge_snapshots"]

#: retained samples per distribution -- a rolling window, enough for a
#: stable p99 over any recent load burst without unbounded growth
_DIST_WINDOW = 32768


class Ewma:
    """Thread-safe exponentially weighted moving average.

    The serving admission controller estimates queue wait from a decayed
    per-request service time; an EWMA tracks the recent regime (a load
    spike shifts it within ~1/alpha samples) without keeping a window.
    ``value`` is ``None`` until the first update so callers can tell
    "no samples yet" apart from a genuine 0.
    """

    __slots__ = ("alpha", "_value", "_lock")

    def __init__(self, alpha: float = 0.2):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"EWMA alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: float | None = None
        self._lock = threading.Lock()

    def update(self, sample: float) -> float:
        with self._lock:
            if self._value is None:
                self._value = float(sample)
            else:
                self._value += self.alpha * (sample - self._value)
            return self._value

    @property
    def value(self) -> float | None:
        with self._lock:
            return self._value


class MetricsRegistry:
    """Thread-safe registry of named counters, gauges and distributions."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._dists: dict[str, deque] = {}
        self._dist_counts: dict[str, int] = {}

    # -- writing -------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into distribution ``name`` (rolling window)."""
        with self._lock:
            d = self._dists.get(name)
            if d is None:
                d = self._dists[name] = deque(maxlen=_DIST_WINDOW)
            d.append(value)
            self._dist_counts[name] = self._dist_counts.get(name, 0) + 1

    # -- reading -------------------------------------------------------
    def value(self, name: str, default: float = 0) -> float:
        """Current value of a counter or gauge (counters win on collision)."""
        with self._lock:
            if name in self._counters:
                return self._counters[name]
            return self._gauges.get(name, default)

    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def percentile(self, name: str, q: float) -> float:
        """The ``q``-th percentile (0-100, nearest-rank) of distribution
        ``name`` over its retained window; 0.0 if nothing observed."""
        with self._lock:
            d = self._dists.get(name)
            if not d:
                return 0.0
            samples = sorted(d)
        rank = max(0, min(len(samples) - 1, int(round(q / 100.0 * len(samples))) - 1))
        if q <= 0:
            rank = 0
        return samples[rank]

    def distributions(self) -> dict[str, dict[str, float]]:
        """Summary per distribution: total count plus window min/mean/max
        and the p50/p95/p99 SLO percentiles."""
        with self._lock:
            items = [
                (name, sorted(d), self._dist_counts.get(name, 0))
                for name, d in self._dists.items()
                if d
            ]
        out = {}
        for name, s, count in items:
            n = len(s)

            def pct(q: float) -> float:
                return s[max(0, min(n - 1, int(round(q / 100.0 * n)) - 1))]

            out[name] = {
                "count": count,
                "window": n,
                "min": s[0],
                "max": s[-1],
                "mean": sum(s) / n,
                "p50": pct(50),
                "p95": pct(95),
                "p99": pct(99),
            }
        return out

    def snapshot(self, clear: bool = False) -> dict:
        """Picklable ``{"counters": ..., "gauges": ..., "dists": ...}``."""
        with self._lock:
            snap = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "dists": {
                    name: {
                        "count": self._dist_counts.get(name, 0),
                        "samples": list(d),
                    }
                    for name, d in self._dists.items()
                },
            }
            if clear:
                self._counters.clear()
                self._gauges.clear()
                self._dists.clear()
                self._dist_counts.clear()
        return snap

    def merge(self, snapshot: dict) -> None:
        """Fold a worker snapshot in: counters and distribution samples
        add, gauges last-write-wins."""
        with self._lock:
            for name, v in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + v
            self._gauges.update(snapshot.get("gauges", {}))
            for name, rec in snapshot.get("dists", {}).items():
                d = self._dists.get(name)
                if d is None:
                    d = self._dists[name] = deque(maxlen=_DIST_WINDOW)
                d.extend(rec.get("samples", ()))
                self._dist_counts[name] = (
                    self._dist_counts.get(name, 0) + rec.get("count", 0)
                )

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._dists.clear()
            self._dist_counts.clear()


def merge_snapshots(snapshots) -> dict:
    """Fold several :meth:`MetricsRegistry.snapshot` dicts (one per
    fleet replica) into a single cross-replica summary: counters and
    distribution samples add, gauges last-write-wins.  Returns the
    merged ``{"counters", "gauges", "distributions"}`` view."""
    merged = MetricsRegistry()
    for snap in snapshots:
        merged.merge(snap)
    return {
        "counters": merged.counters(),
        "gauges": merged.gauges(),
        "distributions": merged.distributions(),
    }


#: the process-wide registry (stable identity; cleared, never replaced).
_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` singleton."""
    return _METRICS
