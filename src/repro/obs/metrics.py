"""Named counters and gauges shared by every subsystem.

The paper's methodology reports the same handful of numbers for every
experiment -- kernels generated, cache hits/misses, stream segments, µops
executed, simulated traffic bytes, img/s.  :class:`MetricsRegistry` is the
single home for them: counters are monotonically increasing (and merge
additively across processes), gauges hold last-written values.

All mutation happens under one lock so concurrent replay threads and the
kernel cache can update counters safely; reads return copies.  As with the
tracer there is ONE process-wide registry (:func:`get_metrics`) whose
identity never changes, so modules may bind it at import time.
"""

from __future__ import annotations

import threading

__all__ = ["MetricsRegistry", "get_metrics"]


class MetricsRegistry:
    """Thread-safe registry of named counters and gauges."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}

    # -- writing -------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    # -- reading -------------------------------------------------------
    def value(self, name: str, default: float = 0) -> float:
        """Current value of a counter or gauge (counters win on collision)."""
        with self._lock:
            if name in self._counters:
                return self._counters[name]
            return self._gauges.get(name, default)

    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def snapshot(self, clear: bool = False) -> dict:
        """Picklable ``{"counters": ..., "gauges": ...}`` snapshot."""
        with self._lock:
            snap = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
            }
            if clear:
                self._counters.clear()
                self._gauges.clear()
        return snap

    def merge(self, snapshot: dict) -> None:
        """Fold a worker snapshot in: counters add, gauges last-write-wins."""
        with self._lock:
            for name, v in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + v
            self._gauges.update(snapshot.get("gauges", {}))

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()


#: the process-wide registry (stable identity; cleared, never replaced).
_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry` singleton."""
    return _METRICS
