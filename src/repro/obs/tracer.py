"""Nestable tracing spans (the observability half of section III's method).

Every number in the paper's evaluation is attributable to a *phase*: JIT
codegen, the dryrun that records kernel streams, the branch-free replay, the
per-task ETG walk.  :class:`Tracer` names those phases as spans --
``span("jit.codegen")``, ``span("conv.dryrun")``, ``span("stream.replay")``,
``span("etg.task")`` -- and records wall-clock begin/duration per span so
the whole pipeline can be inspected in ``chrome://tracing`` (see
:mod:`repro.obs.export`).

Design constraints (the disabled path must be branch-cheap):

* there is ONE process-wide :class:`Tracer` singleton, obtained with
  :func:`get_tracer`; it is *never replaced*, only its ``enabled`` flag
  flips.  Hot paths may therefore bind it once at setup time and guard with
  ``if tracer.enabled:`` -- one attribute read when tracing is off.
* ``span()`` on a disabled tracer returns a shared no-op context manager
  (no allocation, no clock read).
* span records are plain picklable dataclasses so per-process tracers can
  be merged across ``multiprocessing`` workers
  (:meth:`Tracer.export_events` / :meth:`Tracer.ingest`).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "enable",
    "disable",
    "NULL_SPAN",
]


@dataclass
class SpanRecord:
    """One completed span: microsecond timestamp/duration plus identity."""

    name: str
    ts_us: float
    dur_us: float
    pid: int
    tid: int
    depth: int
    args: dict = field(default_factory=dict)


class _NullSpan:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """An open span; closing it appends a :class:`SpanRecord`."""

    __slots__ = ("_tracer", "name", "args", "_t0", "_depth")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        tls = self._tracer._tls
        self._depth = getattr(tls, "depth", 0)
        tls.depth = self._depth + 1
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = time.perf_counter_ns()
        tracer = self._tracer
        tracer._tls.depth = self._depth
        tracer.events.append(
            SpanRecord(
                name=self.name,
                ts_us=self._t0 / 1e3,
                dur_us=(t1 - self._t0) / 1e3,
                pid=os.getpid(),
                tid=threading.get_ident(),
                depth=self._depth,
                args=self.args,
            )
        )
        return False


class Tracer:
    """Span recorder with thread-local nesting depth.

    Usage::

        tracer = get_tracer()
        with tracer.span("conv.dryrun", threads=4):
            ...

    ``events`` is the flat list of completed :class:`SpanRecord`\\ s;
    list append is atomic under the GIL, so concurrent threads may record
    spans into the same tracer.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.events: list[SpanRecord] = []
        self._tls = threading.local()

    # -- recording -----------------------------------------------------
    def span(self, name: str, **args):
        """Context manager timing one named phase (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, args)

    def instant(self, name: str, **args) -> None:
        """Record a zero-duration marker event."""
        if not self.enabled:
            return
        t = time.perf_counter_ns() / 1e3
        self.events.append(
            SpanRecord(
                name=name,
                ts_us=t,
                dur_us=0.0,
                pid=os.getpid(),
                tid=threading.get_ident(),
                depth=getattr(self._tls, "depth", 0),
                args=args,
            )
        )

    # -- inspection / merging ------------------------------------------
    def span_names(self) -> set[str]:
        return {r.name for r in self.events}

    def spans(self, name: str) -> list[SpanRecord]:
        return [r for r in self.events if r.name == name]

    def clear(self) -> None:
        self.events.clear()

    def export_events(self, clear: bool = False) -> list[SpanRecord]:
        """Snapshot the event list (picklable) for cross-process transport."""
        out = list(self.events)
        if clear:
            self.events.clear()
        return out

    def ingest(self, events: list[SpanRecord], pid: int | None = None) -> None:
        """Merge span records from another tracer (e.g. a worker process)."""
        if pid is None:
            self.events.extend(events)
            return
        for r in events:
            r.pid = pid
            self.events.append(r)


#: the process-wide tracer; disabled by default so benches pay one branch.
_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide :class:`Tracer` singleton (stable identity)."""
    return _TRACER


def enable() -> Tracer:
    """Turn on span recording globally; returns the tracer."""
    _TRACER.enabled = True
    return _TRACER


def disable() -> Tracer:
    """Stop recording (already-recorded events are kept)."""
    _TRACER.enabled = False
    return _TRACER
