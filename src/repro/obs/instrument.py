"""Decorators that thread observability through existing functions.

:func:`instrument_codegen` wraps a ``generate_*_kernel(desc) -> program``
function so every generation is a ``jit.codegen`` span and bumps the
``jit.kernels_generated`` / ``jit.uops_emitted`` counters.  Counters are
updated even when tracing is disabled (they are a handful of dict updates
per *generated kernel*, i.e. per cache miss -- nowhere near a hot path);
spans are only materialized when the tracer is enabled.
"""

from __future__ import annotations

import functools
from typing import Callable

from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

__all__ = ["instrument_codegen"]


def instrument_codegen(kind: str) -> Callable:
    """Wrap a kernel generator; ``kind`` tags the variant family."""

    def deco(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(desc, *a, **kw):
            tracer = get_tracer()
            if tracer.enabled:
                with tracer.span("jit.codegen", kind=kind) as sp:
                    prog = fn(desc, *a, **kw)
                    sp.args["kernel"] = prog.name
            else:
                prog = fn(desc, *a, **kw)
            metrics = get_metrics()
            metrics.inc("jit.kernels_generated")
            metrics.inc(f"jit.kernels_generated.{kind}")
            metrics.inc("jit.uops_emitted", len(prog))
            return prog

        return wrapper

    return deco
