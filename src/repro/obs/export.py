"""Trace/metrics exporters: ``chrome://tracing`` JSON and flat JSON.

The chrome-trace form is the Trace Event Format's complete-event (``"X"``)
flavour: one object per span with microsecond ``ts``/``dur``, ``pid``/``tid``
identity, and the span's attributes under ``args``.  Load the file in
``chrome://tracing`` / Perfetto to see the nested phases per thread and
process.  The flat form aggregates spans by name (count, total/mean wall
time) next to every counter and gauge -- the machine-readable summary the
CI smoke run and the benches diff against.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.tracer import Tracer, get_tracer

__all__ = [
    "chrome_trace",
    "dump_chrome_trace",
    "flat_report",
    "dump_flat_json",
]


def chrome_trace(
    tracer: Tracer | None = None, metrics: MetricsRegistry | None = None
) -> dict[str, Any]:
    """The tracer's events as a Trace Event Format document (a dict)."""
    tracer = tracer or get_tracer()
    metrics = metrics or get_metrics()
    events = [
        {
            "name": r.name,
            "cat": r.name.split(".", 1)[0],
            "ph": "X",
            "ts": r.ts_us,
            "dur": r.dur_us,
            "pid": r.pid,
            "tid": r.tid,
            "args": {k: _jsonable(v) for k, v in r.args.items()},
        }
        for r in tracer.events
    ]
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        # summary form, not snapshot(): raw distribution windows would
        # bloat the trace file with thousands of samples
        "otherData": {
            "counters": metrics.counters(),
            "gauges": metrics.gauges(),
            "distributions": metrics.distributions(),
        },
    }


def dump_chrome_trace(
    path,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> int:
    """Write the chrome-trace JSON to ``path``; returns the event count."""
    doc = chrome_trace(tracer, metrics)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])


def flat_report(
    tracer: Tracer | None = None, metrics: MetricsRegistry | None = None
) -> dict[str, Any]:
    """Aggregated ``{"spans": ..., "counters": ..., "gauges": ...}``."""
    tracer = tracer or get_tracer()
    metrics = metrics or get_metrics()
    spans: dict[str, dict[str, float]] = {}
    for r in tracer.events:
        agg = spans.setdefault(
            r.name, {"count": 0, "total_us": 0.0, "max_us": 0.0}
        )
        agg["count"] += 1
        agg["total_us"] += r.dur_us
        agg["max_us"] = max(agg["max_us"], r.dur_us)
    for agg in spans.values():
        agg["mean_us"] = agg["total_us"] / agg["count"] if agg["count"] else 0.0
    return {
        "spans": spans,
        "counters": metrics.counters(),
        "gauges": metrics.gauges(),
        "distributions": metrics.distributions(),
    }


def dump_flat_json(
    path,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Write the flat report to ``path``; returns the report dict."""
    doc = flat_report(tracer, metrics)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
    return doc


def _jsonable(v):
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    return str(v)
