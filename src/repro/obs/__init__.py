"""repro.obs -- the unified observability layer.

A zero-dependency tracing + metrics subsystem threaded through the
library's hot paths:

* :class:`Tracer` (:mod:`repro.obs.tracer`) -- nestable wall-clock spans
  (``jit.codegen``, ``conv.dryrun``, ``stream.replay``, ``etg.task`` ...),
  recorded into one process-wide singleton that is disabled by default and
  branch-cheap when off.
* :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) -- named counters and
  gauges (kernels generated, cache hits/misses, stream conv calls, µops
  executed, img/s ...), thread-safe and mergeable across processes.
* exporters (:mod:`repro.obs.export`) -- ``chrome://tracing`` JSON and a
  flat aggregated JSON report.

The resilience machinery (:mod:`repro.resilience`) reports through the
same counters: ``resilience.faults_injected``, ``resilience.respawns``,
``resilience.degraded_steps``, ``resilience.skipped_steps`` and
``resilience.nan_grads_detected`` on the process-wide registry, plus
``serve.worker_restarts``, ``serve.worker_crashes``,
``serve.tier_degraded`` and ``serve.artifact_rejected`` on each
:class:`~repro.serve.server.InferenceServer`'s private registry.

So does the overlapped all-reduce (:mod:`repro.collective`):
``collective.steps`` / ``.buckets`` / ``.bytes`` / ``.hops`` count the
healthy gradient exchange, ``collective.syncs`` / ``.rebuilds`` /
``.aborts`` / ``.rootsteps`` / ``.stale_dropped`` /
``.errors.<kind>`` the repair machinery, and every worker observes
per-step ``collective.overlap_ms`` vs ``collective.exposed_ms``
distributions (communication hidden under backward vs paid after it)
with matching ``collective.step`` / ``collective.exposed`` spans --
all merged into the root registry/tracer after each step.

Quick start::

    from repro import obs

    obs.enable()                      # start recording spans
    ...  # build engines, train steps
    obs.dump_chrome_trace("trace.json")
    print(obs.flat_report()["counters"])

or from the shell::

    python -m repro profile resnet_mini --steps 2
"""

from repro.obs.export import (
    chrome_trace,
    dump_chrome_trace,
    dump_flat_json,
    flat_report,
)
from repro.obs.instrument import instrument_codegen
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.tracer import (
    NULL_SPAN,
    SpanRecord,
    Tracer,
    disable,
    enable,
    get_tracer,
)

__all__ = [
    "Tracer",
    "SpanRecord",
    "get_tracer",
    "enable",
    "disable",
    "NULL_SPAN",
    "MetricsRegistry",
    "get_metrics",
    "chrome_trace",
    "dump_chrome_trace",
    "flat_report",
    "dump_flat_json",
    "instrument_codegen",
]
