"""repro.forensics -- the black-box flight recorder + incident replay.

Every other subsystem promises bitwise determinism; this package makes
failures *inherit* that promise.  Three pieces:

* :class:`FlightRecorder` (:mod:`.recorder`) -- a lock-cheap bounded
  ring of recent structured events (admissions, batch compositions,
  collective hops, tier degrades, fault firings, checkpoint/reload
  lifecycle), one singleton per process, branch-cheap when disabled --
  the same contract as :mod:`repro.obs`.  Worker-process rings drain to
  the parent through the payload that already carries tracer spans.
* :class:`IncidentWriter` (:mod:`.bundle`) -- on every typed failure
  (:class:`~repro.resilience.WorkerFailure`,
  :class:`~repro.collective.CollectiveError`,
  :class:`~repro.serve.CanaryError`,
  :class:`~repro.serve.SlotCorruption`,
  :class:`~repro.resilience.DivergenceError`) or an explicit
  ``POST /admin/dump``, an atomic digest-verified bundle directory:
  config + fingerprints, the active fault plan, RNG/shuffle state, the
  tuning-DB digest, the failing tensors themselves, the recorder ring
  and merged tracer spans.
* :func:`replay_incident` (:mod:`.replay`) -- reconstructs the
  engine/trainer from the bundle and re-executes the failing step or
  request, asserting bitwise identity with the recorded digests
  (``python -m repro incident {list,show,replay,diff}``).
"""

from repro.forensics.bundle import (
    BundleError,
    IncidentWriter,
    diff_incidents,
    list_incidents,
    load_incident,
    tensor_digest,
    write_incident,
)
from repro.forensics.recorder import (
    EventRecord,
    FlightRecorder,
    disable,
    enable,
    get_recorder,
)
from repro.forensics.replay import (
    ReplayMismatch,
    digest_tensor_list,
    replay_incident,
)

__all__ = [
    "FlightRecorder",
    "EventRecord",
    "get_recorder",
    "enable",
    "disable",
    "IncidentWriter",
    "BundleError",
    "write_incident",
    "load_incident",
    "list_incidents",
    "diff_incidents",
    "tensor_digest",
    "digest_tensor_list",
    "ReplayMismatch",
    "replay_incident",
]
