"""Incident bundles: atomic, digest-verified failure captures.

When a typed failure fires (:class:`~repro.resilience.WorkerFailure`,
:class:`~repro.collective.CollectiveError`,
:class:`~repro.serve.CanaryError`,
:class:`~repro.serve.SlotCorruption`,
:class:`~repro.resilience.DivergenceError`) -- or an operator hits
``POST /admin/dump`` -- the :class:`IncidentWriter` freezes everything a
later ``python -m repro incident replay`` needs into one directory:

* ``manifest.json`` -- bundle version + incident kind, the error's type
  and message, the config document + its fingerprint,
  ``MachineConfig.fingerprint()``, the active
  :class:`~repro.resilience.FaultPlan`, RNG/shuffle-stream state, the
  tuning-DB digest, a *replay document* describing how to re-execute
  the failing step/request, per-tensor content digests and a sha256 per
  bundle file;
* ``tensors.npz`` -- the small failing payload itself (the micro-batch
  or gradient-shard inputs, step-start weights, ...);
* ``events.json`` -- the flight-recorder ring plus merged tracer spans.

Writes are atomic the same way checkpoints are: everything lands in a
``.tmp~<pid>`` sibling directory first, then one ``os.replace`` renames
it under its final ``incident_<kind>_<pid>_<n>`` name, so a crash
mid-capture can never leave a half-written bundle that parses.  Loads
re-verify every file hash and every tensor digest before anything is
trusted (:func:`load_incident`), so a tampered or bit-rotted bundle is
rejected with a typed :class:`BundleError` rather than replayed wrong.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import asdict

import numpy as np

from repro.forensics.recorder import get_recorder
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.types import ReproError

__all__ = [
    "BundleError",
    "IncidentWriter",
    "tensor_digest",
    "write_incident",
    "load_incident",
    "list_incidents",
    "diff_incidents",
]

_BUNDLE_VERSION = 1
_MANIFEST = "manifest.json"
_TENSORS = "tensors.npz"
_EVENTS = "events.json"


class BundleError(ReproError):
    """An incident bundle is unreadable, incomplete or fails digest
    verification -- it must not be replayed."""


def tensor_digest(a: np.ndarray) -> str:
    """Content digest of one array (dtype + shape + bytes, 16 hex chars
    -- the same truncation checkpoints use)."""
    h = hashlib.sha256()
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()[:16]


def _file_digest(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            h.update(chunk)
    return h.hexdigest()[:16]


def _plan_doc(plan) -> dict | None:
    if plan is None:
        return None
    return {"seed": plan.seed, "specs": [asdict(s) for s in plan.specs]}


def _events_doc(events, spans) -> dict:
    return {
        "ring": [r.to_doc() for r in events],
        "spans": [
            {
                "name": s.name, "ts_us": s.ts_us, "dur_us": s.dur_us,
                "pid": s.pid, "tid": s.tid, "depth": s.depth,
                "args": dict(s.args),
            }
            for s in spans
        ],
    }


def write_incident(
    root: str,
    *,
    kind: str,
    error: BaseException | None = None,
    replay: dict | None = None,
    config: dict | None = None,
    config_fingerprint: str | None = None,
    machine_fingerprint: str | None = None,
    fault_plan=None,
    rng_state: dict | None = None,
    tune_db_digest: str | None = None,
    tensors: dict[str, np.ndarray] | None = None,
    expect: dict[str, str] | None = None,
    extra: dict | None = None,
    events=None,
    spans=None,
) -> str:
    """Write one incident bundle under ``root``; returns its path.

    ``tensors`` are the arrays stored in ``tensors.npz`` (digested
    individually into the manifest); ``expect`` maps names to digests
    the replay must reproduce bitwise (e.g. the recomputed gradient
    digests).  ``events``/``spans`` default to the process-wide
    recorder ring and tracer spans at call time.
    """
    os.makedirs(root, exist_ok=True)
    if events is None:
        events = get_recorder().export_events()
    if spans is None:
        spans = get_tracer().export_events()
    tensors = dict(tensors or {})

    manifest = {
        "version": _BUNDLE_VERSION,
        "kind": kind,
        "error": None if error is None else {
            "type": type(error).__name__,
            "message": str(error),
        },
        "replay": replay,
        "config": config,
        "config_fingerprint": config_fingerprint,
        "machine_fingerprint": machine_fingerprint,
        "fault_plan": _plan_doc(fault_plan),
        "rng_state": rng_state,
        "tune_db_digest": tune_db_digest,
        "tensor_digests": {k: tensor_digest(v) for k, v in tensors.items()},
        "expect": dict(expect or {}),
        "extra": dict(extra or {}),
        "pid": os.getpid(),
    }

    tmp = os.path.join(root, f".incident.tmp~{os.getpid()}")
    shutil.rmtree(tmp, ignore_errors=True)
    os.makedirs(tmp)
    try:
        if tensors:
            with open(os.path.join(tmp, _TENSORS), "wb") as fh:
                np.savez_compressed(fh, **tensors)
        with open(os.path.join(tmp, _EVENTS), "w") as fh:
            json.dump(_events_doc(events, spans), fh)
        manifest["files"] = {
            name: _file_digest(os.path.join(tmp, name))
            for name in sorted(os.listdir(tmp))
        }
        with open(os.path.join(tmp, _MANIFEST), "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
        # claim the first free incident_<kind>_<pid>_<n> name; replacing
        # onto an existing non-empty bundle fails, so concurrent writers
        # can never clobber each other's capture
        n = 0
        while True:
            final = os.path.join(
                root, f"incident_{kind}_{os.getpid()}_{n:04d}"
            )
            if not os.path.exists(final):
                try:
                    os.replace(tmp, final)
                    break
                except OSError:
                    pass
            n += 1
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    get_metrics().inc("forensics.bundles_written")
    return final


def load_incident(path: str, verify: bool = True) -> dict:
    """Read a bundle back: ``{"path", "manifest", "tensors", "events"}``.

    With ``verify`` (the default) every per-file sha256 and every
    per-tensor digest recorded in the manifest is recomputed; any
    mismatch raises :class:`BundleError` before content is returned.
    """
    mpath = os.path.join(path, _MANIFEST)
    try:
        with open(mpath) as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        raise BundleError(f"not an incident bundle (no manifest): {path}")
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as err:
        raise BundleError(f"unreadable bundle manifest {mpath}: {err}")
    if manifest.get("version") != _BUNDLE_VERSION:
        raise BundleError(
            f"unsupported bundle version {manifest.get('version')}"
        )
    if verify:
        for name, want in manifest.get("files", {}).items():
            fpath = os.path.join(path, name)
            if not os.path.exists(fpath):
                raise BundleError(f"bundle file missing: {name}")
            got = _file_digest(fpath)
            if got != want:
                raise BundleError(
                    f"bundle file {name} digest mismatch "
                    f"({got} != {want}): tampered or corrupt"
                )
    tensors: dict[str, np.ndarray] = {}
    tpath = os.path.join(path, _TENSORS)
    if os.path.exists(tpath):
        try:
            with np.load(tpath, allow_pickle=False) as z:
                tensors = {k: z[k] for k in z.files}
        except Exception as err:
            raise BundleError(f"unreadable bundle tensors: {err}")
    if verify:
        want_t = manifest.get("tensor_digests", {})
        if set(want_t) != set(tensors):
            raise BundleError(
                f"bundle tensors do not match manifest: "
                f"{sorted(set(want_t) ^ set(tensors))}"
            )
        for k, want in want_t.items():
            got = tensor_digest(tensors[k])
            if got != want:
                raise BundleError(
                    f"tensor {k} digest mismatch ({got} != {want})"
                )
    events: dict = {"ring": [], "spans": []}
    epath = os.path.join(path, _EVENTS)
    if os.path.exists(epath):
        with open(epath) as fh:
            events = json.load(fh)
    return {
        "path": path, "manifest": manifest,
        "tensors": tensors, "events": events,
    }


def list_incidents(root: str) -> list[dict]:
    """Summaries of every bundle under ``root`` (name-sorted): name,
    kind, error type/message, tensor names, whether it verifies."""
    out = []
    if not os.path.isdir(root):
        return out
    for name in sorted(os.listdir(root)):
        if not name.startswith("incident_"):
            continue
        path = os.path.join(root, name)
        if not os.path.isdir(path):
            continue
        row = {"name": name, "path": path, "valid": True}
        try:
            doc = load_incident(path)
            m = doc["manifest"]
            row["kind"] = m.get("kind")
            err = m.get("error") or {}
            row["error"] = err.get("type")
            row["message"] = err.get("message")
            row["tensors"] = sorted(doc["tensors"])
        except BundleError as err:
            row["valid"] = False
            row["error"] = f"invalid: {err}"
        out.append(row)
    return out


def diff_incidents(path_a: str, path_b: str) -> dict:
    """Field-by-field comparison of two bundles: which manifest scalars
    differ, which tensor digests differ, which tensors only one side
    has.  Empty ``differs``/``tensor_diffs`` means same incident."""
    a = load_incident(path_a)["manifest"]
    b = load_incident(path_b)["manifest"]
    fields = (
        "kind", "error", "replay", "config", "config_fingerprint",
        "machine_fingerprint", "fault_plan", "rng_state",
        "tune_db_digest", "expect",
    )
    differs = {
        f: {"a": a.get(f), "b": b.get(f)}
        for f in fields if a.get(f) != b.get(f)
    }
    da, db = a.get("tensor_digests", {}), b.get("tensor_digests", {})
    tensor_diffs = {
        k: {"a": da.get(k), "b": db.get(k)}
        for k in sorted(set(da) | set(db)) if da.get(k) != db.get(k)
    }
    return {"differs": differs, "tensor_diffs": tensor_diffs,
            "same": not differs and not tensor_diffs}


class IncidentWriter:
    """The per-system capture hook: one instance per server/trainer,
    pointed at an incident directory.

    ``capture`` never lets a capture failure mask the original error --
    it returns the bundle path or ``None``, counting failures into
    ``forensics.bundle_errors``.  ``strict=True`` (tests) re-raises.
    """

    def __init__(self, root: str | None, strict: bool = False):
        self.root = root
        self.strict = strict
        #: paths written by this writer, in order (tests assert on this)
        self.written: list[str] = []

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def capture(self, kind: str, error=None, **sections) -> str | None:
        if self.root is None:
            return None
        try:
            path = write_incident(
                self.root, kind=kind, error=error, **sections
            )
        except BaseException:
            if self.strict:
                raise
            get_metrics().inc("forensics.bundle_errors")
            return None
        self.written.append(path)
        return path
