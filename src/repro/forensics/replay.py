"""Deterministic incident replay: turn a bundle back into the failing
step or request and re-execute it, asserting bitwise identity.

The replay contract, per bundle ``replay`` document:

* ``{"mode": "train", ...}`` -- the bundle holds the failing gradient
  shard (``x``/``labels``), the step-start weights and the digests of
  the gradients the root recomputed bit-identically at capture time.
  Replay rebuilds the worker's exact :class:`ExecutionTaskGraph`
  (topology text + input shape + seed + the ``fast`` engine every
  replica runs), loads the recorded weights, re-runs the training step
  and asserts the recomputed gradient digest and loss match bitwise.
* ``{"mode": "serve", ...}`` -- the bundle holds the failing request
  batch.  Replay rebuilds the engine from the captured
  :class:`~repro.serve.ServeConfig` (same seed -> same init; same
  checkpoint -> same weights; weight arrays embedded in the bundle win
  over both), runs the batch through **two independently built**
  engines and asserts their outputs are bitwise identical -- and, when
  the capture recorded a trusted output digest (``expect["y"]``), that
  the replayed output reproduces it exactly.

Every mismatch raises :class:`ReplayMismatch`; a clean replay returns
the digest report, so any production failure is one
``python -m repro incident replay <bundle>`` away from being a
regression test.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.forensics.bundle import BundleError, load_incident, tensor_digest
from repro.types import ReproError

__all__ = ["ReplayMismatch", "replay_incident", "digest_tensor_list"]


class ReplayMismatch(ReproError):
    """A replayed step/request did not reproduce the recorded digests
    bitwise -- either the environment differs from the capture, or the
    failure was not deterministic (both are findings)."""


def digest_tensor_list(arrays) -> str:
    """One digest over an ordered list of arrays (gradient lists)."""
    h = hashlib.sha256()
    for a in arrays:
        h.update(tensor_digest(np.asarray(a)).encode())
    return h.hexdigest()[:16]


def _check(name: str, got, want, mismatches: list) -> None:
    if want is not None and got != want:
        mismatches.append(f"{name}: replay {got!r} != recorded {want!r}")


def _replay_train(doc: dict) -> dict:
    from repro.gxm.etg import ExecutionTaskGraph
    from repro.gxm.multiproc import parse_topology_text

    m = doc["manifest"]
    r = m["replay"]
    tensors = doc["tensors"]
    x, labels = tensors["x"], tensors["labels"]
    etg = ExecutionTaskGraph(
        parse_topology_text(r["topo_text"]),
        tuple(r["input_shape"]),
        engine=r.get("engine", "fast"),
        seed=r["seed"],
    )
    params = etg.params()
    weights = [tensors[f"weights__{i}"] for i in range(len(params))]
    for p, w in zip(params, weights):
        p[...] = w
    loss = float(etg.train_step(x, labels))
    grads = [np.asarray(g) for g in etg.grads()]
    got = {
        "grads": digest_tensor_list(grads),
        "loss": loss,
        "x": tensor_digest(x),
    }
    expect = m.get("expect", {})
    mismatches: list[str] = []
    _check("grads", got["grads"], expect.get("grads"), mismatches)
    _check("loss", got["loss"], expect.get("loss"), mismatches)
    if mismatches:
        raise ReplayMismatch(
            f"train replay of step {r.get('step')} diverged: "
            + "; ".join(mismatches)
        )
    return {
        "ok": True, "mode": "train", "step": r.get("step"),
        "digests": got, "expect": dict(expect),
    }


def _build_serve_session(cfg, bucket: int, tensors: dict):
    from repro.gxm.inference import InferenceSession

    etg = cfg.build_etg(bucket)
    params = etg.params()
    if any(f"weights__{i}" in tensors for i in range(len(params))):
        for i, p in enumerate(params):
            p[...] = tensors[f"weights__{i}"]
    elif cfg.checkpoint:
        from repro.gxm.checkpoint import load_checkpoint

        load_checkpoint(etg, cfg.checkpoint)
    return InferenceSession(etg).__enter__()


def _replay_serve(doc: dict) -> dict:
    from repro.serve.config import ServeConfig

    m = doc["manifest"]
    r = m["replay"]
    tensors = doc["tensors"]
    x = tensors["x"]
    cdoc = dict(m["config"] or {})
    # runtime/forensics knobs must not recurse into the replay itself
    for k in ("replay",):
        cdoc.pop(k, None)
    cdoc["incident_dir"] = None
    cdoc["recorder"] = 0
    cfg = ServeConfig(**cdoc)
    n = int(x.shape[0])
    bucket = int(r.get(
        "bucket", next((b for b in cfg.buckets if b >= n), cfg.max_bucket)
    ))
    if n < bucket:
        pad = np.zeros((bucket, *x.shape[1:]), dtype=x.dtype)
        pad[:n] = x
        batch = pad
    else:
        batch = x
    # two *independently built* engines: the replay asserts the whole
    # build->weights->forward pipeline is deterministic, not just one
    # session's idempotence
    s1 = _build_serve_session(cfg, bucket, tensors)
    s2 = _build_serve_session(cfg, bucket, tensors)
    try:
        y1 = np.asarray(s1.predict(batch))[:n]
        y2 = np.asarray(s2.predict(batch))[:n]
    finally:
        s1.__exit__(None, None, None)
        s2.__exit__(None, None, None)
    got = {"x": tensor_digest(x), "y": tensor_digest(y1)}
    mismatches: list[str] = []
    if not np.array_equal(y1, y2):
        mismatches.append(
            "two independently built engines disagree bitwise"
        )
    expect = m.get("expect", {})
    _check("y", got["y"], expect.get("y"), mismatches)
    _check("x", got["x"], expect.get("x"), mismatches)
    if mismatches:
        raise ReplayMismatch(
            f"serve replay (bucket {bucket}) diverged: "
            + "; ".join(mismatches)
        )
    return {
        "ok": True, "mode": "serve", "bucket": bucket, "n": n,
        "digests": got, "expect": dict(expect),
    }


def replay_incident(path: str) -> dict:
    """Load (digest-verified), reconstruct and re-execute one bundle.

    Returns the digest report on bitwise success; raises
    :class:`ReplayMismatch` on any divergence and :class:`BundleError`
    on an invalid bundle.
    """
    doc = load_incident(path)
    r = doc["manifest"].get("replay")
    if not r:
        # an events-only capture (e.g. a plain /admin/dump with nothing
        # to re-execute): verification *is* the replay
        return {"ok": True, "mode": None, "replayed": False}
    mode = r.get("mode")
    if mode == "train":
        return _replay_train(doc)
    if mode == "serve":
        return _replay_serve(doc)
    raise BundleError(f"unknown replay mode {mode!r} in {path}")
