"""The flight recorder: a bounded ring of recent structured events.

A crashed step or a corrupted serving reply is only debuggable if the
moments *before* it survived the crash.  The :class:`FlightRecorder`
keeps the last ``capacity`` structured events -- request admissions,
batch compositions, collective hops, tier degrades, fault firings,
checkpoint/reload lifecycle -- in every process, so an
:class:`~repro.forensics.bundle.IncidentWriter` can freeze the recent
history into the bundle the instant a typed failure fires.

Design constraints mirror :mod:`repro.obs.tracer` exactly:

* ONE process-wide :class:`FlightRecorder` singleton
  (:func:`get_recorder`), *never replaced* -- only its ``enabled`` flag
  flips, so hot paths bind it once and pay a single attribute read when
  recording is off.
* the ring is a ``collections.deque(maxlen=...)``: appends are atomic
  under the GIL (lock-cheap -- no lock at all on the record path) and
  old events fall off the far end, so memory is bounded however long
  the process runs.
* events are plain picklable dataclasses so worker-process rings drain
  to the parent through the same payload that already carries tracer
  spans and metrics snapshots
  (:meth:`FlightRecorder.export_events` / :meth:`FlightRecorder.ingest`).
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "EventRecord",
    "FlightRecorder",
    "get_recorder",
    "enable",
    "disable",
    "DEFAULT_CAPACITY",
]

#: default ring size -- enough recent history to cover several serving
#: batches or training steps without unbounded growth
DEFAULT_CAPACITY = 4096


@dataclass
class EventRecord:
    """One recorded event: a kind, a wall-clock microsecond timestamp
    (comparable across processes, unlike ``perf_counter``), the
    recording pid and the structured payload."""

    kind: str
    ts_us: int
    pid: int
    args: dict = field(default_factory=dict)

    def to_doc(self) -> dict:
        """JSON-serializable form (bundle ``events.json``)."""
        return {
            "kind": self.kind,
            "ts_us": self.ts_us,
            "pid": self.pid,
            "args": dict(self.args),
        }


class FlightRecorder:
    """Bounded ring of :class:`EventRecord`\\ s shared by every thread
    in the process.

    Usage::

        rec = get_recorder()
        if rec.enabled:
            rec.record("serve.batch", bucket=4, n=3)
    """

    def __init__(self, enabled: bool = False,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self.enabled = enabled
        self._ring: deque = deque(maxlen=int(capacity))

    @property
    def capacity(self) -> int:
        return self._ring.maxlen

    def __len__(self) -> int:
        return len(self._ring)

    # -- recording -----------------------------------------------------
    def record(self, kind: str, /, **args) -> None:
        """Append one event (no-op when disabled; deque append is
        GIL-atomic, so no lock on this path).  The event name is
        positional-only so payloads may themselves carry a ``kind`` key
        (e.g. a fault's kind)."""
        if not self.enabled:
            return
        self._ring.append(EventRecord(
            kind=kind,
            ts_us=time.time_ns() // 1000,
            pid=os.getpid(),
            args=args,
        ))

    # -- inspection / merging ------------------------------------------
    def events(self, kind: str | None = None) -> list[EventRecord]:
        ring = list(self._ring)
        if kind is None:
            return ring
        return [r for r in ring if r.kind == kind]

    def clear(self) -> None:
        self._ring.clear()

    def export_events(self, clear: bool = False) -> list[EventRecord]:
        """Snapshot the ring (picklable) for cross-process transport."""
        out = list(self._ring)
        if clear:
            self._ring.clear()
        return out

    def ingest(self, events, pid: int | None = None) -> None:
        """Merge events drained from another process's ring (the parent
        calls this with every worker payload, like tracer spans)."""
        for r in events:
            if pid is not None:
                r.pid = pid
            self._ring.append(r)

    def resize(self, capacity: int) -> None:
        """Grow/shrink the ring, keeping the newest events."""
        capacity = int(capacity)
        if capacity == self._ring.maxlen:
            return
        self._ring = deque(self._ring, maxlen=capacity)


#: the process-wide recorder; disabled by default so hot paths pay one
#: attribute read (identical contract to ``obs.tracer._TRACER``).
_RECORDER = FlightRecorder(enabled=False)


def get_recorder() -> FlightRecorder:
    """The process-wide :class:`FlightRecorder` singleton (stable
    identity -- bind it once, guard with ``.enabled``)."""
    return _RECORDER


def enable(capacity: int | None = None) -> FlightRecorder:
    """Turn on event recording globally; optionally resize the ring."""
    if capacity is not None:
        _RECORDER.resize(capacity)
    _RECORDER.enabled = True
    return _RECORDER


def disable() -> FlightRecorder:
    """Stop recording (already-recorded events are kept)."""
    _RECORDER.enabled = False
    return _RECORDER
