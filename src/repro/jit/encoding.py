"""Binary encoding of kernel programs.

A real JIT emits machine code into an executable buffer; our analogue
serializes the µop stream into a compact byte encoding (one opcode byte,
register bytes, varint memory operands against a per-program tensor table)
and decodes it back losslessly.  Beyond fidelity, the encoded size is a
useful first-order *code-size* metric -- the combinatorial explosion of
kernel variants (section I) is ultimately an instruction-bytes/I-cache
budget, and :func:`code_size_report` quantifies it per variant.
"""

from __future__ import annotations

import struct

from repro.arch.isa import KernelProgram, Op, Uop
from repro.types import ReproError

__all__ = ["encode_program", "decode_program", "code_size_report"]

_MAGIC = b"RJK1"
_NO_REG = 0xFF


def _varint(value: int) -> bytes:
    """Unsigned LEB128."""
    if value < 0:
        raise ReproError(f"negative offset {value} cannot be encoded")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _read_varint(buf: bytes, pos: int) -> tuple[int, int]:
    shift = 0
    value = 0
    while True:
        byte = buf[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def encode_program(prog: KernelProgram) -> bytes:
    """Serialize a kernel program to bytes (lossless)."""
    tensors: list[str] = []
    t_index: dict[str, int] = {}
    body = bytearray()
    for u in prog.uops:
        body.append(u.op.value)
        flags = 0
        if u.tensor is not None:
            flags |= 1
        if u.imm:
            flags |= 2
        body.append(flags)
        for r in (u.dst, u.src1, u.src2):
            body.append(_NO_REG if r is None else r)
        if u.tensor is not None:
            if u.tensor not in t_index:
                t_index[u.tensor] = len(tensors)
                tensors.append(u.tensor)
            body.append(t_index[u.tensor])
            body += _varint(u.offset)
        if u.imm:
            body += struct.pack("<d", u.imm)

    head = bytearray(_MAGIC)
    name_b = prog.name.encode()
    head += _varint(len(name_b))
    head += name_b
    head += _varint(prog.vlen)
    head += _varint(prog.flops)
    head += _varint(len(tensors))
    for t in tensors:
        tb = t.encode()
        head += _varint(len(tb))
        head += tb
    head += _varint(len(prog.uops))
    return bytes(head) + bytes(body)


def decode_program(data: bytes) -> KernelProgram:
    """Inverse of :func:`encode_program`."""
    if data[:4] != _MAGIC:
        raise ReproError("not an encoded kernel program (bad magic)")
    pos = 4
    n, pos = _read_varint(data, pos)
    name = data[pos : pos + n].decode()
    pos += n
    vlen, pos = _read_varint(data, pos)
    flops, pos = _read_varint(data, pos)
    ntens, pos = _read_varint(data, pos)
    tensors = []
    for _ in range(ntens):
        n, pos = _read_varint(data, pos)
        tensors.append(data[pos : pos + n].decode())
        pos += n
    count, pos = _read_varint(data, pos)
    uops: list[Uop] = []
    for _ in range(count):
        op = Op(data[pos])
        pos += 1
        flags = data[pos]
        pos += 1
        regs = []
        for _ in range(3):
            b = data[pos]
            pos += 1
            regs.append(None if b == _NO_REG else b)
        tensor = None
        offset = 0
        if flags & 1:
            tensor = tensors[data[pos]]
            pos += 1
            offset, pos = _read_varint(data, pos)
        imm = 0.0
        if flags & 2:
            (imm,) = struct.unpack_from("<d", data, pos)
            pos += 8
        uops.append(
            Uop(op, dst=regs[0], src1=regs[1], src2=regs[2],
                tensor=tensor, offset=offset, imm=imm)
        )
    return KernelProgram(name=name, vlen=vlen, uops=uops, flops=flops)


def code_size_report(progs: list[KernelProgram]) -> str:
    """Encoded-size table: the variant explosion as an I-cache budget."""
    lines = [f"{'variant':<48} {'uops':>7} {'bytes':>8} {'B/uop':>6}"]
    total = 0
    for p in progs:
        size = len(encode_program(p))
        total += size
        lines.append(
            f"{p.name:<48} {len(p):>7} {size:>8} {size / max(len(p), 1):>6.1f}"
        )
    lines.append(f"{'TOTAL':<48} {'':>7} {total:>8}")
    return "\n".join(lines)
