"""Forward-convolution microkernel generator (section II-D).

Given a :class:`ConvKernelDesc`, :func:`generate_conv_kernel` emits the µop
stream a real JIT would encode as AVX512 instructions.  The generated kernel
computes an ``RB_P x RB_Q x (KB_UNROLL*VLEN)`` output block:

.. code-block:: text

    for cb in range(cb_unroll):            # 1 for Alg. 3; C_b for 1x1 (II-C)
        for r, s in filter taps:
            for x in range(VLEN):          # GEMM reduction dim
                w0 = VLOAD  W[cb, r, s, x, :]          # basic block step (a)
                for p, q in RB_P x RB_Q:               # basic block step (b)
                    acc[p,q] += w0 * broadcast(I[cb, p*str+r, q*str+s, x])

with the paper's extra optimizations:

* output loads/stores hoisted outside the ``r, s`` loops (optimization (a) of
  section II-D) unless ``hoist_output=False`` -- the un-hoisted form is
  exactly what the "libxsmm"/"blas" small-GEMM baselines are stuck with;
* pixel blocking over rows via ``RB_P`` (optimization (b));
* SKX fused memory operands (``fused_memop``): the broadcast is folded into
  the FMA, halving load-port pressure at a ~15 % backend µop-split cost
  (section III-B);
* KNM 4-chained FMA (``use_4fma``): four reduction steps issue as one op
  whose memory operand covers four consecutive input elements, quartering
  broadcast traffic (section III);
* output-channel unrolling (``kb_unroll``): one broadcast feeds FMAs into
  several ``k_b`` accumulator groups -- the "more aggressive blocking over
  output channels" MKL-DNN uses on SKX instead of fused memory operands
  (section III-B);
* fused post-ops (section II-G) and two-level prefetches (section II-E);
* an int16 VNNI path (section II-K) with bounded accumulation-chain length.

Kernel-call convention: at invocation the caller supplies *base element
offsets* per tensor name ("I", "W", "O", fused-op inputs, and the "_pf"
prefetch bases); every µop offset in the program is relative to its tensor's
base -- identical to the paper's base-pointer + offset formulation (Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.isa import KernelProgram, Op, Uop
from repro.arch.registers import RegisterAllocator
from repro.obs.instrument import instrument_codegen
from repro.types import CodegenError, DType

__all__ = ["ConvKernelDesc", "generate_conv_kernel", "interleave_prefetches"]


@dataclass(frozen=True, slots=True)
class ConvKernelDesc:
    """Everything that distinguishes one JIT'ed forward-conv kernel variant.

    Strides are *element* strides baked in from the tensor layouts:
    ``i_strides=(cb, h, w)`` with the innermost ``c`` stride 1;
    ``w_strides=(cb, r, s, c)`` with the innermost ``k`` stride 1;
    ``o_strides=(h, w)`` with the innermost ``k`` stride 1.
    """

    vlen: int
    rb_p: int
    rb_q: int
    R: int
    S: int
    stride: int
    i_strides: tuple[int, int, int]
    w_strides: tuple[int, int, int, int]
    o_strides: tuple[int, int]
    cb_unroll: int = 1
    kb_unroll: int = 1  # output-channel blocking (the MKL-DNN SKX strategy)
    w_skb: int = 0  # weight stride between k_b blocks (kb_unroll > 1)
    o_skb: int = 0  # output stride between k_b blocks (kb_unroll > 1)
    zero_init: bool = False
    hoist_output: bool = True
    fused_memop: bool = False
    use_4fma: bool = False  # KNM 4-chained FMA with 4-element memory operand
    fused: tuple[str, ...] = ()
    prefetch: str = "none"  # none | l1 | l2 | both
    dtype: DType = DType.F32
    use_4vnni: bool = False  # KNM 4VNNIW: quad-chained int16 pair dot-product
    acc_chain_limit: int = 0  # int16: max VNNI ops per int32 accumulator
    dequant_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.rb_p < 1 or self.rb_q < 1:
            raise CodegenError("register blocking factors must be >= 1")
        if self.prefetch not in ("none", "l1", "l2", "both"):
            raise CodegenError(f"unknown prefetch mode {self.prefetch!r}")
        for op in self.fused:
            if op not in ("bias", "relu", "bn", "add"):
                raise CodegenError(f"unknown fused op {op!r}")
        if self.dtype is DType.QI16F32 and self.vlen % 2:
            raise CodegenError("int16 kernels need an even VLEN")
        if self.use_4fma and self.vlen % 4:
            raise CodegenError("4FMA needs the reduction VLEN divisible by 4")
        if self.use_4fma and self.fused_memop:
            raise CodegenError("4FMA already fuses its memory operand")
        if self.kb_unroll > 1 and (self.w_skb == 0 or self.o_skb == 0):
            raise CodegenError("kb_unroll > 1 requires w_skb/o_skb strides")
        if self.kb_unroll > 1 and self.dtype is not DType.F32:
            raise CodegenError("kb_unroll is only implemented for f32")

    @property
    def variant_name(self) -> str:
        tag = "q16" if self.dtype is DType.QI16F32 else "f32"
        return (
            f"conv_{tag}_rb{self.rb_p}x{self.rb_q}_{self.R}x{self.S}"
            f"s{self.stride}_cb{self.cb_unroll}_kb{self.kb_unroll}"
            + ("_4fma" if self.use_4fma else "")
            + ("_b0" if self.zero_init else "")
            + ("".join("_" + f for f in self.fused))
        )

    @property
    def n_acc(self) -> int:
        return self.rb_p * self.rb_q * self.kb_unroll

    # ---- per-invocation footprints (drive prefetch + traffic model) -----
    def input_footprint(self) -> int:
        rows = (self.rb_p - 1) * self.stride + self.R
        cols = (self.rb_q - 1) * self.stride + self.S
        return self.cb_unroll * rows * cols * self.vlen

    def weight_footprint(self) -> int:
        return self.cb_unroll * self.kb_unroll * self.R * self.S * self.vlen * self.vlen

    def output_footprint(self) -> int:
        return self.rb_p * self.rb_q * self.kb_unroll * self.vlen


def _acc_index(desc: ConvKernelDesc, kbu: int, p: int, q: int) -> int:
    return (kbu * desc.rb_p + p) * desc.rb_q + q


def _acc_offset(desc: ConvKernelDesc, kbu: int, p: int, q: int) -> int:
    o_sh, o_sw = desc.o_strides
    return kbu * desc.o_skb + p * o_sh + q * o_sw


def _emit_acc_loads(
    uops: list[Uop], desc: ConvKernelDesc, acc: list[int], zero: bool
) -> None:
    for kbu in range(desc.kb_unroll):
        for p in range(desc.rb_p):
            for q in range(desc.rb_q):
                reg = acc[_acc_index(desc, kbu, p, q)]
                if zero:
                    uops.append(Uop(Op.VZERO, dst=reg))
                else:
                    uops.append(
                        Uop(
                            Op.VLOAD,
                            dst=reg,
                            tensor="O",
                            offset=_acc_offset(desc, kbu, p, q),
                        )
                    )


def _emit_acc_stores(
    uops: list[Uop], desc: ConvKernelDesc, acc: list[int], streaming: bool = False
) -> None:
    op = Op.VSTORE_NT if streaming else Op.VSTORE
    for kbu in range(desc.kb_unroll):
        for p in range(desc.rb_p):
            for q in range(desc.rb_q):
                uops.append(
                    Uop(
                        op,
                        src1=acc[_acc_index(desc, kbu, p, q)],
                        tensor="O",
                        offset=_acc_offset(desc, kbu, p, q),
                    )
                )


def _emit_fused_ops(
    uops: list[Uop],
    desc: ConvKernelDesc,
    acc: list[int],
    alloc: RegisterAllocator,
) -> None:
    """Post-ops applied while the output block is in registers (II-G).

    Per-channel parameters (bias/bn) address their buffers with the k_b
    sub-block stride VLEN when kb_unroll > 1.
    """
    for fop in desc.fused:
        if fop == "bias":
            breg = alloc.alloc("bias")
            for kbu in range(desc.kb_unroll):
                uops.append(
                    Uop(Op.VLOAD, dst=breg, tensor="B", offset=kbu * desc.vlen)
                )
                for p in range(desc.rb_p):
                    for q in range(desc.rb_q):
                        a = acc[_acc_index(desc, kbu, p, q)]
                        uops.append(Uop(Op.VADD, dst=a, src1=a, src2=breg))
            alloc.free(breg)
        elif fop == "bn":
            g = alloc.alloc("gamma")
            b = alloc.alloc("beta")
            for kbu in range(desc.kb_unroll):
                uops.append(Uop(Op.VLOAD, dst=g, tensor="G", offset=kbu * desc.vlen))
                uops.append(Uop(Op.VLOAD, dst=b, tensor="Bt", offset=kbu * desc.vlen))
                for p in range(desc.rb_p):
                    for q in range(desc.rb_q):
                        a = acc[_acc_index(desc, kbu, p, q)]
                        uops.append(Uop(Op.VMUL, dst=a, src1=a, src2=g))
                        uops.append(Uop(Op.VADD, dst=a, src1=a, src2=b))
            alloc.free(g)
            alloc.free(b)
        elif fop == "add":
            e = alloc.alloc("elt")
            for kbu in range(desc.kb_unroll):
                for p in range(desc.rb_p):
                    for q in range(desc.rb_q):
                        off = _acc_offset(desc, kbu, p, q)
                        a = acc[_acc_index(desc, kbu, p, q)]
                        uops.append(Uop(Op.VLOAD, dst=e, tensor="E", offset=off))
                        uops.append(Uop(Op.VADD, dst=a, src1=a, src2=e))
            alloc.free(e)
        elif fop == "relu":
            z = alloc.alloc("zero")
            uops.append(Uop(Op.VZERO, dst=z))
            for a in acc:
                uops.append(Uop(Op.VMAX, dst=a, src1=a, src2=z))
            alloc.free(z)


def _emit_f32_body(
    uops: list[Uop], desc: ConvKernelDesc, acc: list[int], alloc: RegisterAllocator
) -> None:
    i_scb, i_sh, i_sw = desc.i_strides
    w_scb, w_sr, w_ss, w_sc = desc.w_strides
    xstep = 4 if desc.use_4fma else 1
    n_wregs = desc.kb_unroll * xstep
    wregs = alloc.alloc_block(n_wregs, "wvec")
    if desc.use_4fma and any(
        wregs[i] + 1 != wregs[i + 1] for i in range(len(wregs) - 1)
    ):
        raise CodegenError("4FMA requires contiguous weight registers")
    breg = None
    if not (desc.fused_memop or desc.use_4fma):
        breg = alloc.alloc("bcast")

    for cb in range(desc.cb_unroll):
        for r in range(desc.R):
            for s in range(desc.S):
                if not desc.hoist_output:
                    first = desc.zero_init and cb == 0 and r == 0 and s == 0
                    _emit_acc_loads(uops, desc, acc, zero=first)
                for x in range(0, desc.vlen, xstep):
                    for kbu in range(desc.kb_unroll):
                        for j in range(xstep):
                            woff = (
                                cb * w_scb
                                + kbu * desc.w_skb
                                + r * w_sr
                                + s * w_ss
                                + (x + j) * w_sc
                            )
                            uops.append(
                                Uop(
                                    Op.VLOAD,
                                    dst=wregs[kbu * xstep + j],
                                    tensor="W",
                                    offset=woff,
                                )
                            )
                    for p in range(desc.rb_p):
                        for q in range(desc.rb_q):
                            ioff = (
                                cb * i_scb
                                + (p * desc.stride + r) * i_sh
                                + (q * desc.stride + s) * i_sw
                                + x
                            )
                            if breg is not None:
                                uops.append(
                                    Uop(Op.VBCAST, dst=breg, tensor="I", offset=ioff)
                                )
                            for kbu in range(desc.kb_unroll):
                                a = acc[_acc_index(desc, kbu, p, q)]
                                w0 = wregs[kbu * xstep]
                                if desc.use_4fma:
                                    uops.append(
                                        Uop(
                                            Op.V4FMA,
                                            dst=a,
                                            src1=w0,
                                            tensor="I",
                                            offset=ioff,
                                            imm=float(xstep),
                                        )
                                    )
                                elif desc.fused_memop:
                                    uops.append(
                                        Uop(
                                            Op.VFMA_MEM,
                                            dst=a,
                                            src1=w0,
                                            tensor="I",
                                            offset=ioff,
                                        )
                                    )
                                else:
                                    uops.append(
                                        Uop(Op.VFMA, dst=a, src1=w0, src2=breg)
                                    )
                if not desc.hoist_output:
                    _emit_acc_stores(uops, desc, acc)
    for r_ in wregs:
        alloc.free(r_)
    if breg is not None:
        alloc.free(breg)


def _emit_q16_body(
    uops: list[Uop], desc: ConvKernelDesc, acc: list[int], alloc: RegisterAllocator
) -> None:
    """int16 VNNI body (section II-K).

    ``acc`` here are the *fp32* result registers; a parallel set of int32
    accumulators is flushed into them every ``acc_chain_limit`` VVNNI ops to
    bound the accumulation chain (overflow avoidance), at the documented cost
    of extra register pressure and conversion work.
    """
    i_scb, i_sh, i_sw = desc.i_strides
    w_scb, w_sr, w_ss, w_sc = desc.w_strides
    nacc = len(acc)
    iacc = alloc.alloc_block(nacc, "iacc")
    tmp = alloc.alloc("cvt")
    quad = 4 if desc.use_4vnni else 1
    wregs = alloc.alloc_block(quad, "wvec")
    if quad > 1 and any(
        wregs[i] + 1 != wregs[i + 1] for i in range(len(wregs) - 1)
    ):
        raise CodegenError("4VNNI requires contiguous weight registers")
    breg = alloc.alloc("bcast") if quad == 1 else None
    pairs = desc.vlen // 2
    limit = desc.acc_chain_limit or (
        -(-desc.cb_unroll * desc.R * desc.S * pairs // quad)
    )
    for a in iacc:
        uops.append(Uop(Op.VZERO, dst=a))
    chain = 0

    def flush() -> None:
        nonlocal chain
        for a32, af in zip(iacc, acc):
            uops.append(
                Uop(Op.VCVT_I32F32, dst=tmp, src1=a32, imm=desc.dequant_scale)
            )
            uops.append(Uop(Op.VADD, dst=af, src1=af, src2=tmp))
            uops.append(Uop(Op.VZERO, dst=a32))
        chain = 0

    for cb in range(desc.cb_unroll):
        for r in range(desc.R):
            for s in range(desc.S):
                for x2 in range(0, pairs, quad):
                    # packed weight vectors: VLEN k-lanes x int16 pair each.
                    # W is in VNNI pair layout (vnni_pack_weights): pair
                    # group c2 = {2*c2, 2*c2+1} spans 2*VLEN contiguous
                    # int16 at element offset 2*c2*w_sc inside the block.
                    for j in range(quad):
                        woff = (
                            cb * w_scb + r * w_sr + s * w_ss
                            + (x2 + j) * 2 * w_sc
                        )
                        uops.append(
                            Uop(Op.VLOAD, dst=wregs[j], tensor="W", offset=woff)
                        )
                    for p in range(desc.rb_p):
                        for q in range(desc.rb_q):
                            ioff = (
                                cb * i_scb
                                + (p * desc.stride + r) * i_sh
                                + (q * desc.stride + s) * i_sw
                                + 2 * x2
                            )
                            a32 = iacc[p * desc.rb_q + q]
                            if quad > 1:
                                # 4VNNIW: one op, 4 weight regs, one memory
                                # operand covering 4 int16 pairs
                                uops.append(
                                    Uop(
                                        Op.VVNNI,
                                        dst=a32,
                                        src1=wregs[0],
                                        tensor="I",
                                        offset=ioff,
                                        imm=float(quad),
                                    )
                                )
                            else:
                                # imm=2: broadcast the int16 pair at offset
                                uops.append(
                                    Uop(
                                        Op.VBCAST,
                                        dst=breg,
                                        tensor="I",
                                        offset=ioff,
                                        imm=2.0,
                                    )
                                )
                                uops.append(
                                    Uop(Op.VVNNI, dst=a32, src1=wregs[0], src2=breg)
                                )
                    chain += 1
                    if chain >= limit:
                        flush()
    if chain:
        flush()
    for r in (tmp, *wregs, *iacc):
        alloc.free(r)
    if breg is not None:
        alloc.free(breg)


def _prefetch_uops(desc: ConvKernelDesc, line_elems: int) -> list[Uop]:
    """Second-level prefetches covering the *next* invocation's sub-tensors
    (section II-E).  Offsets are relative to the ``*_pf`` base arguments the
    caller threads through (Fig. 1's pi_off/pw_off/po_off)."""
    pf: list[Uop] = []
    if desc.prefetch not in ("l2", "both"):
        return pf
    for tensor, footprint in (
        ("I_pf", desc.input_footprint()),
        ("W_pf", desc.weight_footprint()),
        ("O_pf", desc.output_footprint()),
    ):
        for off in range(0, footprint, line_elems):
            pf.append(Uop(Op.PREFETCH2, tensor=tensor, offset=off))
    return pf


def interleave_prefetches(body: list[Uop], prefetches: list[Uop]) -> list[Uop]:
    """Sprinkle prefetch µops evenly through the FMA stream (section II-E:
    "software prefetch instructions are sprinkled throughout the FMA
    instructions")."""
    if not prefetches:
        return body
    out: list[Uop] = []
    step = max(1, len(body) // (len(prefetches) + 1))
    it = iter(prefetches)
    pending = next(it, None)
    for i, u in enumerate(body):
        out.append(u)
        if pending is not None and i % step == step - 1:
            out.append(pending)
            pending = next(it, None)
    while pending is not None:
        out.append(pending)
        pending = next(it, None)
    return out


@instrument_codegen("conv")
def generate_conv_kernel(desc: ConvKernelDesc) -> KernelProgram:
    """JIT one forward-convolution microkernel variant from its descriptor."""
    alloc = RegisterAllocator()
    acc = alloc.alloc_block(desc.n_acc, "acc")

    uops: list[Uop] = []
    if desc.hoist_output:
        _emit_acc_loads(uops, desc, acc, zero=desc.zero_init)

    body: list[Uop] = []
    if desc.dtype is DType.F32:
        _emit_f32_body(body, desc, acc, alloc)
    else:
        _emit_q16_body(body, desc, acc, alloc)

    # L1 prefetch of the next (r,s) weight block is subsumed in VLOADs here;
    # explicit L1 prefetches target the *input* rows used later in this call.
    if desc.prefetch in ("l1", "both"):
        line = 64 // desc.dtype.input_itemsize
        l1pf = [
            Uop(Op.PREFETCH1, tensor="I", offset=off)
            for off in range(0, desc.input_footprint(), line * 4)
        ]
        body = interleave_prefetches(body, l1pf)
    body = interleave_prefetches(
        body, _prefetch_uops(desc, 64 // desc.dtype.input_itemsize)
    )
    uops.extend(body)

    if desc.hoist_output:
        _emit_fused_ops(uops, desc, acc, alloc)
        _emit_acc_stores(uops, desc, acc)
    elif desc.fused:
        raise CodegenError("fused post-ops require hoisted output")

    prog = KernelProgram(
        name=desc.variant_name,
        vlen=desc.vlen,
        uops=uops,
        flops=2
        * desc.cb_unroll
        * desc.kb_unroll
        * desc.R
        * desc.S
        * desc.vlen
        * desc.rb_p
        * desc.rb_q
        * desc.vlen,
        reads={
            "I": desc.input_footprint(),
            "W": desc.weight_footprint(),
            **({} if desc.zero_init else {"O": desc.output_footprint()}),
        },
        writes={"O": desc.output_footprint()},
        meta={"desc": desc},
    )
    return prog
