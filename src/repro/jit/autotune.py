"""Register-blocking autotuner.

The heuristics in :mod:`repro.conv.blocking` encode the paper's reasoning
(latency window, register budget, divisibility); this module *searches* the
feasible ``(RB_P, RB_Q)`` space instead, pricing every candidate with the
timing model (or, optionally, the cycle-level scheduler) and returning the
best -- the "fine-tuning for each topology" that static approaches need and
a JIT can afford to do once per layer at setup time (section I).

Tests assert the heuristic plan is within a few percent of the tuned
optimum across Table I -- evidence the paper's closed-form rules capture
what an exhaustive search finds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.machine import MachineConfig
from repro.conv.blocking import RESERVED_REGS, BlockingPlan, choose_blocking
from repro.conv.params import ConvParams
from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.jit.timing import time_kernel
from repro.types import CodegenError, DType

__all__ = ["TuneResult", "autotune_blocking"]


@dataclass
class TuneResult:
    """Outcome of one layer's search."""

    plan: BlockingPlan
    cycles_per_flop: float
    candidates: int
    ranking: list[tuple[int, int, float]]  # (rb_p, rb_q, cycles/flop)

    @property
    def best(self) -> tuple[int, int]:
        return (self.plan.rb_p, self.plan.rb_q)


def _price(
    p: ConvParams, machine: MachineConfig, rb_p: int, rb_q: int, dtype: DType
) -> float:
    """Steady-state cycles/flop of the (rb_p, rb_q) main variant, including
    the amortized per-call overhead at this granularity."""
    vlen = machine.vlen(dtype)
    desc = ConvKernelDesc(
        vlen=vlen,
        rb_p=rb_p,
        rb_q=rb_q,
        R=p.R,
        S=p.S,
        stride=p.stride,
        i_strides=(p.Hp * p.Wp * vlen, p.Wp * vlen, vlen),
        w_strides=(p.R * p.S * vlen * vlen, p.S * vlen * vlen,
                   vlen * vlen, vlen),
        o_strides=(p.Q * vlen, vlen),
        cb_unroll=(p.C // vlen) if p.is_1x1() else 1,
        zero_init=True,
        fused_memop=not machine.has_4fma and dtype is DType.F32,
        use_4fma=machine.has_4fma and dtype is DType.F32,
        use_4vnni=machine.has_4fma and dtype is DType.QI16F32,
        dtype=dtype,
    )
    prog = generate_conv_kernel(desc)
    t = time_kernel(prog, machine)
    return t.cycles / prog.flops


def autotune_blocking(
    p: ConvParams,
    machine: MachineConfig,
    dtype: DType = DType.F32,
    max_candidates: int = 64,
) -> TuneResult:
    """Search feasible (RB_P, RB_Q) pairs; return the cheapest as a plan.

    Candidates must (a) fit the accumulator budget, (b) not exceed the
    spatial extents, and (c) divide the spatial extents *or* leave a
    remainder a second variant can cover (always true, so only (a)/(b)
    bind).  Ranking uses steady-state cycles/flop of the main variant.
    """
    budget = 32 - RESERVED_REGS
    if dtype is DType.QI16F32:
        budget = min(budget, 13)
    heur = choose_blocking(
        p, machine, DType.F32,
        acc_budget_cap=13 if dtype is DType.QI16F32 else None,
    )
    ranking: list[tuple[int, int, float]] = []
    seen = 0
    for rb_q in range(1, min(p.Q, budget) + 1):
        max_p = min(p.P, budget // rb_q)
        for rb_p in range(1, max_p + 1):
            if seen >= max_candidates:
                break
            # prefer low-waste candidates: skip blocks whose remainder
            # exceeds half the block (they'd spend most calls in tails)
            if p.Q % rb_q > rb_q // 2 and rb_q != p.Q:
                continue
            try:
                cpf = _price(p, machine, rb_p, rb_q, dtype)
            except CodegenError:
                continue
            # charge the tail work at the remainder variant's rate
            waste = 1.0
            if p.Q % rb_q:
                waste += 0.1 * (p.Q % rb_q) / p.Q
            if p.P % rb_p:
                waste += 0.1 * (p.P % rb_p) / p.P
            ranking.append((rb_p, rb_q, cpf * waste))
            seen += 1
    if not ranking:
        raise CodegenError(f"no feasible blocking for {p.describe()}")
    ranking.sort(key=lambda t: t[2])
    rb_p, rb_q, cpf = ranking[0]
    plan = BlockingPlan(
        vlen=machine.vlen(dtype),
        rb_p=rb_p,
        rb_q=rb_q,
        rb_p_rem=p.P % rb_p if rb_p > 1 else 0,
        rb_q_rem=p.Q % rb_q,
        loop_order=heur.loop_order,
        hoist_output=heur.hoist_output,
        oj_block=heur.oj_block,
        acc_regs=rb_p * rb_q,
    )
    return TuneResult(
        plan=plan, cycles_per_flop=cpf, candidates=len(ranking),
        ranking=ranking,
    )
