"""Register-blocking autotuner (deprecated shim).

.. deprecated::
    This module predates :mod:`repro.tune`, which searches the *full*
    mapspace (register blocks, cache blocks, loop order, prefetch),
    validates winners bit-exactly against the interpreter, and persists
    them in a tuning database that ``make_engine(tuned=...)`` consults.
    ``autotune_blocking`` remains for callers of the old (RB_P, RB_Q)-only
    search; new code should use :func:`repro.tune.search_mapspace` /
    :func:`repro.tune.tune_layer`.

The shim now enumerates through :func:`repro.tune.feasible_rb_pairs`
(the same register-budget and divisibility constraints the mapspace
uses) and ranks deterministically: ties on modeled cost break on
``(rb_p, rb_q)``, so the ranking -- and any artifact derived from it --
is identical run to run.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.arch.machine import MachineConfig
from repro.conv.blocking import (
    BlockingPlan,
    accumulator_budget,
    choose_blocking,
)
from repro.conv.params import ConvParams
from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.jit.timing import time_kernel
from repro.types import CodegenError, DType

__all__ = ["TuneResult", "autotune_blocking"]


@dataclass
class TuneResult:
    """Outcome of one layer's search."""

    plan: BlockingPlan
    cycles_per_flop: float
    candidates: int
    ranking: list[tuple[int, int, float]]  # (rb_p, rb_q, cycles/flop)

    @property
    def best(self) -> tuple[int, int]:
        return (self.plan.rb_p, self.plan.rb_q)


def _price(
    p: ConvParams, machine: MachineConfig, rb_p: int, rb_q: int, dtype: DType
) -> float:
    """Steady-state cycles/flop of the (rb_p, rb_q) main variant, including
    the amortized per-call overhead at this granularity."""
    vlen = machine.vlen(dtype)
    desc = ConvKernelDesc(
        vlen=vlen,
        rb_p=rb_p,
        rb_q=rb_q,
        R=p.R,
        S=p.S,
        stride=p.stride,
        i_strides=(p.Hp * p.Wp * vlen, p.Wp * vlen, vlen),
        w_strides=(p.R * p.S * vlen * vlen, p.S * vlen * vlen,
                   vlen * vlen, vlen),
        o_strides=(p.Q * vlen, vlen),
        cb_unroll=(p.C // vlen) if p.is_1x1() else 1,
        zero_init=True,
        fused_memop=not machine.has_4fma and dtype is DType.F32,
        use_4fma=machine.has_4fma and dtype is DType.F32,
        use_4vnni=machine.has_4fma and dtype is DType.QI16F32,
        dtype=dtype,
    )
    prog = generate_conv_kernel(desc)
    t = time_kernel(prog, machine)
    return t.cycles / prog.flops


def autotune_blocking(
    p: ConvParams,
    machine: MachineConfig,
    dtype: DType = DType.F32,
    max_candidates: int = 64,
) -> TuneResult:
    """Search feasible (RB_P, RB_Q) pairs; return the cheapest as a plan.

    .. deprecated:: use :func:`repro.tune.search_mapspace`, which also
        varies cache blocking, loop order and prefetch, and validates the
        winner bit-exactly before it can be persisted.

    Candidates come from :func:`repro.tune.feasible_rb_pairs` -- the
    accumulator budget and low-waste divisibility constraints shared with
    the full mapspace.  Ranking uses steady-state cycles/flop of the main
    variant with tail work surcharged, and is totally ordered: equal
    costs break on ``(rb_p, rb_q)``.
    """
    from repro.tune.mapspace import feasible_rb_pairs

    warnings.warn(
        "repro.jit.autotune is deprecated; use repro.tune.search_mapspace "
        "(full-mapspace search with validation and a persistent database)",
        DeprecationWarning,
        stacklevel=2,
    )
    heur = choose_blocking(
        p, machine, DType.F32,
        acc_budget_cap=accumulator_budget(machine, dtype),
    )
    ranking: list[tuple[int, int, float]] = []
    for rb_p, rb_q in feasible_rb_pairs(p, machine, dtype):
        if len(ranking) >= max_candidates:
            break
        try:
            cpf = _price(p, machine, rb_p, rb_q, dtype)
        except CodegenError:
            continue
        # charge the tail work at the remainder variant's rate
        waste = 1.0
        if p.Q % rb_q:
            waste += 0.1 * (p.Q % rb_q) / p.Q
        if p.P % rb_p:
            waste += 0.1 * (p.P % rb_p) / p.P
        ranking.append((rb_p, rb_q, cpf * waste))
    if not ranking:
        raise CodegenError(f"no feasible blocking for {p.describe()}")
    # deterministic total order: cost, then the candidate pair itself
    ranking.sort(key=lambda t: (t[2], t[0], t[1]))
    rb_p, rb_q, cpf = ranking[0]
    plan = BlockingPlan(
        vlen=machine.vlen(dtype),
        rb_p=rb_p,
        rb_q=rb_q,
        rb_p_rem=p.P % rb_p if rb_p > 1 else 0,
        rb_q_rem=p.Q % rb_q,
        loop_order=heur.loop_order,
        hoist_output=heur.hoist_output,
        oj_block=heur.oj_block,
        acc_regs=rb_p * rb_q,
    )
    return TuneResult(
        plan=plan, cycles_per_flop=cpf, candidates=len(ranking),
        ranking=ranking,
    )
