"""Weight-gradient microkernel generator (Algorithm 9, section II-J).

One invocation accumulates a ``VLEN_c x VLEN_k`` block of ``dW`` for a fixed
``(k_b, c_b, r, s)`` over a ``B_P x B_Q`` spatial block:

.. code-block:: text

    for p, q in B_P x B_Q:
        do = VLOAD dO[p, q, :]                     # k-lane vector
        for c in range(VLEN):
            acc[c] += do * broadcast(I[p*str, q*str, c])

The VLEN accumulators (one per input channel ``c``) are exactly the paper's
"register blocking up to a factor of VLEN": VLEN independent FMA chains.
The ``(r, s)`` shift and the block's position are supplied by the caller as
base offsets, so a single variant serves every filter tap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.isa import KernelProgram, Op, Uop
from repro.arch.registers import RegisterAllocator
from repro.obs.instrument import instrument_codegen
from repro.types import CodegenError, DType

__all__ = ["UpdKernelDesc", "generate_upd_kernel"]


@dataclass(frozen=True, slots=True)
class UpdKernelDesc:
    """One weight-gradient kernel variant.

    ``i_strides=(h, w)`` with channel stride 1; ``o_strides=(h, w)`` with
    k-lane stride 1.  ``dW`` block is stored with c-stride ``vlen`` and
    k-stride 1 (the KCRSck layout's innermost two dims).
    """

    vlen: int
    b_p: int
    b_q: int
    stride: int
    i_strides: tuple[int, int]
    o_strides: tuple[int, int]
    zero_init: bool = False
    fused_memop: bool = False  # fold the input broadcast into the FMA (SKX)
    dtype: DType = DType.F32

    def __post_init__(self) -> None:
        if self.b_p < 1 or self.b_q < 1:
            raise CodegenError("spatial block factors must be >= 1")

    @property
    def variant_name(self) -> str:
        return f"upd_{self.vlen}_bp{self.b_p}x{self.b_q}s{self.stride}" + (
            "_b0" if self.zero_init else ""
        )

    def input_footprint(self) -> int:
        return self.b_p * self.b_q * self.vlen  # strided pixels, one cb

    def output_footprint(self) -> int:
        return self.b_p * self.b_q * self.vlen


@instrument_codegen("upd")
def generate_upd_kernel(desc: UpdKernelDesc) -> KernelProgram:
    """Emit the µop stream for one weight-gradient microkernel."""
    alloc = RegisterAllocator()
    acc = alloc.alloc_block(desc.vlen, "acc")
    dreg = alloc.alloc("dovec")
    breg = alloc.alloc("bcast")
    i_sh, i_sw = desc.i_strides
    o_sh, o_sw = desc.o_strides

    uops: list[Uop] = []
    for c in range(desc.vlen):
        if desc.zero_init:
            uops.append(Uop(Op.VZERO, dst=acc[c]))
        else:
            uops.append(Uop(Op.VLOAD, dst=acc[c], tensor="dW", offset=c * desc.vlen))
    for p in range(desc.b_p):
        for q in range(desc.b_q):
            ooff = p * o_sh + q * o_sw
            uops.append(Uop(Op.VLOAD, dst=dreg, tensor="dO", offset=ooff))
            ibase = (p * desc.stride) * i_sh + (q * desc.stride) * i_sw
            for c in range(desc.vlen):
                if desc.fused_memop:
                    uops.append(
                        Uop(
                            Op.VFMA_MEM,
                            dst=acc[c],
                            src1=dreg,
                            tensor="I",
                            offset=ibase + c,
                        )
                    )
                else:
                    uops.append(
                        Uop(Op.VBCAST, dst=breg, tensor="I", offset=ibase + c)
                    )
                    uops.append(Uop(Op.VFMA, dst=acc[c], src1=dreg, src2=breg))
    for c in range(desc.vlen):
        uops.append(Uop(Op.VSTORE, src1=acc[c], tensor="dW", offset=c * desc.vlen))

    return KernelProgram(
        name=desc.variant_name,
        vlen=desc.vlen,
        uops=uops,
        flops=2 * desc.vlen * desc.vlen * desc.b_p * desc.b_q,
        reads={
            "I": desc.input_footprint(),
            "dO": desc.output_footprint(),
            **({} if desc.zero_init else {"dW": desc.vlen * desc.vlen}),
        },
        writes={"dW": desc.vlen * desc.vlen},
        meta={"desc": desc},
    )
