"""The ``stream_compiled`` tier: whole-segment compiled replay (ROADMAP #5).

The ``compiled`` tier already turns each µop program into one vectorized
closure, but the replay loop around it still pays Python per call-site per
replay: splitting CONV streaks into same-variant runs, re-slicing offset
arrays, rebuilding per-chunk base dicts, computing store-safe chunk
boundaries (:func:`~repro.jit.compile._unique_prefix` argsorts the offsets
of *every* replay), resolving fused-op kinds and ``as_strided`` geometry per
APPLY record, and allocating a fresh accumulator scratch per chunk.  None of
that depends on the data -- a frozen stream's offsets never change -- so all
of it can be hoisted to engine build time.

:func:`compile_stream` walks one :class:`~repro.streams.stream.FrozenStream`
plus its RLE segments **once** and emits a :class:`StreamProgram`: a flat
chain of pre-bound step closures,

* one :class:`_BatchChunkStep` per store-safe vector chunk of a
  same-variant run, carrying its pre-sliced base arrays, the dtype-resolved
  evaluation plan, and a preallocated accumulator-scratch cache;
* one :class:`_SingleCallStep` per length-1 chunk (pre-built int bases);
* one :class:`_ApplyStep`/:class:`_ApplyAddStep` per fused APPLY record
  with the output-block shape/strides resolved at compile time (the
  ``isinstance(op, EltwiseAdd)`` fusion branch becomes a step *class*);
* one :class:`_InterpCallStep` per call of a variant the vectorizing
  translator rejected (the same per-variant interpreter fallback the
  compiled tier performs, still bit-exact).

Replaying is then ``for step in steps: step(cell)`` -- no dict lookups, no
offset-list indexing, no fusion branching.  Only the *buffers* change
between replays, so each replay re-points one :class:`BufferCell` and runs
the chain.  The arithmetic inside every step is byte-for-byte the compiled
tier's (identical plans, identical chunk boundaries, identical f64
left-fold cumsum), so the tier inherits the compiled tier's bitwise
equality with the µop interpreter.

When a ``trace``/``touch`` observer is requested the conv steps are built
interpreter-backed instead (``StreamProgram.tier == "interpret"``), the
same trace-forces-interpreter contract as :meth:`CompiledKernel.bind`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.jit.compile import _unique_prefix  # noqa: F401 (shared chunking)
from repro.jit.interpreter import execute_kernel
from repro.jit.tiers import ExecutionTier, register_tier
from repro.obs.metrics import get_metrics
from repro.streams.rle import SegmentKind

__all__ = [
    "BufferCell",
    "StreamProgram",
    "StreamExecutor",
    "compile_stream",
]

register_tier(
    ExecutionTier.STREAM_COMPILED,
    batchable=True,
    trace_safe=False,
    degrade_to=ExecutionTier.COMPILED,
    description=(
        "whole-segment compiled replay: one pre-bound closure chain per "
        "frozen stream, preallocated scratch, zero per-call dispatch"
    ),
)


class BufferCell:
    """The only per-replay state: the concrete buffers (and the runtime
    dequantization scale) every pre-bound step reads through one level of
    indirection.  Re-pointed by the executor before each replay."""

    __slots__ = ("buffers", "scale")

    def __init__(self) -> None:
        self.buffers: dict[str, np.ndarray] = {}
        self.scale: float = 1.0


class _BatchChunkStep:
    """One store-safe vector chunk of a same-variant CONV run.

    The chunk boundary, the sliced int64 base arrays and the accumulator
    scratch are all fixed at compile time; the step body is a single
    ``plan.run`` against the cell's current buffers.  ``cache`` is shared
    between every step of the same (plan, chunk size) within one program
    -- the accumulator scratch is fully overwritten per evaluation, so
    sharing keeps the replay's resident scratch at one working set per
    variant instead of one per chunk.
    """

    __slots__ = ("plan", "bases", "batch", "cache")

    def __init__(self, plan, bases: dict, batch: int, cache: dict) -> None:
        self.plan = plan
        self.bases = bases
        self.batch = batch
        self.cache = cache

    def __call__(self, cell: BufferCell) -> None:
        self.plan.run(cell.buffers, self.bases, cell.scale, self.batch,
                      cache=self.cache)


class _SingleCallStep:
    """A chunk of length one: plain-int bases, no batch axis."""

    __slots__ = ("plan", "bases", "cache")

    def __init__(self, plan, bases: dict, cache: dict) -> None:
        self.plan = plan
        self.bases = bases
        self.cache = cache

    def __call__(self, cell: BufferCell) -> None:
        self.plan.run(cell.buffers, self.bases, cell.scale, None,
                      cache=self.cache)


class _InterpCallStep:
    """One interpreter-backed call: the fallback for variants the
    vectorizing translator rejected, and the whole-stream form when a
    trace/touch observer is attached."""

    __slots__ = ("program", "bases", "trace", "touch")

    def __init__(self, program, bases: dict, trace=None, touch=None) -> None:
        self.program = program
        self.bases = bases
        self.trace = trace
        self.touch = touch

    def __call__(self, cell: BufferCell) -> None:
        execute_kernel(
            self.program, cell.buffers, self.bases,
            trace=self.trace, touch=self.touch, scale=cell.scale,
        )


class _ApplyStep:
    """One fused APPLY record with pre-resolved block geometry."""

    __slots__ = ("op", "kb", "o_off", "shape", "strides", "out")

    def __init__(self, op, kb: int, o_off: int, shape, strides,
                 out: str) -> None:
        self.op = op
        self.kb = kb
        self.o_off = o_off
        self.shape = shape
        self.strides = strides
        self.out = out

    def __call__(self, cell: BufferCell) -> None:
        block = as_strided(
            cell.buffers[self.out][self.o_off:], self.shape, self.strides
        )
        self.op.apply_block(block, self.kb)


class _ApplyAddStep:
    """The :class:`~repro.conv.fusion.EltwiseAdd` APPLY form (needs the
    residual operand's matching block view)."""

    __slots__ = ("op", "kb", "o_off", "shape", "strides", "out")

    def __init__(self, op, kb: int, o_off: int, shape, strides,
                 out: str) -> None:
        self.op = op
        self.kb = kb
        self.o_off = o_off
        self.shape = shape
        self.strides = strides
        self.out = out

    def __call__(self, cell: BufferCell) -> None:
        block = as_strided(
            cell.buffers[self.out][self.o_off:], self.shape, self.strides
        )
        other = as_strided(
            self.op.other_flat[self.o_off:], self.shape, self.strides
        )
        self.op.apply_block(block, self.kb, other)


class StreamProgram:
    """The flat pre-bound closure chain for one frozen stream."""

    __slots__ = ("steps", "tier", "meta")

    def __init__(self, steps: list, tier: str, meta: dict) -> None:
        self.steps = steps
        self.tier = tier
        self.meta = meta

    def run(self, cell: BufferCell) -> None:
        for step in self.steps:
            step(cell)

    def __len__(self) -> int:
        return len(self.steps)


def _conv_chunks(
    stream, lo: int, hi: int, plan,
    args, extra_bases, out: list, meta: dict, caches: dict,
) -> None:
    """Lower one same-variant run [lo, hi) into chunk steps, reproducing
    :meth:`_CompiledBound.batch`'s store-safe chunking exactly (so the
    read-modify-write sequencing -- and hence every rounding step -- is
    identical to the compiled tier)."""
    i_arr = stream.i_off[lo:hi]
    w_arr = stream.w_off[lo:hi]
    o_arr = stream.o_off[lo:hi]
    arrs = (i_arr, w_arr, o_arr)
    n = hi - lo
    store_arrays = [
        arrs[pos] for pos, name in enumerate(args)
        if name in plan.store_tensors
    ]
    extra = dict(extra_bases) if extra_bases else {}

    def single(t_rel: int) -> None:
        bases = dict(extra)
        bases[args[0]] = int(i_arr[t_rel])
        bases[args[1]] = int(w_arr[t_rel])
        bases[args[2]] = int(o_arr[t_rel])
        cache = caches.setdefault((id(plan), None), {})
        out.append(_SingleCallStep(plan, bases, cache))
        meta["single_calls"] += 1

    if n == 1:
        # a lone call inside a streak replays through fn(...), not .batch
        single(0)
        return
    cap = plan.batch_cap
    clo = 0
    while clo < n:
        chi = min(n, clo + cap)
        for sa in store_arrays:
            chi = min(chi, clo + _unique_prefix(sa, clo, chi))
        if chi - clo == 1:
            single(clo)
            clo = chi
            continue
        bases = dict(extra)
        bases[args[0]] = i_arr[clo:chi]
        bases[args[1]] = w_arr[clo:chi]
        bases[args[2]] = o_arr[clo:chi]
        # one scratch per (variant, chunk size): equal-shape chunks reuse
        # the same accumulator arrays instead of each holding their own
        cache = caches.setdefault((id(plan), chi - clo), {})
        out.append(_BatchChunkStep(plan, bases, chi - clo, cache))
        meta["chunks"] += 1
        clo = chi


def _interp_calls(
    stream, lo: int, hi: int, program, args, extra_bases, out: list,
    meta: dict, trace=None, touch=None,
) -> None:
    """Lower run [lo, hi) to per-call interpreter steps with the prefetch
    bases (next conv call's offsets) pre-resolved."""
    i_off = stream.i_off_list
    w_off = stream.w_off_list
    o_off = stream.o_off_list
    next_conv = stream.next_conv_list
    a0, a1, a2 = args
    for t in range(lo, hi):
        nt = next_conv[t]
        bases = dict(extra_bases) if extra_bases else {}
        bases.update({
            a0: i_off[t], a1: w_off[t], a2: o_off[t],
            a0 + "_pf": i_off[nt], a1 + "_pf": w_off[nt],
            a2 + "_pf": o_off[nt],
        })
        out.append(_InterpCallStep(program, bases, trace=trace, touch=touch))
        meta["fallback_calls"] += 1


def compile_stream(
    stream,
    segments,
    compiled: Sequence,
    programs: Sequence,
    proto_buffers: dict[str, np.ndarray],
    *,
    args: Sequence[str] = ("I", "W", "O"),
    fused_ops: Sequence = (),
    shape_by_variant: Optional[dict] = None,
    extra_bases: Optional[dict] = None,
    trace=None,
    touch=None,
) -> StreamProgram:
    """Compile one frozen stream into a :class:`StreamProgram`.

    ``compiled``/``programs`` are the engine's variant tables
    (:class:`CompiledKernel` | ``None``, and the µop programs).
    ``proto_buffers`` supplies the buffer *dtypes* (zero-length arrays
    suffice) so each variant's dtype-resolved evaluation plan can be
    fetched up front -- the same cached plan the compiled tier binds, which
    is what makes the two tiers bit-identical.  ``trace``/``touch`` force
    interpreter-backed conv steps (exact memory traces).
    """
    from repro.conv.fusion import EltwiseAdd

    args = tuple(args)
    out_name = args[2]
    meta = {
        "conv_calls": int(stream.conv_calls),
        "apply_calls": int(stream.apply_calls),
        "chunks": 0,
        "single_calls": 0,
        "fallback_calls": 0,
    }
    forced_interp = trace is not None or touch is not None
    plans: dict[int, object] = {}
    caches: dict = {}  # (id(plan), chunk size) -> shared scratch dict
    steps: list = []
    kinds = stream.kinds_list
    i_off = stream.i_off_list
    w_off = stream.w_off_list
    o_off = stream.o_off_list
    apply_op = stream.apply_op_list
    metrics = get_metrics()

    for seg in segments:
        if seg.kind is SegmentKind.APPLY:
            t = seg.start
            op = fused_ops[apply_op[t]]
            shape, strides = shape_by_variant[i_off[t]]
            cls = _ApplyAddStep if isinstance(op, EltwiseAdd) else _ApplyStep
            steps.append(
                cls(op, w_off[t], o_off[t], shape, strides, out_name)
            )
            continue
        stop = seg.start + seg.info
        lo = seg.start
        while lo < stop:
            variant = kinds[lo]
            hi = lo + 1
            while hi < stop and kinds[hi] == variant:
                hi += 1
            ck = compiled[variant]
            if forced_interp or ck is None:
                if not forced_interp:
                    metrics.inc("exec.compile_fallbacks")
                _interp_calls(
                    stream, lo, hi, programs[variant], args, extra_bases,
                    steps, meta, trace=trace, touch=touch,
                )
            else:
                plan = plans.get(variant)
                if plan is None:
                    plan = plans[variant] = ck._plan_for(proto_buffers)
                _conv_chunks(
                    stream, lo, hi, plan, args, extra_bases, steps, meta,
                    caches,
                )
            lo = hi

    tier = "interpret" if forced_interp else "stream_compiled"
    metrics.inc("jit.stream_programs")
    metrics.inc("jit.stream_chunks", meta["chunks"])
    return StreamProgram(steps, tier, meta)


class StreamExecutor:
    """All of one engine's thread streams, compiled once, re-bound per
    replay.  Each stream owns its own :class:`BufferCell` (and thereby its
    own scratch), so parallel replay of disjoint streams stays race-free.
    """

    __slots__ = ("programs", "cells")

    def __init__(self, programs: Sequence[StreamProgram]) -> None:
        self.programs = list(programs)
        self.cells = [BufferCell() for _ in self.programs]

    def meta(self) -> dict:
        """Aggregated segment-closure metadata (persisted by the serve
        warm cache; surfaced in serve stats)."""
        agg = {
            "streams": len(self.programs),
            "tier": self.programs[0].tier if self.programs
            else "stream_compiled",
        }
        for key in ("conv_calls", "apply_calls", "chunks", "single_calls",
                    "fallback_calls"):
            agg[key] = sum(p.meta[key] for p in self.programs)
        return agg

    def run(
        self,
        buffers: dict[str, np.ndarray],
        scale: float = 1.0,
        parallel: bool = False,
    ) -> None:
        """Replay every stream against ``buffers`` (one shared dict)."""
        for cell in self.cells:
            cell.buffers = buffers
            cell.scale = scale
        if parallel and len(self.programs) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(
                max_workers=len(self.programs)
            ) as pool:
                futures = [
                    pool.submit(prog.run, cell)
                    for prog, cell in zip(self.programs, self.cells)
                ]
                for f in futures:
                    f.result()
        else:
            for prog, cell in zip(self.programs, self.cells):
                prog.run(cell)
