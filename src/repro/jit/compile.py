"""Compiled execution tier: µop programs vectorized into numpy closures.

The replay loop is branch-free on purpose (section II-H) -- the microkernel
is the only hot code.  :mod:`repro.jit.interpreter` walks every µop in Python
per kernel call, which makes the *simulation of the register file* the hot
code instead.  This module is the reproduction's analogue of LIBXSMM's JIT
encoding step (section II-D): each :class:`~repro.arch.isa.KernelProgram` is
translated **once** into a closure that computes the whole ``RB_P x RB_Q``
register block with batched numpy ops, and replay dispatches into that.

Translation is a symbolic execution of the µop stream: the 32-entry register
file holds expression nodes instead of vectors, stores capture the final
expression per output tile, and isomorphic accumulator chains across the
register block collapse into one gather + running-sum evaluation.  The
compiled tier is **bit-identical** to the interpreter by construction:

* every load is widened to float64 exactly like the interpreter's
  ``astype(np.float64)``;
* each accumulator's FMA chain is evaluated with ``np.cumsum`` over the
  stacked term products -- a strictly sequential left-to-right float64 sum,
  i.e. the same rounding order as the interpreter's ``acc += w * b`` loop;
* fused post-ops, int16 chain-limit flushes (``VCVT``/``VADD``) and
  store/reload round-trips (un-hoisted variants) stay explicit expression
  nodes, so their evaluation order and intermediate precision are preserved.

Prefetch µops are no-ops in this tier.  When a ``MemTrace``/cache-simulator
observer is attached, :meth:`CompiledKernel.bind` silently returns an
interpreter-backed closure instead so traces stay exact.

Programs a symbolic pass cannot prove safe (overlapping stores, register
reads the generators never emit) raise :class:`CompileUnsupported`; callers
fall back to another tier.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

import numpy as np

from repro.arch.isa import KernelProgram, Op
from repro.jit.interpreter import execute_kernel
from repro.jit.tiers import (
    EXECUTION_TIERS,
    ExecutionTier,
    UnknownTierError,
    as_tier,
)
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.types import ReproError, UnsupportedError

__all__ = [
    "CompileUnsupported",
    "TierMismatchError",
    "CompiledKernel",
    "compile_kernel",
    "EXECUTION_TIERS",
    "ExecutionTier",
    "UnknownTierError",
    "resolve_execution_tier",
    "set_default_execution_tier",
    "get_default_execution_tier",
]


class CompileUnsupported(UnsupportedError):
    """The µop program uses a pattern the vectorizing translator rejects."""


class TierMismatchError(ReproError):
    """``verify`` mode found a bitwise difference between execution tiers."""


# ----------------------------------------------------------------------
# execution-tier selection (the enum + capability registry live in
# repro.jit.tiers; this module keeps the process-wide default)
# ----------------------------------------------------------------------
_default_tier = ExecutionTier.COMPILED


def set_default_execution_tier(tier) -> ExecutionTier:
    """Set the process-wide default tier; returns the previous default."""
    global _default_tier
    prev, _default_tier = _default_tier, as_tier(tier)
    return prev


def get_default_execution_tier() -> ExecutionTier:
    return _default_tier


def resolve_execution_tier(tier) -> ExecutionTier:
    """Map an engine's ``execution_tier`` argument (None = process default,
    legacy strings coerced) to a validated :class:`ExecutionTier`."""
    if tier is None:
        return _default_tier
    return as_tier(tier)


# ----------------------------------------------------------------------
# symbolic values (what a register holds during the compile-time walk)
# ----------------------------------------------------------------------
class _SZero:
    __slots__ = ()


_ZERO = _SZero()


class _SLoad:
    __slots__ = ("tensor", "off")

    def __init__(self, tensor: str, off: int) -> None:
        self.tensor = tensor
        self.off = off


class _SBcast:
    """Scalar broadcast ``full(vlen, buf[off])``."""

    __slots__ = ("tensor", "off")

    def __init__(self, tensor: str, off: int) -> None:
        self.tensor = tensor
        self.off = off


class _SPair:
    """int16 pair broadcast (VNNI source form)."""

    __slots__ = ("tensor", "off")

    def __init__(self, tensor: str, off: int) -> None:
        self.tensor = tensor
        self.off = off


class _SCast:
    """Store-forwarded reload: the stored value round-tripped through the
    buffer dtype (f64 -> buf.dtype -> f64)."""

    __slots__ = ("tensor", "sub")

    def __init__(self, tensor: str, sub) -> None:
        self.tensor = tensor
        self.sub = sub


class _SScale:
    """VCVT_I32F32: ``sub * imm`` (imm multiplied by the runtime scale)."""

    __slots__ = ("sub", "imm")

    def __init__(self, sub, imm: float) -> None:
        self.sub = sub
        self.imm = imm


class _SBin:
    __slots__ = ("kind", "a", "b")

    def __init__(self, kind: str, a, b) -> None:
        self.kind = kind
        self.a = a
        self.b = b


class _TFma:
    """One chain step: ``acc += w * scalar(tensor[off])``."""

    __slots__ = ("w", "tensor", "off")

    def __init__(self, w, tensor: str, off: int) -> None:
        self.w = w
        self.tensor = tensor
        self.off = off


class _TVnni:
    """One chain step: ``acc += w_even * t[off] + w_odd * t[off+1]``."""

    __slots__ = ("w", "tensor", "off")

    def __init__(self, w, tensor: str, off: int) -> None:
        self.w = w
        self.tensor = tensor
        self.off = off


class _SAcc:
    """A sequential FMA chain: ``init`` followed by ordered terms."""

    __slots__ = ("init", "terms")

    def __init__(self, init, terms: tuple) -> None:
        self.init = init
        self.terms = terms


def _chain(cur, term):
    if isinstance(cur, _SAcc):
        return _SAcc(cur.init, cur.terms + (term,))
    return _SAcc(cur, (term,))


# ----------------------------------------------------------------------
# symbolic execution of the µop stream
# ----------------------------------------------------------------------
def _symbolize(prog: KernelProgram):
    """Walk the program once; return the ordered list of final stores as
    ``(tensor, offset, node)`` plus the set of referenced tensors."""
    vlen = prog.vlen
    regs: list = [None] * 32
    stores: dict[tuple[str, int], object] = {}
    store_order: list[tuple[str, int]] = []
    store_ranges: dict[str, list[tuple[int, int]]] = {}
    tensors: set[str] = set()

    def reg(idx: int):
        v = regs[idx]
        if v is None:
            raise CompileUnsupported(
                f"{prog.name}: read of uninitialized register {idx}"
            )
        return v

    def check_no_store_overlap(tensor: str, lo: int, hi: int) -> None:
        for slo, shi in store_ranges.get(tensor, ()):
            if lo < shi and slo < hi:
                raise CompileUnsupported(
                    f"{prog.name}: load [{lo},{hi}) of {tensor!r} partially "
                    f"overlaps an earlier store [{slo},{shi})"
                )

    for u in prog.uops:
        op = u.op
        if op is Op.VZERO:
            regs[u.dst] = _ZERO
        elif op is Op.VLOAD:
            tensors.add(u.tensor)
            fwd = stores.get((u.tensor, u.offset))
            if fwd is not None:
                regs[u.dst] = _SCast(u.tensor, fwd)
            else:
                check_no_store_overlap(u.tensor, u.offset, u.offset + vlen)
                regs[u.dst] = _SLoad(u.tensor, u.offset)
        elif op is Op.VBCAST:
            tensors.add(u.tensor)
            width = 2 if u.imm == 2.0 else 1
            check_no_store_overlap(u.tensor, u.offset, u.offset + width)
            cls = _SPair if u.imm == 2.0 else _SBcast
            regs[u.dst] = cls(u.tensor, u.offset)
        elif op in (Op.VSTORE, Op.VSTORE_NT):
            tensors.add(u.tensor)
            key = (u.tensor, u.offset)
            if key not in stores:
                store_order.append(key)
                store_ranges.setdefault(u.tensor, []).append(
                    (u.offset, u.offset + vlen)
                )
            stores[key] = reg(u.src1)
        elif op is Op.VFMA:
            w, b = reg(u.src1), reg(u.src2)
            if not isinstance(w, _SLoad) or not isinstance(b, _SBcast):
                raise CompileUnsupported(
                    f"{prog.name}: VFMA operands are not (load, broadcast)"
                )
            regs[u.dst] = _chain(reg(u.dst), _TFma(w, b.tensor, b.off))
        elif op is Op.VFMA_MEM:
            tensors.add(u.tensor)
            w = reg(u.src1)
            if not isinstance(w, _SLoad):
                raise CompileUnsupported(
                    f"{prog.name}: VFMA_MEM weight operand is not a load"
                )
            check_no_store_overlap(u.tensor, u.offset, u.offset + 1)
            regs[u.dst] = _chain(reg(u.dst), _TFma(w, u.tensor, u.offset))
        elif op is Op.V4FMA:
            tensors.add(u.tensor)
            depth = int(u.imm) or 4
            check_no_store_overlap(u.tensor, u.offset, u.offset + depth)
            cur = reg(u.dst)
            for j in range(depth):
                w = reg(u.src1 + j)
                if not isinstance(w, _SLoad):
                    raise CompileUnsupported(
                        f"{prog.name}: V4FMA weight operand is not a load"
                    )
                cur = _chain(cur, _TFma(w, u.tensor, u.offset + j))
            regs[u.dst] = cur
        elif op is Op.VVNNI:
            cur = reg(u.dst)
            if u.tensor is not None:
                tensors.add(u.tensor)
                depth = int(u.imm) or 4
                check_no_store_overlap(
                    u.tensor, u.offset, u.offset + 2 * depth
                )
                for j in range(depth):
                    w = reg(u.src1 + j)
                    if not isinstance(w, _SLoad):
                        raise CompileUnsupported(
                            f"{prog.name}: VVNNI weight operand is not a load"
                        )
                    cur = _chain(cur, _TVnni(w, u.tensor, u.offset + 2 * j))
            else:
                w, a = reg(u.src1), reg(u.src2)
                if not isinstance(w, _SLoad) or not isinstance(a, _SPair):
                    raise CompileUnsupported(
                        f"{prog.name}: VVNNI operands are not "
                        f"(load, pair-broadcast)"
                    )
                cur = _chain(cur, _TVnni(w, a.tensor, a.off))
            regs[u.dst] = cur
        elif op is Op.VADD:
            regs[u.dst] = _SBin("add", reg(u.src1), reg(u.src2))
        elif op is Op.VMUL:
            regs[u.dst] = _SBin("mul", reg(u.src1), reg(u.src2))
        elif op is Op.VMAX:
            regs[u.dst] = _SBin("max", reg(u.src1), reg(u.src2))
        elif op is Op.VCVT_I32F32:
            regs[u.dst] = _SScale(reg(u.src1), u.imm)
        elif op is Op.PREFETCH1 or op is Op.PREFETCH2:
            pass  # no-ops in the compiled tier (see module docstring)
        else:  # pragma: no cover - exhaustive over Op
            raise CompileUnsupported(f"{prog.name}: unhandled op {op}")

    final = [(t, off, stores[(t, off)]) for (t, off) in store_order]
    return final, tensors


# ----------------------------------------------------------------------
# structural signatures (offset-free) -- stores with equal signatures are
# evaluated together as one batched register block
# ----------------------------------------------------------------------
def _term_sig(term, memo) -> tuple:
    tag = "f" if isinstance(term, _TFma) else "v"
    return (tag, _sig(term.w, memo), term.tensor)


def _sig(node, memo: dict) -> tuple:
    got = memo.get(id(node))
    if got is not None:
        return got
    if isinstance(node, _SZero):
        s = ("z",)
    elif isinstance(node, _SLoad):
        s = ("l", node.tensor)
    elif isinstance(node, _SBcast):
        s = ("b", node.tensor)
    elif isinstance(node, _SPair):
        s = ("p", node.tensor)
    elif isinstance(node, _SCast):
        s = ("c", node.tensor, _sig(node.sub, memo))
    elif isinstance(node, _SScale):
        s = ("s", node.imm, _sig(node.sub, memo))
    elif isinstance(node, _SBin):
        s = ("o", node.kind, _sig(node.a, memo), _sig(node.b, memo))
    elif isinstance(node, _SAcc):
        s = (
            "a",
            _sig(node.init, memo),
            tuple(_term_sig(t, memo) for t in node.terms),
        )
    else:  # pragma: no cover
        raise CompileUnsupported(f"unknown symbolic node {type(node)}")
    memo[id(node)] = s
    return s


# ----------------------------------------------------------------------
# evaluation plan: gather indices + cumsum reductions, one per store group
# ----------------------------------------------------------------------
class _Ctx:
    __slots__ = ("buffers", "bases", "scale", "batch", "cache")

    def __init__(self, buffers, bases, scale, batch, cache=None) -> None:
        self.buffers = buffers
        self.bases = bases
        self.scale = scale
        self.batch = batch  # None for a single call, else the batch size B
        # optional per-call-site scratch dict: accumulator chains reuse
        # their term buffers across replays (the stream_compiled tier
        # preallocates one cache per compiled chunk)
        self.cache = cache


def _f64(a: np.ndarray) -> np.ndarray:
    return a.astype(np.float64) if a.dtype != np.float64 else a


class _EZero:
    __slots__ = ("m", "n")

    def __init__(self, m: int, n: int) -> None:
        self.m = m
        self.n = n

    def eval(self, ctx: _Ctx) -> np.ndarray:
        if ctx.batch is None:
            return np.zeros((self.m, self.n))
        return np.zeros((ctx.batch, self.m, self.n))


class _EGather:
    """Vector load: ``buf[base + off : base + off + n]`` per member."""

    __slots__ = ("tensor", "idx")

    def __init__(self, tensor: str, offs: np.ndarray, n: int) -> None:
        self.tensor = tensor
        self.idx = offs[:, None] + np.arange(n)  # (m, n)

    def eval(self, ctx: _Ctx) -> np.ndarray:
        buf = ctx.buffers[self.tensor]
        base = ctx.bases.get(self.tensor, 0)
        if ctx.batch is None:
            return _f64(buf[self.idx + base])
        return _f64(buf[self.idx[None] + base.reshape(-1, 1, 1)])


class _EBcastS:
    """Scalar broadcast materialized as an (m, n) block."""

    __slots__ = ("tensor", "offs", "n")

    def __init__(self, tensor: str, offs: np.ndarray, n: int) -> None:
        self.tensor = tensor
        self.offs = offs  # (m,)
        self.n = n

    def eval(self, ctx: _Ctx) -> np.ndarray:
        buf = ctx.buffers[self.tensor]
        base = ctx.bases.get(self.tensor, 0)
        if ctx.batch is None:
            v = _f64(buf[self.offs + base])
        else:
            v = _f64(buf[self.offs[None] + base.reshape(-1, 1)])
        return np.broadcast_to(v[..., None], v.shape + (self.n,))


class _ECast:
    __slots__ = ("tensor", "sub")

    def __init__(self, tensor: str, sub) -> None:
        self.tensor = tensor
        self.sub = sub

    def eval(self, ctx: _Ctx) -> np.ndarray:
        dt = ctx.buffers[self.tensor].dtype
        return self.sub.eval(ctx).astype(dt).astype(np.float64)


class _EScale:
    __slots__ = ("sub", "imm", "check")

    def __init__(self, sub, imm: float, check: bool) -> None:
        self.sub = sub
        self.imm = imm
        self.check = check  # integer VNNI chunk: detect int32 overflow

    def eval(self, ctx: _Ctx) -> np.ndarray:
        v = self.sub.eval(ctx)
        if self.check:
            peak = np.abs(v).max(initial=0.0)
            if peak >= 2.0**31:
                from repro.quant.qkernels import QuantOverflowError

                raise QuantOverflowError(
                    f"int32 overflow in compiled q16 kernel "
                    f"(|acc|={int(peak)})"
                )
        return v * (self.imm * ctx.scale)


class _EBin:
    __slots__ = ("kind", "a", "b")

    def __init__(self, kind: str, a, b) -> None:
        self.kind = kind
        self.a = a
        self.b = b

    def eval(self, ctx: _Ctx) -> np.ndarray:
        a = self.a.eval(ctx)
        b = self.b.eval(ctx)
        if self.kind == "add":
            return a + b
        if self.kind == "mul":
            return a * b
        return np.maximum(a, b)


class _RunFma:
    """A maximal run of FMA terms sharing (weight tensor, scalar tensor)."""

    __slots__ = ("T", "wtensor", "widx", "stensor", "sidx")

    def __init__(self, wtensor, woffs, wn, stensor, soffs) -> None:
        self.T = woffs.shape[0]
        self.wtensor = wtensor
        self.widx = woffs[:, :, None] + np.arange(wn)  # (T, m, n)
        self.stensor = stensor
        self.sidx = soffs  # (T, m)

    def fill(self, out: np.ndarray, ctx: _Ctx) -> None:
        wb = ctx.buffers[self.wtensor]
        sb = ctx.buffers[self.stensor]
        wbase = ctx.bases.get(self.wtensor, 0)
        sbase = ctx.bases.get(self.stensor, 0)
        if ctx.batch is None:
            w = _f64(wb[self.widx + wbase])
            s = _f64(sb[self.sidx + sbase])
        else:
            w = _f64(wb[self.widx[:, None] + wbase.reshape(1, -1, 1, 1)])
            s = _f64(sb[self.sidx[:, None] + sbase.reshape(1, -1, 1)])
        np.multiply(w, s[..., None], out=out)


class _RunVnni:
    """A maximal run of VNNI terms: int16 pair dot-products."""

    __slots__ = ("T", "wtensor", "widx", "stensor", "sidx")

    def __init__(self, wtensor, woffs, wn, stensor, soffs) -> None:
        self.T = woffs.shape[0]
        self.wtensor = wtensor
        self.widx = woffs[:, :, None] + np.arange(wn)  # (T, m, 2n)
        self.stensor = stensor
        self.sidx = soffs  # (T, m)

    def fill(self, out: np.ndarray, ctx: _Ctx) -> None:
        wb = ctx.buffers[self.wtensor]
        sb = ctx.buffers[self.stensor]
        wbase = ctx.bases.get(self.wtensor, 0)
        sbase = ctx.bases.get(self.stensor, 0)
        if ctx.batch is None:
            w = _f64(wb[self.widx + wbase])
            s0 = _f64(sb[self.sidx + sbase])
            s1 = _f64(sb[self.sidx + (sbase + 1)])
        else:
            w = _f64(wb[self.widx[:, None] + wbase.reshape(1, -1, 1, 1)])
            s0 = _f64(sb[self.sidx[:, None] + sbase.reshape(1, -1, 1)])
            s1 = _f64(sb[self.sidx[:, None] + (sbase + 1).reshape(1, -1, 1)])
        # one chain step is w_even*a0 + w_odd*a1, matching the interpreter's
        # reshape(vlen, 2) pair product exactly (mul, mul, add in f64)
        np.multiply(w[..., 0::2], s0[..., None], out=out)
        out += w[..., 1::2] * s1[..., None]


class _EAcc:
    """Sequential accumulator chain, evaluated with an order-exact cumsum."""

    __slots__ = ("init", "runs", "total", "integer")

    def __init__(self, init, runs: list, integer: bool) -> None:
        self.init = init
        self.runs = runs
        self.total = sum(r.T for r in runs)
        self.integer = integer

    def eval(self, ctx: _Ctx) -> np.ndarray:
        init = self.init.eval(ctx)
        shape = (self.total + 1,) + init.shape
        terms = None
        if ctx.cache is not None:
            terms = ctx.cache.get(id(self))
            if terms is not None and terms.shape != shape:
                terms = None
        if terms is None:
            terms = np.empty(shape)
            if ctx.cache is not None:
                ctx.cache[id(self)] = terms
        terms[0] = init
        pos = 1
        for run in self.runs:
            run.fill(terms[pos : pos + run.T], ctx)
            pos += run.T
        # cumsum along the chain axis is a strict left fold in f64 -- the
        # same rounding sequence as the interpreter's per-µop `acc += w*b`
        np.cumsum(terms, axis=0, out=terms)
        return terms[-1]


class _EStore:
    __slots__ = ("tensor", "idx", "node")

    def __init__(self, tensor: str, offs: np.ndarray, n: int, node) -> None:
        self.tensor = tensor
        self.idx = offs[:, None] + np.arange(n)  # (m, n)
        self.node = node

    def execute(self, ctx: _Ctx) -> None:
        val = self.node.eval(ctx)
        buf = ctx.buffers[self.tensor]
        base = ctx.bases.get(self.tensor, 0)
        if ctx.batch is None:
            buf[self.idx + base] = val
        else:
            buf[self.idx[None] + base.reshape(-1, 1, 1)] = val


class _Plan:
    """Dtype-resolved evaluation plan: ordered store groups."""

    __slots__ = ("stores", "store_tensors", "batch_cap")

    def __init__(self, stores: list, store_tensors: set, est: int) -> None:
        self.stores = stores
        self.store_tensors = store_tensors
        # bound the working set of one batched evaluation (~16 MB of f64)
        self.batch_cap = max(1, 2_000_000 // max(1, est))

    def run(self, buffers, bases, scale, batch, cache=None) -> None:
        ctx = _Ctx(buffers, bases, scale, batch, cache)
        for st in self.stores:
            st.execute(ctx)


def _build_plan(final_stores, vlen: int, widths: dict) -> _Plan:
    """Group isomorphic stores and lower each group to eval nodes."""

    def width(tensor: str) -> int:
        return widths[tensor] * vlen

    def build(rep, members):
        m = len(members)
        if isinstance(rep, _SZero):
            return _EZero(m, vlen)
        if isinstance(rep, _SLoad):
            offs = np.array([node.off for node in members], dtype=np.int64)
            return _EGather(rep.tensor, offs, width(rep.tensor))
        if isinstance(rep, _SBcast):
            offs = np.array([node.off for node in members], dtype=np.int64)
            return _EBcastS(rep.tensor, offs, vlen)
        if isinstance(rep, _SPair):
            raise CompileUnsupported(
                "pair-broadcast register escapes its VNNI consumer"
            )
        if isinstance(rep, _SCast):
            if widths[rep.tensor] != 1:
                raise CompileUnsupported(
                    "store-forwarding through an int16 tensor"
                )
            return _ECast(rep.tensor, build(rep.sub, [n.sub for n in members]))
        if isinstance(rep, _SScale):
            sub = build(rep.sub, [n.sub for n in members])
            return _EScale(sub, rep.imm, getattr(sub, "integer", False))
        if isinstance(rep, _SBin):
            return _EBin(
                rep.kind,
                build(rep.a, [n.a for n in members]),
                build(rep.b, [n.b for n in members]),
            )
        if isinstance(rep, _SAcc):
            init = build(rep.init, [n.init for n in members])
            runs: list = []
            nterms = len(rep.terms)
            t0 = 0
            while t0 < nterms:
                ref = rep.terms[t0]
                kind = type(ref)
                t1 = t0 + 1
                while (
                    t1 < nterms
                    and type(rep.terms[t1]) is kind
                    and rep.terms[t1].w.tensor == ref.w.tensor
                    and rep.terms[t1].tensor == ref.tensor
                ):
                    t1 += 1
                woffs = np.array(
                    [
                        [node.terms[t].w.off for node in members]
                        for t in range(t0, t1)
                    ],
                    dtype=np.int64,
                )
                soffs = np.array(
                    [
                        [node.terms[t].off for node in members]
                        for t in range(t0, t1)
                    ],
                    dtype=np.int64,
                )
                wt, st = ref.w.tensor, ref.tensor
                if kind is _TVnni:
                    if widths[wt] != 2:
                        raise CompileUnsupported(
                            "VNNI weights must come from an int16 tensor"
                        )
                    runs.append(_RunVnni(wt, woffs, width(wt), st, soffs))
                else:
                    if widths[wt] != 1:
                        raise CompileUnsupported(
                            "FMA weight vector width != accumulator width"
                        )
                    runs.append(_RunFma(wt, woffs, width(wt), st, soffs))
                t0 = t1
            integer = isinstance(init, _EZero) and all(
                isinstance(r, _RunVnni) for r in runs
            )
            return _EAcc(init, runs, integer)
        raise CompileUnsupported(
            f"unknown symbolic node {type(rep)}"
        )  # pragma: no cover

    memo: dict = {}
    groups: dict[tuple, list] = {}
    order: list[tuple] = []
    for tensor, off, node in final_stores:
        key = (tensor, _sig(node, memo))
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((off, node))

    stores: list[_EStore] = []
    est_total = 0
    store_tensors = {t for t, _off, _node in final_stores}
    for tensor, sig in order:
        entries = groups[(tensor, sig)]
        offs = np.array([off for off, _ in entries], dtype=np.int64)
        rep = entries[0][1]
        node = build(rep, [n for _, n in entries])
        m = len(entries)
        chain = node.total + 1 if isinstance(node, _EAcc) else 1
        est_total += chain * m * vlen
        stores.append(_EStore(tensor, offs, vlen, node))
    return _Plan(stores, store_tensors, est_total)


def _unique_prefix(a: np.ndarray, lo: int, hi: int) -> int:
    """Length of the longest prefix of ``a[lo:hi]`` with no repeated value."""
    sl = a[lo:hi]
    if sl.size <= 1:
        return sl.size
    perm = np.argsort(sl, kind="stable")
    srt = sl[perm]
    eq = srt[1:] == srt[:-1]
    if not eq.any():
        return sl.size
    return int(perm[1:][eq].min())


class _CompiledBound:
    """A compiled kernel bound to concrete buffers; replay-callable."""

    tier = "compiled"

    __slots__ = ("plan", "buffers", "args", "scale", "extra", "_store_args")

    def __init__(self, plan, buffers, args, scale, extra) -> None:
        self.plan = plan
        self.buffers = buffers
        self.args = args
        self.scale = scale
        self.extra = extra
        self._store_args = [
            pos
            for pos, name in enumerate(args)
            if name in plan.store_tensors
        ]

    def _bases(self) -> dict:
        return dict(self.extra) if self.extra else {}

    def __call__(self, i_off, w_off, o_off, pi=0, pw=0, po=0) -> None:
        bases = self._bases()
        bases[self.args[0]] = i_off
        bases[self.args[1]] = w_off
        bases[self.args[2]] = o_off
        self.plan.run(self.buffers, bases, self.scale, None)

    def batch(self, i_arr, w_arr, o_arr) -> None:
        """Run a streak of calls at once.

        Calls are grouped into vector chunks; a chunk never repeats a base
        offset of a stored tensor, so read-modify-write chains across calls
        (e.g. the ``c_b``-outer loop order revisiting an output block, or
        the update pass re-accumulating one ``dW`` block) keep their exact
        sequential semantics.
        """
        arrs = (
            np.asarray(i_arr, dtype=np.int64),
            np.asarray(w_arr, dtype=np.int64),
            np.asarray(o_arr, dtype=np.int64),
        )
        n = arrs[0].size
        store_arrays = [arrs[pos] for pos in self._store_args]
        cap = self.plan.batch_cap
        lo = 0
        while lo < n:
            hi = min(n, lo + cap)
            for sa in store_arrays:
                hi = min(hi, lo + _unique_prefix(sa, lo, hi))
            if hi - lo == 1:
                self(int(arrs[0][lo]), int(arrs[1][lo]), int(arrs[2][lo]))
                lo = hi
                continue
            bases = self._bases()
            bases[self.args[0]] = arrs[0][lo:hi]
            bases[self.args[1]] = arrs[1][lo:hi]
            bases[self.args[2]] = arrs[2][lo:hi]
            self.plan.run(self.buffers, bases, self.scale, hi - lo)
            lo = hi


class _InterpretBound:
    """Interpreter-backed stand-in returned when a trace/touch observer is
    attached -- memory traces must reflect the real µop stream."""

    tier = "interpret"

    __slots__ = ("program", "buffers", "args", "scale", "trace", "touch",
                 "extra")

    def __init__(self, program, buffers, args, scale, trace, touch,
                 extra) -> None:
        self.program = program
        self.buffers = buffers
        self.args = args
        self.scale = scale
        self.trace = trace
        self.touch = touch
        self.extra = extra

    def __call__(self, i_off, w_off, o_off, pi=0, pw=0, po=0) -> None:
        a0, a1, a2 = self.args
        bases = dict(self.extra) if self.extra else {}
        bases.update(
            {
                a0: i_off,
                a1: w_off,
                a2: o_off,
                a0 + "_pf": pi,
                a1 + "_pf": pw,
                a2 + "_pf": po,
            }
        )
        execute_kernel(
            self.program,
            self.buffers,
            bases,
            trace=self.trace,
            touch=self.touch,
            scale=self.scale,
        )


class CompiledKernel:
    """A µop program translated into batched-numpy form.

    The symbolic pass runs once at construction; dtype-dependent evaluation
    plans (int16 loads fill a double-width register) are built lazily per
    buffer-dtype signature and cached.
    """

    tier = "compiled"

    def __init__(self, program: KernelProgram) -> None:
        self.program = program
        self._stores, self._tensors = _symbolize(program)
        self._order = sorted(self._tensors)
        self._plans: dict[tuple, _Plan] = {}

    @property
    def tensors(self) -> list[str]:
        """Compute tensors the kernel reads or writes (no prefetch args)."""
        return list(self._order)

    def _plan_for(self, buffers) -> _Plan:
        widths = {}
        for t in self._order:
            try:
                buf = buffers[t]
            except KeyError:
                raise ReproError(
                    f"kernel references unbound tensor {t!r}"
                ) from None
            widths[t] = 2 if buf.dtype == np.int16 else 1
        key = tuple(widths[t] for t in self._order)
        plan = self._plans.get(key)
        if plan is None:
            plan = _build_plan(self._stores, self.program.vlen, widths)
            self._plans[key] = plan
        return plan

    def bind(
        self,
        buffers: dict[str, np.ndarray],
        args: Sequence[str] = ("I", "W", "O"),
        scale: float = 1.0,
        trace=None,
        touch: Optional[Callable] = None,
        extra_bases: Optional[dict] = None,
    ):
        """Specialize to concrete buffers; returns a replay-callable closure
        ``fn(i_off, w_off, o_off, pi, pw, po)`` with a ``.batch`` method.

        ``args`` names the tensors the three offset arguments index (the
        forward pass binds ``("I", "W", "O")``, the update pass
        ``("I", "dW", "dO")``).  If ``trace``/``touch`` observers are given,
        an interpreter-backed closure is returned instead so memory traces
        stay exact (``fn.tier`` reports which tier actually runs).
        """
        args = tuple(args)
        if trace is not None or touch is not None:
            return _InterpretBound(
                self.program, buffers, args, scale, trace, touch, extra_bases
            )
        plan = self._plan_for(buffers)
        return _CompiledBound(plan, buffers, args, scale, extra_bases)

    def __call__(
        self,
        buffers: dict[str, np.ndarray],
        bases: Optional[dict] = None,
        scale: float = 1.0,
    ) -> None:
        """Single invocation against explicit per-tensor base offsets (the
        compiled mirror of :func:`repro.jit.interpreter.execute_kernel`)."""
        plan = self._plan_for(buffers)
        plan.run(buffers, dict(bases or {}), scale, None)


def compile_kernel(program: KernelProgram) -> CompiledKernel:
    """Translate one program; instrumented with a ``jit.compile`` span and
    ``jit.kernels_compiled`` / ``jit.compile_seconds`` counters."""
    tracer = get_tracer()
    metrics = get_metrics()
    t0 = time.perf_counter()
    if tracer.enabled:
        with tracer.span("jit.compile", kernel=program.name):
            ck = CompiledKernel(program)
    else:
        ck = CompiledKernel(program)
    metrics.inc("jit.kernels_compiled")
    metrics.inc("jit.compile_seconds", time.perf_counter() - t0)
    return ck
