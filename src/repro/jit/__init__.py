"""The JIT: microkernel code generators, interpreter, timing, kernel cache.

This package is the Python analogue of LIBXSMM's runtime code generator
(section II-D): each generator turns a *kernel descriptor* into a
:class:`~repro.arch.isa.KernelProgram` -- an explicit µop stream with the
paper's register blocking, load/store hoisting, pixel blocking, fused
post-ops and two-level prefetching baked in.  The
:mod:`~repro.jit.interpreter` executes streams functionally on numpy buffers
(correctness), :mod:`~repro.jit.timing` prices them on a machine model
(performance), and :mod:`~repro.jit.kernel_cache` memoizes generation the way
the paper's runtime amortizes JIT cost across a topology's layer setups.
"""

from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.jit.compile import (
    EXECUTION_TIERS,
    CompiledKernel,
    CompileUnsupported,
    TierMismatchError,
    compile_kernel,
    get_default_execution_tier,
    resolve_execution_tier,
    set_default_execution_tier,
)
from repro.jit.gemm import GemmDesc, generate_gemm_kernel
from repro.jit.upd_codegen import UpdKernelDesc, generate_upd_kernel
from repro.jit.interpreter import execute_kernel
from repro.jit.timing import KernelTiming, time_kernel
from repro.jit.kernel_cache import KernelCache, get_default_cache

__all__ = [
    "ConvKernelDesc",
    "generate_conv_kernel",
    "GemmDesc",
    "generate_gemm_kernel",
    "UpdKernelDesc",
    "generate_upd_kernel",
    "execute_kernel",
    "CompiledKernel",
    "CompileUnsupported",
    "TierMismatchError",
    "compile_kernel",
    "EXECUTION_TIERS",
    "get_default_execution_tier",
    "resolve_execution_tier",
    "set_default_execution_tier",
    "KernelTiming",
    "time_kernel",
    "KernelCache",
    "get_default_cache",
]
