"""The JIT: microkernel code generators, interpreter, timing, kernel cache.

This package is the Python analogue of LIBXSMM's runtime code generator
(section II-D): each generator turns a *kernel descriptor* into a
:class:`~repro.arch.isa.KernelProgram` -- an explicit µop stream with the
paper's register blocking, load/store hoisting, pixel blocking, fused
post-ops and two-level prefetching baked in.  The
:mod:`~repro.jit.interpreter` executes streams functionally on numpy buffers
(correctness), :mod:`~repro.jit.timing` prices them on a machine model
(performance), and :mod:`~repro.jit.kernel_cache` memoizes generation the way
the paper's runtime amortizes JIT cost across a topology's layer setups.

Execution tiers are first-class here: :class:`~repro.jit.tiers.ExecutionTier`
enumerates them, :func:`~repro.jit.tiers.register_tier` records each tier's
capabilities (batchable / trace-safe / degrade-to), and
:class:`~repro.jit.tiers.ReplayOptions` bundles the replay-facing knobs.
Legacy string spellings keep working everywhere a tier is accepted.
"""

from repro.jit.tiers import (
    EXECUTION_TIERS,
    ExecutionTier,
    ReplayOptions,
    TierSpec,
    UnknownTierError,
    as_tier,
    degrade_chain,
    get_tier_spec,
    register_tier,
    tier_registry,
)
from repro.jit.codegen import ConvKernelDesc, generate_conv_kernel
from repro.jit.compile import (
    CompiledKernel,
    CompileUnsupported,
    TierMismatchError,
    compile_kernel,
    get_default_execution_tier,
    resolve_execution_tier,
    set_default_execution_tier,
)
from repro.jit.gemm import GemmDesc, generate_gemm_kernel
from repro.jit.upd_codegen import UpdKernelDesc, generate_upd_kernel
from repro.jit.interpreter import execute_kernel
from repro.jit.timing import KernelTiming, time_kernel
from repro.jit.kernel_cache import KernelCache, get_default_cache

# imported last: registers ExecutionTier.STREAM_COMPILED's capabilities
# (and needs repro.jit.compile fully initialized)
from repro.jit.streamcompile import (  # noqa: E402
    StreamExecutor,
    StreamProgram,
    compile_stream,
)

__all__ = [
    "ConvKernelDesc",
    "generate_conv_kernel",
    "GemmDesc",
    "generate_gemm_kernel",
    "UpdKernelDesc",
    "generate_upd_kernel",
    "execute_kernel",
    "CompiledKernel",
    "CompileUnsupported",
    "TierMismatchError",
    "compile_kernel",
    "EXECUTION_TIERS",
    "ExecutionTier",
    "TierSpec",
    "UnknownTierError",
    "ReplayOptions",
    "as_tier",
    "register_tier",
    "tier_registry",
    "get_tier_spec",
    "degrade_chain",
    "get_default_execution_tier",
    "resolve_execution_tier",
    "set_default_execution_tier",
    "StreamExecutor",
    "StreamProgram",
    "compile_stream",
    "KernelTiming",
    "time_kernel",
    "KernelCache",
    "get_default_cache",
]
