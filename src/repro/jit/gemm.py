"""Small-GEMM microkernel generator (LIBXSMM-style, reference [14]).

Computes ``C (VLEN x N) += A (VLEN x K) * B (K x N)`` with the vector
dimension along the rows of ``A``/``C`` (unit stride), which is how both the
Algorithm-7 backward fallback and the "libxsmm" baseline consume it: one
column of ``A`` is loaded per reduction step, each ``B`` element is broadcast
and FMA'd into per-column accumulators.

``nb`` register-blocks the ``N`` dimension; when ``N > nb`` the kernel emits
several accumulator groups back-to-back (same weight reloads), which is what
a batched sequence of small GEMMs looks like.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.isa import KernelProgram, Op, Uop
from repro.arch.registers import RegisterAllocator
from repro.obs.instrument import instrument_codegen
from repro.types import CodegenError

__all__ = ["GemmDesc", "generate_gemm_kernel"]


@dataclass(frozen=True, slots=True)
class GemmDesc:
    """One small GEMM: ``C[vlen, n] += A[vlen, k] @ B[k, n]``.

    Strides are element strides: ``a_sk`` between consecutive columns of A,
    ``b_sk``/``b_sn`` for B's reduction/column dims, ``c_sn`` between C
    columns.  Row (vector) stride is always 1.
    """

    vlen: int
    k: int
    n: int
    a_sk: int
    b_sk: int
    b_sn: int
    c_sn: int
    nb: int = 0  # register blocking over n; 0 = auto
    zero_init: bool = False

    def __post_init__(self) -> None:
        if min(self.vlen, self.k, self.n) < 1:
            raise CodegenError(f"bad GEMM dims in {self}")

    @property
    def variant_name(self) -> str:
        return f"gemm_{self.vlen}x{self.n}x{self.k}_nb{self.effective_nb}"

    @property
    def effective_nb(self) -> int:
        return self.nb if self.nb > 0 else min(self.n, 28)


@instrument_codegen("gemm")
def generate_gemm_kernel(desc: GemmDesc) -> KernelProgram:
    """Emit the µop stream for one small GEMM."""
    nb = desc.effective_nb
    uops: list[Uop] = []
    alloc = RegisterAllocator()
    acc = alloc.alloc_block(nb, "acc")
    areg = alloc.alloc("avec")
    breg = alloc.alloc("bcast")

    for j0 in range(0, desc.n, nb):
        cols = min(nb, desc.n - j0)
        for j in range(cols):
            coff = (j0 + j) * desc.c_sn
            if desc.zero_init:
                uops.append(Uop(Op.VZERO, dst=acc[j]))
            else:
                uops.append(Uop(Op.VLOAD, dst=acc[j], tensor="C", offset=coff))
        for kk in range(desc.k):
            uops.append(Uop(Op.VLOAD, dst=areg, tensor="A", offset=kk * desc.a_sk))
            for j in range(cols):
                boff = kk * desc.b_sk + (j0 + j) * desc.b_sn
                uops.append(Uop(Op.VBCAST, dst=breg, tensor="B", offset=boff))
                uops.append(Uop(Op.VFMA, dst=acc[j], src1=areg, src2=breg))
        for j in range(cols):
            coff = (j0 + j) * desc.c_sn
            uops.append(Uop(Op.VSTORE, src1=acc[j], tensor="C", offset=coff))

    return KernelProgram(
        name=desc.variant_name,
        vlen=desc.vlen,
        uops=uops,
        flops=2 * desc.vlen * desc.k * desc.n,
        reads={
            "A": desc.vlen * desc.k,
            "B": desc.k * desc.n,
            **({} if desc.zero_init else {"C": desc.vlen * desc.n}),
        },
        writes={"C": desc.vlen * desc.n},
        meta={"desc": desc},
    )
