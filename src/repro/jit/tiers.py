"""First-class execution tiers: enum, capability registry, replay options.

Historically every layer of the stack (engines, the factory, the ETG, the
serving config, the CLI) spelled execution tiers as bare string literals and
each grew its own validation.  This module makes the tier a first-class
object:

* :class:`ExecutionTier` -- a ``str``-mixin enum, so every legacy call site
  that compares or formats tiers as strings keeps working unchanged;
* :class:`TierSpec` + :func:`register_tier` -- tiers self-register with
  their capabilities (``batchable``: bound kernels expose ``.batch``;
  ``trace_safe``: may run under a ``MemTrace`` observer; ``degrade_to``:
  the next tier a serving replica falls back to);
* :func:`as_tier` -- the one coercion point.  Unknown names raise
  :class:`UnknownTierError`, which is both a :class:`ReproError` (the
  library contract) and a ``ValueError`` (what input validation expects),
  and the message lists every valid tier;
* :class:`ReplayOptions` -- one dataclass unifying the tier/prefetch/trace
  keywords that ``make_engine``, ``ExecutionTaskGraph.predict`` and
  ``ServeConfig`` used to accept in slightly different shapes.

The four classic tiers register here; the ``stream_compiled`` tier
registers itself from :mod:`repro.jit.streamcompile` (imported by the
``repro.jit`` package init), so adding a tier means adding a registration,
not another string branch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.types import ReproError

__all__ = [
    "ExecutionTier",
    "TierSpec",
    "UnknownTierError",
    "ReplayOptions",
    "EXECUTION_TIERS",
    "as_tier",
    "register_tier",
    "get_tier_spec",
    "tier_registry",
    "degrade_chain",
]


class UnknownTierError(ReproError, ValueError):
    """A tier name no registered tier answers to.

    Doubles as a ``ValueError`` so callers validating user input (CLI
    arguments, serve configs, HTTP admin) can catch the standard type.
    """


class ExecutionTier(str, enum.Enum):
    """How recorded kernel streams are executed.

    The ``str`` mixin keeps the enum drop-in compatible with the legacy
    string spellings: ``ExecutionTier.COMPILED == "compiled"`` is true,
    and formatting a member yields the bare value.
    """

    COMPILED = "compiled"
    INTERPRET = "interpret"
    EINSUM = "einsum"
    VERIFY = "verify"
    STREAM_COMPILED = "stream_compiled"

    # plain-string str()/format() so metric keys and log lines read
    # "stream_compiled", not "ExecutionTier.STREAM_COMPILED"
    __str__ = str.__str__
    __format__ = str.__format__


#: every tier name, in declaration order (legacy constant; see the enum)
EXECUTION_TIERS = tuple(t.value for t in ExecutionTier)


@dataclass(frozen=True)
class TierSpec:
    """Registered capabilities of one execution tier.

    ``batchable``
        replay may dispatch same-variant CONV streaks as one vectorized
        call (the tier's bound kernels expose ``.batch`` or equivalent).
    ``trace_safe``
        the tier may run under a ``MemTrace``/cache-simulator observer;
        tiers that are not trace-safe silently fall back to the
        interpreter when a trace is requested.
    ``degrade_to``
        the next tier a serving replica rebuilds a failing bucket on
        (``None`` = nothing lower; a failure propagates).
    """

    tier: ExecutionTier
    batchable: bool
    trace_safe: bool
    degrade_to: Optional[ExecutionTier] = None
    description: str = ""


_REGISTRY: dict[ExecutionTier, TierSpec] = {}


def register_tier(
    tier: ExecutionTier,
    *,
    batchable: bool,
    trace_safe: bool,
    degrade_to: Optional[ExecutionTier] = None,
    description: str = "",
) -> TierSpec:
    """Register (or re-register, idempotently) one tier's capabilities."""
    spec = TierSpec(
        tier=as_tier(tier),
        batchable=batchable,
        trace_safe=trace_safe,
        degrade_to=None if degrade_to is None else as_tier(degrade_to),
        description=description,
    )
    _REGISTRY[spec.tier] = spec
    return spec


def tier_registry() -> dict[ExecutionTier, TierSpec]:
    """A snapshot of every registered tier's spec."""
    return dict(_REGISTRY)


def get_tier_spec(tier) -> TierSpec:
    """The registered :class:`TierSpec` for ``tier`` (coerced)."""
    t = as_tier(tier)
    spec = _REGISTRY.get(t)
    if spec is None:
        raise UnknownTierError(
            f"execution tier {t!r} has no registered capabilities"
        )
    return spec


def degrade_chain(tier) -> list[ExecutionTier]:
    """The full fallback chain starting *after* ``tier`` (e.g.
    ``stream_compiled`` -> ``[compiled, interpret]``)."""
    chain: list[ExecutionTier] = []
    cur = get_tier_spec(tier).degrade_to
    while cur is not None:
        if cur in chain:  # defensive: a registration cycle
            break
        chain.append(cur)
        cur = get_tier_spec(cur).degrade_to
    return chain


def as_tier(tier) -> ExecutionTier:
    """Coerce a legacy string / enum member to :class:`ExecutionTier`.

    Raises :class:`UnknownTierError` (a ``ValueError``) listing the valid
    tiers for anything else.  ``None`` is *not* accepted here -- callers
    wanting "process default" resolve through
    :func:`repro.jit.compile.resolve_execution_tier`.
    """
    if isinstance(tier, ExecutionTier):
        return tier
    if isinstance(tier, str):
        try:
            return ExecutionTier(tier)
        except ValueError:
            pass
    raise UnknownTierError(
        f"unknown execution tier {tier!r}; expected one of "
        f"{EXECUTION_TIERS}"
    )


def _iter_tiers() -> Iterator[ExecutionTier]:  # pragma: no cover - trivial
    return iter(ExecutionTier)


# ----------------------------------------------------------------------
# the four classic tiers register themselves here; stream_compiled
# registers from repro.jit.streamcompile
# ----------------------------------------------------------------------
register_tier(
    ExecutionTier.COMPILED,
    batchable=True,
    trace_safe=False,
    degrade_to=ExecutionTier.INTERPRET,
    description="µop programs vectorized once into batched numpy closures",
)
register_tier(
    ExecutionTier.INTERPRET,
    batchable=False,
    trace_safe=True,
    degrade_to=None,
    description="the exact per-µop interpreter (memory-trace reference)",
)
register_tier(
    ExecutionTier.EINSUM,
    batchable=False,
    trace_safe=False,
    degrade_to=ExecutionTier.INTERPRET,
    description="legacy per-call numpy contraction closures",
)
register_tier(
    ExecutionTier.VERIFY,
    batchable=True,
    trace_safe=False,
    degrade_to=ExecutionTier.INTERPRET,
    description="run compiled AND interpret, assert bitwise equality",
)


# ----------------------------------------------------------------------
# unified replay options
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplayOptions:
    """One bundle for the replay-facing knobs engines/graphs accept.

    ``tier``
        Execution tier (name or :class:`ExecutionTier`; ``None`` =
        process default).
    ``prefetch``
        Software-prefetch levels baked into JIT'ed kernels at *build*
        time (``"none" | "l1" | "l2" | "both"``).  Per-call override
        points (e.g. ``ExecutionTaskGraph.predict``) ignore it, since
        prefetch schedules are part of the generated programs.
    ``trace``
        Request trace-exact replay.  Tiers whose spec is not
        ``trace_safe`` resolve to the interpreter -- the same
        "trace forces interpreter" contract :meth:`CompiledKernel.bind`
        honors.
    """

    tier: "ExecutionTier | str | None" = None
    prefetch: str = "both"
    trace: bool = False

    def __post_init__(self) -> None:
        if self.tier is not None:
            object.__setattr__(self, "tier", as_tier(self.tier))

    def resolve_tier(self) -> ExecutionTier:
        """The tier that will actually run (``None`` -> process default;
        ``trace=True`` forces the interpreter on non-trace-safe tiers)."""
        from repro.jit.compile import resolve_execution_tier

        tier = resolve_execution_tier(self.tier)
        if self.trace and not get_tier_spec(tier).trace_safe:
            return ExecutionTier.INTERPRET
        return tier
