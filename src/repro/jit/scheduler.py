"""Cycle-level µop scheduling simulator.

The analytic timing model (:mod:`repro.jit.timing`) prices a kernel with
closed-form port/latency formulas; this module *simulates* the same stream
through a simplified out-of-order core -- explicit register dependency
tracking, per-port occupancy, front-end issue width, and a finite reorder
window -- and the tests require the two to agree.  This is the
reproduction's answer to "how do you know the timing formulas are right?":
two independent mechanisms, one validated against the other (and the cache
simulator validates the traffic side the same way).

Machine resources modeled:

* ``fma_ports`` FMA/ALU pipes.  Occupancy per op: 1 cycle for plain vector
  ops; ``1 + fused_memop_penalty`` for VFMA_MEM (the SKX µop split);
  2 cycles for V4FMA (4 chained FMAs against a doubled-capacity datapath);
  1 cycle for quad VVNNI on VNNI-capable parts, 2 otherwise.
* ``load_ports`` load pipes (VLOAD/VBCAST/memory operands), 1 cycle each,
  ``l1_latency`` cycles to deliver.
* one store pipe.
* a front end issuing ``issue_width`` µops/cycle in order, with a reorder
  window of ``rob_size`` µops between issue and completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.isa import KernelProgram, Op, Uop
from repro.arch.machine import MachineConfig

__all__ = ["ScheduleResult", "CycleSimulator", "L1_LATENCY"]

#: L1 load-to-use latency in cycles
L1_LATENCY = 4
#: reorder-buffer depth (issue-to-oldest-incomplete distance)
ROB_SIZE = 224


@dataclass
class ScheduleResult:
    """Outcome of simulating one kernel invocation."""

    cycles: float
    issued: int
    port_busy: dict[str, float] = field(default_factory=dict)
    stall_dep: int = 0  # ops that waited on a register dependency
    stall_port: int = 0  # ops that waited on a busy port

    #: pipe counts recorded at simulation time, for utilization math
    n_ports: dict[str, int] = field(default_factory=dict)

    def utilization(self, port: str) -> float:
        """Average busy fraction per pipe of the class."""
        if not self.cycles:
            return 0.0
        pipes = self.n_ports.get(port, 1)
        return self.port_busy.get(port, 0.0) / (self.cycles * pipes)


class CycleSimulator:
    """Greedy list scheduler over the µop stream."""

    def __init__(self, machine: MachineConfig, rob_size: int = ROB_SIZE):
        self.machine = machine
        self.rob_size = rob_size

    # ------------------------------------------------------------------
    def _resource(self, u: Uop) -> tuple[str, float, float] | None:
        """(port_class, occupancy_cycles, result_latency) or None (free)."""
        m = self.machine
        op = u.op
        if op is Op.VFMA:
            return ("fma", 1.0, float(m.fma_latency))
        if op is Op.VFMA_MEM:
            return ("fma", 1.0 + m.fused_memop_penalty,
                    float(m.fma_latency + 1))
        if op is Op.V4FMA:
            # 4 chained FMAs; doubled datapath -> 2 port-cycles
            return ("fma", 2.0, float(m.fma_latency + 3))
        if op is Op.VVNNI:
            if u.tensor is not None:  # quad memory form
                occ = 1.0 if m.vnni16_speedup >= 2.0 else 2.0
                return ("fma", occ, float(m.fma_latency + 3))
            occ = 1.0 if m.vnni16_speedup >= 2.0 else 2.0
            return ("fma", occ, float(m.fma_latency))
        if op in (Op.VADD, Op.VMUL, Op.VMAX, Op.VCVT_I32F32):
            return ("fma", 1.0, 3.0)
        if op in (Op.VLOAD, Op.VBCAST):
            return ("load", 1.0, float(L1_LATENCY))
        if op in (Op.VSTORE, Op.VSTORE_NT):
            return ("store", 1.0, 1.0)
        if op in (Op.PREFETCH1, Op.PREFETCH2):
            return ("load", 0.5, 0.0)
        if op is Op.VZERO:
            return None  # zero idiom: eliminated in rename
        raise AssertionError(op)  # pragma: no cover

    def _extra_load(self, u: Uop) -> bool:
        """Memory-operand compute ops also occupy a load pipe."""
        return u.op in (Op.VFMA_MEM, Op.V4FMA) or (
            u.op is Op.VVNNI and u.tensor is not None
        )

    # ------------------------------------------------------------------
    def simulate(self, prog: KernelProgram) -> ScheduleResult:
        m = self.machine
        n_ports = {"fma": m.fma_ports, "load": m.load_ports, "store": m.store_ports}
        port_free = {
            k: [0.0] * n for k, n in n_ports.items()
        }
        port_busy = {k: 0.0 for k in n_ports}
        reg_ready: dict[int, float] = {}
        completion: list[float] = []
        res = ScheduleResult(cycles=0.0, issued=0)
        finish_max = 0.0

        for idx, u in enumerate(prog.uops):
            front = idx / m.issue_width
            # reorder window: cannot issue further than rob_size past the
            # oldest incomplete op
            if idx >= self.rob_size:
                front = max(front, completion[idx - self.rob_size])
            spec = self._resource(u)
            if spec is None:  # eliminated zero idiom
                if u.dst is not None:
                    reg_ready[u.dst] = front
                completion.append(front)
                continue
            port, occ, lat = spec
            dep = front
            for r in (u.src1, u.src2):
                if r is not None:
                    dep = max(dep, reg_ready.get(r, 0.0))
            if u.op is Op.V4FMA or (u.op is Op.VVNNI and u.tensor is not None):
                depth = int(u.imm) or 4
                for j in range(depth):
                    dep = max(dep, reg_ready.get((u.src1 or 0) + j, 0.0))
            # accumulator read-modify-write: dst is also a source
            if u.is_fma() and u.dst is not None:
                dep = max(dep, reg_ready.get(u.dst, 0.0))
            if dep > front:
                res.stall_dep += 1

            # pick the earliest-free pipe of the class
            pipes = port_free[port]
            pi = min(range(len(pipes)), key=pipes.__getitem__)
            start = max(dep, pipes[pi])
            if pipes[pi] > dep:
                res.stall_port += 1
            pipes[pi] = start + occ
            port_busy[port] += occ
            if self._extra_load(u):
                # the memory-operand load is split off in rename and issues
                # independently on a load pipe (address deps only); it does
                # not convoy the FMA pipe
                lp = port_free["load"]
                li = min(range(len(lp)), key=lp.__getitem__)
                lp[li] = max(front, lp[li]) + 1.0
                port_busy["load"] += 1.0
            finish = start + lat
            if u.dst is not None:
                reg_ready[u.dst] = finish
            completion.append(start + occ)
            finish_max = max(finish_max, finish)
            res.issued += 1

        res.cycles = max(
            finish_max,
            max((max(p) for p in port_free.values()), default=0.0),
        )
        res.port_busy = port_busy
        res.n_ports = dict(n_ports)
        return res
