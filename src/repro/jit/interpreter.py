"""Functional executor for generated µop streams.

This is the correctness half of the substitution described in DESIGN.md: the
µop stream a generator emits is run against real numpy buffers and its result
compared with the reference loops.  The register file is simulated exactly
(32 virtual registers, each holding one vector of whatever element type was
loaded), memory operands resolve as ``base_offset[tensor] + uop.offset``, and
prefetches are side-effect-free (optionally reported to a trace for the cache
simulator).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.arch.isa import KernelProgram, Op, Uop
from repro.obs.metrics import get_metrics
from repro.types import ReproError

__all__ = ["execute_kernel", "MemTrace"]

#: trace record: (tensor_name, element_offset, element_count, kind)
#: kind is "load", "store" or "prefetch1"/"prefetch2"
MemTrace = list


class _Regs:
    """32-entry virtual vector register file."""

    __slots__ = ("slots",)

    def __init__(self) -> None:
        self.slots: list[Optional[np.ndarray]] = [None] * 32

    def get(self, idx: int) -> np.ndarray:
        v = self.slots[idx]
        if v is None:
            raise ReproError(f"read of uninitialized register {idx}")
        return v

    def set(self, idx: int, value: np.ndarray) -> None:
        self.slots[idx] = value


def execute_kernel(
    prog: KernelProgram,
    buffers: dict[str, np.ndarray],
    bases: dict[str, int],
    trace: Optional[MemTrace] = None,
    touch: Optional[Callable[[str, int, int, str], None]] = None,
    scale: float = 1.0,
) -> None:
    """Run one kernel invocation.

    ``buffers`` maps tensor names to flat numpy arrays; ``bases`` maps tensor
    names to the invocation's base element offsets (the kernel-call arguments
    of Fig. 1).  Prefetch tensors (``I_pf`` etc.) resolve against the *same*
    buffers as their compute counterparts but their own base offsets.
    ``trace``/``touch`` observe memory operations for the cache simulator.
    ``scale`` multiplies every ``VCVT_I32F32`` immediate -- the runtime
    dequantization factor of the int16 path (the compiled tier applies the
    identical product, keeping the tiers bit-for-bit comparable).
    """
    regs = _Regs()
    vlen = prog.vlen
    metrics = get_metrics()
    metrics.inc("jit.kernel_executions")
    metrics.inc("jit.uops_executed", len(prog.uops))

    def resolve(u: Uop) -> tuple[np.ndarray, int]:
        name = u.tensor
        buf_name = name[:-3] if name.endswith("_pf") else name
        try:
            buf = buffers[buf_name]
        except KeyError:
            raise ReproError(f"kernel references unbound tensor {buf_name!r}")
        base = bases.get(name, bases.get(buf_name, 0))
        return buf, base + u.offset

    def note(name: str, off: int, count: int, kind: str) -> None:
        if trace is not None:
            trace.append((name, off, count, kind))
        if touch is not None:
            touch(name, off, count, kind)

    idx = -1
    u = None
    try:
        for idx, u in enumerate(prog.uops):
            op = u.op
            if op is Op.VZERO:
                regs.set(u.dst, np.zeros(vlen, dtype=np.float64))
            elif op is Op.VLOAD:
                buf, off = resolve(u)
                n = vlen
                if buf.dtype == np.int16:
                    n = 2 * vlen  # a 512-bit register holds 32 int16
                regs.set(u.dst, buf[off : off + n].astype(np.float64))
                note(u.tensor, off, n, "load")
            elif op is Op.VBCAST:
                buf, off = resolve(u)
                if u.imm == 2.0:  # int16 pair broadcast (VNNI source form)
                    pair = buf[off : off + 2].astype(np.float64)
                    regs.set(u.dst, np.tile(pair, vlen))
                    note(u.tensor, off, 2, "load")
                else:
                    regs.set(u.dst, np.full(vlen, float(buf[off])))
                    note(u.tensor, off, 1, "load")
            elif op in (Op.VSTORE, Op.VSTORE_NT):
                buf, off = resolve(u)
                val = regs.get(u.src1)
                buf[off : off + vlen] = val.astype(buf.dtype)
                note(u.tensor, off, vlen, "store")
            elif op is Op.VFMA:
                regs.get(u.dst)[:] += regs.get(u.src1) * regs.get(u.src2)
            elif op is Op.VFMA_MEM:
                buf, off = resolve(u)
                regs.get(u.dst)[:] += regs.get(u.src1) * float(buf[off])
                note(u.tensor, off, 1, "load")
            elif op is Op.V4FMA:
                # src1 is the first of `imm` *contiguous* weight registers;
                # the memory operand covers `imm` consecutive input elements
                # (KNM's chained-FMA form).
                buf, off = resolve(u)
                depth = int(u.imm) or 4
                dst = regs.get(u.dst)
                for j in range(depth):
                    dst[:] += regs.get(u.src1 + j) * float(buf[off + j])
                note(u.tensor, off, depth, "load")
            elif op is Op.VVNNI:
                if u.tensor is not None:
                    # 4VNNIW quad form: `imm` contiguous weight registers,
                    # one memory operand covering `imm` consecutive i16 pairs
                    buf, off = resolve(u)
                    depth = int(u.imm) or 4
                    dst = regs.get(u.dst)
                    for j in range(depth):
                        w = regs.get(u.src1 + j).reshape(vlen, 2)
                        a0 = float(buf[off + 2 * j])
                        a1 = float(buf[off + 2 * j + 1])
                        dst[:] += w[:, 0] * a0 + w[:, 1] * a1
                    note(u.tensor, off, 2 * depth, "load")
                else:
                    # src1: packed weights [k0p0, k0p1, k1p0, ...] (2v i16)
                    # src2: tiled input pair [a0, a1] * vlen
                    w = regs.get(u.src1).reshape(vlen, 2)
                    a = regs.get(u.src2).reshape(vlen, 2)
                    regs.get(u.dst)[:] += w[:, 0] * a[:, 0] + w[:, 1] * a[:, 1]
            elif op is Op.VADD:
                regs.set(u.dst, regs.get(u.src1) + regs.get(u.src2))
            elif op is Op.VMUL:
                regs.set(u.dst, regs.get(u.src1) * regs.get(u.src2))
            elif op is Op.VMAX:
                regs.set(
                    u.dst, np.maximum(regs.get(u.src1), regs.get(u.src2))
                )
            elif op is Op.VCVT_I32F32:
                regs.set(u.dst, regs.get(u.src1) * (u.imm * scale))
            elif op is Op.PREFETCH1 or op is Op.PREFETCH2:
                if trace is not None or touch is not None:
                    buf, off = resolve(u)
                    kind = "prefetch1" if op is Op.PREFETCH1 else "prefetch2"
                    note(u.tensor, off, 1, kind)
            else:  # pragma: no cover - exhaustive over Op
                raise ReproError(f"unhandled op {op}")
    except ReproError as e:
        # annotate faults with their position in the µop stream
        raise ReproError(f"µop {idx} ({u.op.name}): {e}") from None
