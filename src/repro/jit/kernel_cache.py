"""JIT kernel cache.

Layer fusion multiplies the number of required kernel variants (section I:
the "combinatorial explosion"); the paper's answer is runtime, on-demand
generation.  :class:`KernelCache` memoizes generated programs by their frozen
descriptor so each variant is generated exactly once per process -- the
Python analogue of "our JIT does not incur the overheads of recompilation".
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.arch.isa import KernelProgram

__all__ = ["KernelCache", "get_default_cache"]


class KernelCache:
    """Descriptor-keyed memo table with hit/miss statistics."""

    def __init__(self) -> None:
        self._programs: dict[Hashable, KernelProgram] = {}
        self.hits = 0
        self.misses = 0

    def get(
        self, desc: Hashable, generator: Callable[[Hashable], KernelProgram]
    ) -> KernelProgram:
        prog = self._programs.get(desc)
        if prog is None:
            self.misses += 1
            prog = generator(desc)
            self._programs[desc] = prog
        else:
            self.hits += 1
        return prog

    def __len__(self) -> int:
        return len(self._programs)

    def __contains__(self, desc: Hashable) -> bool:
        return desc in self._programs

    def clear(self) -> None:
        self._programs.clear()
        self.hits = self.misses = 0

    @property
    def variants(self) -> list[str]:
        return [p.name for p in self._programs.values()]


_default = KernelCache()


def get_default_cache() -> KernelCache:
    """The process-wide kernel cache used by the convolution engines."""
    return _default
