"""JIT kernel cache.

Layer fusion multiplies the number of required kernel variants (section I:
the "combinatorial explosion"); the paper's answer is runtime, on-demand
generation.  :class:`KernelCache` memoizes generated programs by their frozen
descriptor so each variant is generated exactly once per process -- the
Python analogue of "our JIT does not incur the overheads of recompilation".

The cache is thread-safe: lookup, generation and the statistics counters all
happen under one re-entrant lock, so engines built concurrently (real thread
pools in :meth:`DirectConvForward.__call__`, or the default cache shared by
every engine in a process) cannot race a half-inserted program or lose a
counter update.  Statistics are mirrored into the process-wide
:class:`repro.obs.MetricsRegistry` as ``jit.cache.hits`` /
``jit.cache.misses`` so they merge across worker processes; the bare
``hits``/``misses`` attributes remain for backward compatibility.
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable, Optional

from repro.arch.isa import KernelProgram
from repro.obs.metrics import get_metrics

__all__ = ["KernelCache", "get_default_cache"]


class KernelCache:
    """Descriptor-keyed memo table with hit/miss statistics.

    Two tiers are cached per descriptor: the generated µop *program* and its
    *compiled* form (:class:`repro.jit.compile.CompiledKernel`).  Each tier
    keeps its own hit/miss counters (``jit.cache.hits``/``misses`` and
    ``jit.cache.compiled_hits``/``compiled_misses``).  A descriptor whose
    program the translator rejects caches ``None`` so the rejection is paid
    once; callers fall back to another tier.
    """

    def __init__(self) -> None:
        self._programs: dict[Hashable, KernelProgram] = {}
        self._compiled: dict[Hashable, Optional[object]] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.compiled_hits = 0
        self.compiled_misses = 0
        self.stream_programs = 0
        self.stream_chunks = 0
        self.tuned_plans = 0

    def get(
        self, desc: Hashable, generator: Callable[[Hashable], KernelProgram]
    ) -> KernelProgram:
        metrics = get_metrics()
        with self._lock:
            prog = self._programs.get(desc)
            if prog is not None:
                self.hits += 1
                metrics.inc("jit.cache.hits")
                return prog
            self.misses += 1
            metrics.inc("jit.cache.misses")
            prog = generator(desc)
            self._programs[desc] = prog
            return prog

    def get_compiled(
        self, desc: Hashable, generator: Callable[[Hashable], KernelProgram]
    ):
        """The compiled closure for ``desc``'s program (translating and
        memoizing on first use), or ``None`` if the program is one the
        translator cannot vectorize."""
        from repro.jit.compile import CompileUnsupported, compile_kernel

        metrics = get_metrics()
        with self._lock:
            if desc in self._compiled:
                self.compiled_hits += 1
                metrics.inc("jit.cache.compiled_hits")
                return self._compiled[desc]
            self.compiled_misses += 1
            metrics.inc("jit.cache.compiled_misses")
            prog = self.get(desc, generator)
            try:
                ck = compile_kernel(prog)
            except CompileUnsupported:
                metrics.inc("jit.cache.compile_unsupported")
                ck = None
            self._compiled[desc] = ck
            return ck

    def prewarm(
        self,
        descs,
        generator: Callable[[Hashable], KernelProgram],
        compiled: bool = True,
    ) -> dict[str, int]:
        """Generate (and optionally compile) every descriptor's kernel
        ahead of traffic -- serve boot calls this so the first request
        never pays codegen/translation latency.  Returns how many
        programs/closures the warm-up actually produced (cache hits do
        not count)."""
        before = self.stats()
        for desc in descs:
            if compiled:
                self.get_compiled(desc, generator)
            else:
                self.get(desc, generator)
        after = self.stats()
        return {
            "programs": after["variants"] - before["variants"],
            "compiled": after["compiled_variants"] - before["compiled_variants"],
        }

    def note_tuned_plan(self) -> None:
        """Record that an engine's variants came from a tuning-database
        plan instead of the heuristics (``make_engine(tuned=...)`` hit);
        surfaces in :meth:`stats` so serve boot logs show how much of
        the warm set is database-tuned."""
        with self._lock:
            self.tuned_plans += 1

    def note_stream_program(self, meta: dict) -> None:
        """Record that an engine lowered its streams for the
        ``stream_compiled`` tier.  Executors themselves are *not* cached
        here -- they own mutable per-stream replay state (cells, scratch)
        and must stay engine-private -- but their build counts surface in
        :meth:`stats` next to the per-variant JIT counters."""
        with self._lock:
            self.stream_programs += int(meta.get("streams", 1))
            self.stream_chunks += int(meta.get("chunks", 0))

    def __len__(self) -> int:
        with self._lock:
            return len(self._programs)

    def __contains__(self, desc: Hashable) -> bool:
        with self._lock:
            return desc in self._programs

    def clear(self) -> None:
        with self._lock:
            self._programs.clear()
            self._compiled.clear()
            self.hits = self.misses = 0
            self.compiled_hits = self.compiled_misses = 0

    def stats(self) -> dict[str, int]:
        """Per-tier hit/miss/variant snapshot."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "variants": len(self._programs),
                "compiled_hits": self.compiled_hits,
                "compiled_misses": self.compiled_misses,
                "compiled_variants": sum(
                    1 for v in self._compiled.values() if v is not None
                ),
                "stream_programs": self.stream_programs,
                "stream_chunks": self.stream_chunks,
                "tuned_plans": self.tuned_plans,
            }

    @property
    def variants(self) -> list[str]:
        with self._lock:
            return [p.name for p in self._programs.values()]


_default = KernelCache()


def get_default_cache() -> KernelCache:
    """The process-wide kernel cache used by the convolution engines."""
    return _default
