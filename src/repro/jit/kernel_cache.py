"""JIT kernel cache.

Layer fusion multiplies the number of required kernel variants (section I:
the "combinatorial explosion"); the paper's answer is runtime, on-demand
generation.  :class:`KernelCache` memoizes generated programs by their frozen
descriptor so each variant is generated exactly once per process -- the
Python analogue of "our JIT does not incur the overheads of recompilation".

The cache is thread-safe: lookup, generation and the statistics counters all
happen under one re-entrant lock, so engines built concurrently (real thread
pools in :meth:`DirectConvForward.__call__`, or the default cache shared by
every engine in a process) cannot race a half-inserted program or lose a
counter update.  Statistics are mirrored into the process-wide
:class:`repro.obs.MetricsRegistry` as ``jit.cache.hits`` /
``jit.cache.misses`` so they merge across worker processes; the bare
``hits``/``misses`` attributes remain for backward compatibility.
"""

from __future__ import annotations

import threading
from typing import Callable, Hashable

from repro.arch.isa import KernelProgram
from repro.obs.metrics import get_metrics

__all__ = ["KernelCache", "get_default_cache"]


class KernelCache:
    """Descriptor-keyed memo table with hit/miss statistics."""

    def __init__(self) -> None:
        self._programs: dict[Hashable, KernelProgram] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def get(
        self, desc: Hashable, generator: Callable[[Hashable], KernelProgram]
    ) -> KernelProgram:
        metrics = get_metrics()
        with self._lock:
            prog = self._programs.get(desc)
            if prog is not None:
                self.hits += 1
                metrics.inc("jit.cache.hits")
                return prog
            self.misses += 1
            metrics.inc("jit.cache.misses")
            prog = generator(desc)
            self._programs[desc] = prog
            return prog

    def __len__(self) -> int:
        with self._lock:
            return len(self._programs)

    def __contains__(self, desc: Hashable) -> bool:
        with self._lock:
            return desc in self._programs

    def clear(self) -> None:
        with self._lock:
            self._programs.clear()
            self.hits = self.misses = 0

    def stats(self) -> dict[str, int]:
        """``{"hits": ..., "misses": ..., "variants": ...}`` snapshot."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "variants": len(self._programs),
            }

    @property
    def variants(self) -> list[str]:
        with self._lock:
            return [p.name for p in self._programs.values()]


_default = KernelCache()


def get_default_cache() -> KernelCache:
    """The process-wide kernel cache used by the convolution engines."""
    return _default
