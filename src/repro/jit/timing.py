"""Microkernel timing model.

Prices a generated µop stream on a machine description, assuming operands are
L1-resident (the cache/memory side is handled by :mod:`repro.perf`).  The
model captures the effects the paper discusses:

* FMA port throughput (2 ports; KNM's 4FMA chaining doubles effective MACs
  per port-cycle, VNNI doubles int16 MACs per op);
* FMA latency exposure when the register blocking provides fewer independent
  accumulation chains than ``latency x ports`` (section II-B) -- this is what
  ruins the "autovec" baseline and what RB_P x RB_Q exists to fix;
* load/store port pressure (the un-hoisted small-GEMM baselines drown here);
* front-end issue width, with SKX's fused-memory-operand µop split charged as
  the ~15 % penalty of section III-B;
* a fixed per-invocation call/loop overhead (why [14] JITs small GEMMs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.isa import KernelProgram, Op
from repro.arch.machine import MachineConfig

__all__ = ["KernelTiming", "time_kernel", "CALL_OVERHEAD_CYCLES"]

#: fixed cost of dispatching one JIT'ed kernel from the replay loop
CALL_OVERHEAD_CYCLES = 30.0


@dataclass(frozen=True, slots=True)
class KernelTiming:
    """Timing verdict for one kernel invocation with L1-resident data."""

    cycles: float
    bottleneck: str
    fma_cycles: float
    load_cycles: float
    store_cycles: float
    issue_cycles: float
    latency_cycles: float
    flops: int

    def time_s(self, machine: MachineConfig) -> float:
        return self.cycles / machine.freq_hz

    def gflops(self, machine: MachineConfig) -> float:
        t = self.time_s(machine)
        return self.flops / t / 1e9 if t > 0 else 0.0

    def efficiency(self, machine: MachineConfig) -> float:
        return self.gflops(machine) * 1e9 / machine.peak_flops_core


def time_kernel(
    prog: KernelProgram,
    machine: MachineConfig,
    call_overhead: float = CALL_OVERHEAD_CYCLES,
) -> KernelTiming:
    """Estimate cycles for one invocation of ``prog`` on one core."""
    n_fma = n_fma_mem = n_4fma = n_vnni = n_alu = 0
    n_load = n_store = n_prefetch = 0
    chain_ops: dict[int, int] = {}

    for u in prog.uops:
        op = u.op
        if op is Op.VFMA:
            n_fma += 1
            chain_ops[u.dst] = chain_ops.get(u.dst, 0) + 1
        elif op is Op.VFMA_MEM:
            n_fma_mem += 1
            n_load += 1
            chain_ops[u.dst] = chain_ops.get(u.dst, 0) + 1
        elif op is Op.V4FMA:
            n_4fma += 1
            n_load += 1  # one 4-element memory operand
            chain_ops[u.dst] = chain_ops.get(u.dst, 0) + 1
        elif op is Op.VVNNI:
            # quad (4VNNIW memory) form does `imm` pair-ops with one load
            depth = int(u.imm) if u.tensor is not None and u.imm else 1
            n_vnni += depth
            if u.tensor is not None:
                n_load += 1
            chain_ops[u.dst] = chain_ops.get(u.dst, 0) + 1
        elif op in (Op.VADD, Op.VMUL, Op.VMAX, Op.VCVT_I32F32):
            n_alu += 1
        elif op in (Op.VLOAD, Op.VBCAST):
            n_load += 1
        elif op in (Op.VSTORE, Op.VSTORE_NT):
            n_store += 1
        elif op in (Op.PREFETCH1, Op.PREFETCH2):
            n_prefetch += 1

    # --- FMA port pressure ------------------------------------------------
    # Everything is expressed in vector-FMA "slots": one V4FMA performs 4
    # chained vector FMAs; one VVNNI performs the MAC work of 2 fp32 FMAs
    # and costs 1 slot when the machine has the doubled int16 datapath.
    penalty = machine.fused_memop_penalty
    vnni_cost = 1.0 if machine.vnni16_speedup >= 2.0 else 2.0
    fma_slots = (
        n_fma + n_fma_mem * (1.0 + penalty) + 4.0 * n_4fma + n_vnni * vnni_cost + n_alu
    )
    port_capacity = machine.fma_ports * (2.0 if machine.has_4fma else 1.0)
    fma_cycles = fma_slots / port_capacity

    # --- FMA latency exposure (section II-B) -------------------------------
    # The longest dependency chain (ops accumulating into one register) must
    # observe `fma_latency` cycles between successive accumulations.
    max_chain = max(chain_ops.values(), default=0)
    latency_cycles = max_chain * machine.fma_latency

    # --- memory ports -------------------------------------------------------
    load_cycles = (n_load + 0.5 * n_prefetch) / machine.load_ports
    store_cycles = n_store / machine.store_ports

    # --- front end ----------------------------------------------------------
    total_uops = len(prog.uops) + n_fma_mem * penalty
    issue_cycles = total_uops / machine.issue_width

    parts = {
        "fma": fma_cycles,
        "fma_latency": latency_cycles,
        "load": load_cycles,
        "store": store_cycles,
        "issue": issue_cycles,
    }
    bottleneck = max(parts, key=parts.get)
    cycles = parts[bottleneck] + call_overhead
    return KernelTiming(
        cycles=cycles,
        bottleneck=bottleneck,
        fma_cycles=fma_cycles,
        load_cycles=load_cycles,
        store_cycles=store_cycles,
        issue_cycles=issue_cycles,
        latency_cycles=latency_cycles,
        flops=prog.flops,
    )
