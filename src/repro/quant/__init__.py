"""Reduced precision: quantized int16 kernels (section II-K).

KNM's 4VNNIW instructions multiply int16 pairs and accumulate into int32.
This package provides the tensor quantization (:mod:`repro.quant.qtensor`)
and a functional int16 convolution whose accumulation-chain length is
bounded exactly like the real kernels' (:mod:`repro.quant.qkernels`) --
including the documented costs: 32-bit outputs (no bandwidth win there) and
restricted register reuse from chain flushing.
"""

from repro.quant.qtensor import QuantTensor, quantize, dequantize
from repro.quant.qkernels import qconv2d_forward, CHAIN_LIMIT_PAIRS

__all__ = [
    "QuantTensor",
    "quantize",
    "dequantize",
    "qconv2d_forward",
    "CHAIN_LIMIT_PAIRS",
]
