"""Blocked int16 forward engine (section II-K through the full machinery).

:class:`QuantConvForward` subclasses the fp32 streams engine: same blocked
layouts, same dryrun/replay kernel streams, but the JIT'ed variants are the
VNNI kernels (``dtype=QI16F32``: packed-pair weights, int32 accumulators,
chain-limited flushes -- 4VNNIW form on KNM) and the functional microkernel
performs the identical chunked int32 accumulation with overflow detection.

Register pressure halves the accumulator budget (int32+fp32 pairs), which
the blocking plan reflects -- exactly the paper's "restricted accumulation
chain limits the register data reuse".
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.arch.machine import KNM, MachineConfig
from repro.conv._compat import legacy_positionals
from repro.conv.blocking import BlockingPlan, choose_blocking
from repro.conv.forward import DirectConvForward
from repro.conv.fusion import FusedOp
from repro.conv.params import ConvParams
from repro.jit.kernel_cache import KernelCache
from repro.obs.tracer import Tracer
from repro.quant.qkernels import CHAIN_LIMIT_PAIRS, QuantOverflowError
from repro.quant.qtensor import QuantTensor, quantize
from repro.tensor.blocked import BlockedTensor, block_activations, block_weights
from repro.tensor.transforms import vnni_pack_weights
from repro.types import DType, UnsupportedError

__all__ = ["QuantConvForward"]


class QuantConvForward(DirectConvForward):
    """int16 x int16 -> fp32 forward convolution with kernel streams."""

    def __init__(
        self,
        params: ConvParams,
        machine: MachineConfig = KNM,
        *legacy,
        dtype: DType = DType.QI16F32,
        fused_ops: Sequence[FusedOp] = (),
        threads: int = 1,
        chain_limit: int = CHAIN_LIMIT_PAIRS,
        plan: BlockingPlan | None = None,
        prefetch: str = "both",
        kernel_cache: KernelCache | None = None,
        tracer: Tracer | None = None,
        execution_tier: str | None = None,
    ) -> None:
        if legacy:
            lv = legacy_positionals(
                "QuantConvForward",
                ("fused_ops", "threads", "chain_limit", "prefetch",
                 "kernel_cache"),
                legacy,
            )
            fused_ops = lv.get("fused_ops", fused_ops)
            threads = lv.get("threads", threads)
            chain_limit = lv.get("chain_limit", chain_limit)
            prefetch = lv.get("prefetch", prefetch)
            kernel_cache = lv.get("kernel_cache", kernel_cache)
        if dtype is not DType.QI16F32:
            raise UnsupportedError(
                f"QuantConvForward is the int16 engine; got dtype={dtype}"
            )
        self.chain_limit = chain_limit
        # the restricted accumulation chain halves the register budget
        # (int32+fp32 pairs), which the default plan reflects; an explicit
        # plan overrides the cap at the caller's own risk.
        if plan is None:
            plan = choose_blocking(
                params, machine, DType.F32, acc_budget_cap=13
            )
        super().__init__(
            params,
            machine=machine,
            dtype=DType.QI16F32,
            fused_ops=fused_ops,
            threads=threads,
            plan=plan,
            prefetch=prefetch,
            kernel_cache=kernel_cache,
            tracer=tracer,
            execution_tier=execution_tier,
        )
        self._scale = 1.0  # set per invocation from the quantized operands

    def _dequant_scale(self) -> float:
        """Runtime dequantization factor applied by the compiled/interpreter
        tiers to every ``VCVT_I32F32`` flush (the descriptors bake in 1.0;
        the actual factor is known only once the operands are quantized)."""
        return self._scale

    def _stream_out_dtype(self) -> np.dtype:
        """The int16 engine replays into an fp32 output (``run_quantized``
        allocates it explicitly), not ``np_accum``."""
        return np.dtype(np.float32)

    def _prepare_weights(self, w: BlockedTensor) -> BlockedTensor:
        """All int16 kernels consume the VNNI pair layout (section II-K):
        adjacent reduction channels interleaved per output lane, so each
        weight vector covers one channel pair.  Packing is O(weights) per
        call -- the same once-per-invocation cost as the backward pass's
        weight transform."""
        return BlockedTensor(
            vnni_pack_weights(w).reshape(w.layout.shape), w.layout
        )

    # ------------------------------------------------------------------
    def _make_conv_closures(
        self, x: np.ndarray, w: np.ndarray, o: np.ndarray
    ) -> list[Callable]:
        """int16 microkernel closures: chunked int32 accumulation with the
        chain-limit flush schedule, matching the µop generator's."""
        closures = []
        scale = self._scale
        chunk_pairs = self.chain_limit
        for desc in self._descs:
            iscb, ish, isw = desc.i_strides
            wscb, wsr, wss, wsc = desc.w_strides
            osh, osw = desc.o_strides
            stn = desc.stride
            pairs = desc.vlen // 2
            # the weight buffer is VNNI pair-packed (c/2, k, 2); activations
            # stay channel-major so a pair is two adjacent elements
            ishape = (
                desc.cb_unroll, desc.rb_p, desc.R, desc.rb_q, desc.S,
                pairs, 2,
            )
            istr = tuple(
                s * 2 for s in (iscb, stn * ish, ish, stn * isw, isw, 2, 1)
            )
            wshape = (desc.cb_unroll, desc.R, desc.S, pairs, desc.vlen, 2)
            wstr = tuple(s * 2 for s in (wscb, wsr, wss, 2 * wsc, 2, 1))
            oshape = (desc.rb_p, desc.rb_q, desc.vlen)
            ostr = tuple(s * 4 for s in (osh, osw, 1))
            zero_init = desc.zero_init

            def call(
                i_off, w_off, o_off, pi, pw, po, *,
                _is=ishape, _ist=istr, _ws=wshape, _wst=wstr,
                _os=oshape, _ost=ostr, _zi=zero_init, _np=pairs,
            ) -> None:
                iv = as_strided(x[i_off:], _is, _ist)
                wv = as_strided(w[w_off:], _ws, _wst)
                ov = as_strided(o[o_off:], _os, _ost)
                acc = np.zeros(_os, dtype=np.float32)
                # channel pairs chunked by the accumulation-chain limit
                for c0 in range(0, _np, chunk_pairs):
                    c1 = min(c0 + chunk_pairs, _np)
                    part = np.einsum(
                        "bprqsct,brsckt->pqk",
                        iv[..., c0:c1, :].astype(np.int64),
                        wv[:, :, :, c0:c1].astype(np.int64),
                        optimize=True,
                    )
                    peak = int(np.abs(part).max(initial=0))
                    if peak >= 2**31:
                        raise QuantOverflowError(
                            f"int32 overflow in blocked q16 kernel "
                            f"(|acc|={peak})"
                        )
                    acc += part.astype(np.float32) * scale
                if _zi:
                    ov[...] = acc
                else:
                    ov += acc

            closures.append(call)
        return closures

    # ------------------------------------------------------------------
    def run_quantized(
        self, qx: QuantTensor, qw: QuantTensor
    ) -> np.ndarray:
        """Blocked int16 execution from logical quantized tensors; returns
        the fp32 (N, K, P, Q) output."""
        p = self.params
        self._scale = qx.scale * qw.scale
        bx = block_activations(
            qx.data.reshape(p.N, p.C, p.H, p.W),
            self.plan.vlen, pad_h=p.pad_h, pad_w=p.pad_w, dtype=np.int16,
        )
        bw = block_weights(
            qw.data.reshape(p.K, p.C, p.R, p.S), self.plan.vlen,
            dtype=np.int16,
        )
        out = BlockedTensor(
            np.zeros(self.out_layout.size, dtype=np.float32), self.out_layout
        )
        return self(bx, bw, out).to_nchw()

    def run_nchw(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Quantize fp32 operands and execute (convenience)."""
        return self.run_quantized(quantize(x), quantize(w))
