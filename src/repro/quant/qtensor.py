"""int16 tensor quantization (dynamic fixed point, following [18]).

A tensor is represented by int16 values and one power-of-two scale chosen so
the largest magnitude uses the full 15-bit range.  Products of two such
tensors are exact in int32 as long as the accumulation chain is bounded
(section II-K) -- :data:`repro.quant.qkernels.CHAIN_LIMIT_PAIRS` enforces
that bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.types import ShapeError

__all__ = ["QuantTensor", "quantize", "dequantize"]


@dataclass
class QuantTensor:
    """int16 data plus its dequantization scale (``real = data * scale``)."""

    data: np.ndarray
    scale: float

    def __post_init__(self) -> None:
        if self.data.dtype != np.int16:
            raise ShapeError(f"QuantTensor needs int16 data, got {self.data.dtype}")

    def dequantize(self) -> np.ndarray:
        return self.data.astype(np.float32) * self.scale

    @property
    def shape(self):
        return self.data.shape


def quantize(x: np.ndarray, bits: int = 15) -> QuantTensor:
    """Quantize to int16 with a power-of-two scale (DFP16 of [18])."""
    max_abs = float(np.abs(x).max())
    if max_abs == 0.0:
        return QuantTensor(np.zeros(x.shape, dtype=np.int16), 1.0)
    # smallest power-of-two scale that fits max_abs into `bits` bits
    exp = math.ceil(math.log2(max_abs / (2**bits - 1)))
    scale = 2.0**exp
    q = np.clip(np.round(x / scale), -(2**bits), 2**bits - 1)
    return QuantTensor(q.astype(np.int16), scale)


def dequantize(q: QuantTensor) -> np.ndarray:
    return q.dequantize()
