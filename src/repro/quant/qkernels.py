"""Functional int16 convolution with bounded accumulation chains (II-K).

The kernel multiplies int16 activations by int16 weights, accumulating into
int32.  To avoid int32 overflow the accumulation chain is restricted: after
``CHAIN_LIMIT_PAIRS`` channel-pairs the int32 partial sum is converted to
fp32 and drained into the fp32 result -- exactly the structure the µop
generator emits (:func:`repro.jit.codegen.generate_conv_kernel` with
``dtype=QI16F32``), and the reason the paper's low-precision kernels lose
register reuse relative to a 2x ideal.
"""

from __future__ import annotations

import numpy as np

from repro.conv.params import ConvParams
from repro.quant.qtensor import QuantTensor
from repro.types import ReproError, ShapeError

__all__ = ["qconv2d_forward", "CHAIN_LIMIT_PAIRS", "QuantOverflowError", "safe_bits"]

#: int16 pairs accumulated into one int32 register before a flush.
#: Guaranteed overflow-free when operands are quantized to
#: ``safe_bits(CHAIN_LIMIT_PAIRS)`` bits; with full 15-bit operands the
#: guarantee relies on the statistics of trained tensors ([18]).
CHAIN_LIMIT_PAIRS = 8


class QuantOverflowError(ReproError):
    """An int32 accumulator would have overflowed on real hardware."""


def safe_bits(chain_limit: int = CHAIN_LIMIT_PAIRS) -> int:
    """Largest operand bit-width with a worst-case int32 guarantee for
    ``chain_limit`` VNNI ops: ``2 * L * (2^b)^2 < 2^31``."""
    import math

    return int((31 - 1 - math.ceil(math.log2(chain_limit))) // 2)


def qconv2d_forward(
    qx: QuantTensor,
    qw: QuantTensor,
    p: ConvParams,
    chain_limit: int = CHAIN_LIMIT_PAIRS,
) -> np.ndarray:
    """int16 forward convolution; returns fp32 output (32-bit output rule).

    ``qx`` is logical (N, C, H, W) int16; ``qw`` is (K, C, R, S) int16.
    The reduction over (r, s, c) is performed in int32 chunks of
    ``2 * chain_limit`` channels, each drained to fp32 -- numerically
    identical to the hardware kernels' flush schedule.
    """
    if qx.shape != (p.N, p.C, p.H, p.W):
        raise ShapeError(f"input shape {qx.shape} != {(p.N, p.C, p.H, p.W)}")
    if qw.shape != (p.K, p.C, p.R, p.S):
        raise ShapeError(f"weight shape {qw.shape} != {(p.K, p.C, p.R, p.S)}")
    x = qx.data
    w = qw.data
    xp = np.pad(
        x, ((0, 0), (0, 0), (p.pad_h, p.pad_h), (p.pad_w, p.pad_w)), mode="constant"
    )
    out = np.zeros((p.N, p.K, p.P, p.Q), dtype=np.float32)
    scale = qx.scale * qw.scale
    chunk = 2 * chain_limit  # channels per int32 chain
    for r in range(p.R):
        for s in range(p.S):
            patch = xp[
                :,
                :,
                r : r + p.stride * p.P : p.stride,
                s : s + p.stride * p.Q : p.stride,
            ]
            for c0 in range(0, p.C, chunk):
                c1 = min(c0 + chunk, p.C)
                # int64 emulation of the int32 accumulator, with overflow
                # detection: hardware would silently wrap here, which is
                # exactly what the chain-length restriction prevents
                acc = np.einsum(
                    "ncpq,kc->nkpq",
                    patch[:, c0:c1].astype(np.int64),
                    w[:, c0:c1, r, s].astype(np.int64),
                    optimize=True,
                )
                peak = int(np.abs(acc).max()) if acc.size else 0
                if peak >= 2**31:
                    raise QuantOverflowError(
                        f"int32 accumulator overflow (|acc|={peak}); reduce "
                        f"the accumulation chain (limit={chain_limit} pairs) "
                        "or quantize to fewer bits (section II-K)"
                    )
                # flush: int32 partial -> fp32 result (VCVT + VADD)
                out += acc.astype(np.float32) * scale
    return out
