"""Run-length encoding of kernel streams into segments (Fig. 2).

A typical forward pass is long streaks of convolution calls punctuated by
fused APPLY calls.  ``encode_segments`` compresses the per-call kind stream
into ``(CONV_STREAK, length)`` / ``(APPLY, op)`` segments, which is the
"specialized run-length encoding procedure" of section II-H; the replay loop
(Algorithm 5) then iterates segments instead of testing every call's kind.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.streams.stream import APPLY_CALL, FrozenStream

__all__ = ["SegmentKind", "Segment", "encode_segments"]


class SegmentKind(enum.Enum):
    CONV_STREAK = "conv-streak"
    APPLY = "apply"


@dataclass(frozen=True, slots=True)
class Segment:
    """One RLE segment: ``info`` is the streak length for CONV_STREAK and the
    fused-operator index for APPLY.  ``start`` indexes the call streams."""

    kind: SegmentKind
    info: int
    start: int


def encode_segments(stream: FrozenStream) -> list[Segment]:
    """Compress a frozen call stream into segments."""
    segments: list[Segment] = []
    i = 0
    n = len(stream)
    kinds = stream.kinds
    while i < n:
        if kinds[i] == APPLY_CALL:
            segments.append(
                Segment(SegmentKind.APPLY, int(stream.apply_op[i]), i)
            )
            i += 1
        else:
            j = i
            while j < n and kinds[j] != APPLY_CALL:
                j += 1
            segments.append(Segment(SegmentKind.CONV_STREAK, j - i, i))
            i = j
    return segments
