"""Kernel-stream serialization.

The dryrun phase "has to be performed only once during the setup of the CNN
layer" (section II-H); persisting the frozen streams lets a process skip
even that on restart -- the stream buffers are pure offset arrays, so they
round-trip losslessly through ``.npz``.
"""

from __future__ import annotations

import json
import zipfile
import zlib

import numpy as np

from repro.streams.stream import FrozenStream
from repro.types import ReproError

__all__ = [
    "save_streams",
    "load_streams",
    "streams_digest",
    "save_stream_bundle",
    "load_stream_bundle",
    "StaleArtifactError",
]


class StaleArtifactError(ReproError):
    """A persisted stream artifact is unusable -- unreadable, from a
    different format version, content-corrupted (digest mismatch), or
    recorded under a different configuration.  A dedicated subtype so
    callers (serve boot, warm cache) can catch-and-fallback to a cold
    dryrun without string matching."""

_FORMAT_VERSION = 1
_BUNDLE_VERSION = 1
_FIELDS = ("kinds", "i_off", "w_off", "o_off", "apply_op")


def save_streams(path_or_file, streams: list[FrozenStream], meta: dict | None = None) -> None:
    """Persist per-thread frozen streams (and optional layer metadata)."""
    payload = {"__meta__": np.frombuffer(
        json.dumps({"version": _FORMAT_VERSION, "threads": len(streams),
                    **(meta or {})}).encode(), dtype=np.uint8
    )}
    for i, s in enumerate(streams):
        payload[f"kinds_{i}"] = s.kinds
        payload[f"i_off_{i}"] = s.i_off
        payload[f"w_off_{i}"] = s.w_off
        payload[f"o_off_{i}"] = s.o_off
        payload[f"apply_op_{i}"] = s.apply_op
    np.savez_compressed(path_or_file, **payload)


def load_streams(path_or_file) -> tuple[list[FrozenStream], dict]:
    """Load streams saved by :func:`save_streams`; returns (streams, meta)."""
    with np.load(path_or_file) as z:
        meta = json.loads(bytes(z["__meta__"]).decode())
        if meta.get("version") != _FORMAT_VERSION:
            raise ReproError(
                f"unsupported stream file version {meta.get('version')}"
            )
        streams = []
        for i in range(meta["threads"]):
            streams.append(
                FrozenStream(
                    kinds=z[f"kinds_{i}"],
                    i_off=z[f"i_off_{i}"],
                    w_off=z[f"w_off_{i}"],
                    o_off=z[f"o_off_{i}"],
                    apply_op=z[f"apply_op_{i}"],
                )
            )
    return streams, meta


def save_stream_bundle(
    path_or_file,
    bundle: dict[str, list[FrozenStream]],
    meta: dict | None = None,
) -> None:
    """Persist many named stream sets (e.g. one per conv node per batch
    bucket) into a single ``.npz`` -- the serve warm-start artifact.

    Every entry's :func:`streams_digest` is stored alongside it and
    re-verified by :func:`load_stream_bundle`, so a stale or corrupted
    artifact fails loudly at boot instead of replaying garbage offsets.
    """
    entries = {}
    payload = {}
    for name, streams in bundle.items():
        if "::" in name:
            raise ReproError(f"bundle entry name {name!r} contains '::'")
        entries[name] = {
            "threads": len(streams),
            "digest": streams_digest(streams),
        }
        for i, s in enumerate(streams):
            for field in _FIELDS:
                payload[f"{name}::{field}_{i}"] = getattr(s, field)
    doc = {
        "bundle_version": _BUNDLE_VERSION,
        "entries": entries,
        **(meta or {}),
    }
    payload["__meta__"] = np.frombuffer(
        json.dumps(doc).encode(), dtype=np.uint8
    )
    np.savez_compressed(path_or_file, **payload)


def load_stream_bundle(path_or_file) -> tuple[dict[str, list[FrozenStream]], dict]:
    """Load a bundle saved by :func:`save_stream_bundle`.

    Returns ``(bundle, meta)``; every entry's content digest is verified
    against the digest recorded at save time.  Every way an artifact can
    be unusable -- unreadable/truncated file, missing or garbled
    metadata, version mismatch, digest mismatch -- raises
    :class:`StaleArtifactError`, so callers can fall back to a cold
    dryrun with one ``except`` clause.
    """
    try:
        with np.load(path_or_file) as z:
            try:
                meta = json.loads(bytes(z["__meta__"]).decode())
            except (KeyError, UnicodeDecodeError,
                    json.JSONDecodeError) as err:
                raise StaleArtifactError(
                    f"not a stream bundle (bad __meta__): {err}"
                ) from err
            if meta.get("bundle_version") != _BUNDLE_VERSION:
                raise StaleArtifactError(
                    f"unsupported stream bundle version "
                    f"{meta.get('bundle_version')}"
                )
            bundle: dict[str, list[FrozenStream]] = {}
            try:
                items = list(meta["entries"].items())
            except (KeyError, AttributeError) as err:
                raise StaleArtifactError(
                    f"stream bundle metadata lacks entries: {err}"
                ) from err
            for name, entry in items:
                try:
                    streams = [
                        FrozenStream(
                            **{
                                field: z[f"{name}::{field}_{i}"]
                                for field in _FIELDS
                            }
                        )
                        for i in range(entry["threads"])
                    ]
                except KeyError as err:
                    raise StaleArtifactError(
                        f"stream bundle entry {name!r} is incomplete: "
                        f"missing array {err}"
                    ) from err
                digest = streams_digest(streams)
                if digest != entry["digest"]:
                    raise StaleArtifactError(
                        f"stream bundle entry {name!r} digest mismatch "
                        f"({digest} != {entry['digest']}); artifact is "
                        f"stale or corrupted"
                    )
                bundle[name] = streams
    except FileNotFoundError:
        raise  # a missing artifact is a caller error, not a stale one
    except (zipfile.BadZipFile, zlib.error, ValueError, EOFError,
            OSError) as err:
        raise StaleArtifactError(
            f"unreadable stream bundle: {err}"
        ) from err
    return bundle, meta


def streams_digest(streams: list[FrozenStream]) -> str:
    """Stable content digest, for cache-key/consistency checks."""
    import hashlib

    h = hashlib.sha256()
    for s in streams:
        for arr in (s.kinds, s.i_off, s.w_off, s.o_off, s.apply_op):
            h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()[:16]
