"""Kernel-stream serialization.

The dryrun phase "has to be performed only once during the setup of the CNN
layer" (section II-H); persisting the frozen streams lets a process skip
even that on restart -- the stream buffers are pure offset arrays, so they
round-trip losslessly through ``.npz``.
"""

from __future__ import annotations

import json

import numpy as np

from repro.streams.stream import FrozenStream
from repro.types import ReproError

__all__ = ["save_streams", "load_streams", "streams_digest"]

_FORMAT_VERSION = 1


def save_streams(path_or_file, streams: list[FrozenStream], meta: dict | None = None) -> None:
    """Persist per-thread frozen streams (and optional layer metadata)."""
    payload = {"__meta__": np.frombuffer(
        json.dumps({"version": _FORMAT_VERSION, "threads": len(streams),
                    **(meta or {})}).encode(), dtype=np.uint8
    )}
    for i, s in enumerate(streams):
        payload[f"kinds_{i}"] = s.kinds
        payload[f"i_off_{i}"] = s.i_off
        payload[f"w_off_{i}"] = s.w_off
        payload[f"o_off_{i}"] = s.o_off
        payload[f"apply_op_{i}"] = s.apply_op
    np.savez_compressed(path_or_file, **payload)


def load_streams(path_or_file) -> tuple[list[FrozenStream], dict]:
    """Load streams saved by :func:`save_streams`; returns (streams, meta)."""
    with np.load(path_or_file) as z:
        meta = json.loads(bytes(z["__meta__"]).decode())
        if meta.get("version") != _FORMAT_VERSION:
            raise ReproError(
                f"unsupported stream file version {meta.get('version')}"
            )
        streams = []
        for i in range(meta["threads"]):
            streams.append(
                FrozenStream(
                    kinds=z[f"kinds_{i}"],
                    i_off=z[f"i_off_{i}"],
                    w_off=z[f"w_off_{i}"],
                    o_off=z[f"o_off_{i}"],
                    apply_op=z[f"apply_op_{i}"],
                )
            )
    return streams, meta


def streams_digest(streams: list[FrozenStream]) -> str:
    """Stable content digest, for cache-key/consistency checks."""
    import hashlib

    h = hashlib.sha256()
    for s in streams:
        for arr in (s.kinds, s.i_off, s.w_off, s.o_off, s.apply_op):
            h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()[:16]
