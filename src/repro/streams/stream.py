"""Stream buffers recorded by the dryrun phase.

Following Fig. 2, a thread's execution is captured by five parallel streams:
the kernel id per call, three offset streams (input/weight/output), and the
argument stream for APPLY calls.  They are stored as compact numpy arrays --
the Python analogue of the paper's auxiliary *stream buffers* -- so the
replay loop touches only flat memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.types import ReproError

__all__ = ["KernelStream", "CONV_CALL", "APPLY_CALL"]

#: sentinel kernel ids; real conv variants are numbered 0..N-1
CONV_CALL = 0
APPLY_CALL = -1


@dataclass
class KernelStream:
    """Recorded call stream for one thread.

    ``kinds[i] >= 0`` is a convolution call using variant ``kinds[i]`` with
    offsets ``(i_off[i], w_off[i], o_off[i])``; ``kinds[i] == APPLY_CALL``
    applies fused operator ``apply_op[i]`` to the output sub-tensor at
    ``o_off[i]``.  For APPLY records, ``w_off`` carries the output-feature
    block index ``kb`` (per-channel parameters) and ``i_off`` carries the
    preceding conv call's variant id (the APPLY covers that call's output
    block shape).
    """

    kinds: list[int] = field(default_factory=list)
    i_off: list[int] = field(default_factory=list)
    w_off: list[int] = field(default_factory=list)
    o_off: list[int] = field(default_factory=list)
    apply_op: list[int] = field(default_factory=list)

    def record_conv(self, variant: int, i_off: int, w_off: int, o_off: int) -> None:
        if variant < 0:
            raise ReproError("conv variant ids must be >= 0")
        self.kinds.append(variant)
        self.i_off.append(i_off)
        self.w_off.append(w_off)
        self.o_off.append(o_off)
        self.apply_op.append(-1)

    def record_apply(
        self, op_index: int, o_off: int, kb: int, variant: int = 0
    ) -> None:
        self.kinds.append(APPLY_CALL)
        self.i_off.append(variant)
        self.w_off.append(kb)
        self.o_off.append(o_off)
        self.apply_op.append(op_index)

    def __len__(self) -> int:
        return len(self.kinds)

    def freeze(self) -> "FrozenStream":
        return FrozenStream(
            kinds=np.asarray(self.kinds, dtype=np.int32),
            i_off=np.asarray(self.i_off, dtype=np.int64),
            w_off=np.asarray(self.w_off, dtype=np.int64),
            o_off=np.asarray(self.o_off, dtype=np.int64),
            apply_op=np.asarray(self.apply_op, dtype=np.int32),
        )


@dataclass(frozen=True)
class FrozenStream:
    """Immutable, array-backed form used by replay."""

    kinds: np.ndarray
    i_off: np.ndarray
    w_off: np.ndarray
    o_off: np.ndarray
    apply_op: np.ndarray

    def __len__(self) -> int:
        return int(self.kinds.size)

    @property
    def conv_calls(self) -> int:
        return int((self.kinds >= 0).sum())

    @property
    def apply_calls(self) -> int:
        return int((self.kinds == APPLY_CALL).sum())
