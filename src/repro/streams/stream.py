"""Stream buffers recorded by the dryrun phase.

Following Fig. 2, a thread's execution is captured by five parallel streams:
the kernel id per call, three offset streams (input/weight/output), and the
argument stream for APPLY calls.  They are stored as compact numpy arrays --
the Python analogue of the paper's auxiliary *stream buffers* -- so the
replay loop touches only flat memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.types import ReproError

__all__ = ["KernelStream", "CONV_CALL", "APPLY_CALL"]

#: sentinel kernel ids; real conv variants are numbered 0..N-1
CONV_CALL = 0
APPLY_CALL = -1


@dataclass
class KernelStream:
    """Recorded call stream for one thread.

    ``kinds[i] >= 0`` is a convolution call using variant ``kinds[i]`` with
    offsets ``(i_off[i], w_off[i], o_off[i])``; ``kinds[i] == APPLY_CALL``
    applies fused operator ``apply_op[i]`` to the output sub-tensor at
    ``o_off[i]``.  For APPLY records, ``w_off`` carries the output-feature
    block index ``kb`` (per-channel parameters) and ``i_off`` carries the
    preceding conv call's variant id (the APPLY covers that call's output
    block shape).
    """

    kinds: list[int] = field(default_factory=list)
    i_off: list[int] = field(default_factory=list)
    w_off: list[int] = field(default_factory=list)
    o_off: list[int] = field(default_factory=list)
    apply_op: list[int] = field(default_factory=list)

    def record_conv(self, variant: int, i_off: int, w_off: int, o_off: int) -> None:
        if variant < 0:
            raise ReproError("conv variant ids must be >= 0")
        self.kinds.append(variant)
        self.i_off.append(i_off)
        self.w_off.append(w_off)
        self.o_off.append(o_off)
        self.apply_op.append(-1)

    def record_apply(
        self, op_index: int, o_off: int, kb: int, variant: int = 0
    ) -> None:
        self.kinds.append(APPLY_CALL)
        self.i_off.append(variant)
        self.w_off.append(kb)
        self.o_off.append(o_off)
        self.apply_op.append(op_index)

    def __len__(self) -> int:
        return len(self.kinds)

    def freeze(self) -> "FrozenStream":
        return FrozenStream(
            kinds=np.asarray(self.kinds, dtype=np.int32),
            i_off=np.asarray(self.i_off, dtype=np.int64),
            w_off=np.asarray(self.w_off, dtype=np.int64),
            o_off=np.asarray(self.o_off, dtype=np.int64),
            apply_op=np.asarray(self.apply_op, dtype=np.int32),
        )


def _next_conv_index(kinds: np.ndarray) -> np.ndarray:
    """``next_conv[t]`` = index of the first conv record after ``t`` (APPLY
    records skipped), or ``t`` itself when no conv follows -- the prefetch
    target of Algorithm 5, precomputed once so replay never rescans."""
    n = int(kinds.size)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    pos = np.where(kinds >= 0, np.arange(n, dtype=np.int64), 2 * n)
    # suffix-min gives, per t, the first conv index at or after t
    first_at = np.minimum.accumulate(pos[::-1])[::-1]
    nxt = np.empty(n, dtype=np.int64)
    nxt[:-1] = first_at[1:]
    nxt[-1] = 2 * n  # nothing after the last record
    own = np.arange(n, dtype=np.int64)
    return np.where(nxt >= n, own, nxt)


@dataclass(frozen=True)
class FrozenStream:
    """Immutable, array-backed form used by replay.

    Freezing also precomputes everything the replay inner loop would
    otherwise redo per call: the ``next_conv`` prefetch-target index array
    (the former ``while kinds[nt] < 0`` rescan was quadratic in APPLY-heavy
    streams) and plain Python ``int`` mirrors of the offset streams so
    replay dispatch performs no per-call numpy-scalar conversions.
    """

    kinds: np.ndarray
    i_off: np.ndarray
    w_off: np.ndarray
    o_off: np.ndarray
    apply_op: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "next_conv", _next_conv_index(self.kinds))

    @property
    def kinds_list(self) -> list[int]:
        return self._cached_list("kinds")

    @property
    def i_off_list(self) -> list[int]:
        return self._cached_list("i_off")

    @property
    def w_off_list(self) -> list[int]:
        return self._cached_list("w_off")

    @property
    def o_off_list(self) -> list[int]:
        return self._cached_list("o_off")

    @property
    def apply_op_list(self) -> list[int]:
        return self._cached_list("apply_op")

    @property
    def next_conv_list(self) -> list[int]:
        return self._cached_list("next_conv")

    def _cached_list(self, name: str) -> list[int]:
        cache = self.__dict__.get("_lists")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_lists", cache)
        got = cache.get(name)
        if got is None:
            got = cache[name] = getattr(self, name).tolist()
        return got

    def segments(self) -> list:
        """The RLE segment encoding of this stream, computed once and
        cached (segments are a pure function of the immutable arrays, so
        per-replay re-encoding -- the update pass used to pay it every
        call -- is wasted work)."""
        got = self.__dict__.get("_segments")
        if got is None:
            from repro.streams.rle import encode_segments

            got = encode_segments(self)
            object.__setattr__(self, "_segments", got)
        return got

    def __len__(self) -> int:
        return int(self.kinds.size)

    @property
    def conv_calls(self) -> int:
        return int((self.kinds >= 0).sum())

    @property
    def apply_calls(self) -> int:
        return int((self.kinds == APPLY_CALL).sum())
