"""The replay phase: Algorithm 5.

``replay`` walks the RLE segments of a thread's frozen stream and dispatches
through two tables: ``kernels[variant](i_off, w_off, o_off, pi, pw, po)`` for
convolution calls and ``apply_ops[op](o_off, kb)`` for fused operators.  The
prefetch arguments of call ``t`` are the compute offsets of call ``t+1``
(Fig. 1); the final call prefetches its own operands, matching the paper's
convention that the last iteration has nothing new to fetch.

The loop contains no boundary/fusion conditionals -- precisely the point of
the kernel-streams framework (section II-H).  Per-call bookkeeping is hoisted
to freeze time (:class:`~repro.streams.stream.FrozenStream` precomputes the
``next_conv`` prefetch-target array and Python-int offset mirrors), and when
a kernel exposes a ``.batch`` method (the compiled execution tier,
:mod:`repro.jit.compile`), each same-variant run inside a CONV-STREAK is
dispatched as one batched call over the run's offset slices instead of a
Python call per record.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.streams.rle import Segment, SegmentKind
from repro.streams.stream import FrozenStream

__all__ = ["replay"]

ConvKernel = Callable[[int, int, int, int, int, int], None]
ApplyOp = Callable[[int, int], None]


def replay(
    stream: FrozenStream,
    segments: Sequence[Segment],
    kernels: Sequence[ConvKernel],
    apply_ops: Sequence[ApplyOp],
) -> int:
    """Execute one thread's recorded stream; returns the number of conv calls."""
    tracer = get_tracer()
    if tracer.enabled:
        with tracer.span("stream.replay", calls=len(stream)):
            conv_calls = _replay(stream, segments, kernels, apply_ops)
    else:
        conv_calls = _replay(stream, segments, kernels, apply_ops)
    metrics = get_metrics()
    metrics.inc("stream.conv_calls", conv_calls)
    metrics.inc("stream.segments_replayed", len(segments))
    return conv_calls


def _replay(
    stream: FrozenStream,
    segments: Sequence[Segment],
    kernels: Sequence[ConvKernel],
    apply_ops: Sequence[ApplyOp],
) -> int:
    kinds = stream.kinds_list
    i_off = stream.i_off_list
    w_off = stream.w_off_list
    o_off = stream.o_off_list
    next_conv = stream.next_conv_list
    conv_calls = 0
    for seg in segments:
        if seg.kind is SegmentKind.APPLY:
            t = seg.start
            apply_ops[seg.info](o_off[t], w_off[t])
            continue
        # CONV-STREAK: Algorithm 5's inner loop, split into same-variant runs
        stop = seg.start + seg.info
        lo = seg.start
        while lo < stop:
            variant = kinds[lo]
            hi = lo + 1
            while hi < stop and kinds[hi] == variant:
                hi += 1
            fn = kernels[variant]
            batch = getattr(fn, "batch", None)
            if batch is not None and hi - lo > 1:
                batch(
                    stream.i_off[lo:hi],
                    stream.w_off[lo:hi],
                    stream.o_off[lo:hi],
                )
            else:
                for t in range(lo, hi):
                    # prefetch args = next conv call's offsets (APPLYs skip)
                    nt = next_conv[t]
                    fn(
                        i_off[t], w_off[t], o_off[t],
                        i_off[nt], w_off[nt], o_off[nt],
                    )
            conv_calls += hi - lo
            lo = hi
    return conv_calls
