"""The replay phase: Algorithm 5.

``replay`` walks the RLE segments of a thread's frozen stream and dispatches
through two tables: ``kernels[variant](i_off, w_off, o_off, pi, pw, po)`` for
convolution calls and ``apply_ops[op](o_off, kb)`` for fused operators.  The
prefetch arguments of call ``t`` are the compute offsets of call ``t+1``
(Fig. 1); the final call prefetches its own operands, matching the paper's
convention that the last iteration has nothing new to fetch.

The loop contains no boundary/fusion conditionals -- precisely the point of
the kernel-streams framework (section II-H).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.streams.rle import Segment, SegmentKind
from repro.streams.stream import FrozenStream

__all__ = ["replay"]

ConvKernel = Callable[[int, int, int, int, int, int], None]
ApplyOp = Callable[[int, int], None]


def replay(
    stream: FrozenStream,
    segments: Sequence[Segment],
    kernels: Sequence[ConvKernel],
    apply_ops: Sequence[ApplyOp],
) -> int:
    """Execute one thread's recorded stream; returns the number of conv calls."""
    tracer = get_tracer()
    if tracer.enabled:
        with tracer.span("stream.replay", calls=len(stream)):
            conv_calls = _replay(stream, segments, kernels, apply_ops)
    else:
        conv_calls = _replay(stream, segments, kernels, apply_ops)
    metrics = get_metrics()
    metrics.inc("stream.conv_calls", conv_calls)
    metrics.inc("stream.segments_replayed", len(segments))
    return conv_calls


def _replay(
    stream: FrozenStream,
    segments: Sequence[Segment],
    kernels: Sequence[ConvKernel],
    apply_ops: Sequence[ApplyOp],
) -> int:
    kinds = stream.kinds
    i_off = stream.i_off
    w_off = stream.w_off
    o_off = stream.o_off
    n = len(stream)
    conv_calls = 0
    for seg in segments:
        if seg.kind is SegmentKind.APPLY:
            t = seg.start
            apply_ops[seg.info](int(o_off[t]), int(w_off[t]))
            continue
        # CONV-STREAK: Algorithm 5's inner loop
        for t in range(seg.start, seg.start + seg.info):
            # prefetch args = next *conv* call's offsets (skip APPLY records)
            nt = t + 1
            while nt < n and kinds[nt] < 0:
                nt += 1
            if nt >= n:
                nt = t
            kernels[int(kinds[t])](
                int(i_off[t]),
                int(w_off[t]),
                int(o_off[t]),
                int(i_off[nt]),
                int(w_off[nt]),
                int(o_off[nt]),
            )
            conv_calls += 1
    return conv_calls
