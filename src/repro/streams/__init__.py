"""Kernel streams (section II-H): dryrun, run-length encoding, replay.

During layer setup each thread *dryruns* the convolution loop nest, recording
only the kernel variant and the input/weight/output sub-tensor offsets of
every call (plus APPLY records for fused operators).  The recorded stream is
run-length encoded into CONV-STREAK / APPLY segments (Fig. 2), and execution
becomes the branch-free *replay* loop of Algorithm 5, with each call's
prefetch arguments taken from the next record (Fig. 1's
``pi_off_i = i_off_{i+1}`` identity).
"""

from repro.streams.stream import KernelStream, CONV_CALL, APPLY_CALL
from repro.streams.rle import Segment, SegmentKind, encode_segments
from repro.streams.replay import replay
from repro.streams.serialize import StaleArtifactError

__all__ = [
    "KernelStream",
    "CONV_CALL",
    "APPLY_CALL",
    "Segment",
    "SegmentKind",
    "encode_segments",
    "replay",
    "StaleArtifactError",
]
