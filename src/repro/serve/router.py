"""Replica selection for the serving fleet: power-of-two-choices.

The router is deliberately *dumb and fast*: it never touches tensor
bytes (payloads ride the :mod:`repro.serve.shm` ring) and never blocks
on a replica.  Per dispatch it draws **two** distinct candidates from
the available replica set and sends the request to the one with the
lower load score -- the classic power-of-two-choices result: near-
least-loaded balancing with O(1) work and no global scan, robust to the
staleness of the health data it feeds on.

The score blends what the parent knows *exactly* with what each replica
last reported through ``health()``:

* ``outstanding`` -- requests dispatched to the replica and not yet
  answered.  Parent-side, exact, updated on every dispatch/completion.
* ``estimated_wait_ms`` -- the replica's own EWMA-based admission
  estimate (queue depth x decayed service time), from the last health
  poll.  This is what makes the balancing *load*-aware rather than
  merely count-aware: a replica chewing a deep queue of slow batches
  reports a long wait even when its outstanding count matches its
  neighbour's.
* a **degraded-bucket penalty** -- a replica whose health reports
  buckets degraded off the configured execution tier (see
  ``bucket_tiers``) is deprioritized, so bucketed shapes keep landing on
  replicas that run them at full speed.  This is the shape-bucket
  awareness: same shape, same bucket ladder everywhere, but the router
  prefers the replicas whose ladder is intact.

Dispatch decisions are counted per replica
(``serve.router.dispatched.r<id>``) next to the fleet-wide totals
(``serve.router.dispatched``, ``serve.router.rerouted``,
``serve.router.bytes_copied``, ``serve.router.shm_fallback``) so a load
imbalance is visible in one ``stats()`` read.
"""

from __future__ import annotations

import numpy as np

from repro.serve.request import RequestShed

__all__ = ["Router"]

#: weight of the replica-reported estimated wait (ms) against one
#: outstanding request -- 1 outstanding ~ 5 ms of reported queue wait
_WAIT_MS_PER_OUTSTANDING = 5.0
#: score penalty for each bucket a replica runs below its configured
#: execution tier
_DEGRADED_BUCKET_PENALTY = 2.0


class Router:
    """Power-of-two-choices dispatch over a set of replica handles.

    ``handles`` is the fleet's live list (the fleet mutates states in
    place; the router re-reads availability on every pick).  A handle
    must expose ``id``, ``available`` (bool), ``outstanding_count``,
    ``est_wait_ms`` and ``degraded_buckets`` -- the fleet's
    ``ReplicaHandle`` does.
    """

    def __init__(self, handles, metrics, seed: int = 0):
        self._handles = handles
        self._metrics = metrics
        self._rng = np.random.default_rng(seed)

    @staticmethod
    def score(handle) -> float:
        """Lower is better: exact outstanding count, the replica's own
        wait estimate, and a penalty per degraded bucket."""
        return (
            handle.outstanding_count
            + handle.est_wait_ms / _WAIT_MS_PER_OUTSTANDING
            + _DEGRADED_BUCKET_PENALTY * len(handle.degraded_buckets)
        )

    def pick(self, exclude: int | None = None):
        """Choose a replica for one request (power of two choices).

        ``exclude`` keeps a hedged backup off the primary's replica; it
        is a preference, not a hard rule -- when the excluded replica is
        the only one available it still serves (a slow answer beats a
        shed).  Raises :class:`RequestShed` when nothing is available.
        """
        candidates = [h for h in self._handles if h.available]
        if not candidates:
            self._metrics.inc("serve.router.no_replica")
            raise RequestShed(
                "no fleet replica available to take the request"
            )
        preferred = [h for h in candidates if h.id != exclude]
        if preferred:
            candidates = preferred
        if len(candidates) == 1:
            chosen = candidates[0]
        elif len(candidates) == 2:
            a, b = candidates
            chosen = a if self.score(a) <= self.score(b) else b
        else:
            i, j = self._rng.choice(len(candidates), size=2, replace=False)
            a, b = candidates[int(i)], candidates[int(j)]
            chosen = a if self.score(a) <= self.score(b) else b
        self._metrics.inc("serve.router.dispatched")
        self._metrics.inc(f"serve.router.dispatched.r{chosen.id}")
        return chosen

    def note_reroute(self) -> None:
        self._metrics.inc("serve.router.rerouted")

    def note_copy(self, nbytes: int) -> None:
        """A payload left the shared-memory path (ring exhausted or an
        unbucketable shape) and was pickled instead -- the one thing the
        hot path must never do silently."""
        self._metrics.inc("serve.router.bytes_copied", nbytes)
        self._metrics.inc("serve.router.shm_fallback")

    def stats(self) -> dict:
        counters = self._metrics.counters()
        return {
            name: value
            for name, value in sorted(counters.items())
            if name.startswith("serve.router.")
        }
