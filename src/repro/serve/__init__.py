"""repro.serve -- dynamic-batching inference serving.

The paper's central systems idea (section II-J) is to pay setup --
JIT codegen, blocking choice, the dryrun that records kernel streams --
**once**, then replay a frozen stream with zero control overhead per call.
An inference server is the same shape at a larger scale: request shapes
repeat millions of times, so *everything* shape-dependent (engines,
streams, compiled closures, even the micro-batch buckets) is built at
boot and amortized across requests.

Pieces (one module each):

* :class:`ServeConfig` -- the frozen description of what is served
  (model, input shape, batch buckets, engine/tier, admission limits).
* :class:`AdmissionQueue` -- bounded FIFO with load shedding; the only
  place a request can be rejected.
* :class:`MicroBatcher` -- coalesces single-image requests into
  shape-bucketed minibatches (pad-to-bucket, outputs scattered back).
* :class:`StreamWarmCache` -- per-bucket frozen kernel streams keyed by
  content digest; persists to a ``.npz`` artifact so a rebooted server
  skips every dryrun.
* :class:`EngineReplica` / worker threads -- forward-only
  :class:`~repro.gxm.inference.InferenceSession` instances per batch
  bucket executing the batches.
* :class:`InferenceServer` -- composition + SLO plumbing: per-request
  latency percentiles, queue depth, batch occupancy and shed counts all
  flow through :mod:`repro.obs`.
* :func:`run_closed_loop` / :func:`run_open_loop` -- the synthetic load
  generators behind ``python -m repro loadgen``.
* :func:`serve_http` -- a stdlib HTTP front end (``POST /predict``,
  ``GET /metrics``, ``GET /healthz``).

Resilience (see :mod:`repro.resilience`): boot survives a corrupt or
stale warm-cache artifact by falling back to cold dryruns
(``serve.artifact_rejected``); a supervisor thread restarts crashed
worker threads with bounded exponential backoff
(``serve.worker_restarts``); a blocked replica whose compiled execution
tier fails rebuilds that bucket on the ``interpret`` tier and retries
(``serve.tier_degraded``); and ``GET /healthz`` serves
:meth:`InferenceServer.health` -- ``ok``/``degraded``/``down`` plus
live-worker counts and every degradation reason.

Quick start::

    from repro.serve import InferenceServer, ServeConfig, run_closed_loop

    server = InferenceServer(ServeConfig())
    server.start()
    probs = server.predict(x)          # x: one (C, H, W) image
    report = run_closed_loop(server, clients=8, requests=256)
    print(report.throughput_rps, report.latency_ms["p99"])
    server.stop()

Outputs are bitwise identical to unbatched
:meth:`~repro.gxm.inference.InferenceSession.predict` whatever bucket a
request lands in: every layer of the forward path computes each sample
independently of its batch neighbours (see ``Linear.forward`` for the one
place that needed care).
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.batcher import MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.http import serve_http
from repro.serve.loadgen import LoadReport, run_closed_loop, run_open_loop
from repro.serve.request import InferenceRequest, RequestShed, ServerClosed
from repro.serve.server import InferenceServer
from repro.serve.warmcache import StreamWarmCache
from repro.serve.worker import EngineReplica

__all__ = [
    "ServeConfig",
    "InferenceServer",
    "InferenceRequest",
    "RequestShed",
    "ServerClosed",
    "AdmissionQueue",
    "MicroBatcher",
    "StreamWarmCache",
    "EngineReplica",
    "LoadReport",
    "run_closed_loop",
    "run_open_loop",
    "serve_http",
]
