"""repro.serve -- dynamic-batching inference serving.

The paper's central systems idea (section II-J) is to pay setup --
JIT codegen, blocking choice, the dryrun that records kernel streams --
**once**, then replay a frozen stream with zero control overhead per call.
An inference server is the same shape at a larger scale: request shapes
repeat millions of times, so *everything* shape-dependent (engines,
streams, compiled closures, even the micro-batch buckets) is built at
boot and amortized across requests.

Pieces (one module each):

* :class:`ServeConfig` -- the frozen description of what is served
  (model, input shape, batch buckets, engine/tier, admission limits).
* :class:`AdmissionQueue` -- bounded FIFO with load shedding; the only
  place a request can be rejected.
* :class:`MicroBatcher` -- coalesces single-image requests into
  shape-bucketed minibatches (pad-to-bucket, outputs scattered back).
* :class:`StreamWarmCache` -- per-bucket frozen kernel streams keyed by
  content digest; persists to a ``.npz`` artifact so a rebooted server
  skips every dryrun.
* :class:`EngineReplica` / worker threads -- forward-only
  :class:`~repro.gxm.inference.InferenceSession` instances per batch
  bucket executing the batches.
* :class:`InferenceServer` -- composition + SLO plumbing: per-request
  latency percentiles, queue depth, batch occupancy and shed counts all
  flow through :mod:`repro.obs`.
* :func:`run_closed_loop` / :func:`run_open_loop` -- the synthetic load
  generators behind ``python -m repro loadgen``.
* :func:`serve_http` -- a stdlib HTTP front end (``POST /predict``,
  ``GET /metrics``, ``GET /healthz``).

Resilience (see :mod:`repro.resilience`): boot survives a corrupt or
stale warm-cache artifact by falling back to cold dryruns
(``serve.artifact_rejected``); a supervisor thread restarts crashed
worker threads with bounded exponential backoff
(``serve.worker_restarts``); a blocked replica whose compiled execution
tier fails rebuilds that bucket on the ``interpret`` tier and retries
(``serve.tier_degraded``); and ``GET /healthz`` serves
:meth:`InferenceServer.health` -- ``ok``/``degraded``/``down`` plus
live-worker counts and every degradation reason.

Request lifecycle (this layer is what makes the server operable):

* **deadlines** -- :meth:`submit`/:meth:`predict` take an absolute
  monotonic ``deadline`` (HTTP: ``X-Deadline-Ms``); expired requests
  are dropped at admission, at batch assembly and before replay
  (``serve.deadline_expired``, :class:`DeadlineExceeded`, HTTP 504) so
  a stale batch never wastes an engine pass.
* **adaptive backpressure** -- ``max_queue_wait_ms`` sheds on the
  *estimated queue wait* (service-time EWMA x depth / workers), not a
  raw depth threshold (``serve.shed_backpressure``).
* **circuit breaker** -- :class:`CircuitBreaker` fast-fails ``/predict``
  (and :class:`ServeClient` calls) once the recent error rate trips,
  then half-opens with bounded probes.
* **a real client** -- :class:`ServeClient`: per-request timeout,
  bounded jittered retries (503-class only -- never 4xx/504), optional
  p95 hedging; both load generators drive it.
* **drain + hot reload** -- :meth:`InferenceServer.drain` stops
  admission and finishes in-flight batches;
  :meth:`InferenceServer.reload_checkpoint` canaries new weights on
  shadow replicas against the numerics contract, atomically swaps on
  success (rebuilding the stream warm cache) and rolls back on failure
  (:class:`CanaryError`, HTTP 409) with the old weights never leaving
  service.  ``POST /admin/drain`` / ``/admin/resume`` /
  ``/admin/reload`` expose the same over HTTP.  Lifecycle operations
  never interleave: a second drain/resume/reload while one is in flight
  is refused deterministically (:class:`LifecycleBusy`, HTTP 409).
* **forensics** -- with ``ServeConfig.incident_dir`` set, the flight
  recorder (:mod:`repro.forensics`) logs admissions, batch compositions,
  tier degrades and lifecycle transitions; canary rollbacks,
  shared-memory slot corruption and ``POST /admin/dump`` each freeze a
  digest-verified incident bundle replayable bitwise via
  ``python -m repro incident replay``.

Fleet serving (see :mod:`repro.serve.fleet`): one server is GIL-bound,
so :class:`InferenceFleet` boots N full server *processes* behind a
power-of-two-choices :class:`Router` fed by replica health, moves
tensor payloads through a generation-tagged shared-memory ring
(:class:`TensorShm` -- the router never copies activations), shares one
verified warm-stream bundle across all replicas, supervises them with
SIGKILL/hang detection + respawn, and rolls drain/reload (canary
replica first) across the fleet.  It duck-types the server surface, so
``serve_http``, :class:`ServeClient` and the load generators drive a
fleet unchanged.

Quick start::

    from repro.serve import InferenceServer, ServeConfig, run_closed_loop

    server = InferenceServer(ServeConfig())
    server.start()
    probs = server.predict(x)          # x: one (C, H, W) image
    report = run_closed_loop(server, clients=8, requests=256)
    print(report.throughput_rps, report.latency_ms["p99"])
    server.stop()

Outputs are bitwise identical to unbatched
:meth:`~repro.gxm.inference.InferenceSession.predict` whatever bucket a
request lands in: every layer of the forward path computes each sample
independently of its batch neighbours (see ``Linear.forward`` for the one
place that needed care).
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.batcher import MicroBatcher
from repro.serve.breaker import CircuitBreaker
from repro.serve.client import ClientConfig, ServeClient
from repro.serve.config import ServeConfig, ServeConfigError
from repro.serve.fleet import InferenceFleet, ReplicaHandle
from repro.serve.http import serve_http
from repro.serve.loadgen import LoadReport, run_closed_loop, run_open_loop
from repro.serve.request import (
    DeadlineExceeded,
    InferenceRequest,
    RequestShed,
    ServerClosed,
)
from repro.serve.router import Router
from repro.serve.server import CanaryError, InferenceServer, LifecycleBusy
from repro.serve.shm import ShmArrayStore, SlotCorruption, TensorShm
from repro.serve.warmcache import StreamWarmCache
from repro.serve.worker import EngineReplica, ReplicaSlot, SwapGate

__all__ = [
    "ServeConfig",
    "ServeConfigError",
    "InferenceServer",
    "InferenceFleet",
    "ReplicaHandle",
    "Router",
    "TensorShm",
    "ShmArrayStore",
    "SlotCorruption",
    "InferenceRequest",
    "RequestShed",
    "ServerClosed",
    "DeadlineExceeded",
    "CanaryError",
    "LifecycleBusy",
    "AdmissionQueue",
    "MicroBatcher",
    "CircuitBreaker",
    "ClientConfig",
    "ServeClient",
    "StreamWarmCache",
    "EngineReplica",
    "ReplicaSlot",
    "SwapGate",
    "LoadReport",
    "run_closed_loop",
    "run_open_loop",
    "serve_http",
]
