"""Circuit breaker: convert a failing dependency into fast failure.

Under overload or partial failure, the worst thing a front end can do
is keep queueing work behind a dependency that is already drowning --
every retry adds load exactly when capacity is lowest.  The breaker
watches a rolling window of request outcomes and, once the error rate
crosses a threshold, **opens**: calls are rejected immediately (HTTP
503 / :class:`~repro.serve.request.RequestShed`) without touching the
server.  After a cool-down it **half-opens**, letting a bounded number
of probe requests through; enough probe successes close it again, any
probe failure re-opens it and restarts the cool-down.

The same class serves both sides of the connection: ``serve_http``
fast-503s ahead of the admission queue, and
:class:`~repro.serve.client.ServeClient` stops hammering a server that
keeps shedding.  Time is injected (``clock``) so tests drive the state
machine deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.obs.metrics import MetricsRegistry, get_metrics

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Error-rate circuit breaker with half-open probing.

    Parameters
    ----------
    window:
        Number of most-recent outcomes the error rate is computed over.
    error_threshold:
        Open when ``failures / window_len >= error_threshold`` (and at
        least ``min_volume`` outcomes have been seen -- one failed
        request out of one must not trip a cold breaker).
    reset_s:
        Cool-down before an open breaker half-opens.
    probes:
        Consecutive probe successes required to close from half-open;
        also the number of concurrent trial calls half-open admits.
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        window: int = 32,
        error_threshold: float = 0.5,
        min_volume: int = 8,
        reset_s: float = 1.0,
        probes: int = 2,
        metrics: MetricsRegistry | None = None,
        clock=time.monotonic,
    ):
        if not 0.0 < error_threshold <= 1.0:
            raise ValueError(
                f"error_threshold must be in (0, 1], got {error_threshold}"
            )
        if window < 1 or min_volume < 1 or probes < 1:
            raise ValueError("window, min_volume and probes must be >= 1")
        self.error_threshold = error_threshold
        self.min_volume = min_volume
        self.reset_s = reset_s
        self.probes = probes
        self._clock = clock
        self._metrics = metrics if metrics is not None else get_metrics()
        self._lock = threading.Lock()
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._state = CLOSED
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probe_successes = 0

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        """Lock held: open -> half-open once the cool-down elapsed."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_s
        ):
            self._state = HALF_OPEN
            self._probes_in_flight = 0
            self._probe_successes = 0

    def allow(self) -> bool:
        """May a call proceed right now?

        ``False`` means fast-fail (counted in ``serve.breaker_fast_fail``).
        Half-open admits at most ``probes`` concurrent trial calls; the
        caller MUST report the outcome via :meth:`record_success` /
        :meth:`record_failure` or the probe slots leak.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._probes_in_flight < self.probes:
                    self._probes_in_flight += 1
                    return True
            self._metrics.inc("serve.breaker_fast_fail")
            return False

    def record_success(self) -> None:
        with self._lock:
            self._maybe_half_open()
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self.probes:
                    # recovered: forget the bad window entirely
                    self._state = CLOSED
                    self._outcomes.clear()
                return
            self._outcomes.append(False)

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open()
            if self._state == HALF_OPEN:
                # a failed probe re-opens immediately; the cool-down
                # restarts so recovery is retried, not hammered
                self._trip()
                return
            self._outcomes.append(True)
            if self._state == CLOSED and len(self._outcomes) >= self.min_volume:
                rate = sum(self._outcomes) / len(self._outcomes)
                if rate >= self.error_threshold:
                    self._trip()

    def _trip(self) -> None:
        """Lock held: enter (or re-enter) the open state."""
        self._state = OPEN
        self._opened_at = self._clock()
        self._probes_in_flight = 0
        self._probe_successes = 0
        self._metrics.inc("serve.breaker_open")

    def snapshot(self) -> dict:
        """State + window stats for health/stats payloads."""
        with self._lock:
            self._maybe_half_open()
            n = len(self._outcomes)
            return {
                "state": self._state,
                "window": n,
                "error_rate": (sum(self._outcomes) / n) if n else 0.0,
                "opens": self._metrics.value("serve.breaker_open"),
            }
