"""One in-flight inference request.

A request is the unit the admission queue holds and the batcher
coalesces: one ``(C, H, W)`` image plus a completion event the worker
signals from its own thread.  The submitting thread blocks in
:meth:`InferenceRequest.result` -- the usual future shape, kept to the
handful of methods serving actually needs.

Deadlines are **absolute monotonic times** (``time.perf_counter``
values), not durations: a request carries the moment its submitter
stops caring, every stage of the pipeline (admission pop, batch build,
the worker's pre-replay check) compares against the same clock, and an
expired request is failed with :class:`DeadlineExceeded` instead of
occupying a batch slot for an answer nobody will read.
"""

from __future__ import annotations

import itertools
import threading
import time

import numpy as np

from repro.types import ReproError

__all__ = [
    "DeadlineExceeded",
    "InferenceRequest",
    "RequestShed",
    "ServerClosed",
]


class RequestShed(ReproError):
    """Raised to the submitter when admission control rejects a request
    (queue at capacity, estimated queue wait over budget, or a tripped
    circuit breaker fast-failing)."""


class ServerClosed(ReproError):
    """Raised when a request is submitted to -- or still queued in -- a
    server that has been stopped or is draining."""


class DeadlineExceeded(ReproError):
    """Raised to the submitter when a request's deadline passed before a
    worker produced its answer (HTTP 504)."""


_ids = itertools.count()


class InferenceRequest:
    """A single image awaiting its probability vector.

    ``deadline`` is an absolute ``time.perf_counter()`` moment (``None``
    = wait forever).  It is advisory for the submitter but binding for
    the pipeline: admission and batching drop expired requests, and
    :meth:`result` converts a deadline overrun into
    :class:`DeadlineExceeded` on the caller's side too.
    """

    __slots__ = (
        "id", "x", "t_submit", "deadline", "replica_id",
        "_event", "_value", "_error", "_cancelled",
    )

    def __init__(self, x: np.ndarray, deadline: float | None = None):
        self.id = next(_ids)
        self.x = x
        #: submission wall-clock, for end-to-end latency accounting
        self.t_submit = time.perf_counter()
        #: absolute monotonic deadline (None = no deadline)
        self.deadline = deadline
        #: fleet replica serving this request (None in single-process
        #: serving); hedged backups use it to target a different replica
        self.replica_id: int | None = None
        self._event = threading.Event()
        self._value: np.ndarray | None = None
        self._error: BaseException | None = None
        self._cancelled = False

    def _resolve(self, value: np.ndarray) -> None:
        self._value = value
        self._event.set()

    def _fail(self, err: BaseException) -> None:
        self._error = err
        self._event.set()

    def cancel(self) -> None:
        """Mark the request abandoned: its submitter stopped waiting, so
        workers may drop it from batches instead of computing a result
        nobody will read.  Best-effort -- a worker that already picked
        the request up still resolves it harmlessly."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def expired(self) -> bool:
        """True once the deadline has passed (always False without one)."""
        return (
            self.deadline is not None
            and time.perf_counter() > self.deadline
        )

    def remaining_s(self) -> float | None:
        """Seconds until the deadline (negative once expired); ``None``
        without a deadline."""
        if self.deadline is None:
            return None
        return self.deadline - time.perf_counter()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until the worker resolves this request; re-raises any
        failure from the worker thread in the submitter's thread.

        The effective wait is the smaller of ``timeout`` and the time to
        the request's own deadline.  A timeout cancels the request so a
        still-queued entry does not occupy a batch slot under overload; a
        deadline overrun raises :class:`DeadlineExceeded` (matching what
        the pipeline would have failed it with).
        """
        wait = timeout
        remaining = self.remaining_s()
        if remaining is not None and (wait is None or remaining < wait):
            wait = max(0.0, remaining)
            if not self._event.wait(wait):
                self.cancel()
                raise DeadlineExceeded(
                    f"request {self.id} missed its deadline"
                )
        elif not self._event.wait(wait):
            self.cancel()
            raise TimeoutError(
                f"request {self.id} not completed within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._value
