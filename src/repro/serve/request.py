"""One in-flight inference request.

A request is the unit the admission queue holds and the batcher
coalesces: one ``(C, H, W)`` image plus a completion event the worker
signals from its own thread.  The submitting thread blocks in
:meth:`InferenceRequest.result` -- the usual future shape, kept to the
handful of methods serving actually needs.
"""

from __future__ import annotations

import itertools
import threading
import time

import numpy as np

from repro.types import ReproError

__all__ = ["InferenceRequest", "RequestShed", "ServerClosed"]


class RequestShed(ReproError):
    """Raised to the submitter when admission control rejects a request
    (queue at capacity)."""


class ServerClosed(ReproError):
    """Raised when a request is submitted to -- or still queued in -- a
    server that has been stopped."""


_ids = itertools.count()


class InferenceRequest:
    """A single image awaiting its probability vector."""

    __slots__ = (
        "id", "x", "t_submit", "_event", "_value", "_error", "_cancelled"
    )

    def __init__(self, x: np.ndarray):
        self.id = next(_ids)
        self.x = x
        #: submission wall-clock, for end-to-end latency accounting
        self.t_submit = time.perf_counter()
        self._event = threading.Event()
        self._value: np.ndarray | None = None
        self._error: BaseException | None = None
        self._cancelled = False

    def _resolve(self, value: np.ndarray) -> None:
        self._value = value
        self._event.set()

    def _fail(self, err: BaseException) -> None:
        self._error = err
        self._event.set()

    def cancel(self) -> None:
        """Mark the request abandoned: its submitter stopped waiting, so
        workers may drop it from batches instead of computing a result
        nobody will read.  Best-effort -- a worker that already picked
        the request up still resolves it harmlessly."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until the worker resolves this request; re-raises any
        failure from the worker thread in the submitter's thread.  A
        timeout cancels the request so a still-queued entry does not
        occupy a batch slot under overload."""
        if not self._event.wait(timeout):
            self.cancel()
            raise TimeoutError(
                f"request {self.id} not completed within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._value
