"""Minimal stdlib HTTP front end for an :class:`InferenceServer`.

Endpoints, JSON in/out:

* ``POST /predict`` -- body ``{"input": <nested (C, H, W) list>}``,
  response ``{"probs": [...], "argmax": k}``.  An ``X-Deadline-Ms``
  header gives the request a deadline (relative milliseconds); once it
  passes, the pipeline drops the request and the client gets ``504``.
* ``GET /metrics`` -- the server's :meth:`stats` snapshot.
* ``GET /healthz`` -- the readiness payload (:meth:`InferenceServer
  .health`): ``200`` while the server can serve (``ok`` or
  ``degraded``), ``503`` when it is down.
* ``POST /admin/drain`` -- stop admission, finish in-flight work,
  report leftovers (the first step of a maintenance window).
* ``POST /admin/resume`` -- re-open admission after a drain.
* ``POST /admin/reload`` -- body ``{"checkpoint": "<path>"}``: hot
  reload with canary + rollback (:meth:`reload_checkpoint`).  ``200``
  on swap; ``409`` when the canary failed and the old weights kept
  serving.
* ``POST /admin/dump`` -- freeze a :mod:`repro.forensics` incident
  bundle of the running server (flight-recorder ring, config, live
  weights, a replayable canary request); response ``{"bundle": path}``.
  ``500`` when no ``incident_dir`` is configured.

Admin operations never interleave: a drain/resume/reload arriving while
another lifecycle operation is in flight gets a deterministic ``409``
(``{"busy": true}``, :class:`~repro.serve.server.LifecycleBusy`) instead
of queueing behind it.

Load shedding and shutdown map to ``503`` (the standard back-pressure
status), malformed input to ``400``, a timeout or missed deadline to
``504`` and any unexpected engine failure to ``500``.  A
:class:`~repro.serve.breaker.CircuitBreaker` sits ahead of ``/predict``:
once the recent error rate trips it, requests are fast-503'd without
touching the admission queue until half-open probes prove recovery.

A client that disconnects before reading its response used to make the
handler thread traceback to stderr (``BrokenPipeError`` out of
``wfile.write``); replies now swallow the disconnect and count it in
``serve.client_disconnects`` -- the client is gone, there is nobody to
tell.

The listener is a ``ThreadingHTTPServer`` running in a daemon thread:
each connection blocks in ``predict`` while the batcher coalesces it
with its neighbours, so concurrency comes from the client side exactly
as with in-process submission.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.serve.breaker import CircuitBreaker
from repro.serve.request import (
    DeadlineExceeded,
    RequestShed,
    ServerClosed,
)
from repro.serve.server import CanaryError, LifecycleBusy
from repro.types import ReproError, ShapeError

__all__ = ["serve_http"]


def _make_handler(server, breaker: CircuitBreaker | None):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args):  # noqa: D102 -- keep tests quiet
            pass

        def _reply(self, status: int, doc: dict) -> None:
            try:
                body = json.dumps(doc).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError):
                # the client hung up before reading its answer; there is
                # nobody left to reply to and nothing to crash over
                server.metrics.inc("serve.client_disconnects")
                self.close_connection = True

        def _read_json(self) -> dict | None:
            try:
                length = int(self.headers.get("Content-Length", 0))
                raw = self.rfile.read(length) if length else b"{}"
                doc = json.loads(raw) if raw else {}
                if not isinstance(doc, dict):
                    raise ValueError("body must be a JSON object")
                return doc
            except (ValueError, TypeError) as err:
                self._reply(400, {"error": f"bad request body: {err}"})
                return None

        def do_GET(self) -> None:  # noqa: N802 -- http.server API
            if self.path == "/healthz":
                health = server.health()
                status = 200 if health["status"] != "down" else 503
                self._reply(status, health)
            elif self.path == "/metrics":
                self._reply(200, server.stats())
            else:
                self._reply(404, {"error": f"no such path {self.path}"})

        def do_POST(self) -> None:  # noqa: N802 -- http.server API
            if self.path == "/predict":
                self._predict()
            elif self.path == "/admin/drain":
                self._admin(lambda doc: server.drain(
                    timeout_s=float(doc.get("timeout_s", 30.0))
                ))
            elif self.path == "/admin/resume":
                self._admin(lambda doc: server.resume())
            elif self.path == "/admin/reload":
                self._admin(self._reload)
            elif self.path == "/admin/dump":
                self._admin(
                    lambda doc: {"bundle": server.dump_incident()}
                )
            else:
                self._reply(404, {"error": f"no such path {self.path}"})

        def _admin(self, op) -> None:
            doc = self._read_json()
            if doc is None:
                return
            try:
                self._reply(200, op(doc))
            except LifecycleBusy as err:
                # another lifecycle op is in flight: deterministic 409,
                # never queued behind it
                self._reply(409, {"error": str(err), "busy": True})
            except CanaryError as err:
                # rolled back: the old weights never stopped serving
                self._reply(409, {"error": str(err), "rolled_back": True})
            except ServerClosed as err:
                self._reply(503, {"error": str(err)})
            except (ReproError, ValueError, OSError) as err:
                self._reply(
                    500, {"error": f"{type(err).__name__}: {err}"}
                )

        @staticmethod
        def _reload(doc: dict) -> dict:
            path = doc.get("checkpoint")
            if not path:
                raise ValueError(
                    "reload body must carry {'checkpoint': '<path>'}"
                )
            return server.reload_checkpoint(path)

        def _deadline(self) -> float | None:
            """Absolute monotonic deadline from ``X-Deadline-Ms``, or
            ``None``; raises ``ValueError`` on garbage."""
            raw = self.headers.get("X-Deadline-Ms")
            if raw is None:
                return None
            ms = float(raw)
            if ms <= 0:
                raise ValueError(
                    f"X-Deadline-Ms must be positive, got {raw!r}"
                )
            return time.perf_counter() + ms / 1e3

        def _predict(self) -> None:
            doc = self._read_json()
            if doc is None:
                return
            try:
                deadline = self._deadline()
                x = np.asarray(doc["input"], dtype=np.float32)
            except (ValueError, KeyError, TypeError) as err:
                self._reply(400, {"error": f"bad request body: {err}"})
                return
            if breaker is not None and not breaker.allow():
                self._reply(
                    503,
                    {"error": "circuit breaker open; request fast-failed"},
                )
                return
            try:
                if deadline is not None:
                    probs = server.predict(x, deadline=deadline)
                else:
                    probs = server.predict(x)
            except (ShapeError,) as err:
                # the request is malformed, not the server unhealthy --
                # a 4xx never feeds the breaker
                self._reply(400, {"error": str(err)})
                return
            except (RequestShed, ServerClosed) as err:
                if breaker is not None:
                    breaker.record_failure()
                self._reply(503, {"error": str(err)})
                return
            except (DeadlineExceeded, TimeoutError) as err:
                if breaker is not None:
                    breaker.record_failure()
                self._reply(504, {"error": str(err)})
                return
            except Exception as err:  # noqa: BLE001 -- worker failures
                # arrive via req.result and can be any engine exception;
                # the client must still get an HTTP response
                if breaker is not None:
                    breaker.record_failure()
                self._reply(500, {"error": f"{type(err).__name__}: {err}"})
                return
            if breaker is not None:
                breaker.record_success()
            self._reply(
                200,
                {
                    "probs": [float(p) for p in probs],
                    "argmax": int(np.argmax(probs)),
                },
            )

    return Handler


def serve_http(
    server,
    host: str = "127.0.0.1",
    port: int = 0,
    breaker: CircuitBreaker | None = None,
):
    """Expose ``server`` over HTTP; returns the listening ``httpd``.

    ``port=0`` binds an ephemeral port -- read it back from
    ``httpd.server_address[1]``.  Stop with ``httpd.shutdown()``.
    ``breaker`` guards ``/predict`` (pass an armed
    :class:`CircuitBreaker`, or ``None`` for the default one); it is
    exposed as ``httpd.breaker`` for inspection.
    """
    if breaker is None:
        breaker = CircuitBreaker(metrics=server.metrics)
    httpd = ThreadingHTTPServer((host, port), _make_handler(server, breaker))
    httpd.daemon_threads = True
    httpd.breaker = breaker
    thread = threading.Thread(
        target=httpd.serve_forever, name="serve-http", daemon=True
    )
    thread.start()
    return httpd
