"""Minimal stdlib HTTP front end for an :class:`InferenceServer`.

Three endpoints, JSON in/out:

* ``POST /predict`` -- body ``{"input": <nested (C, H, W) list>}``,
  response ``{"probs": [...], "argmax": k}``.
* ``GET /metrics`` -- the server's :meth:`stats` snapshot.
* ``GET /healthz`` -- the readiness payload (:meth:`InferenceServer
  .health`): ``200`` while the server can serve (``ok`` or
  ``degraded``), ``503`` when it is down.

Load shedding and shutdown map to ``503`` (the standard back-pressure
status), malformed input to ``400``, a request timeout to ``504`` and
any unexpected engine failure to ``500``.  The listener is a
``ThreadingHTTPServer`` running in a daemon thread: each connection
blocks in ``predict`` while the batcher coalesces it with its
neighbours, so concurrency comes from the client side exactly as with
in-process submission.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.serve.request import RequestShed, ServerClosed
from repro.types import ShapeError

__all__ = ["serve_http"]


def _make_handler(server):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args):  # noqa: D102 -- keep tests quiet
            pass

        def _reply(self, status: int, doc: dict) -> None:
            body = json.dumps(doc).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 -- http.server API
            if self.path == "/healthz":
                health = server.health()
                status = 200 if health["status"] != "down" else 503
                self._reply(status, health)
            elif self.path == "/metrics":
                self._reply(200, server.stats())
            else:
                self._reply(404, {"error": f"no such path {self.path}"})

        def do_POST(self) -> None:  # noqa: N802 -- http.server API
            if self.path != "/predict":
                self._reply(404, {"error": f"no such path {self.path}"})
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
                doc = json.loads(self.rfile.read(length))
                x = np.asarray(doc["input"], dtype=np.float32)
            except (ValueError, KeyError, TypeError) as err:
                self._reply(400, {"error": f"bad request body: {err}"})
                return
            try:
                probs = server.predict(x)
            except (ShapeError,) as err:
                self._reply(400, {"error": str(err)})
                return
            except (RequestShed, ServerClosed) as err:
                self._reply(503, {"error": str(err)})
                return
            except TimeoutError as err:
                self._reply(504, {"error": str(err)})
                return
            except Exception as err:  # noqa: BLE001 -- worker failures
                # arrive via req.result and can be any engine exception;
                # the client must still get an HTTP response
                self._reply(500, {"error": f"{type(err).__name__}: {err}"})
                return
            self._reply(
                200,
                {
                    "probs": [float(p) for p in probs],
                    "argmax": int(np.argmax(probs)),
                },
            )

    return Handler


def serve_http(server, host: str = "127.0.0.1", port: int = 0):
    """Expose ``server`` over HTTP; returns the listening ``httpd``.

    ``port=0`` binds an ephemeral port -- read it back from
    ``httpd.server_address[1]``.  Stop with ``httpd.shutdown()``.
    """
    httpd = ThreadingHTTPServer((host, port), _make_handler(server))
    httpd.daemon_threads = True
    thread = threading.Thread(
        target=httpd.serve_forever, name="serve-http", daemon=True
    )
    thread.start()
    return httpd
