"""Engine replicas and the worker threads that drive them.

A replica is one complete set of forward-only engines for every
configured batch bucket, wrapped in entered
:class:`~repro.gxm.inference.InferenceSession` instances so BatchNorm
runs on its running statistics for the replica's whole lifetime.

Engine strategy per :class:`~repro.serve.config.ServeConfig`:

* ``fast`` -- batch size is just the leading dimension, so ONE graph
  serves every bucket.  This is the throughput engine (batching feeds
  BLAS bigger GEMMs).
* ``blocked`` -- kernel streams are recorded for a fixed minibatch, so
  the replica owns one graph *per bucket*.  Building each graph replays
  warm-cache streams when available (no dryrun) and contributes its
  freshly recorded streams to the cache otherwise.

Hot reload support: a worker reads its replica through a
:class:`ReplicaSlot` (a one-field holder the server repoints during
:meth:`~repro.serve.server.InferenceServer.reload_checkpoint`) and runs
each batch under the shared :class:`SwapGate`'s read side.  The reload
path takes the write side, so a swap happens only between batches --
never under a replay in flight -- and an in-flight batch always
finishes on the replica it started on.

Request lifecycle: expired requests are dropped (and failed with
:class:`~repro.serve.request.DeadlineExceeded`) immediately before the
batch is built, so a batch whose every row already missed its deadline
is **never replayed** -- the engine call is skipped entirely.  The
``serve.worker.slow`` fault site stalls the worker between take and
build, which is exactly how tests age a batch past its deadline
deterministically.

Graceful degradation: a blocked replica whose execution tier fails at
runtime rebuilds the offending bucket's engine on the next tier down
the registry's ``degrade_to`` chain (``stream_compiled`` -> ``compiled``
-> ``interpret``) and retries the batch.  Each transition increments
``serve.tier_degraded`` plus a ``serve.tier_degraded.<from>_to_<to>``
pair counter and records the bucket in
:attr:`EngineReplica.degraded_buckets`; a bucket already at the bottom
of its chain propagates the failure.  A worker thread that dies (e.g.
an injected crash) is restarted by the server's supervisor -- its
batches are never lost because the crash boundary is between batches.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.forensics.recorder import get_recorder
from repro.gxm.inference import InferenceSession
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.resilience.faults import FaultInjector, InjectedFault
from repro.serve.admission import AdmissionQueue
from repro.serve.batcher import MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.request import InferenceRequest
from repro.serve.warmcache import StreamWarmCache

__all__ = ["EngineReplica", "ReplicaSlot", "SwapGate", "Worker"]


class SwapGate:
    """Readers-writer gate between batch execution and replica swaps.

    Workers hold the read side for the duration of one engine call;
    :meth:`~repro.serve.server.InferenceServer.reload_checkpoint` (and
    drain) take the write side, which waits for every in-flight batch
    and briefly holds new ones back.  Writers have priority so a steady
    request stream cannot starve a reload.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class ReplicaSlot:
    """One worker's view of "its" replica, indirected so the server can
    atomically repoint every slot at a shadow replica set during hot
    reload.  Plain attribute read/write under the :class:`SwapGate` --
    no lock of its own."""

    __slots__ = ("replica",)

    def __init__(self, replica: "EngineReplica"):
        self.replica = replica


class EngineReplica:
    """Every engine one worker thread needs, built once at boot."""

    def __init__(
        self,
        config: ServeConfig,
        warm_cache: StreamWarmCache | None = None,
        metrics=None,
        injector: FaultInjector | None = None,
    ):
        self.config = config
        self.metrics = metrics if metrics is not None else get_metrics()
        self.injector = injector
        self._warm_cache = warm_cache
        self._lock = threading.Lock()
        self._sessions: dict[int, InferenceSession] = {}
        self.warm_buckets: list[int] = []
        self.cold_buckets: list[int] = []
        #: buckets rebuilt on a lower tier after a runtime tier failure
        #: (graceful degradation, never silent)
        self.degraded_buckets: list[int] = []
        #: the tier each degraded bucket currently runs (buckets absent
        #: here run the configured tier)
        self._bucket_tier: dict = {}
        if config.engine == "fast":
            # one graph handles any leading dimension
            etg = config.build_etg(config.max_bucket)
            session = InferenceSession(etg).__enter__()
            for bucket in config.buckets:
                self._sessions[bucket] = session
            self.cold_buckets = list(config.buckets)
        else:
            for bucket in config.buckets:
                streams = warm_cache.get(bucket) if warm_cache else None
                etg = config.build_etg(bucket, conv_streams=streams)
                if streams is None:
                    self.cold_buckets.append(bucket)
                    if warm_cache is not None:
                        warm_cache.put(bucket, etg.conv_stream_state())
                else:
                    self.warm_buckets.append(bucket)
                self._sessions[bucket] = InferenceSession(etg).__enter__()
                # stream_compiled lowering happens now, not on the first
                # request; the warm cache keeps the closure-chain metadata
                replay_meta = etg.prepare_replay()
                if replay_meta and warm_cache is not None:
                    warm_cache.put_replay_meta(bucket, replay_meta)

    def run(self, batch, bucket: int):
        """Probabilities for one ``(bucket, C, H, W)`` batch.

        A blocked-engine failure degrades the bucket one step down the
        tier registry's ``degrade_to`` chain and retries; a failure with
        nothing lower to reach propagates.
        """
        if self.injector is not None:
            fault = self.injector.fire("serve.replica.run")
            if fault is not None and fault.kind == "tier_fail":
                return self._degrade_and_retry(
                    batch, bucket,
                    InjectedFault("injected compiled-tier failure"),
                )
        try:
            return self._sessions[bucket].predict(batch)
        except Exception as err:  # noqa: BLE001 -- degrade, don't die
            return self._degrade_and_retry(batch, bucket, err)

    def _current_tier(self, bucket: int):
        """The tier this bucket actually runs right now."""
        tier = self._bucket_tier.get(bucket)
        if tier is not None:
            return tier
        from repro.jit.compile import resolve_execution_tier

        return resolve_execution_tier(self.config.execution_tier)

    def _degrade_and_retry(self, batch, bucket: int, err: BaseException):
        """Rebuild one bucket's engine on the next tier down the
        registry's ``degrade_to`` chain."""
        if self.config.engine != "blocked":
            raise err  # the fast engine has no tier to fall back to
        from repro.jit.tiers import get_tier_spec

        with self._lock:
            cur = self._current_tier(bucket)
            nxt = get_tier_spec(cur).degrade_to
            if nxt is None:
                raise err  # bottom of the chain: genuine failure
            streams = (
                self._warm_cache.get(bucket)
                if self._warm_cache is not None
                else None
            )
            etg = self.config.build_etg(
                bucket,
                conv_streams=streams,
                execution_tier=nxt,
            )
            if self.config.checkpoint:
                from repro.gxm.checkpoint import load_checkpoint

                load_checkpoint(etg, self.config.checkpoint)
            old = self._sessions[bucket]
            self._sessions[bucket] = InferenceSession(etg).__enter__()
            old.__exit__(None, None, None)
            self._bucket_tier[bucket] = nxt
            if bucket not in self.degraded_buckets:
                self.degraded_buckets.append(bucket)
            self.metrics.inc("serve.tier_degraded")
            self.metrics.inc(f"serve.tier_degraded.{cur}_to_{nxt}")
            rec = get_recorder()
            if rec.enabled:
                rec.record(
                    "serve.tier_degrade", bucket=bucket,
                    frm=str(cur), to=str(nxt),
                    error=f"{type(err).__name__}: {err}",
                )
        return self._sessions[bucket].predict(batch)

    def bucket_tiers(self) -> dict[int, str]:
        """The tier each bucket currently runs (observability)."""
        with self._lock:
            return {
                bucket: str(self._current_tier(bucket))
                for bucket in self.config.buckets
            }

    def sessions(self) -> list[InferenceSession]:
        """Each distinct session exactly once (the fast replica maps
        every bucket to one)."""
        return list({id(s): s for s in self._sessions.values()}.values())

    def stream_state(self) -> dict[int, dict[str, list]]:
        """Per-bucket recorded forward streams, the payload a
        :class:`~repro.serve.warmcache.StreamWarmCache` rebuild wants
        after a hot reload (empty for the fast engine -- it records no
        streams)."""
        if self.config.engine != "blocked":
            return {}
        return {
            bucket: session.etg.conv_stream_state()
            for bucket, session in self._sessions.items()
        }

    def close(self) -> None:
        for session in self.sessions():
            session.__exit__(None, None, None)
        self._sessions.clear()


class Worker(threading.Thread):
    """Drains the admission queue: take -> pad -> run -> scatter."""

    def __init__(
        self,
        name: str,
        queue: AdmissionQueue,
        batcher: MicroBatcher,
        replica,
        batch_window_s: float,
        metrics=None,
        injector: FaultInjector | None = None,
        gate: SwapGate | None = None,
    ):
        super().__init__(name=name, daemon=True)
        self.queue = queue
        self.batcher = batcher
        #: indirection for hot reload; a bare replica is wrapped so
        #: standalone construction (tests, benchmarks) keeps working
        self.slot = (
            replica if isinstance(replica, ReplicaSlot)
            else ReplicaSlot(replica)
        )
        self.batch_window_s = batch_window_s
        self.metrics = metrics if metrics is not None else get_metrics()
        self.injector = injector
        self.gate = gate
        #: set when the thread exits because the queue closed (orderly);
        #: a dead thread without this flag crashed and may be restarted
        self.exited_cleanly = False

    @property
    def replica(self) -> EngineReplica:
        return self.slot.replica

    def run(self) -> None:
        try:
            self._drain()
            self.exited_cleanly = True
        except InjectedFault:
            # simulated crash: die between batches; the supervisor
            # restarts a replacement thread on the same replica
            self.metrics.inc("serve.worker_crashes")

    def _drain(self) -> None:
        metrics = self.metrics
        tracer = get_tracer()
        max_n = self.batcher.buckets[-1]
        while True:
            requests = self.queue.take(max_n, self.batch_window_s)
            if not requests:
                return  # queue closed and drained
            try:
                self._handle_batch(requests, metrics, tracer)
            finally:
                # acknowledge every taken request -- served, failed,
                # cancelled or expired -- so a drain's join() sees the
                # batch through even across an injected crash
                self.queue.task_done(len(requests))

    def _handle_batch(self, requests, metrics, tracer) -> None:
        live = [r for r in requests if not r.cancelled]
        if len(live) < len(requests):
            metrics.inc("serve.cancelled", len(requests) - len(live))
        if not live:
            return  # every submitter in the batch gave up waiting
        if self.injector is not None:
            fault = self.injector.fire("serve.worker.slow")
            if fault is not None and fault.kind == "slow":
                # stall between take and build: the deterministic way
                # to age a batch past its deadline
                time.sleep(fault.delay_s)
        # the pre-replay deadline check: a row that expired while
        # batching is failed here, and a fully-expired batch never
        # reaches the engine at all
        requests = self.batcher.drop_expired(live)
        if not requests:
            return
        try:
            self._serve_batch(requests, metrics, tracer)
        except BaseException as err:  # noqa: BLE001 -- fail, don't die
            metrics.inc("serve.errors")
            for req in requests:
                req._fail(err)
        if self.injector is not None:
            fault = self.injector.fire("serve.worker.crash")
            if fault is not None and fault.kind == "crash":
                raise InjectedFault(
                    f"injected crash of {self.name}"
                )

    def _run_gated(self, batch, bucket: int):
        """One engine call on the current replica, holding the swap
        gate's read side so a concurrent reload cannot close the replica
        out from under the replay."""
        if self.gate is None:
            return self.slot.replica.run(batch, bucket)
        with self.gate.read():
            return self.slot.replica.run(batch, bucket)

    def _serve_batch(
        self, requests: list[InferenceRequest], metrics, tracer
    ) -> None:
        batch, n, bucket = self.batcher.build(requests)
        rec = get_recorder()
        if rec.enabled:
            rec.record(
                "serve.batch", bucket=bucket, n=n,
                reqs=[r.id for r in requests],
            )
        t0 = time.perf_counter()
        if tracer.enabled:
            with tracer.span("serve.batch", bucket=bucket, n=n):
                probs = self._run_gated(batch, bucket)
        else:
            probs = self._run_gated(batch, bucket)
        # feed the admission controller's wait estimator
        self.queue.record_service(time.perf_counter() - t0, n)
        self.batcher.scatter(requests, probs)
        done = time.perf_counter()
        for req in requests:
            metrics.observe(
                "serve.latency_ms", (done - req.t_submit) * 1e3
            )
        metrics.inc("serve.batches")
        metrics.inc("serve.responses", n)
