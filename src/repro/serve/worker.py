"""Engine replicas and the worker threads that drive them.

A replica is one complete set of forward-only engines for every
configured batch bucket, wrapped in entered
:class:`~repro.gxm.inference.InferenceSession` instances so BatchNorm
runs on its running statistics for the replica's whole lifetime.

Engine strategy per :class:`~repro.serve.config.ServeConfig`:

* ``fast`` -- batch size is just the leading dimension, so ONE graph
  serves every bucket.  This is the throughput engine (batching feeds
  BLAS bigger GEMMs).
* ``blocked`` -- kernel streams are recorded for a fixed minibatch, so
  the replica owns one graph *per bucket*.  Building each graph replays
  warm-cache streams when available (no dryrun) and contributes its
  freshly recorded streams to the cache otherwise.
"""

from __future__ import annotations

import threading
import time

from repro.gxm.inference import InferenceSession
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.serve.admission import AdmissionQueue
from repro.serve.batcher import MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.request import InferenceRequest
from repro.serve.warmcache import StreamWarmCache

__all__ = ["EngineReplica", "Worker"]


class EngineReplica:
    """Every engine one worker thread needs, built once at boot."""

    def __init__(
        self, config: ServeConfig, warm_cache: StreamWarmCache | None = None
    ):
        self.config = config
        self._sessions: dict[int, InferenceSession] = {}
        self.warm_buckets: list[int] = []
        self.cold_buckets: list[int] = []
        if config.engine == "fast":
            # one graph handles any leading dimension
            etg = config.build_etg(config.max_bucket)
            session = InferenceSession(etg).__enter__()
            for bucket in config.buckets:
                self._sessions[bucket] = session
            self.cold_buckets = list(config.buckets)
        else:
            for bucket in config.buckets:
                streams = warm_cache.get(bucket) if warm_cache else None
                etg = config.build_etg(bucket, conv_streams=streams)
                if streams is None:
                    self.cold_buckets.append(bucket)
                    if warm_cache is not None:
                        warm_cache.put(bucket, etg.conv_stream_state())
                else:
                    self.warm_buckets.append(bucket)
                self._sessions[bucket] = InferenceSession(etg).__enter__()

    def run(self, batch, bucket: int):
        """Probabilities for one ``(bucket, C, H, W)`` batch."""
        return self._sessions[bucket].predict(batch)

    def close(self) -> None:
        # the fast replica maps every bucket to one session: exit each
        # distinct session exactly once
        for session in {id(s): s for s in self._sessions.values()}.values():
            session.__exit__(None, None, None)
        self._sessions.clear()


class Worker(threading.Thread):
    """Drains the admission queue: take -> pad -> run -> scatter."""

    def __init__(
        self,
        name: str,
        queue: AdmissionQueue,
        batcher: MicroBatcher,
        replica: EngineReplica,
        batch_window_s: float,
        metrics=None,
    ):
        super().__init__(name=name, daemon=True)
        self.queue = queue
        self.batcher = batcher
        self.replica = replica
        self.batch_window_s = batch_window_s
        self.metrics = metrics if metrics is not None else get_metrics()

    def run(self) -> None:
        metrics = self.metrics
        tracer = get_tracer()
        max_n = self.batcher.buckets[-1]
        while True:
            requests = self.queue.take(max_n, self.batch_window_s)
            if not requests:
                return  # queue closed and drained
            live = [r for r in requests if not r.cancelled]
            if len(live) < len(requests):
                metrics.inc("serve.cancelled", len(requests) - len(live))
            if not live:
                continue  # every submitter in the batch gave up waiting
            requests = live
            try:
                self._serve_batch(requests, metrics, tracer)
            except BaseException as err:  # noqa: BLE001 -- fail, don't die
                metrics.inc("serve.errors")
                for req in requests:
                    req._fail(err)

    def _serve_batch(
        self, requests: list[InferenceRequest], metrics, tracer
    ) -> None:
        batch, n, bucket = self.batcher.build(requests)
        if tracer.enabled:
            with tracer.span("serve.batch", bucket=bucket, n=n):
                probs = self.replica.run(batch, bucket)
        else:
            probs = self.replica.run(batch, bucket)
        self.batcher.scatter(requests, probs)
        done = time.perf_counter()
        for req in requests:
            metrics.observe(
                "serve.latency_ms", (done - req.t_submit) * 1e3
            )
        metrics.inc("serve.batches")
        metrics.inc("serve.responses", n)
