"""Engine replicas and the worker threads that drive them.

A replica is one complete set of forward-only engines for every
configured batch bucket, wrapped in entered
:class:`~repro.gxm.inference.InferenceSession` instances so BatchNorm
runs on its running statistics for the replica's whole lifetime.

Engine strategy per :class:`~repro.serve.config.ServeConfig`:

* ``fast`` -- batch size is just the leading dimension, so ONE graph
  serves every bucket.  This is the throughput engine (batching feeds
  BLAS bigger GEMMs).
* ``blocked`` -- kernel streams are recorded for a fixed minibatch, so
  the replica owns one graph *per bucket*.  Building each graph replays
  warm-cache streams when available (no dryrun) and contributes its
  freshly recorded streams to the cache otherwise.

Graceful degradation: a blocked replica whose compiled execution tier
fails at runtime rebuilds the offending bucket's engine on the
``interpret`` tier and retries the batch (``serve.tier_degraded``
counter, :attr:`EngineReplica.degraded_buckets`).  A worker thread that
dies (e.g. an injected crash) is restarted by the server's supervisor --
its batches are never lost because the crash boundary is between
batches.
"""

from __future__ import annotations

import threading
import time

from repro.gxm.inference import InferenceSession
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.resilience.faults import FaultInjector, InjectedFault
from repro.serve.admission import AdmissionQueue
from repro.serve.batcher import MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.request import InferenceRequest
from repro.serve.warmcache import StreamWarmCache

__all__ = ["EngineReplica", "Worker"]


class EngineReplica:
    """Every engine one worker thread needs, built once at boot."""

    def __init__(
        self,
        config: ServeConfig,
        warm_cache: StreamWarmCache | None = None,
        metrics=None,
        injector: FaultInjector | None = None,
    ):
        self.config = config
        self.metrics = metrics if metrics is not None else get_metrics()
        self.injector = injector
        self._warm_cache = warm_cache
        self._lock = threading.Lock()
        self._sessions: dict[int, InferenceSession] = {}
        self.warm_buckets: list[int] = []
        self.cold_buckets: list[int] = []
        #: buckets rebuilt on the ``interpret`` tier after a compiled-
        #: tier failure (graceful degradation, never silent)
        self.degraded_buckets: list[int] = []
        if config.engine == "fast":
            # one graph handles any leading dimension
            etg = config.build_etg(config.max_bucket)
            session = InferenceSession(etg).__enter__()
            for bucket in config.buckets:
                self._sessions[bucket] = session
            self.cold_buckets = list(config.buckets)
        else:
            for bucket in config.buckets:
                streams = warm_cache.get(bucket) if warm_cache else None
                etg = config.build_etg(bucket, conv_streams=streams)
                if streams is None:
                    self.cold_buckets.append(bucket)
                    if warm_cache is not None:
                        warm_cache.put(bucket, etg.conv_stream_state())
                else:
                    self.warm_buckets.append(bucket)
                self._sessions[bucket] = InferenceSession(etg).__enter__()

    def run(self, batch, bucket: int):
        """Probabilities for one ``(bucket, C, H, W)`` batch.

        A blocked-engine failure on a compiled-style tier degrades the
        bucket to the ``interpret`` tier and retries once; anything the
        interpreter also rejects propagates.
        """
        if self.injector is not None:
            fault = self.injector.fire("serve.replica.run")
            if fault is not None and fault.kind == "tier_fail":
                return self._degrade_and_retry(
                    batch, bucket,
                    InjectedFault("injected compiled-tier failure"),
                )
        try:
            return self._sessions[bucket].predict(batch)
        except Exception as err:  # noqa: BLE001 -- degrade, don't die
            return self._degrade_and_retry(batch, bucket, err)

    def _degrade_and_retry(self, batch, bucket: int, err: BaseException):
        """Rebuild one bucket's engine on the interpreter tier."""
        if self.config.engine != "blocked":
            raise err  # the fast engine has no tier to fall back to
        if self.config.execution_tier == "interpret":
            raise err  # already interpreting: nothing lower to reach
        if bucket in self.degraded_buckets:
            raise err  # already on the fallback tier: genuine failure
        with self._lock:
            if bucket not in self.degraded_buckets:
                streams = (
                    self._warm_cache.get(bucket)
                    if self._warm_cache is not None
                    else None
                )
                etg = self.config.build_etg(
                    bucket,
                    conv_streams=streams,
                    execution_tier="interpret",
                )
                if self.config.checkpoint:
                    from repro.gxm.checkpoint import load_checkpoint

                    load_checkpoint(etg, self.config.checkpoint)
                old = self._sessions[bucket]
                self._sessions[bucket] = InferenceSession(etg).__enter__()
                old.__exit__(None, None, None)
                self.degraded_buckets.append(bucket)
                self.metrics.inc("serve.tier_degraded")
        return self._sessions[bucket].predict(batch)

    def close(self) -> None:
        # the fast replica maps every bucket to one session: exit each
        # distinct session exactly once
        for session in {id(s): s for s in self._sessions.values()}.values():
            session.__exit__(None, None, None)
        self._sessions.clear()


class Worker(threading.Thread):
    """Drains the admission queue: take -> pad -> run -> scatter."""

    def __init__(
        self,
        name: str,
        queue: AdmissionQueue,
        batcher: MicroBatcher,
        replica: EngineReplica,
        batch_window_s: float,
        metrics=None,
        injector: FaultInjector | None = None,
    ):
        super().__init__(name=name, daemon=True)
        self.queue = queue
        self.batcher = batcher
        self.replica = replica
        self.batch_window_s = batch_window_s
        self.metrics = metrics if metrics is not None else get_metrics()
        self.injector = injector
        #: set when the thread exits because the queue closed (orderly);
        #: a dead thread without this flag crashed and may be restarted
        self.exited_cleanly = False

    def run(self) -> None:
        try:
            self._drain()
            self.exited_cleanly = True
        except InjectedFault:
            # simulated crash: die between batches; the supervisor
            # restarts a replacement thread on the same replica
            self.metrics.inc("serve.worker_crashes")

    def _drain(self) -> None:
        metrics = self.metrics
        tracer = get_tracer()
        max_n = self.batcher.buckets[-1]
        while True:
            requests = self.queue.take(max_n, self.batch_window_s)
            if not requests:
                return  # queue closed and drained
            live = [r for r in requests if not r.cancelled]
            if len(live) < len(requests):
                metrics.inc("serve.cancelled", len(requests) - len(live))
            if not live:
                continue  # every submitter in the batch gave up waiting
            requests = live
            try:
                self._serve_batch(requests, metrics, tracer)
            except BaseException as err:  # noqa: BLE001 -- fail, don't die
                metrics.inc("serve.errors")
                for req in requests:
                    req._fail(err)
            if self.injector is not None:
                fault = self.injector.fire("serve.worker.crash")
                if fault is not None and fault.kind == "crash":
                    raise InjectedFault(
                        f"injected crash of {self.name}"
                    )

    def _serve_batch(
        self, requests: list[InferenceRequest], metrics, tracer
    ) -> None:
        batch, n, bucket = self.batcher.build(requests)
        if tracer.enabled:
            with tracer.span("serve.batch", bucket=bucket, n=n):
                probs = self.replica.run(batch, bucket)
        else:
            probs = self.replica.run(batch, bucket)
        self.batcher.scatter(requests, probs)
        done = time.perf_counter()
        for req in requests:
            metrics.observe(
                "serve.latency_ms", (done - req.t_submit) * 1e3
            )
        metrics.inc("serve.batches")
        metrics.inc("serve.responses", n)
