"""Per-bucket frozen-stream warm cache.

The blocked engine's dryrun is the expensive part of boot (section II-H:
it "has to be performed only once during the setup of the CNN layer").
The cache keeps each bucket's recorded streams -- one entry per conv
node -- and round-trips them through the :mod:`repro.streams.serialize`
bundle format, so a restarted server rebuilds every engine by replaying
saved offsets instead of re-running any dryrun.

Entries are keyed ``(bucket, node_name)`` and carry content digests;
:meth:`load` refuses an artifact whose config fingerprint differs from
the server's (different model/shape/blocking => different streams).

When replicas run the ``stream_compiled`` tier, the cache additionally
keeps each bucket's segment-closure *metadata* (chunk/call counts per
node, produced by :meth:`ExecutionTaskGraph.prepare_replay`).  The
closures themselves are engine-private mutable state and are always
re-lowered from the streams at boot -- the metadata rides along in the
artifact so operators can see what replay shape a warm boot restores.
"""

from __future__ import annotations

from repro.streams.serialize import (
    StaleArtifactError,
    load_stream_bundle,
    save_stream_bundle,
    streams_digest,
)

__all__ = ["StreamWarmCache"]


class StreamWarmCache:
    """bucket -> {conv node name -> per-thread FrozenStream list}."""

    def __init__(self, fingerprint: str):
        #: the owning config's fingerprint; artifacts must match it
        self.fingerprint = fingerprint
        self._by_bucket: dict[int, dict[str, list]] = {}
        #: bucket -> {node -> stream_compiled executor metadata}
        self._replay_meta: dict[int, dict[str, dict]] = {}

    def __contains__(self, bucket: int) -> bool:
        return bucket in self._by_bucket

    @property
    def buckets(self) -> list[int]:
        return sorted(self._by_bucket)

    def get(self, bucket: int) -> dict[str, list] | None:
        return self._by_bucket.get(bucket)

    def put(self, bucket: int, streams_by_node: dict[str, list]) -> None:
        self._by_bucket[int(bucket)] = dict(streams_by_node)

    def put_replay_meta(
        self, bucket: int, meta_by_node: dict[str, dict]
    ) -> None:
        """Record one bucket's stream_compiled closure metadata."""
        self._replay_meta[int(bucket)] = dict(meta_by_node)

    def replay_meta(self, bucket: int) -> dict[str, dict] | None:
        """The stream_compiled closure metadata recorded for ``bucket``
        (``None`` when the bucket's replicas never lowered streams)."""
        return self._replay_meta.get(bucket)

    def clear(self) -> None:
        """Invalidate every entry (hot reload rebuilds the cache from
        the freshly swapped replicas so saved artifacts always describe
        the engines actually serving)."""
        self._by_bucket.clear()
        self._replay_meta.clear()

    def digests(self) -> dict[str, str]:
        """Content digest per ``bucket/node`` entry (the cache key the
        serve stats expose)."""
        return {
            f"{bucket}/{node}": streams_digest(streams)
            for bucket, by_node in sorted(self._by_bucket.items())
            for node, streams in sorted(by_node.items())
        }

    # ------------------------------------------------------------------
    def save(self, path_or_file) -> int:
        """Persist every cached bucket as one ``.npz`` artifact; returns
        the number of entries written."""
        bundle = {
            f"{bucket}/{node}": streams
            for bucket, by_node in self._by_bucket.items()
            for node, streams in by_node.items()
        }
        save_stream_bundle(
            path_or_file,
            bundle,
            meta={
                "kind": "serve_warm_streams",
                "fingerprint": self.fingerprint,
                "buckets": sorted(self._by_bucket),
                "replay_meta": {
                    str(bucket): by_node
                    for bucket, by_node in sorted(self._replay_meta.items())
                },
            },
        )
        return len(bundle)

    def load(self, path_or_file) -> list[int]:
        """Populate the cache from a saved artifact; returns the bucket
        list it contained.  Refuses an artifact recorded under a
        different configuration."""
        bundle, meta = load_stream_bundle(path_or_file)
        if meta.get("fingerprint") != self.fingerprint:
            raise StaleArtifactError(
                "stream artifact was recorded for a different serve "
                f"config (fingerprint {meta.get('fingerprint')} != "
                f"{self.fingerprint})"
            )
        for key, streams in bundle.items():
            bucket_s, _, node = key.partition("/")
            self._by_bucket.setdefault(int(bucket_s), {})[node] = streams
        for bucket_s, by_node in (meta.get("replay_meta") or {}).items():
            self._replay_meta[int(bucket_s)] = dict(by_node)
        return self.buckets
