"""Serving configuration: the frozen description of what a server runs.

Everything shape- or engine-dependent is pinned here so that replicas,
warm-cache artifacts and load generators all agree on it.  The
``fingerprint`` ties a stream artifact to the exact configuration that
recorded it -- loading streams recorded for a different model, bucket
set or blocking setup is refused at boot.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.jit.tiers import ReplayOptions, as_tier
from repro.types import ReproError

__all__ = ["ServeConfig", "ServeConfigError"]

_MODELS = ("resnet_mini", "inception_mini")
_ENGINES = ("fast", "blocked")
#: sentinel: "use the configured tier" (``None`` means process default)
_UNSET = object()


class ServeConfigError(ReproError, ValueError):
    """An invalid :class:`ServeConfig` field, rejected at construction.

    Doubles as a ``ValueError`` so callers validating user input (CLI,
    HTTP admin) can catch the standard type; before this, a zero queue
    capacity or negative batch window surfaced as a confusing runtime
    hang instead of an error at the obvious place.
    """


@dataclass(frozen=True)
class ServeConfig:
    """What one :class:`~repro.serve.server.InferenceServer` serves.

    Parameters
    ----------
    model, width, num_classes, input_shape:
        Topology and the per-request image shape ``(C, H, W)``.
    engine:
        ``"fast"`` (BLAS reference semantics; the throughput engine) or
        ``"blocked"`` (the full kernel-stream engine; the one the stream
        warm cache accelerates).
    execution_tier:
        Kernel-stream tier for ``"blocked"`` -- any registered
        :class:`~repro.jit.ExecutionTier` or its string spelling
        (``None`` = process default, i.e. ``compiled``).  Unknown names
        are rejected at construction with the valid tiers listed.
    replay:
        Optional :class:`~repro.jit.ReplayOptions` (back-compat shim):
        its tier is folded into ``execution_tier`` when that field is
        unset.  Not part of the stream fingerprint.
    buckets:
        Ascending micro-batch sizes.  A batch of ``n`` pending requests
        is padded up to the smallest bucket >= n; engines exist only for
        bucket shapes, never for arbitrary ``n``.
    workers:
        Worker threads, each owning a full engine replica.
    queue_capacity:
        Admission bound; a request arriving at a full queue is shed.
    batch_window_ms:
        How long a worker waits for the batch to fill once at least one
        request is pending (the latency/occupancy trade-off knob).
    max_queue_wait_ms:
        Adaptive backpressure budget: admission sheds a request whose
        *estimated* queue wait (EWMA of per-request service time x
        queue depth / workers) exceeds this, long before the hard
        ``queue_capacity`` is hit.  ``None`` disables the estimator and
        keeps depth-only shedding.
    tune_db:
        Path to a :mod:`repro.tune` database consulted for every blocked
        conv layer's blocking plan at engine build time (``None`` = paper
        heuristics).  A missing or corrupt artifact degrades to the
        heuristics per layer.  The *content digest* of the database (not
        the path) is folded into :meth:`fingerprint`, so stream warm
        caches recorded under different tuned plans are refused at boot.
    incident_dir:
        Directory for :mod:`repro.forensics` incident bundles.  When
        set, the server arms the process-wide flight recorder and every
        typed failure (canary rollback, shared-memory slot corruption)
        plus ``POST /admin/dump`` freezes an atomic, digest-verified
        bundle here.  ``None`` (default) disables capture entirely.
    recorder:
        Flight-recorder ring capacity (events).  ``0`` leaves the
        recorder alone; a positive value enables it with this capacity
        even without an ``incident_dir``.  Neither knob affects recorded
        streams, so both stay out of the fingerprint.
    """

    model: str = "resnet_mini"
    width: int = 32
    num_classes: int = 8
    input_shape: tuple[int, int, int] = (16, 8, 8)
    engine: str = "fast"
    execution_tier: str | None = None
    replay: ReplayOptions | None = field(default=None, compare=False)
    machine: str = "SKX"
    threads: int = 1
    buckets: tuple[int, ...] = (1, 2, 4, 8, 16)
    workers: int = 1
    queue_capacity: int = 256
    batch_window_ms: float = 2.0
    max_queue_wait_ms: float | None = None
    seed: int = 7
    checkpoint: str | None = field(default=None, compare=False)
    tune_db: str | None = None
    incident_dir: str | None = field(default=None, compare=False)
    recorder: int = 0

    def __post_init__(self) -> None:
        if self.model not in _MODELS:
            raise ServeConfigError(
                f"unknown serve model {self.model!r}; expected {_MODELS}"
            )
        if self.engine not in _ENGINES:
            raise ServeConfigError(
                f"unknown serve engine {self.engine!r}; expected {_ENGINES}"
            )
        tier = self.execution_tier
        if tier is None and self.replay is not None:
            tier = self.replay.resolve_tier()
        if tier is not None:
            # validate eagerly (UnknownTierError is a ValueError too) and
            # normalize to the canonical string spelling so fingerprints
            # are stable across enum/string call sites
            tier = str(as_tier(tier))
        object.__setattr__(self, "execution_tier", tier)
        buckets = tuple(int(b) for b in self.buckets)
        if not buckets:
            raise ServeConfigError(
                "buckets must not be empty: a server with no micro-batch "
                "bucket can never build an engine (supply e.g. (1, 2, 4))"
            )
        if any(b < 1 for b in buckets):
            raise ServeConfigError(
                f"every bucket must be a size >= 1, got {buckets}"
            )
        if list(buckets) != sorted(set(buckets)):
            raise ServeConfigError(
                f"buckets must be ascending and unique: {buckets}"
            )
        object.__setattr__(self, "buckets", buckets)
        object.__setattr__(
            self, "input_shape", tuple(int(d) for d in self.input_shape)
        )
        if len(self.input_shape) != 3:
            raise ServeConfigError(
                f"input_shape must be (C, H, W), got {self.input_shape}"
            )
        if self.workers < 1:
            raise ServeConfigError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.queue_capacity < 1:
            raise ServeConfigError(
                f"queue_capacity (max queue depth) must be >= 1, got "
                f"{self.queue_capacity}; 0 would hang every submit"
            )
        if self.batch_window_ms < 0:
            raise ServeConfigError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        if self.max_queue_wait_ms is not None and self.max_queue_wait_ms <= 0:
            raise ServeConfigError(
                f"max_queue_wait_ms must be positive (or None to disable "
                f"adaptive backpressure), got {self.max_queue_wait_ms}"
            )
        if self.recorder < 0:
            raise ServeConfigError(
                f"recorder (flight-recorder ring capacity) must be >= 0, "
                f"got {self.recorder}"
            )

    # ------------------------------------------------------------------
    @property
    def max_bucket(self) -> int:
        return self.buckets[-1]

    def fingerprint(self) -> str:
        """Content digest of every field that affects recorded streams."""
        doc = asdict(self)
        # runtime-only knobs do not change the streams an engine records
        # (replay is already folded into execution_tier at construction)
        for k in ("workers", "queue_capacity", "batch_window_ms",
                  "max_queue_wait_ms", "checkpoint", "replay",
                  "incident_dir", "recorder"):
            doc.pop(k)
        # the tuning DB changes blocking plans, hence recorded streams --
        # fold in its *content* digest: two paths to identical databases
        # fingerprint the same, and an unusable database fingerprints
        # like no database (both fall back to the heuristics)
        doc["tune_db"] = self._tune_db_digest()
        blob = json.dumps(doc, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    def _tune_db_digest(self) -> str | None:
        if self.tune_db is None:
            return None
        from repro.tune.db import TuningDBError, resolve_db

        try:
            db = resolve_db(self.tune_db)
        except (FileNotFoundError, TuningDBError):
            return None
        return db.digest() if db is not None else None

    # ------------------------------------------------------------------
    def build_topology(self):
        if self.model == "resnet_mini":
            from repro.models.resnet50 import resnet_mini_topology

            return resnet_mini_topology(
                num_classes=self.num_classes, width=self.width
            )
        from repro.models.inception_v3 import inception_mini_topology

        return inception_mini_topology(
            num_classes=self.num_classes, width=self.width
        )

    def build_etg(
        self, bucket: int, conv_streams=None, tracer=None,
        execution_tier=_UNSET,
    ):
        """One :class:`~repro.gxm.etg.ExecutionTaskGraph` sized for a
        batch bucket (the blocked engine records streams per fixed N).
        ``execution_tier`` overrides the configured tier -- the degrade-
        to-``interpret`` rebuild path."""
        from repro.arch.machine import machine_by_name
        from repro.gxm.etg import ExecutionTaskGraph

        return ExecutionTaskGraph(
            self.build_topology(),
            input_shape=(bucket, *self.input_shape),
            engine=self.engine,
            machine=machine_by_name(self.machine),
            threads=self.threads,
            seed=self.seed,
            tracer=tracer,
            execution_tier=(
                self.execution_tier
                if execution_tier is _UNSET
                else execution_tier
            ),
            conv_streams=conv_streams,
            tuned=self.tune_db if self.tune_db is not None else False,
        )
