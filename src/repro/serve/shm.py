"""Shared-memory tensor transport for the serving fleet.

The router's whole point is to keep N replica *processes* busy without
itself becoming the copy bottleneck: pickling a ``(C, H, W)`` float32
image through a pipe costs a serialize + a kernel copy + a deserialize
per hop, twice per request (input and output).  Instead, tensor payloads
live in one :class:`multiprocessing.shared_memory.SharedMemory` segment
carved into fixed-size **slots** (a ring slab): the submitter writes the
request tensor into a leased slot exactly once, the control message
crossing the pipe is a few integers (slot index, generation, deadline),
the replica reads its input as a zero-copy view, runs the batch, writes
the probability row back into the same slot's response region, and the
router-side reader hands the result to the waiting future.  The router
never serializes an activation on this path -- ``serve.router
.bytes_copied`` stays 0 for every bucketed shape.

Crash safety comes from **generation tags**.  Every slot carries a
monotonically increasing generation, stored both in the parent's
bookkeeping and in a header word inside the segment itself.  A lease
pins one generation; releasing (or reclaiming after a replica crash)
bumps it.  A reply is only trusted when the message's generation, the
parent's bookkeeping *and* the in-segment header still agree -- so a
late write from a killed replica, or a scribble across the header (the
``fleet.replica.reply`` corruption fault), fails exactly the one
request that owned the slot and can never be mistaken for another
request's answer.  Reclaimed slots return to the ring; nothing leaks.

:class:`ShmArrayStore` is the read-only sibling used for warm-boot
artifacts: the fleet parent loads and digest-verifies the stream bundle
**once**, packs every offset array into one shared segment, and each
replica process reconstructs zero-copy read-only views -- no per-replica
re-verify, no per-replica deserialize, one physical copy of the warm
streams for the whole fleet.
"""

from __future__ import annotations

import threading
from collections import deque
from multiprocessing import shared_memory

import numpy as np

from repro.types import ReproError

__all__ = ["ShmLease", "SlotCorruption", "TensorShm", "ShmArrayStore"]

#: per-slot header: one uint64 generation word
_HDR_DTYPE = np.uint64
_HDR_BYTES = 8


class SlotCorruption(ReproError):
    """A slot's in-segment generation header no longer matches the lease
    that owns it: the payload cannot be trusted.  Exactly one request --
    the slot's owner -- fails with this; the slot itself is reclaimed
    with a fresh generation, so neighbouring requests are untouched."""


class ShmLease:
    """One acquired slot: ``(slot, generation)`` plus where it came
    from.  Valid until :meth:`TensorShm.release` / :meth:`reclaim`."""

    __slots__ = ("slot", "generation")

    def __init__(self, slot: int, generation: int):
        self.slot = slot
        self.generation = generation

    def __repr__(self) -> str:  # pragma: no cover -- debugging aid
        return f"ShmLease(slot={self.slot}, gen={self.generation})"


class TensorShm:
    """A generation-tagged ring of fixed-size tensor slots in one shared
    segment.

    Layout: ``slots`` header words up front, then per slot a request
    region of ``prod(request_shape)`` float32 values followed by a
    response region of ``prod(response_shape)`` float32 values, each
    64-byte aligned so replica reads never false-share a neighbour's
    cache line.

    The free list (and therefore :meth:`acquire`/:meth:`release`) is
    parent-side only; :meth:`request_view`/:meth:`response_view` are
    lock-free and safe from any process that inherited the segment.
    """

    _ALIGN = 64

    def __init__(
        self,
        slots: int,
        request_shape: tuple[int, ...],
        response_shape: tuple[int, ...],
    ):
        if slots < 1:
            raise ReproError(f"TensorShm needs >= 1 slot, got {slots}")
        self.slots = int(slots)
        self.request_shape = tuple(int(d) for d in request_shape)
        self.response_shape = tuple(int(d) for d in response_shape)
        req_bytes = int(np.prod(self.request_shape)) * 4
        resp_bytes = int(np.prod(self.response_shape)) * 4
        align = self._ALIGN

        def pad(n: int) -> int:
            return (n + align - 1) // align * align

        self._req_bytes = pad(req_bytes)
        self._resp_bytes = pad(resp_bytes)
        self._hdr_bytes = pad(self.slots * _HDR_BYTES)
        self._slot_bytes = self._req_bytes + self._resp_bytes
        self.nbytes = self._hdr_bytes + self.slots * self._slot_bytes
        self._shm = shared_memory.SharedMemory(
            create=True, size=self.nbytes
        )
        self._owner = True
        hdr = np.ndarray(
            (self.slots,), dtype=_HDR_DTYPE, buffer=self._shm.buf
        )
        hdr[:] = 0
        # parent-side bookkeeping: authoritative generation per slot and
        # the free ring (acquire pops left, release appends right)
        self._gen = [0] * self.slots
        self._free: deque[int] = deque(range(self.slots))
        self._cond = threading.Condition()
        self._acquire_timeouts = 0

    # -- views (lock-free; safe in any process sharing the segment) ----
    def _headers(self) -> np.ndarray:
        return np.ndarray(
            (self.slots,), dtype=_HDR_DTYPE, buffer=self._shm.buf
        )

    def request_view(self, slot: int) -> np.ndarray:
        """Writable float32 view of one slot's request region."""
        off = self._hdr_bytes + slot * self._slot_bytes
        return np.ndarray(
            self.request_shape, dtype=np.float32,
            buffer=self._shm.buf, offset=off,
        )

    def response_view(self, slot: int) -> np.ndarray:
        """Writable float32 view of one slot's response region."""
        off = self._hdr_bytes + slot * self._slot_bytes + self._req_bytes
        return np.ndarray(
            self.response_shape, dtype=np.float32,
            buffer=self._shm.buf, offset=off,
        )

    def read_header(self, slot: int) -> int:
        return int(self._headers()[slot])

    def write_header(self, slot: int, generation: int) -> None:
        self._headers()[slot] = generation

    # -- leasing (parent-side only) ------------------------------------
    def acquire(self, timeout_s: float = 0.0) -> ShmLease | None:
        """Lease one free slot; ``None`` when the ring is exhausted for
        ``timeout_s`` (callers fall back to pickling the payload --
        counted, never an error)."""
        with self._cond:
            if not self._free and timeout_s > 0:
                self._cond.wait(timeout_s)
            if not self._free:
                self._acquire_timeouts += 1
                return None
            slot = self._free.popleft()
            gen = self._gen[slot]
        self.write_header(slot, gen)
        return ShmLease(slot, gen)

    def _bump_and_free(self, lease: ShmLease) -> None:
        with self._cond:
            if self._gen[lease.slot] != lease.generation:
                return  # already reclaimed (e.g. crash path won the race)
            self._gen[lease.slot] = lease.generation + 1
            self._free.append(lease.slot)
            self._cond.notify()

    def release(self, lease: ShmLease) -> None:
        """Return a slot to the ring; its generation is bumped so any
        late write against the old lease is detectable garbage."""
        self._bump_and_free(lease)

    def reclaim(self, lease: ShmLease) -> None:
        """Crash-path release: same generation bump, so a slot held by a
        killed replica is never leaked and its half-written payload can
        never satisfy a *different* request's generation check."""
        self._bump_and_free(lease)

    def check(self, lease: ShmLease, message_gen: int) -> None:
        """Trust gate for a reply: message generation, parent
        bookkeeping and the in-segment header must all agree."""
        with self._cond:
            current = self._gen[lease.slot]
        if message_gen != lease.generation or current != lease.generation:
            raise SlotCorruption(
                f"slot {lease.slot} reply generation {message_gen} does "
                f"not match lease {lease.generation} (current {current})"
            )
        header = self.read_header(lease.slot)
        if header != lease.generation:
            raise SlotCorruption(
                f"slot {lease.slot} header generation {header} does not "
                f"match lease {lease.generation}; payload untrusted"
            )

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        with self._cond:
            return self.slots - len(self._free)

    def stats(self) -> dict:
        with self._cond:
            return {
                "slots": self.slots,
                "in_use": self.slots - len(self._free),
                "slot_bytes": self._slot_bytes,
                "nbytes": self.nbytes,
                "acquire_timeouts": self._acquire_timeouts,
            }

    def close(self) -> None:
        """Unmap and (in the creating process) unlink the segment."""
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover -- a view still exported
            return
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover -- already gone
                pass
            self._owner = False


class ShmArrayStore:
    """Immutable named-array store in one shared segment.

    Built once by the fleet parent from the verified warm-stream bundle;
    every replica process reconstructs the arrays as zero-copy
    **read-only** views over the same physical pages.  ``from_arrays``
    is the only writer; after construction the segment is data plus a
    parent-held index (``name -> (offset, dtype, shape)``) that forked
    children inherit.
    """

    def __init__(self) -> None:
        self._shm: shared_memory.SharedMemory | None = None
        self._index: dict[str, tuple[int, str, tuple[int, ...]]] = {}
        self.nbytes = 0
        self._owner = False

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "ShmArrayStore":
        store = cls()
        align = TensorShm._ALIGN
        offset = 0
        packed: list[tuple[str, np.ndarray, int]] = []
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            packed.append((name, arr, offset))
            store._index[name] = (offset, arr.dtype.str, arr.shape)
            offset += (arr.nbytes + align - 1) // align * align
        store.nbytes = max(offset, 1)
        store._shm = shared_memory.SharedMemory(
            create=True, size=store.nbytes
        )
        store._owner = True
        for name, arr, off in packed:
            dst = np.ndarray(
                arr.shape, dtype=arr.dtype,
                buffer=store._shm.buf, offset=off,
            )
            dst[:] = arr
        return store

    def names(self) -> list[str]:
        return sorted(self._index)

    def get(self, name: str) -> np.ndarray:
        """Read-only zero-copy view of one stored array."""
        off, dtype, shape = self._index[name]
        view = np.ndarray(
            shape, dtype=np.dtype(dtype),
            buffer=self._shm.buf, offset=off,
        )
        view.flags.writeable = False
        return view

    def close(self) -> None:
        if self._shm is None:
            return
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover -- a view still exported
            return
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self._owner = False
