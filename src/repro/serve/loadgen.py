"""Synthetic load generation against an in-process server.

Two canonical driver shapes:

* **closed loop** -- ``clients`` threads, each submitting its next
  request only after the previous one completes.  Measures capacity at
  a fixed concurrency (offered load adapts to the server).
* **open loop** -- requests arrive on a seeded Poisson process at
  ``rate_rps`` regardless of completions, so queueing delay and load
  shedding actually show up (a closed loop can never over-run the
  server; an open loop is how SLO violations are found).

Both drive the server through a :class:`~repro.serve.client.ServeClient`
(closed loop) or its timeout configuration (open loop), so the
client-side policy -- per-request timeout, bounded retries with jittered
backoff, optional hedging, per-request deadlines -- is exactly what a
production caller would run, and its effects (``timeouts``,
``retries``, ``hedges``, ``deadline_exceeded``) are first-class columns
of the :class:`LoadReport` instead of crashes in the driver.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.client import ClientConfig, ServeClient
from repro.serve.request import (
    DeadlineExceeded,
    RequestShed,
    ServerClosed,
)

__all__ = ["LoadReport", "run_closed_loop", "run_open_loop"]


@dataclass
class LoadReport:
    """What one load-generation run measured."""

    mode: str
    requests: int
    completed: int
    shed: int
    errors: int
    duration_s: float
    throughput_rps: float
    timeouts: int = 0
    deadline_exceeded: int = 0
    retries: int = 0
    hedges: int = 0
    #: serving processes behind the target (1 = single server)
    replicas: int = 1
    latency_ms: dict[str, float] = field(default_factory=dict)
    client_stats: dict = field(default_factory=dict)
    server_stats: dict = field(default_factory=dict)
    #: fleet dispatch counters (empty against a single server)
    router_stats: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "deadline_exceeded": self.deadline_exceeded,
            "retries": self.retries,
            "hedges": self.hedges,
            "replicas": self.replicas,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": self.latency_ms,
            "client_stats": self.client_stats,
            "server_stats": self.server_stats,
            "router_stats": self.router_stats,
        }


def _percentiles(latencies_s: list[float]) -> dict[str, float]:
    if not latencies_s:
        return {}
    arr = np.sort(np.asarray(latencies_s)) * 1e3
    def pct(q: float) -> float:
        idx = min(len(arr) - 1, int(np.ceil(q / 100 * len(arr))) - 1)
        return float(arr[max(idx, 0)])
    return {
        "p50": pct(50),
        "p95": pct(95),
        "p99": pct(99),
        "mean": float(arr.mean()),
        "max": float(arr[-1]),
    }


def _random_inputs(shape, count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((count, *shape)).astype(np.float32)


def _target_shape(server) -> tuple[int, dict]:
    """``(replicas, router_stats)`` for the report: a fleet target
    exposes both, a single server is one replica with no router."""
    if getattr(server, "routes_replicas", False):
        return server.replicas, server._router.stats()
    return 1, {}


def run_closed_loop(
    server,
    clients: int = 4,
    requests: int = 64,
    seed: int = 0,
    client_config: ClientConfig | None = None,
    deadline_ms: float | None = None,
) -> LoadReport:
    """``clients`` threads round-robin ``requests`` total submissions
    through one shared :class:`ServeClient`."""
    inputs = _random_inputs(server.config.input_shape, requests, seed)
    client = ServeClient(server, config=client_config)
    latencies: list[float] = []
    shed = errors = completed = timeouts = expired = 0
    lock = threading.Lock()

    def worker(worker_idx: int) -> None:
        nonlocal shed, errors, completed, timeouts, expired
        for i in range(worker_idx, requests, clients):
            t0 = time.perf_counter()
            try:
                client.predict(inputs[i], deadline_ms=deadline_ms)
            except RequestShed:
                with lock:
                    shed += 1
                continue
            except TimeoutError:
                # recorded, never a crash: a timed-out request is a
                # data point about the server, not a driver bug
                with lock:
                    timeouts += 1
                continue
            except DeadlineExceeded:
                with lock:
                    expired += 1
                continue
            except ServerClosed:
                with lock:
                    errors += 1
                continue
            dt = time.perf_counter() - t0
            with lock:
                completed += 1
                latencies.append(dt)

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    duration = time.perf_counter() - t0
    cstats = client.stats()
    replicas, router_stats = _target_shape(server)
    return LoadReport(
        mode=f"closed:{clients}",
        requests=requests,
        completed=completed,
        shed=shed,
        errors=errors,
        timeouts=timeouts,
        deadline_exceeded=expired,
        retries=cstats["retries"],
        hedges=cstats["hedges"],
        replicas=replicas,
        duration_s=duration,
        throughput_rps=completed / duration if duration > 0 else 0.0,
        latency_ms=_percentiles(latencies),
        client_stats=cstats,
        server_stats=server.stats(),
        router_stats=router_stats,
    )


def run_open_loop(
    server,
    rate_rps: float = 100.0,
    duration_s: float = 2.0,
    seed: int = 0,
    client_config: ClientConfig | None = None,
    deadline_ms: float | None = None,
) -> LoadReport:
    """Poisson arrivals at ``rate_rps``; waits for stragglers at the end.

    Each arrival is submitted from the generator thread (submission is
    non-blocking) and completion is collected by a small reaper pool, so
    a slow server builds real queueing delay instead of throttling the
    generator.  The reaper's wait comes from ``client_config.timeout_s``
    (no more hard-coded 60 s) and a timed-out or expired request is a
    report column, never a crash.
    """
    cfg = client_config if client_config is not None else ClientConfig()
    rng = np.random.default_rng(seed)
    horizon = max(1, int(rate_rps * duration_s))
    inputs = _random_inputs(server.config.input_shape, horizon, seed + 1)
    gaps = rng.exponential(1.0 / rate_rps, size=horizon)

    latencies: list[float] = []
    shed = errors = completed = timeouts = expired = 0
    lock = threading.Lock()
    pending: list = []

    def reap(req) -> None:
        nonlocal completed, errors, timeouts, expired
        t0 = req.t_submit
        try:
            req.result(timeout=cfg.timeout_s)
        except TimeoutError:
            with lock:
                timeouts += 1
            return
        except DeadlineExceeded:
            with lock:
                expired += 1
            return
        except ServerClosed:
            with lock:
                errors += 1
            return
        dt = time.perf_counter() - t0
        with lock:
            completed += 1
            latencies.append(dt)

    t_start = time.perf_counter()
    next_arrival = t_start
    for i in range(horizon):
        next_arrival += gaps[i]
        delay = next_arrival - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        deadline = (
            time.perf_counter() + deadline_ms / 1e3
            if deadline_ms is not None else None
        )
        try:
            req = server.submit(inputs[i], deadline=deadline)
        except RequestShed:
            with lock:
                shed += 1
            continue
        except ServerClosed:
            with lock:
                errors += 1
            continue
        t = threading.Thread(target=reap, args=(req,), daemon=True)
        t.start()
        pending.append(t)
    for t in pending:
        t.join()
    duration = time.perf_counter() - t_start
    replicas, router_stats = _target_shape(server)
    return LoadReport(
        mode=f"open:{rate_rps:g}rps",
        requests=horizon,
        completed=completed,
        shed=shed,
        errors=errors,
        timeouts=timeouts,
        deadline_exceeded=expired,
        replicas=replicas,
        duration_s=duration,
        throughput_rps=completed / duration if duration > 0 else 0.0,
        latency_ms=_percentiles(latencies),
        server_stats=server.stats(),
        router_stats=router_stats,
    )
