"""Bounded admission queue with load shedding.

Admission control is the only place a request can be rejected: a full
queue sheds *new* arrivals (``serve.shed``) instead of letting latency
grow without bound.  Workers drain the queue through :meth:`take`, which
implements the dynamic-batching wait: return immediately once ``max_n``
requests are pending, otherwise hold the batch open for at most
``window_s`` after the first arrival.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.serve.request import InferenceRequest, RequestShed, ServerClosed

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """FIFO of :class:`InferenceRequest` with a hard capacity.

    ``metrics`` scopes the queue's counters/gauges to one server; it
    defaults to the process-wide registry for standalone use.
    """

    def __init__(self, capacity: int, metrics: MetricsRegistry | None = None):
        self.capacity = capacity
        self._metrics = metrics if metrics is not None else get_metrics()
        self._q: deque[InferenceRequest] = deque()
        self._cond = threading.Condition()
        self._closed = False

    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._q)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def put(self, req: InferenceRequest) -> None:
        """Admit a request, or shed it if the queue is full."""
        with self._cond:
            if self._closed:
                raise ServerClosed("server is stopped; request rejected")
            if len(self._q) >= self.capacity:
                self._metrics.inc("serve.shed")
                raise RequestShed(
                    f"queue at capacity ({self.capacity}); request shed"
                )
            self._q.append(req)
            self._metrics.set_gauge("serve.queue_depth", len(self._q))
            self._cond.notify()

    def take(
        self, max_n: int, window_s: float = 0.0
    ) -> list[InferenceRequest]:
        """Dequeue up to ``max_n`` requests as one batch.

        Blocks until at least one request is available (or the queue is
        closed AND drained, returning ``[]``).  Once the first request is
        in hand the batch stays open for at most ``window_s`` waiting for
        more; it closes early when ``max_n`` is reached.

        With several workers the batch-window wait can lose a race: two
        takers pass the first wait, the first to wake pops everything and
        the second finds the deque empty again.  An empty pop loops back
        to the outer wait instead of returning, so ``[]`` is an
        unambiguous shutdown signal.
        """
        with self._cond:
            while True:
                while not self._q and not self._closed:
                    self._cond.wait()
                if not self._q:
                    return []  # closed and drained
                deadline = time.perf_counter() + window_s
                while len(self._q) < max_n and not self._closed:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                batch = [
                    self._q.popleft()
                    for _ in range(min(max_n, len(self._q)))
                ]
                if not batch:
                    continue  # another worker drained the window's batch
                self._metrics.set_gauge("serve.queue_depth", len(self._q))
                return batch

    def drain(self) -> list[InferenceRequest]:
        """Remove and return everything still queued (used at shutdown
        to fail leftover requests)."""
        with self._cond:
            leftover = list(self._q)
            self._q.clear()
            self._metrics.set_gauge("serve.queue_depth", 0)
            return leftover

    def close(self) -> None:
        """Reject future puts and wake every blocked :meth:`take`."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
