"""Bounded admission queue with load-aware shedding.

Admission control is the only place a request can be rejected.  Two
independent signals shed *new* arrivals (``serve.shed``) instead of
letting latency grow without bound:

* the hard **capacity** bound (the original fixed-depth FIFO rule), and
* **adaptive backpressure**: an EWMA of observed per-request service
  time turns the current depth into an *estimated queue wait*; when that
  estimate exceeds ``max_wait_s`` the request is shed
  (``serve.shed_backpressure``) even though the queue is nowhere near
  capacity.  A queue of 200 one-millisecond requests is healthy; a queue
  of 20 hundred-millisecond requests is already a latency disaster --
  depth alone cannot tell the two apart.

Workers drain the queue through :meth:`take`, which implements the
dynamic-batching wait: return immediately once ``max_n`` requests are
pending, otherwise hold the batch open for at most ``window_s`` after
the first arrival.  ``take`` also drops requests whose deadline already
expired while queued -- they are failed with
:class:`~repro.serve.request.DeadlineExceeded` (``serve.deadline_expired``)
rather than padded into a bucket.

:meth:`pause` stops admission without closing (the graceful-drain
front door): queued work still drains, blocked takers keep taking, but
new puts fail with :class:`ServerClosed` until :meth:`resume`.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.obs.metrics import Ewma, MetricsRegistry, get_metrics
from repro.serve.request import (
    DeadlineExceeded,
    InferenceRequest,
    RequestShed,
    ServerClosed,
)

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """FIFO of :class:`InferenceRequest` with a hard capacity and an
    estimated-wait shed rule.

    ``metrics`` scopes the queue's counters/gauges to one server; it
    defaults to the process-wide registry for standalone use.
    ``max_wait_s`` enables adaptive backpressure (``None`` = depth-only
    shedding); ``workers`` is the drain parallelism the wait estimate
    divides by.
    """

    def __init__(
        self,
        capacity: int,
        metrics: MetricsRegistry | None = None,
        *,
        max_wait_s: float | None = None,
        workers: int = 1,
    ):
        self.capacity = capacity
        self.max_wait_s = max_wait_s
        self.workers = max(1, workers)
        self._metrics = metrics if metrics is not None else get_metrics()
        self._q: deque[InferenceRequest] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._paused = False
        #: requests handed to a worker whose batch has not finished yet;
        #: drain waits on depth AND this, so a batch popped the instant
        #: before a drain is still waited for (no lost-update race --
        #: both counters move under the queue's own lock)
        self._inflight = 0
        #: decayed per-request service seconds, fed by the workers after
        #: every batch (batch wall time / live rows)
        self._service_ewma = Ewma(alpha=0.2)

    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._q)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    @property
    def paused(self) -> bool:
        with self._cond:
            return self._paused

    @property
    def inflight(self) -> int:
        """Requests taken by a worker but not yet acknowledged via
        :meth:`task_done`."""
        with self._cond:
            return self._inflight

    def task_done(self, n: int) -> None:
        """A worker finished (served, failed or dropped) ``n`` requests
        it previously took; wakes anything waiting in :meth:`join`."""
        with self._cond:
            self._inflight = max(0, self._inflight - n)
            self._cond.notify_all()

    def join(self, timeout_s: float) -> bool:
        """Block until the queue is empty AND no batch is in flight (the
        drain condition); returns False on timeout."""
        deadline = time.perf_counter() + timeout_s
        with self._cond:
            while self._q or self._inflight:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, 0.05))
            return True

    # -- adaptive backpressure -----------------------------------------
    def record_service(self, batch_seconds: float, n: int) -> None:
        """Fold one served batch into the service-time EWMA (called by
        workers; ``n`` is the batch's live row count)."""
        if n > 0:
            per_req = self._service_ewma.update(batch_seconds / n)
            self._metrics.set_gauge("serve.service_ewma_ms", per_req * 1e3)

    def estimated_wait_s(self) -> float:
        """Expected queue wait for a request admitted *now*: decayed
        per-request service time x current depth / drain parallelism.
        0.0 until the first batch has been observed (optimistic start:
        never shed before there is evidence of slowness)."""
        per_req = self._service_ewma.value
        if per_req is None:
            return 0.0
        return per_req * self.depth / self.workers

    # ------------------------------------------------------------------
    def put(self, req: InferenceRequest) -> None:
        """Admit a request, or shed it.

        Rejection reasons, in order: closed/paused (:class:`ServerClosed`),
        hard capacity (:class:`RequestShed`, ``serve.shed``), estimated
        wait over budget (:class:`RequestShed`, ``serve.shed`` +
        ``serve.shed_backpressure``).
        """
        with self._cond:
            if self._closed:
                raise ServerClosed("server is stopped; request rejected")
            if self._paused:
                raise ServerClosed(
                    "server is draining; admission is stopped"
                )
            if len(self._q) >= self.capacity:
                self._metrics.inc("serve.shed")
                raise RequestShed(
                    f"queue at capacity ({self.capacity}); request shed"
                )
            if self.max_wait_s is not None:
                per_req = self._service_ewma.value
                est = (
                    0.0 if per_req is None
                    else per_req * len(self._q) / self.workers
                )
                if est > self.max_wait_s:
                    self._metrics.inc("serve.shed")
                    self._metrics.inc("serve.shed_backpressure")
                    raise RequestShed(
                        f"estimated queue wait {est * 1e3:.1f}ms exceeds "
                        f"the {self.max_wait_s * 1e3:.1f}ms budget; "
                        "request shed"
                    )
            self._q.append(req)
            self._metrics.set_gauge("serve.queue_depth", len(self._q))
            self._cond.notify()

    def _pop_live(self, max_n: int) -> list[InferenceRequest]:
        """Pop up to ``max_n`` *unexpired* requests (caller holds the
        lock).  Expired entries are failed on the spot -- never handed to
        the batcher."""
        batch: list[InferenceRequest] = []
        while self._q and len(batch) < max_n:
            req = self._q.popleft()
            if req.expired:
                self._metrics.inc("serve.deadline_expired")
                req._fail(DeadlineExceeded(
                    f"request {req.id} expired after "
                    f"{(time.perf_counter() - req.t_submit) * 1e3:.1f}ms "
                    "in the admission queue"
                ))
                continue
            batch.append(req)
        return batch

    def take(
        self, max_n: int, window_s: float = 0.0
    ) -> list[InferenceRequest]:
        """Dequeue up to ``max_n`` live requests as one batch.

        Blocks until at least one request is available (or the queue is
        closed AND drained, returning ``[]``).  Once the first request is
        in hand the batch stays open for at most ``window_s`` waiting for
        more; it closes early when ``max_n`` is reached.  Requests whose
        deadline expired while queued are failed and skipped here.

        With several workers the batch-window wait can lose a race: two
        takers pass the first wait, the first to wake pops everything and
        the second finds the deque empty again.  An empty pop loops back
        to the outer wait instead of returning, so ``[]`` is an
        unambiguous shutdown signal.
        """
        with self._cond:
            while True:
                while not self._q and not self._closed:
                    self._cond.wait()
                if not self._q:
                    return []  # closed and drained
                deadline = time.perf_counter() + window_s
                while len(self._q) < max_n and not self._closed:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                batch = self._pop_live(max_n)
                self._metrics.set_gauge("serve.queue_depth", len(self._q))
                if not batch:
                    # another worker drained the window's batch, or every
                    # popped request had already expired
                    self._cond.notify_all()  # a join may now be done
                    continue
                self._inflight += len(batch)
                return batch

    def drain(self) -> list[InferenceRequest]:
        """Remove and return everything still queued (used at shutdown
        to fail leftover requests)."""
        with self._cond:
            leftover = list(self._q)
            self._q.clear()
            self._metrics.set_gauge("serve.queue_depth", 0)
            return leftover

    def pause(self) -> None:
        """Stop admission (puts raise :class:`ServerClosed`) while
        letting queued work drain -- the graceful-drain front door."""
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        """Re-open admission after :meth:`pause` (no-op once closed)."""
        with self._cond:
            self._paused = False

    def close(self) -> None:
        """Reject future puts and wake every blocked :meth:`take`."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
