"""The inference server: queue + batcher + warm cache + workers.

Boot does everything expensive exactly once -- graph construction,
JIT codegen, dryrun stream recording (or warm-cache replay, skipping
the dryrun entirely) -- so the steady state per request is: admission,
a short batching wait, one engine call, scatter.  SLO signals use the
:mod:`repro.obs` machinery on a per-server registry
(:attr:`InferenceServer.metrics`): ``serve.latency_ms`` (distribution
-> p50/p95/p99), ``serve.queue_depth``, ``serve.batch_occupancy``,
``serve.shed``/``serve.batches``/``serve.responses``/
``serve.cancelled`` counters and the ``serve.boot_s`` gauge.
"""

from __future__ import annotations

import time

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import AdmissionQueue
from repro.serve.batcher import MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.request import InferenceRequest, ServerClosed
from repro.serve.warmcache import StreamWarmCache
from repro.serve.worker import EngineReplica, Worker
from repro.types import ReproError, ShapeError

__all__ = ["InferenceServer"]


class InferenceServer:
    """Dynamic-batching front end over bucket-sized inference engines."""

    def __init__(self, config: ServeConfig):
        self.config = config
        #: per-server registry: several servers can live in one process
        #: (tests, loadgen comparisons), so SLO numbers must not bleed
        #: across instances through the process-wide registry
        self.metrics = MetricsRegistry()
        self.queue = AdmissionQueue(
            config.queue_capacity, metrics=self.metrics
        )
        self.batcher = MicroBatcher(config.buckets, metrics=self.metrics)
        self.warm_cache = StreamWarmCache(config.fingerprint())
        self._replicas: list[EngineReplica] = []
        self._workers: list[Worker] = []
        self.boot_stats: dict = {}
        self._started = False

    # ------------------------------------------------------------------
    def start(self, streams_artifact=None) -> dict:
        """Build every replica and start the worker threads.

        ``streams_artifact`` (path or file object) warm-starts the
        blocked engine from saved kernel streams; buckets present in the
        artifact skip their dryrun.  Returns :attr:`boot_stats`.
        """
        if self._started:
            raise ReproError("server already started")
        t0 = time.perf_counter()
        if streams_artifact is not None:
            if self.config.engine != "blocked":
                raise ReproError(
                    "stream warm-start applies only to the blocked engine"
                )
            self.warm_cache.load(streams_artifact)
        for i in range(self.config.workers):
            replica = EngineReplica(self.config, self.warm_cache)
            self._replicas.append(replica)
            self._workers.append(
                Worker(
                    name=f"serve-worker-{i}",
                    queue=self.queue,
                    batcher=self.batcher,
                    replica=replica,
                    batch_window_s=self.config.batch_window_ms / 1e3,
                    metrics=self.metrics,
                )
            )
        if self.config.checkpoint:
            self._load_checkpoint(self.config.checkpoint)
        boot_s = time.perf_counter() - t0
        first = self._replicas[0]
        self.boot_stats = {
            "boot_s": boot_s,
            "engine": self.config.engine,
            "warm_buckets": list(first.warm_buckets),
            "cold_buckets": list(first.cold_buckets),
        }
        self.metrics.set_gauge("serve.boot_s", boot_s)
        for w in self._workers:
            w.start()
        self._started = True
        return self.boot_stats

    def _load_checkpoint(self, path: str) -> None:
        """Copy trained parameters from a checkpoint into every graph of
        every replica (all graphs share one layout, so loading is a flat
        parameter copy per graph)."""
        from repro.gxm.checkpoint import load_checkpoint

        for replica in self._replicas:
            seen = set()
            for session in replica._sessions.values():
                if id(session) in seen:
                    continue
                seen.add(id(session))
                load_checkpoint(session.etg, path)

    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray) -> InferenceRequest:
        """Admit one ``(C, H, W)`` image; returns the pending request.

        Raises :class:`RequestShed` when the queue is full and
        :class:`ServerClosed` after :meth:`stop`.
        """
        if not self._started:
            raise ServerClosed("server not started")
        x = np.asarray(x, dtype=np.float32)
        if x.shape != self.config.input_shape:
            raise ShapeError(
                f"request shape {x.shape} != configured "
                f"{self.config.input_shape}"
            )
        req = InferenceRequest(x)
        self.queue.put(req)
        return req

    def predict(
        self, x: np.ndarray, timeout: float | None = 30.0
    ) -> np.ndarray:
        """Blocking convenience: submit one image, wait for its probs."""
        return self.submit(x).result(timeout)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Close admission, drain workers, fail leftover requests."""
        if not self._started:
            return
        self.queue.close()
        for w in self._workers:
            w.join(timeout=30.0)
        for req in self.queue.drain():
            req._fail(ServerClosed("server stopped before request ran"))
        for replica in self._replicas:
            replica.close()
        self._replicas.clear()
        self._workers.clear()
        self._started = False

    def __enter__(self) -> "InferenceServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """SLO snapshot: this server's serve.* metrics, latency
        percentiles, kernel cache state, boot stats and warm-cache
        digests.  Reads the per-instance registry, so the numbers cover
        exactly this server's lifetime -- not every server ever booted
        in the process."""
        from repro.jit.kernel_cache import get_default_cache

        return {
            "counters": self.metrics.counters(),
            "gauges": self.metrics.gauges(),
            "distributions": self.metrics.distributions(),
            "kernel_cache": get_default_cache().stats(),
            "boot": dict(self.boot_stats),
            "warm_streams": self.warm_cache.digests(),
        }

    def save_streams_artifact(self, path_or_file) -> int:
        """Persist the warm cache for the next boot; returns the entry
        count.  Only meaningful for the blocked engine (the fast engine
        records no streams)."""
        if self.config.engine != "blocked":
            raise ReproError(
                "stream artifacts apply only to the blocked engine"
            )
        return self.warm_cache.save(path_or_file)
