"""The inference server: queue + batcher + warm cache + workers.

Boot does everything expensive exactly once -- graph construction,
JIT codegen, dryrun stream recording (or warm-cache replay, skipping
the dryrun entirely) -- so the steady state per request is: admission,
a short batching wait, one engine call, scatter.  SLO signals use the
:mod:`repro.obs` machinery on a per-server registry
(:attr:`InferenceServer.metrics`): ``serve.latency_ms`` (distribution
-> p50/p95/p99), ``serve.queue_depth``, ``serve.batch_occupancy``,
``serve.shed``/``serve.batches``/``serve.responses``/
``serve.cancelled`` counters and the ``serve.boot_s`` gauge.

Resilience: boot falls back to a cold dryrun when the warm-cache
artifact is stale or corrupt (:class:`StaleArtifactError` -> counted in
``serve.artifact_rejected``, never a boot abort); a supervisor thread
restarts crashed worker threads with exponential backoff
(``serve.worker_restarts``); and :meth:`health` -- the ``/healthz``
payload -- reports live-worker count and every degraded state.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.resilience.faults import FaultInjector
from repro.serve.admission import AdmissionQueue
from repro.serve.batcher import MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.request import InferenceRequest, ServerClosed
from repro.serve.warmcache import StreamWarmCache
from repro.serve.worker import EngineReplica, Worker
from repro.streams.serialize import StaleArtifactError
from repro.types import ReproError, ShapeError

__all__ = ["InferenceServer"]

#: supervisor scan period and restart backoff bounds
_SUPERVISE_S = 0.05
_BACKOFF_BASE_S = 0.05
_BACKOFF_MAX_S = 2.0


class InferenceServer:
    """Dynamic-batching front end over bucket-sized inference engines.

    ``fault_injector`` arms deterministic fault injection at the serving
    sites (``serve.worker.crash``, ``serve.replica.run``);
    ``max_worker_restarts`` bounds how many times the supervisor will
    replace any one worker slot before leaving it down (and reporting it
    through :meth:`health`).
    """

    def __init__(
        self,
        config: ServeConfig,
        fault_injector: FaultInjector | None = None,
        max_worker_restarts: int = 8,
    ):
        self.config = config
        #: per-server registry: several servers can live in one process
        #: (tests, loadgen comparisons), so SLO numbers must not bleed
        #: across instances through the process-wide registry
        self.metrics = MetricsRegistry()
        self.injector = fault_injector
        self.max_worker_restarts = max_worker_restarts
        self.queue = AdmissionQueue(
            config.queue_capacity, metrics=self.metrics
        )
        self.batcher = MicroBatcher(config.buckets, metrics=self.metrics)
        self.warm_cache = StreamWarmCache(config.fingerprint())
        self._replicas: list[EngineReplica] = []
        self._workers: list[Worker] = []
        self._restarts: list[int] = []
        self._supervisor: threading.Thread | None = None
        self._stopping = threading.Event()
        self.boot_stats: dict = {}
        self._started = False

    # ------------------------------------------------------------------
    def start(self, streams_artifact=None) -> dict:
        """Build every replica and start the worker threads.

        ``streams_artifact`` (path or file object) warm-starts the
        blocked engine from saved kernel streams; buckets present in the
        artifact skip their dryrun.  A stale or corrupt artifact does
        NOT abort boot: it is rejected (``serve.artifact_rejected``) and
        every bucket cold-boots through its dryrun.  Returns
        :attr:`boot_stats`.
        """
        if self._started:
            raise ReproError("server already started")
        t0 = time.perf_counter()
        artifact_error: str | None = None
        if streams_artifact is not None:
            if self.config.engine != "blocked":
                raise ReproError(
                    "stream warm-start applies only to the blocked engine"
                )
            try:
                self.warm_cache.load(streams_artifact)
            except StaleArtifactError as err:
                # graceful degradation: cold dryrun instead of boot abort
                artifact_error = str(err)
                self.metrics.inc("serve.artifact_rejected")
        for i in range(self.config.workers):
            replica = EngineReplica(
                self.config, self.warm_cache, metrics=self.metrics,
                injector=self.injector,
            )
            self._replicas.append(replica)
            self._workers.append(self._make_worker(i, replica))
            self._restarts.append(0)
        if self.config.checkpoint:
            self._load_checkpoint(self.config.checkpoint)
        boot_s = time.perf_counter() - t0
        first = self._replicas[0]
        self.boot_stats = {
            "boot_s": boot_s,
            "engine": self.config.engine,
            "warm_buckets": list(first.warm_buckets),
            "cold_buckets": list(first.cold_buckets),
        }
        if artifact_error is not None:
            self.boot_stats["artifact_error"] = artifact_error
        self.metrics.set_gauge("serve.boot_s", boot_s)
        for w in self._workers:
            w.start()
        self._stopping.clear()
        self._supervisor = threading.Thread(
            target=self._supervise, name="serve-supervisor", daemon=True
        )
        self._supervisor.start()
        self._started = True
        return self.boot_stats

    def _make_worker(self, slot: int, replica: EngineReplica) -> Worker:
        return Worker(
            name=f"serve-worker-{slot}",
            queue=self.queue,
            batcher=self.batcher,
            replica=replica,
            batch_window_s=self.config.batch_window_ms / 1e3,
            metrics=self.metrics,
            injector=self.injector,
        )

    def _load_checkpoint(self, path: str) -> None:
        """Copy trained parameters from a checkpoint into every graph of
        every replica (all graphs share one layout, so loading is a flat
        parameter copy per graph)."""
        from repro.gxm.checkpoint import load_checkpoint

        for replica in self._replicas:
            seen = set()
            for session in replica._sessions.values():
                if id(session) in seen:
                    continue
                seen.add(id(session))
                load_checkpoint(session.etg, path)

    # -- self-healing ---------------------------------------------------
    def _supervise(self) -> None:
        """Restart crashed worker threads (bounded, with backoff).

        A worker that exited because the queue closed
        (``exited_cleanly``) is never restarted; one that died any other
        way is replaced on its own replica -- engines are stateless
        between batches, so the replacement picks up immediately.
        """
        while not self._stopping.wait(_SUPERVISE_S):
            for slot, worker in enumerate(self._workers):
                if worker.is_alive() or worker.exited_cleanly:
                    continue
                if self._restarts[slot] >= self.max_worker_restarts:
                    continue  # slot abandoned; health() reports it
                delay = min(
                    _BACKOFF_BASE_S * (2 ** self._restarts[slot]),
                    _BACKOFF_MAX_S,
                )
                if self._stopping.wait(delay):
                    return
                self._restarts[slot] += 1
                self.metrics.inc("serve.worker_restarts")
                replacement = self._make_worker(
                    slot, self._replicas[slot]
                )
                self._workers[slot] = replacement
                replacement.start()

    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray) -> InferenceRequest:
        """Admit one ``(C, H, W)`` image; returns the pending request.

        Raises :class:`RequestShed` when the queue is full and
        :class:`ServerClosed` after :meth:`stop`.
        """
        if not self._started:
            raise ServerClosed("server not started")
        x = np.asarray(x, dtype=np.float32)
        if x.shape != self.config.input_shape:
            raise ShapeError(
                f"request shape {x.shape} != configured "
                f"{self.config.input_shape}"
            )
        req = InferenceRequest(x)
        self.queue.put(req)
        return req

    def predict(
        self, x: np.ndarray, timeout: float | None = 30.0
    ) -> np.ndarray:
        """Blocking convenience: submit one image, wait for its probs."""
        return self.submit(x).result(timeout)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Close admission, drain workers, fail leftover requests."""
        if not self._started:
            return
        self._stopping.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=10.0)
            self._supervisor = None
        self.queue.close()
        for w in self._workers:
            w.join(timeout=30.0)
        for req in self.queue.drain():
            req._fail(ServerClosed("server stopped before request ran"))
        for replica in self._replicas:
            replica.close()
        self._replicas.clear()
        self._workers.clear()
        self._restarts.clear()
        self._started = False

    def __enter__(self) -> "InferenceServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """The ``/healthz`` readiness payload.

        ``status`` is ``"ok"`` (full capacity, no degradation),
        ``"degraded"`` (serving, but with dead workers, a degraded
        execution tier, or after a warm-artifact rejection) or
        ``"down"`` (not started / nothing alive to serve)."""
        live = sum(1 for w in self._workers if w.is_alive())
        degraded_buckets = sorted(
            {
                b
                for r in self._replicas
                for b in r.degraded_buckets
            }
        )
        artifact_fallback = "artifact_error" in self.boot_stats
        if not self._started or (self._workers and live == 0):
            status = "down"
        elif (
            live < len(self._workers)
            or degraded_buckets
            or artifact_fallback
        ):
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "started": self._started,
            "live_workers": live,
            "configured_workers": self.config.workers,
            "worker_restarts": self.metrics.value("serve.worker_restarts"),
            "degraded_buckets": degraded_buckets,
            "artifact_fallback": artifact_fallback,
            "artifact_error": self.boot_stats.get("artifact_error"),
            "queue_depth": self.queue.depth,
        }

    def stats(self) -> dict:
        """SLO snapshot: this server's serve.* metrics, latency
        percentiles, kernel cache state, boot stats, warm-cache digests
        and the health payload.  Reads the per-instance registry, so the
        numbers cover exactly this server's lifetime -- not every server
        ever booted in the process."""
        from repro.jit.kernel_cache import get_default_cache

        return {
            "counters": self.metrics.counters(),
            "gauges": self.metrics.gauges(),
            "distributions": self.metrics.distributions(),
            "kernel_cache": get_default_cache().stats(),
            "boot": dict(self.boot_stats),
            "warm_streams": self.warm_cache.digests(),
            "health": self.health(),
        }

    def save_streams_artifact(self, path_or_file) -> int:
        """Persist the warm cache for the next boot; returns the entry
        count.  Only meaningful for the blocked engine (the fast engine
        records no streams)."""
        if self.config.engine != "blocked":
            raise ReproError(
                "stream artifacts apply only to the blocked engine"
            )
        return self.warm_cache.save(path_or_file)
