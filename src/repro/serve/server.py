"""The inference server: queue + batcher + warm cache + workers.

Boot does everything expensive exactly once -- graph construction,
JIT codegen, dryrun stream recording (or warm-cache replay, skipping
the dryrun entirely) -- so the steady state per request is: admission,
a short batching wait, one engine call, scatter.  SLO signals use the
:mod:`repro.obs` machinery on a per-server registry
(:attr:`InferenceServer.metrics`): ``serve.latency_ms`` (distribution
-> p50/p95/p99), ``serve.queue_depth``, ``serve.batch_occupancy``,
``serve.shed``/``serve.batches``/``serve.responses``/
``serve.cancelled``/``serve.deadline_expired`` counters and the
``serve.boot_s`` gauge.

Because the kernel-stream design makes a cold restart expensive (every
bucket's dryrun again), production robustness comes from *lifecycle*
operations on the running server rather than kill-and-reboot:

* :meth:`drain` -- stop admission, let in-flight and queued batches
  finish, fail (and report) anything left after the timeout.  Admission
  can be re-opened with :meth:`resume`.
* :meth:`reload_checkpoint` -- load new weights into a **shadow**
  replica set (reusing the stream warm cache, so no dryrun), validate a
  canary batch per bucket against the numerics contract (finite values,
  correct shape, probability simplex), then atomically swap the shadows
  in under the :class:`~repro.serve.worker.SwapGate` and rebuild the
  warm cache from the new replicas.  Any canary failure rolls back:
  shadows are discarded, the old replicas never stopped serving, and
  the error is raised to the operator (``serve.reload.rollbacks``).

Resilience: boot falls back to a cold dryrun when the warm-cache
artifact is stale or corrupt (:class:`StaleArtifactError` -> counted in
``serve.artifact_rejected``, never a boot abort); a supervisor thread
restarts crashed worker threads with exponential backoff
(``serve.worker_restarts``); and :meth:`health` -- the ``/healthz``
payload -- reports live-worker count and every degraded state.

Lifecycle operations never interleave: drain/resume/reload serialize on
one lock, and a second operation arriving while one is in flight is
refused *deterministically* with :class:`LifecycleBusy` (HTTP 409)
instead of queueing behind it -- an operator script that fires a reload
during a drain gets a typed refusal, not an arbitrary interleaving.

Forensics: with :attr:`ServeConfig.incident_dir` set the server arms
the process-wide :mod:`repro.forensics` flight recorder (admissions,
batch compositions, tier degrades, lifecycle transitions) and freezes
an atomic, digest-verified incident bundle on every canary rollback and
on ``POST /admin/dump`` (:meth:`dump_incident`) -- each bundle replays
bitwise via ``python -m repro incident replay``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, replace

import numpy as np

from repro.forensics.bundle import IncidentWriter, tensor_digest
from repro.forensics.recorder import enable as _recorder_enable
from repro.forensics.recorder import get_recorder
from repro.obs.metrics import MetricsRegistry
from repro.resilience.faults import FaultInjector
from repro.serve.admission import AdmissionQueue
from repro.serve.batcher import MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.request import InferenceRequest, ServerClosed
from repro.serve.warmcache import StreamWarmCache
from repro.serve.worker import EngineReplica, ReplicaSlot, SwapGate, Worker
from repro.streams.serialize import StaleArtifactError
from repro.types import ReproError, ShapeError

__all__ = ["CanaryError", "InferenceServer", "LifecycleBusy"]

#: supervisor scan period and restart backoff bounds
_SUPERVISE_S = 0.05
_BACKOFF_BASE_S = 0.05
_BACKOFF_MAX_S = 2.0


class CanaryError(ReproError):
    """A shadow replica's canary batch violated the numerics contract
    during :meth:`InferenceServer.reload_checkpoint`; the reload was
    rolled back and the old replicas kept serving."""


class LifecycleBusy(ReproError):
    """A lifecycle operation (drain/resume/reload) was refused because
    another one is already in flight.  Typed so the HTTP front end maps
    it to a deterministic ``409`` -- the operation never queues behind
    the running one and never interleaves with it."""


def _config_doc(config: ServeConfig) -> dict:
    """JSON-serializable config document for an incident manifest
    (``replay`` is a runtime object, not part of the capture)."""
    doc = asdict(config)
    doc.pop("replay", None)
    return doc


class InferenceServer:
    """Dynamic-batching front end over bucket-sized inference engines.

    ``fault_injector`` arms deterministic fault injection at the serving
    sites (``serve.worker.crash``, ``serve.worker.slow``,
    ``serve.replica.run``, ``serve.reload.canary_fail``);
    ``max_worker_restarts`` bounds how many times the supervisor will
    replace any one worker slot before leaving it down (and reporting it
    through :meth:`health`).
    """

    def __init__(
        self,
        config: ServeConfig,
        fault_injector: FaultInjector | None = None,
        max_worker_restarts: int = 8,
    ):
        self.config = config
        #: per-server registry: several servers can live in one process
        #: (tests, loadgen comparisons), so SLO numbers must not bleed
        #: across instances through the process-wide registry
        self.metrics = MetricsRegistry()
        self.injector = fault_injector
        self.max_worker_restarts = max_worker_restarts
        self.queue = AdmissionQueue(
            config.queue_capacity,
            metrics=self.metrics,
            max_wait_s=(
                config.max_queue_wait_ms / 1e3
                if config.max_queue_wait_ms is not None
                else None
            ),
            workers=config.workers,
        )
        self.batcher = MicroBatcher(config.buckets, metrics=self.metrics)
        self.warm_cache = StreamWarmCache(config.fingerprint())
        #: read side held per batch by workers, write side by replica
        #: swaps (reload) and drain's in-flight barrier
        self.gate = SwapGate()
        self._slots: list[ReplicaSlot] = []
        self._workers: list[Worker] = []
        self._restarts: list[int] = []
        self._supervisor: threading.Thread | None = None
        self._stopping = threading.Event()
        #: serializes lifecycle operations (drain/resume/reload/stop)
        self._lifecycle = threading.Lock()
        if config.recorder or config.incident_dir:
            _recorder_enable(config.recorder or None)
        self._incidents = IncidentWriter(config.incident_dir)
        self.boot_stats: dict = {}
        self._started = False
        self._draining = False

    @property
    def _replicas(self) -> list[EngineReplica]:
        """The live replica set (compat accessor; tests patch
        ``server._replicas[0].run``)."""
        return [slot.replica for slot in self._slots]

    # ------------------------------------------------------------------
    def start(self, streams_artifact=None) -> dict:
        """Build every replica and start the worker threads.

        ``streams_artifact`` (path or file object) warm-starts the
        blocked engine from saved kernel streams; buckets present in the
        artifact skip their dryrun.  A stale or corrupt artifact does
        NOT abort boot: it is rejected (``serve.artifact_rejected``) and
        every bucket cold-boots through its dryrun.  Returns
        :attr:`boot_stats`.
        """
        if self._started:
            raise ReproError("server already started")
        t0 = time.perf_counter()
        artifact_error: str | None = None
        if streams_artifact is not None:
            if self.config.engine != "blocked":
                raise ReproError(
                    "stream warm-start applies only to the blocked engine"
                )
            try:
                self.warm_cache.load(streams_artifact)
            except StaleArtifactError as err:
                # graceful degradation: cold dryrun instead of boot abort
                artifact_error = str(err)
                self.metrics.inc("serve.artifact_rejected")
        for i in range(self.config.workers):
            replica = EngineReplica(
                self.config, self.warm_cache, metrics=self.metrics,
                injector=self.injector,
            )
            self._slots.append(ReplicaSlot(replica))
            self._workers.append(self._make_worker(i, self._slots[i]))
            self._restarts.append(0)
        if self.config.checkpoint:
            self._load_checkpoint(self.config.checkpoint, self._replicas)
        boot_s = time.perf_counter() - t0
        first = self._slots[0].replica
        self.boot_stats = {
            "boot_s": boot_s,
            "engine": self.config.engine,
            "warm_buckets": list(first.warm_buckets),
            "cold_buckets": list(first.cold_buckets),
        }
        if artifact_error is not None:
            self.boot_stats["artifact_error"] = artifact_error
        self.metrics.set_gauge("serve.boot_s", boot_s)
        for w in self._workers:
            w.start()
        self._stopping.clear()
        self._supervisor = threading.Thread(
            target=self._supervise, name="serve-supervisor", daemon=True
        )
        self._supervisor.start()
        self._started = True
        return self.boot_stats

    def _make_worker(self, slot_idx: int, slot: ReplicaSlot) -> Worker:
        return Worker(
            name=f"serve-worker-{slot_idx}",
            queue=self.queue,
            batcher=self.batcher,
            replica=slot,
            batch_window_s=self.config.batch_window_ms / 1e3,
            metrics=self.metrics,
            injector=self.injector,
            gate=self.gate,
        )

    @staticmethod
    def _load_checkpoint(path: str, replicas) -> None:
        """Copy trained parameters from a checkpoint into every graph of
        every replica (all graphs share one layout, so loading is a flat
        parameter copy per graph)."""
        from repro.gxm.checkpoint import load_checkpoint

        for replica in replicas:
            for session in replica.sessions():
                load_checkpoint(session.etg, path)

    # -- self-healing ---------------------------------------------------
    def _supervise(self) -> None:
        """Restart crashed worker threads (bounded, with backoff).

        A worker that exited because the queue closed
        (``exited_cleanly``) is never restarted; one that died any other
        way is replaced on its own replica slot -- engines are stateless
        between batches, so the replacement picks up immediately (and a
        slot repointed by a hot reload restarts onto the new replica).
        """
        while not self._stopping.wait(_SUPERVISE_S):
            for slot_idx, worker in enumerate(self._workers):
                if worker.is_alive() or worker.exited_cleanly:
                    continue
                if self._restarts[slot_idx] >= self.max_worker_restarts:
                    continue  # slot abandoned; health() reports it
                delay = min(
                    _BACKOFF_BASE_S * (2 ** self._restarts[slot_idx]),
                    _BACKOFF_MAX_S,
                )
                if self._stopping.wait(delay):
                    return
                self._restarts[slot_idx] += 1
                self.metrics.inc("serve.worker_restarts")
                replacement = self._make_worker(
                    slot_idx, self._slots[slot_idx]
                )
                self._workers[slot_idx] = replacement
                replacement.start()

    # ------------------------------------------------------------------
    def submit(
        self, x: np.ndarray, deadline: float | None = None
    ) -> InferenceRequest:
        """Admit one ``(C, H, W)`` image; returns the pending request.

        ``deadline`` is an absolute ``time.perf_counter()`` moment after
        which nobody cares about the answer; the pipeline drops the
        request (failing it with :class:`DeadlineExceeded`) instead of
        computing into the void.  Raises :class:`RequestShed` when
        admission sheds (full queue or estimated wait over budget) and
        :class:`ServerClosed` after :meth:`stop` or during a drain.
        """
        if not self._started:
            raise ServerClosed("server not started")
        x = np.asarray(x, dtype=np.float32)
        if x.shape != self.config.input_shape:
            raise ShapeError(
                f"request shape {x.shape} != configured "
                f"{self.config.input_shape}"
            )
        req = InferenceRequest(x, deadline=deadline)
        self.queue.put(req)
        rec = get_recorder()
        if rec.enabled:
            rec.record("serve.admit", req=req.id)
        return req

    def predict(
        self,
        x: np.ndarray,
        timeout: float | None = 30.0,
        deadline: float | None = None,
    ) -> np.ndarray:
        """Blocking convenience: submit one image, wait for its probs."""
        return self.submit(x, deadline=deadline).result(timeout)

    # -- lifecycle: drain / resume / hot reload -------------------------
    @contextmanager
    def _lifecycle_op(self, name: str):
        """Serialize lifecycle operations; a second one arriving while
        one is in flight is refused with :class:`LifecycleBusy` instead
        of queueing behind it and interleaving."""
        if not self._lifecycle.acquire(blocking=False):
            raise LifecycleBusy(
                f"another lifecycle operation is in flight; retry "
                f"{name} after it completes"
            )
        try:
            rec = get_recorder()
            if rec.enabled:
                rec.record(f"serve.{name}")
            yield
        finally:
            self._lifecycle.release()

    def drain(self, timeout_s: float = 30.0) -> dict:
        """Graceful quiesce: stop admission, finish queued and in-flight
        batches, report what was left.

        New submissions fail with :class:`ServerClosed` ("draining") the
        moment this is called; workers keep draining the queue.  When the
        queue has not emptied within ``timeout_s`` the leftovers are
        failed with :class:`ServerClosed` and counted in the report --
        nothing is ever left hanging on ``result()``.  The server stays
        started (use :meth:`resume` to re-open admission, or :meth:`stop`
        to shut down, which is now instant)."""
        if not self._started:
            raise ServerClosed("server not started")
        with self._lifecycle_op("drain"):
            t0 = time.perf_counter()
            self.queue.pause()
            self._draining = True
            self.metrics.set_gauge("serve.draining", 1)
            # queue empty AND every taken batch acknowledged: a batch
            # popped the instant before the drain is still waited for
            self.queue.join(timeout_s)
            leftover = self.queue.drain()
            for req in leftover:
                req._fail(ServerClosed(
                    "server drained before this request ran"
                ))
            # barrier: wait for every in-flight batch to finish
            with self.gate.write():
                pass
            report = {
                "drained": not leftover,
                "leftover_failed": len(leftover),
                "duration_s": time.perf_counter() - t0,
                "queue_depth": self.queue.depth,
            }
            self.metrics.inc("serve.drains")
            return report

    def resume(self) -> dict:
        """Re-open admission after :meth:`drain`."""
        if not self._started:
            raise ServerClosed("server not started")
        with self._lifecycle_op("resume"):
            self.queue.resume()
            self._draining = False
            self.metrics.set_gauge("serve.draining", 0)
            return {"resumed": True}

    def _canary_contract(self, probs, bucket: int) -> str | None:
        """Why ``probs`` violates the serving numerics contract, or
        ``None`` if it honours it.  The contract is what every response
        from the *old* replicas already satisfies: a finite, row-wise
        probability simplex of the configured class count."""
        probs = np.asarray(probs)
        want = (bucket, self.config.num_classes)
        if probs.shape != want:
            return f"canary output shape {probs.shape} != {want}"
        if not np.isfinite(probs).all():
            return "canary output contains non-finite values"
        if (probs < 0).any():
            return "canary output contains negative probabilities"
        if not np.allclose(probs.sum(axis=1), 1.0, atol=1e-4):
            return "canary output rows do not sum to 1"
        return None

    def reload_checkpoint(self, path: str, canary_seed: int = 0) -> dict:
        """Hot-swap to new weights with zero dropped requests.

        Mechanics: (1) build a **shadow** replica set from the warm
        cache (stream replay, no dryrun) and load ``path`` into it --
        the live replicas keep serving untouched; (2) run one canary
        batch per bucket on a shadow and validate the numerics contract
        (finite, correct shape, probability simplex); (3) only if every
        canary passes, take the swap gate's write side (waits for
        in-flight batches, holds new ones back for the swap instant),
        repoint every worker slot at its shadow, and rebuild the stream
        warm cache from the new replicas; (4) close the old replicas.

        On *any* canary failure -- including an injected
        ``serve.reload.canary_fail`` -- the shadows are discarded, the
        old replicas never stopped serving, ``serve.reload.rollbacks``
        is bumped and :class:`CanaryError` raised.  Client requests in
        flight observe either the old or the new weights, never an
        error, never a hang."""
        if not self._started:
            raise ServerClosed("server not started")
        with self._lifecycle_op("reload"):
            t0 = time.perf_counter()
            new_config = replace(self.config, checkpoint=path)
            shadows: list[EngineReplica] = []
            try:
                for _ in self._slots:
                    shadows.append(EngineReplica(
                        new_config, self.warm_cache,
                        metrics=self.metrics, injector=self.injector,
                    ))
                self._load_checkpoint(path, shadows)
                # canary: one deterministic batch per bucket, on shadows
                rng = np.random.default_rng(canary_seed)
                for bucket in self.config.buckets:
                    x = rng.standard_normal(
                        (bucket, *self.config.input_shape)
                    ).astype(np.float32)
                    probs = shadows[0].run(x, bucket)
                    violation = self._canary_contract(probs, bucket)
                    if violation is None and self.injector is not None:
                        fault = self.injector.fire(
                            "serve.reload.canary_fail"
                        )
                        if fault is not None and fault.kind == "canary_fail":
                            violation = (
                                "injected canary failure "
                                "(serve.reload.canary_fail)"
                            )
                    if violation is not None:
                        err = CanaryError(
                            f"reload of {path!r} rolled back: bucket "
                            f"{bucket} {violation}"
                        )
                        self._capture_canary_incident(
                            err, new_config, x, bucket, path
                        )
                        raise err
            except BaseException:
                # rollback: discard shadows; old replicas never stopped
                for shadow in shadows:
                    shadow.close()
                self.metrics.inc("serve.reload.rollbacks")
                raise
            # every canary passed: atomic swap under the write gate
            old: list[EngineReplica]
            with self.gate.write():
                old = [slot.replica for slot in self._slots]
                for slot, shadow in zip(self._slots, shadows):
                    slot.replica = shadow
                self.config = new_config
                # invalidate + rebuild the warm cache from the replicas
                # now live, so a saved artifact always reflects them
                if new_config.engine == "blocked":
                    self.warm_cache.clear()
                    for bucket, state in shadows[0].stream_state().items():
                        self.warm_cache.put(bucket, state)
            for replica in old:
                replica.close()
            duration = time.perf_counter() - t0
            self.metrics.inc("serve.reloads")
            self.metrics.set_gauge("serve.reload_s", duration)
            report = {
                "checkpoint": path,
                "buckets_canaried": list(self.config.buckets),
                "duration_s": duration,
                "warm_cache_rebuilt": self.config.engine == "blocked",
            }
            try:
                from repro.gxm.checkpoint import read_checkpoint_meta

                report["checkpoint_digest"] = read_checkpoint_meta(
                    path
                ).get("digest")
            except ReproError:  # pragma: no cover -- digest is advisory
                report["checkpoint_digest"] = None
            self.boot_stats["checkpoint"] = path
            return report

    def _capture_canary_incident(
        self, err: CanaryError, new_config: ServeConfig,
        x: np.ndarray, bucket: int, path: str,
    ) -> None:
        """Freeze the failing canary batch before the rollback discards
        the shadows.  The bundle carries the *new* config (checkpoint =
        the rejected path), so a replay rebuilds exactly the engine the
        canary ran on."""
        rec = get_recorder()
        if rec.enabled:
            rec.record(
                "serve.reload.rollback", bucket=int(bucket),
                checkpoint=path,
            )
        if not self._incidents.enabled:
            return
        self._incidents.capture(
            "serve",
            error=err,
            replay={"mode": "serve", "bucket": int(bucket)},
            config=_config_doc(new_config),
            config_fingerprint=new_config.fingerprint(),
            fault_plan=(
                self.injector.plan if self.injector is not None else None
            ),
            tune_db_digest=new_config._tune_db_digest(),
            tensors={"x": np.array(x)},
            extra={"checkpoint": path, "trigger": "canary"},
        )

    def dump_incident(self) -> str:
        """Operator-triggered capture (``POST /admin/dump``): freeze the
        flight-recorder ring, config and a deterministic canary request
        -- together with the live weights and the current output digest
        -- into one replayable bundle.  Returns the bundle path."""
        if not self._started:
            raise ServerClosed("server not started")
        if not self._incidents.enabled:
            raise ReproError(
                "no incident directory configured; set "
                "ServeConfig.incident_dir to enable /admin/dump"
            )
        rec = get_recorder()
        if rec.enabled:
            rec.record("serve.dump")
        bucket = self.config.buckets[0]
        rng = np.random.default_rng(self.config.seed)
        x = rng.standard_normal(
            (bucket, *self.config.input_shape)
        ).astype(np.float32)
        with self.gate.read():
            replica = self._slots[0].replica
            y = np.asarray(replica.run(x, bucket))
            tensors = {"x": x}
            for i, p in enumerate(
                replica._sessions[bucket].etg.params()
            ):
                tensors[f"weights__{i}"] = p.copy()
        path = self._incidents.capture(
            "manual",
            replay={"mode": "serve", "bucket": int(bucket)},
            config=_config_doc(self.config),
            config_fingerprint=self.config.fingerprint(),
            fault_plan=(
                self.injector.plan if self.injector is not None else None
            ),
            tune_db_digest=self.config._tune_db_digest(),
            tensors=tensors,
            expect={"x": tensor_digest(x), "y": tensor_digest(y)},
            extra={"trigger": "dump", "health": self.health()},
        )
        if path is None:
            raise ReproError("incident capture failed (see metrics)")
        return path

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Close admission, drain workers, fail leftover requests."""
        if not self._started:
            return
        self._stopping.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=10.0)
            self._supervisor = None
        self.queue.close()
        for w in self._workers:
            w.join(timeout=30.0)
        for req in self.queue.drain():
            req._fail(ServerClosed("server stopped before request ran"))
        for slot in self._slots:
            slot.replica.close()
        self._slots.clear()
        self._workers.clear()
        self._restarts.clear()
        self._started = False
        self._draining = False

    def __enter__(self) -> "InferenceServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """The ``/healthz`` readiness payload.

        ``status`` is ``"ok"`` (full capacity, no degradation),
        ``"degraded"`` (serving, but with dead workers, a degraded
        execution tier, a warm-artifact rejection, or admission paused
        by a drain) or ``"down"`` (not started / nothing alive to
        serve)."""
        live = sum(1 for w in self._workers if w.is_alive())
        degraded_buckets = sorted(
            {
                b
                for r in self._replicas
                for b in r.degraded_buckets
            }
        )
        artifact_fallback = "artifact_error" in self.boot_stats
        if not self._started or (self._workers and live == 0):
            status = "down"
        elif (
            live < len(self._workers)
            or degraded_buckets
            or artifact_fallback
            or self._draining
        ):
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "started": self._started,
            "draining": self._draining,
            "live_workers": live,
            "configured_workers": self.config.workers,
            "worker_restarts": self.metrics.value("serve.worker_restarts"),
            "degraded_buckets": degraded_buckets,
            "artifact_fallback": artifact_fallback,
            "artifact_error": self.boot_stats.get("artifact_error"),
            "queue_depth": self.queue.depth,
            "estimated_wait_ms": self.queue.estimated_wait_s() * 1e3,
            "reloads": self.metrics.value("serve.reloads"),
            "reload_rollbacks": self.metrics.value(
                "serve.reload.rollbacks"
            ),
            "checkpoint": self.config.checkpoint,
            "incident_bundles": len(self._incidents.written),
        }

    def stats(self) -> dict:
        """SLO snapshot: this server's serve.* metrics, latency
        percentiles, kernel cache state, boot stats, warm-cache digests
        and the health payload.  Reads the per-instance registry, so the
        numbers cover exactly this server's lifetime -- not every server
        ever booted in the process."""
        from repro.jit.kernel_cache import get_default_cache

        return {
            "counters": self.metrics.counters(),
            "gauges": self.metrics.gauges(),
            "distributions": self.metrics.distributions(),
            "kernel_cache": get_default_cache().stats(),
            "boot": dict(self.boot_stats),
            "warm_streams": self.warm_cache.digests(),
            "health": self.health(),
        }

    def save_streams_artifact(self, path_or_file) -> int:
        """Persist the warm cache for the next boot; returns the entry
        count.  Only meaningful for the blocked engine (the fast engine
        records no streams)."""
        if self.config.engine != "blocked":
            raise ReproError(
                "stream artifacts apply only to the blocked engine"
            )
        return self.warm_cache.save(path_or_file)
