"""Micro-batching: pad requests to a bucket, scatter results back.

Engines only exist for the configured bucket sizes, so a group of ``n``
requests rides in the smallest bucket >= n with zero rows padding the
tail.  Padding rows are pure throwaway compute; correctness never
depends on them because every layer of the forward path computes each
sample independently of its batch neighbours (the batch-invariance the
serving tests pin down bitwise).
"""

from __future__ import annotations

import numpy as np

from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.serve.request import DeadlineExceeded, InferenceRequest
from repro.types import ShapeError

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Coalesce single-image requests into bucket-shaped minibatches.

    ``metrics`` scopes occupancy samples to one server; it defaults to
    the process-wide registry for standalone use.
    """

    def __init__(
        self,
        buckets: tuple[int, ...],
        metrics: MetricsRegistry | None = None,
    ):
        self.buckets = tuple(sorted(buckets))
        self._metrics = metrics if metrics is not None else get_metrics()

    def drop_expired(
        self, requests: list[InferenceRequest]
    ) -> list[InferenceRequest]:
        """Fail every already-expired request with
        :class:`DeadlineExceeded` (``serve.deadline_expired``) and return
        the live remainder.  Called immediately before padding a batch so
        a request that aged out during the batching window never wastes a
        bucket row -- and a batch whose every row expired is never
        replayed at all (the caller skips an empty return)."""
        live: list[InferenceRequest] = []
        for req in requests:
            if req.expired:
                self._metrics.inc("serve.deadline_expired")
                req._fail(DeadlineExceeded(
                    f"request {req.id} expired before its batch was built"
                ))
            else:
                live.append(req)
        return live

    def bucket_for(self, n: int) -> int:
        """Smallest configured bucket that fits ``n`` requests."""
        for b in self.buckets:
            if b >= n:
                return b
        raise ShapeError(
            f"{n} requests exceed the largest bucket {self.buckets[-1]}"
        )

    def build(
        self, requests: list[InferenceRequest]
    ) -> tuple[np.ndarray, int, int]:
        """Stack requests into a zero-padded ``(bucket, C, H, W)`` batch.

        Returns ``(batch, n, bucket)`` where ``n`` is the live row count.
        """
        n = len(requests)
        bucket = self.bucket_for(n)
        shape = requests[0].x.shape
        batch = np.zeros((bucket, *shape), dtype=np.float32)
        for i, req in enumerate(requests):
            batch[i] = req.x
        self._metrics.observe("serve.batch_occupancy", n / bucket)
        return batch, n, bucket

    def scatter(
        self, requests: list[InferenceRequest], probs: np.ndarray
    ) -> None:
        """Resolve each request with its own (copied) probability row."""
        for i, req in enumerate(requests):
            req._resolve(np.copy(probs[i]))
